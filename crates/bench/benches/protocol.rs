//! Criterion microbenches of the protocol substrates: HPACK, framing and
//! the priority scheduler. These gauge the raw cost of the from-scratch
//! HTTP/2 stack that every replay run pays.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use h2push_h2proto::{
    DefaultScheduler, Frame, PrioritySpec, PriorityTree, Scheduler, StreamSnapshot,
    DEFAULT_MAX_FRAME_SIZE,
};
use h2push_hpack::{Decoder, Encoder, Header};

fn typical_request() -> Vec<Header> {
    vec![
        Header::new(":method", "GET"),
        Header::new(":scheme", "https"),
        Header::new(":authority", "www.example.com"),
        Header::new(":path", "/static/css/main.3f2a1b.css"),
        Header::new("accept", "text/css,*/*;q=0.1"),
        Header::new("accept-encoding", "gzip, deflate, br"),
        Header::new("user-agent", "Mozilla/5.0 (X11; Linux x86_64) Chrome/64.0"),
    ]
}

fn bench_hpack(c: &mut Criterion) {
    let mut g = c.benchmark_group("hpack");
    g.bench_function("encode_request", |b| {
        let headers = typical_request();
        let mut enc = Encoder::new();
        b.iter(|| black_box(enc.encode(&headers)));
    });
    g.bench_function("decode_request", |b| {
        let headers = typical_request();
        let mut enc = Encoder::new();
        let block = enc.encode(&headers);
        let mut dec = Decoder::new();
        // Warm the dynamic table so decode exercises indexed fields.
        let _ = dec.decode(&block);
        let block2 = enc.encode(&headers);
        b.iter(|| black_box(dec.decode(&block2).unwrap()));
    });
    g.bench_function("huffman_encode_1k", |b| {
        let data: Vec<u8> = (0..1024u32).map(|i| (i % 96 + 32) as u8).collect();
        b.iter(|| {
            let mut out = Vec::new();
            h2push_hpack::huffman::encode(black_box(&data), &mut out);
            black_box(out)
        });
    });
    g.finish();
}

fn bench_frames(c: &mut Criterion) {
    let mut g = c.benchmark_group("frames");
    g.throughput(Throughput::Bytes(16_384));
    g.bench_function("encode_data_16k", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(16_393);
            Frame::Data { stream: 1, len: 16_384, end_stream: false }.encode(&mut out);
            black_box(out)
        });
    });
    g.bench_function("decode_data_16k", |b| {
        let mut buf = Vec::new();
        Frame::Data { stream: 1, len: 16_384, end_stream: false }.encode(&mut buf);
        b.iter(|| black_box(Frame::decode(&buf, DEFAULT_MAX_FRAME_SIZE).unwrap()));
    });
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("scheduler_pick_50_streams", |b| {
        let mut tree = PriorityTree::new();
        tree.insert(1, PrioritySpec { depends_on: 0, weight: 256, exclusive: false });
        let mut snaps = Vec::new();
        for i in 0..50u32 {
            let id = 2 + i * 2;
            tree.insert(id, PrioritySpec { depends_on: 1, weight: 16, exclusive: false });
            snaps.push(StreamSnapshot { id, sendable: 1000, sent: 0, is_push: true });
        }
        let mut sched = DefaultScheduler::new();
        b.iter(|| black_box(sched.pick(&snaps, &tree)));
    });
}

criterion_group!(benches, bench_hpack, bench_frames, bench_scheduler);
criterion_main!(benches);
