//! Criterion benches of whole replays: how fast the testbed can evaluate a
//! strategy on a site. This is the figure of merit for the §6 CDN use case
//! (exploring many candidate strategies per site).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use h2push_strategies::{paper_strategy, PaperStrategy, Strategy};
use h2push_testbed::{replay, replay_shared, ReplayConfig, ReplayInputs};
use h2push_webmodel::{generate_site, realworld_site, synthetic_site, CorpusKind};

fn bench_replays(c: &mut Criterion) {
    let mut g = c.benchmark_group("replay");
    g.sample_size(20);

    g.bench_function("synthetic_s7_no_push", |b| {
        let page = synthetic_site(7);
        let cfg = ReplayConfig::testbed(Strategy::NoPush);
        b.iter(|| black_box(replay(&page, &cfg).unwrap()));
    });

    g.bench_function("random_site_no_push", |b| {
        let page = generate_site(CorpusKind::Random, 7);
        let cfg = ReplayConfig::testbed(Strategy::NoPush);
        b.iter(|| black_box(replay(&page, &cfg).unwrap()));
    });

    g.bench_function("w1_wikipedia_interleaved", |b| {
        let page = realworld_site(1);
        let (variant, strategy) = paper_strategy(&page, PaperStrategy::PushCriticalOptimized);
        let cfg = ReplayConfig::testbed(strategy);
        b.iter(|| black_box(replay(&variant, &cfg).unwrap()));
    });

    g.bench_function("w17_cnn_369_requests", |b| {
        let page = realworld_site(17);
        let cfg = ReplayConfig::testbed(Strategy::NoPush);
        b.iter(|| black_box(replay(&page, &cfg).unwrap()));
    });

    // The repetition-loop setup cost: clone + re-record the page on every
    // run (the pre-overhaul shape) vs sharing one ReplayInputs.
    g.bench_function("setup_clone_per_run", |b| {
        let page = realworld_site(1);
        let cfg = ReplayConfig::testbed(Strategy::NoPush);
        b.iter(|| black_box(replay(&page, &cfg).unwrap()));
    });

    g.bench_function("setup_shared_page", |b| {
        let inputs = ReplayInputs::from(realworld_site(1));
        let cfg = ReplayConfig::testbed(Strategy::NoPush);
        b.iter(|| black_box(replay_shared(&inputs, &cfg).unwrap()));
    });

    g.finish();
}

criterion_group!(benches, bench_replays);
criterion_main!(benches);
