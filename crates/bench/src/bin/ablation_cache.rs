//! Ablation: Server Push vs the client cache (§2.1, §4.3).
//!
//! "Pushing everything can be wasteful in terms of bandwidth, e.g., if the
//! resource is already cached" — and the standard offers no cache
//! signaling, only post-hoc RST_STREAM cancellation; the cache-digest
//! draft \[29\] is the proposed fix. This bench measures all three worlds on
//! a warm revisit.

use h2push_bench::scale_from_args;
use h2push_metrics::RunStats;
use h2push_strategies::push_all;
use h2push_testbed::{replay, ReplayConfig};
use h2push_webmodel::{generate_site, CorpusKind};

fn main() {
    let scale = scale_from_args();
    println!(
        "{:34} {:>10} {:>10} {:>10} {:>10}",
        "scenario", "SI [ms]", "PLT [ms]", "pushed KB", "cancelled"
    );
    struct Row {
        label: String,
        sis: Vec<f64>,
        plts: Vec<f64>,
        pushed_kb: f64,
        cancelled: f64,
    }
    let mut rows: Vec<Row> = Vec::new();
    for s in 0..scale.sites.min(10) as u64 {
        let page = generate_site(CorpusKind::Random, 4000 + s);
        // Warm cache: everything pushable (a same-day revisit).
        let cached = page.pushable();
        for (label, warm, honor) in [
            ("cold + push all", false, true),
            ("warm + digest-aware push", true, true),
            ("warm + digest-oblivious push", true, false),
        ] {
            let mut cfg = ReplayConfig::testbed(push_all(&page, &[]));
            if warm {
                cfg.warm_cache = cached.clone();
            }
            cfg.server_honors_digest = honor;
            let out = replay(&page, &cfg).expect("replay completes");
            match rows.iter_mut().find(|r| r.label == label) {
                Some(r) => {
                    r.sis.push(out.load.speed_index());
                    r.plts.push(out.load.plt());
                    r.pushed_kb += out.server_pushed_bytes as f64 / 1024.0;
                    r.cancelled += out.load.cancelled_pushes as f64;
                }
                None => rows.push(Row {
                    label: label.to_string(),
                    sis: vec![out.load.speed_index()],
                    plts: vec![out.load.plt()],
                    pushed_kb: out.server_pushed_bytes as f64 / 1024.0,
                    cancelled: out.load.cancelled_pushes as f64,
                }),
            }
        }
    }
    let n = scale.sites.min(10) as f64;
    for r in rows {
        println!(
            "{:34} {:>10.0} {:>10.0} {:>10.0} {:>10.1}",
            r.label,
            RunStats::of(&r.sis).mean,
            RunStats::of(&r.plts).mean,
            r.pushed_kb / n,
            r.cancelled / n
        );
    }
    println!("\nA digest-aware server pushes ~nothing on a warm revisit; a digest-");
    println!("oblivious one ships the full push budget only for the client to cancel.");
}
