//! Ablation: network conditions vs push benefit.
//!
//! The paper's related work (Wang et al. \[37\], Rosen et al. \[31\], de Saxcé
//! et al. \[15\]) finds that network characteristics decide whether push
//! helps — in particular that push gains grow with the RTT (more round
//! trips to save). This sweep varies the access RTT and bandwidth on a
//! fixed interleaving-friendly page.

use h2push_bench::scale_from_args;
use h2push_metrics::RunStats;
use h2push_netsim::SimDuration;
use h2push_strategies::{critical_set, interleave_offset, Strategy};
use h2push_testbed::{replay, ReplayConfig};
use h2push_webmodel::realworld_site;

fn main() {
    let scale = scale_from_args();
    let page = realworld_site(1); // wikipedia: large document, late-arriving CSS
    let critical = critical_set(&page);
    let interleaved = Strategy::Interleaved {
        offset: interleave_offset(&page),
        critical: critical.clone(),
        after: Vec::new(),
    };
    println!("Push benefit vs network conditions on {} ({} runs/pt)", page.name, scale.runs);
    println!(
        "{:>8} {:>10} | {:>12} {:>12} {:>9} {:>8}",
        "RTT", "downlink", "no-push SI", "interleave", "Δ [ms]", "Δ [%]"
    );
    for (rtt_ms, down_mbit) in
        [(10u64, 16u64), (25, 16), (50, 16), (100, 16), (200, 16), (50, 4), (50, 50)]
    {
        let mut sis = (Vec::new(), Vec::new());
        for r in 0..scale.runs as u64 {
            for (i, strategy) in [Strategy::NoPush, interleaved.clone()].iter().enumerate() {
                let mut cfg = ReplayConfig::testbed(strategy.clone());
                cfg.network.client_down.delay = SimDuration::from_micros(rtt_ms * 500);
                cfg.network.client_up.delay = SimDuration::from_micros(rtt_ms * 500);
                cfg.network.client_down.rate_bps = Some(down_mbit * 1_000_000);
                cfg.network.seed = scale.seed + r;
                let out = replay(&page, &cfg).expect("replay completes");
                if i == 0 {
                    sis.0.push(out.load.speed_index());
                } else {
                    sis.1.push(out.load.speed_index());
                }
            }
        }
        let (a, b) = (RunStats::of(&sis.0).mean, RunStats::of(&sis.1).mean);
        println!(
            "{:>6}ms {:>8}Mb | {:>10.0}ms {:>10.0}ms {:>9.0} {:>7.1}%",
            rtt_ms,
            down_mbit,
            a,
            b,
            b - a,
            (b - a) / a * 100.0
        );
    }
    println!("\nabsolute savings grow with RTT (round trips saved) and explode on slow");
    println!("links (serialization saved); the *relative* share shrinks as the baseline");
    println!("grows — consistent with [31, 37]: network characteristics decide the win.");
}
