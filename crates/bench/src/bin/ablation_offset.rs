//! Ablation: the interleave switch offset (§5).
//!
//! The paper switches "after `</head>` and first bytes of `<body>`" (4 KB on
//! w1, 12 KB on w16). This sweep shows why: switching too early starves
//! the preload scanner of the head; switching too late re-creates the
//! no-push behaviour (the whole document before the CSS).

use h2push_bench::scale_from_args;
use h2push_metrics::RunStats;
use h2push_strategies::{critical_set, Strategy};
use h2push_testbed::{Mode, ReplayInputs, RunPlan};
use h2push_webmodel::realworld_site;

fn main() {
    let scale = scale_from_args();
    let page = realworld_site(1); // w1: 236 KB document
    let critical = critical_set(&page);
    println!(
        "Interleave-offset ablation on {} (critical set: {} resources), {} runs",
        page.name,
        critical.len(),
        scale.runs
    );
    println!("{:>10} {:>14} {:>14}", "offset", "SpeedIndex", "PLT");
    let inputs = ReplayInputs::from(&page);
    let measure = |strategy: Strategy| {
        RunPlan::new(&inputs)
            .strategy(strategy)
            .mode(Mode::Testbed)
            .reps(scale.runs)
            .seed(scale.seed)
            .run()
            .into_outcomes()
    };
    let base = measure(Strategy::NoPush);
    let base_si = RunStats::of(&base.iter().map(|o| o.load.speed_index()).collect::<Vec<_>>()).mean;
    for offset in [1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072, page.html_size()] {
        let strategy =
            Strategy::Interleaved { offset, critical: critical.clone(), after: Vec::new() };
        let outs = measure(strategy);
        let si = RunStats::of(&outs.iter().map(|o| o.load.speed_index()).collect::<Vec<_>>());
        let plt = RunStats::of(&outs.iter().map(|o| o.load.plt()).collect::<Vec<_>>());
        println!("{:>8}KB {:>10.0} ms {:>10.0} ms", offset / 1024, si.mean, plt.mean);
    }
    println!("{:>10} {:>10.0} ms   (no push baseline)", "—", base_si);
}
