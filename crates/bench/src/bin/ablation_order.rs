//! Ablation: the order of pushed objects (§4.2.1).
//!
//! "Suboptimal orders can have negative impacts, e.g., delay critical
//! resources": compare the computed (request) order against its reverse
//! and an images-first order on random-corpus sites.

use h2push_bench::scale_from_args;
use h2push_metrics::RunStats;
use h2push_strategies::{push_all, Strategy};
use h2push_testbed::{compute_push_order, Mode, ReplayInputs, RunPlan};
use h2push_webmodel::{generate_site, CorpusKind, ResourceType};

fn main() {
    let scale = scale_from_args();
    println!(
        "Push-order ablation — Δ mean SpeedIndex vs no push [ms] over {} sites × {} runs",
        scale.sites.min(12),
        scale.runs
    );
    println!("{:24} {:>12} {:>12} {:>12}", "site", "computed", "reversed", "images-first");
    for i in 0..scale.sites.min(12) as u64 {
        let page = generate_site(CorpusKind::Random, 7000 + i);
        let order = compute_push_order(&page, scale.runs.min(5), scale.seed);
        let mut reversed = order.clone();
        reversed.reverse();
        let mut images_first = order.clone();
        images_first.sort_by_key(|&id| (page.resource(id).rtype != ResourceType::Image, id));
        let inputs = ReplayInputs::from(&page);
        let si = |strategy: Strategy| {
            let outs = RunPlan::new(&inputs)
                .strategy(strategy)
                .mode(Mode::Testbed)
                .reps(scale.runs)
                .seed(scale.seed)
                .run()
                .into_outcomes();
            RunStats::of(&outs.iter().map(|o| o.load.speed_index()).collect::<Vec<_>>()).mean
        };
        let base = si(Strategy::NoPush);
        println!(
            "{:24} {:>12.1} {:>12.1} {:>12.1}",
            page.name,
            si(push_all(&page, &order)) - base,
            si(push_all(&page, &reversed)) - base,
            si(push_all(&page, &images_first)) - base
        );
    }
    println!("\npaper: the computed (request) order avoids delaying critical resources;");
    println!("suboptimal orders prefer uncritical resources and hurt visual progress.");
}
