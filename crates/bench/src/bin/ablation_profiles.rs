//! The §6 deployment matrix: strategy performance across access profiles.
//!
//! "Several (interleaving) push strategies for different versions of a
//! website and network settings, e.g., mobile, desktop, cable or cellular,
//! could be analyzed in our testbed" — this is that analysis for one site.

use h2push_bench::scale_from_args;
use h2push_metrics::RunStats;
use h2push_netsim::NetworkSpec;
use h2push_strategies::{paper_strategy, PaperStrategy};
use h2push_testbed::{replay, ReplayConfig};
use h2push_webmodel::realworld_site;

fn main() {
    let scale = scale_from_args();
    let page = realworld_site(2); // apple
    println!(
        "Push strategies across access profiles on {} ({} runs; SpeedIndex ms)",
        page.name, scale.runs
    );
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>10}",
        "profile", "no push", "np-optimized", "pc-optimized", "pco gain"
    );
    // A mobile device is also CPU-slower (the §6 matrix crosses device and
    // network); pair cellular with a 3× CPU factor.
    let profiles: [(&str, NetworkSpec, f64); 4] = [
        ("fibre", NetworkSpec::fibre(), 1.0),
        ("cable", NetworkSpec::cable(), 1.0),
        ("dsl", NetworkSpec::dsl_testbed(), 1.0),
        ("cellular", NetworkSpec::cellular(), 3.0),
    ];
    for (name, net, cpu) in profiles {
        let mut sis = Vec::new();
        for which in [
            PaperStrategy::NoPush,
            PaperStrategy::NoPushOptimized,
            PaperStrategy::PushCriticalOptimized,
        ] {
            let (variant, strategy) = paper_strategy(&page, which);
            let mut runs = Vec::new();
            for r in 0..scale.runs as u64 {
                let mut cfg = ReplayConfig::testbed(strategy.clone());
                cfg.network = net.clone();
                cfg.network.seed = scale.seed + r;
                cfg.browser.cpu_scale = cpu;
                runs.push(replay(&variant, &cfg).expect("replay completes").load.speed_index());
            }
            sis.push(RunStats::of(&runs).mean);
        }
        println!(
            "{:>10} {:>10.0} {:>12.0} {:>12.0} {:>9.1}%",
            name,
            sis[0],
            sis[1],
            sis[2],
            (sis[2] - sis[0]) / sis[0] * 100.0
        );
    }
    println!("\nThe right strategy is profile-specific: a CDN would pick per class (§6).");
}
