//! Ablation: the preload scanner vs Server Push.
//!
//! Push's original promise was "save the discovery round trips". Modern
//! browsers already claw most of that back with the preload scanner, which
//! requests references straight out of the byte stream while the parser is
//! blocked — one reason the paper finds push-all barely helps. Turning the
//! scanner off shows the world the push guidelines implicitly assumed.

use h2push_bench::scale_from_args;
use h2push_metrics::RunStats;
use h2push_strategies::{push_all, Strategy};
use h2push_testbed::{replay, ReplayConfig};
use h2push_webmodel::{generate_site, CorpusKind};

fn main() {
    let scale = scale_from_args();
    println!(
        "Push-all benefit with and without the preload scanner ({} sites × {} runs)",
        scale.sites.min(10),
        scale.runs
    );
    println!("{:24} {:>16} {:>16}", "site", "scanner ΔSI", "no-scanner ΔSI");
    let mut with = Vec::new();
    let mut without = Vec::new();
    for i in 0..scale.sites.min(10) as u64 {
        let page = generate_site(CorpusKind::Random, 6200 + i);
        let mut cells = [0.0f64; 2];
        for (j, scanner) in [true, false].iter().enumerate() {
            let mut deltas = Vec::new();
            for r in 0..scale.runs as u64 {
                let si = |strategy: Strategy| {
                    let mut cfg = ReplayConfig::testbed(strategy);
                    cfg.browser.preload_scanner = *scanner;
                    cfg.network.seed = scale.seed + r;
                    replay(&page, &cfg).expect("replay completes").load.speed_index()
                };
                deltas.push(si(push_all(&page, &[])) - si(Strategy::NoPush));
            }
            cells[j] = RunStats::of(&deltas).mean;
        }
        println!("{:24} {:>14.1}ms {:>14.1}ms", page.name, cells[0], cells[1]);
        with.push(cells[0]);
        without.push(cells[1]);
    }
    println!(
        "\nmean ΔSI: {:+.1} ms with scanner vs {:+.1} ms without — push mostly\n\
         re-delivers what the scanner already finds; without one, push shines.",
        RunStats::of(&with).mean,
        RunStats::of(&without).mean
    );
}
