//! Ablation: strict-priority vs weighted-fair sibling scheduling.
//!
//! h2o's scheduler serves sibling weight classes by byte-level weighted
//! fair queuing; our default models the strict ordering the Chromium
//! exclusive chain effectively produces. This ablation quantifies the gap
//! on a scenario where they differ most: many weight-16 pushed streams
//! coexisting with the request chain.

use h2push_bench::scale_from_args;
use h2push_h2proto::{FairScheduler, PrioritySpec, PriorityTree, Scheduler, StreamSnapshot};

fn main() {
    let _ = scale_from_args();
    // A chain head (weight 220) vs N pushed streams (weight 16 each), all
    // root siblings (the post-document state): measure the share of the
    // first 100 chunks each scheduler gives the chain head.
    println!("share of first 100 chunks given to the weight-220 chain head:");
    println!("{:>10} {:>10} {:>10}", "N pushes", "strict", "fair");
    for n in [1usize, 4, 8, 16, 32] {
        let mut tree = PriorityTree::new();
        tree.insert(1, PrioritySpec { depends_on: 0, weight: 220, exclusive: false });
        let mut snaps = vec![StreamSnapshot { id: 1, sendable: 1 << 20, sent: 0, is_push: false }];
        for i in 0..n {
            let id = 2 + 2 * i as u32;
            tree.insert(id, PrioritySpec { depends_on: 0, weight: 16, exclusive: false });
            snaps.push(StreamSnapshot { id, sendable: 1 << 20, sent: 0, is_push: true });
        }
        let run = |mut s: Box<dyn Scheduler>| -> usize {
            let mut head = 0;
            for _ in 0..100 {
                let pick = s.pick(&snaps, &tree).unwrap();
                s.charge(pick, 16_384, &tree);
                if pick == 1 {
                    head += 1;
                }
            }
            head
        };
        let strict = run(Box::new(h2push_h2proto::DefaultScheduler::new()));
        let fair = run(Box::new(FairScheduler::new()));
        println!("{:>10} {:>9}% {:>9}%", n, strict, fair);
    }
    println!("\nUnder strict scheduling the chain is never preempted; under fair");
    println!("scheduling a pile of weight-16 pushes claims 16N/(16N+220) of the");
    println!("link — §4.2.1's bandwidth-contention pitfall when pushing images.");
}
