//! Allocation gate: prove that run-context recycling makes the replay
//! hot loop allocation-free in steady state, and keep it that way.
//!
//! Requires the `count-allocs` feature (the counting global allocator);
//! without it the binary exits with a pointer at the right invocation.
//!
//! Two figures per strategy, measured with the counting allocator:
//!
//! * **cold** — a fresh [`ReplayCtx`] constructed (and dropped) for every
//!   repetition: browser, servers, network, byte FIFOs and HPACK scratch
//!   all minted per run. This is what replay cost before recycling.
//! * **steady** — one persistent context recycled across repetitions
//!   after a short warmup; per-rep figures are the *minimum* over the
//!   measured reps (the steady-state floor — what the context converges
//!   to, independent of one-off pool growth on early reps).
//!
//! The binary fails when steady-state allocations are not at least
//! [`REDUCTION_FLOOR`]× below cold — recycling must stay a structural
//! win, not a wash. Outcomes of both paths are asserted byte-identical
//! (the full matrix lives in `crates/testbed/tests/recycle.rs`).
//!
//! Without `--gate` the measured steady figure is stamped into the
//! committed `BENCH_replay.json` as `meta.allocs_per_run` (run
//! `perf_replay` first — it rewrites the whole artifact and drops the
//! stamp). With `--gate` the figure is compared against the committed
//! stamp instead and the run fails on regression beyond
//! [`GATE_SLACK`] — the CI allocation gate.

#[cfg(not(feature = "count-allocs"))]
fn main() {
    eprintln!(
        "alloc_gate: built without the counting allocator; run\n  \
         cargo run --release -p h2push-bench --features count-allocs --bin alloc_gate"
    );
    std::process::exit(2);
}

#[cfg(feature = "count-allocs")]
fn main() {
    gate::main()
}

#[cfg(feature = "count-allocs")]
mod gate {
    use h2push_bench::{alloc_count, bench_args, BenchMeta};
    use h2push_strategies::{push_all, Strategy};
    use h2push_testbed::{replay_in, run_config, Mode, ReplayCtx, ReplayInputs, ReplayOutcome};
    use h2push_webmodel::{generate_site, CorpusKind};
    use std::sync::Arc;

    /// Reps that prime the persistent context (and every thread-local
    /// recycling pool) before steady-state is measured.
    const WARMUP: usize = 3;

    /// Measured reps per path; cold takes the minimum too, so both
    /// figures are floors and the ratio compares like with like.
    const REPS: usize = 9;

    /// Steady-state must allocate at least this many times less than the
    /// cold path (the tentpole's acceptance floor).
    const REDUCTION_FLOOR: u64 = 10;

    /// `--gate`: allowed growth over the committed `allocs_per_run`
    /// before the gate fails. Allocation counts in a deterministic
    /// simulator are near-exact, but std / allocator-internal behaviour
    /// may shift a handful of blocks between toolchains; a small
    /// fractional + absolute slack absorbs that without letting a real
    /// per-rep leak (which grows the count by dozens) through.
    const GATE_SLACK: f64 = 1.25;
    const GATE_SLACK_ABS: u64 = 16;

    /// Count the allocations `f` performs.
    fn allocs_during<T>(f: impl FnOnce() -> T) -> (u64, T) {
        let before = alloc_count::allocations();
        let out = f();
        (alloc_count::allocations() - before, out)
    }

    fn key(o: &ReplayOutcome) -> (f64, f64, usize, u64) {
        (o.load.plt(), o.load.speed_index(), o.trace.order.len(), o.server_pushed_bytes)
    }

    /// Pull `"allocs_per_run": N` out of the committed artifact's meta
    /// line.
    fn committed_budget(json: &str) -> Option<u64> {
        let tail = json.split("\"allocs_per_run\":").nth(1)?;
        let num: String = tail
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| c.is_ascii_digit())
            .collect();
        num.parse().ok()
    }

    /// Stamp (or restamp) `allocs_per_run` into the artifact's meta line,
    /// leaving every other line byte-identical.
    fn stamp_meta(json: &str, meta: &BenchMeta) -> String {
        let mut out = String::with_capacity(json.len() + 64);
        for line in json.lines() {
            if line.trim_start().starts_with("\"meta\"") {
                out.push_str(&format!("  {},", meta.to_json()));
            } else {
                out.push_str(line);
            }
            out.push('\n');
        }
        out
    }

    pub fn main() {
        let args = bench_args();
        let page = generate_site(CorpusKind::Random, args.scale.seed);
        let strategies: [(&str, Arc<Strategy>); 2] =
            [("no_push", Arc::new(Strategy::NoPush)), ("push_all", Arc::new(push_all(&page, &[])))];
        let inputs = ReplayInputs::from(&page).prepared();

        let mut cold_total = 0u64;
        let mut steady_total = 0u64;
        for (label, strategy) in &strategies {
            let cfg = run_config(strategy, Mode::Testbed, args.scale.seed, &inputs.page);

            // Cold floor: context minted and dropped per rep. The first
            // few reps also warm the thread-local queue/slab pools, which
            // the minimum then excludes — cold is purely "construct the
            // machinery again", the honest pre-recycling baseline.
            let mut cold = u64::MAX;
            let mut cold_out = None;
            for _ in 0..REPS {
                let (n, out) = allocs_during(|| {
                    replay_in(&inputs, &cfg, &mut ReplayCtx::new()).expect("cold replay")
                });
                cold = cold.min(n);
                cold_out = Some(out);
            }

            // Steady floor: one context recycled across every rep.
            let mut ctx = ReplayCtx::new();
            for _ in 0..WARMUP {
                replay_in(&inputs, &cfg, &mut ctx).expect("warmup replay");
            }
            let mut steady = u64::MAX;
            let mut steady_out = None;
            for _ in 0..REPS {
                let (n, out) =
                    allocs_during(|| replay_in(&inputs, &cfg, &mut ctx).expect("steady replay"));
                steady = steady.min(n);
                steady_out = Some(out);
            }

            let (cold_out, steady_out) = (cold_out.unwrap(), steady_out.unwrap());
            assert_eq!(
                key(&cold_out),
                key(&steady_out),
                "{label}: recycled outcome diverged from cold"
            );
            println!(
                "alloc gate [{label}]: cold {cold} allocs/run, steady {steady} allocs/run \
                 ({:.0}x reduction)",
                cold as f64 / steady.max(1) as f64
            );
            assert!(
                steady.saturating_mul(REDUCTION_FLOOR) <= cold,
                "alloc gate [{label}]: steady-state {steady} allocs/run is not \
                 {REDUCTION_FLOOR}x below the cold path's {cold}"
            );
            cold_total += cold;
            steady_total += steady;
        }

        println!(
            "alloc gate: total cold {cold_total}, total steady {steady_total} \
             allocs/run across {} strategies",
            strategies.len()
        );

        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replay.json");
        if args.gate {
            let committed = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("alloc gate: cannot read committed baseline {path}: {e}");
                std::process::exit(1);
            });
            let budget = committed_budget(&committed).unwrap_or_else(|| {
                eprintln!(
                    "alloc gate: no allocs_per_run in {path}; regenerate with \
                     `cargo run --release -p h2push-bench --features count-allocs \
                     --bin alloc_gate` (no --gate) and commit the artifact"
                );
                std::process::exit(1);
            });
            let ceiling = (budget as f64 * GATE_SLACK) as u64 + GATE_SLACK_ABS;
            println!(
                "alloc gate: steady {steady_total} allocs/run vs committed budget {budget} \
                 (ceiling {ceiling})"
            );
            assert!(
                steady_total <= ceiling,
                "alloc gate failed: steady-state {steady_total} allocs/run exceeds the \
                 committed budget {budget} (ceiling {ceiling}) — per-rep churn crept back \
                 into the recycled path"
            );
            println!("alloc gate passed");
        } else {
            let committed = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!(
                    "alloc gate: cannot read {path}: {e}\nalloc gate: run perf_replay \
                     first — it writes the artifact this stamps"
                );
                std::process::exit(1);
            });
            let mut meta = BenchMeta::capture();
            meta.allocs_per_run = Some(steady_total);
            std::fs::write(path, stamp_meta(&committed, &meta)).expect("write BENCH_replay.json");
            println!("stamped meta.allocs_per_run = {steady_total} into {path}");
        }
    }
}
