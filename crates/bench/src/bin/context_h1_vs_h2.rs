//! Context experiment: HTTP/1.1 vs HTTP/2 (no push).
//!
//! The paper's §1–§3 stand on prior findings — Varvello et al. ("Is the Web
//! HTTP/2 Yet?": ~80 % of sites load faster over H2), de Saxcé et al. (H2
//! is less sensitive to latency), Wang et al. (benefits grow with RTT,
//! few/small objects can favour H1). This experiment reproduces that
//! context in the replay testbed: the same corpus loaded over the H1
//! six-connection baseline and over H2.

use h2push_bench::scale_from_args;
use h2push_metrics::{share_below, RunStats};
use h2push_netsim::SimDuration;
use h2push_strategies::Strategy;
use h2push_testbed::{replay, Protocol, ReplayConfig};
use h2push_webmodel::{generate_set, CorpusKind};

fn main() {
    let scale = scale_from_args();
    let sites = generate_set(CorpusKind::Random, scale.sites, scale.seed);

    // Part 1: corpus-wide H2 benefit at the paper's DSL profile.
    let mut deltas = Vec::new();
    for page in &sites {
        let mut h1 = ReplayConfig::testbed(Strategy::NoPush);
        h1.protocol = Protocol::H1;
        let h2 = ReplayConfig::testbed(Strategy::NoPush);
        let (Ok(a), Ok(b)) = (replay(page, &h1), replay(page, &h2)) else { continue };
        deltas.push((b.load.plt() - a.load.plt()) / a.load.plt() * 100.0);
    }
    let s = RunStats::of(&deltas);
    println!(
        "PLT over {} random sites: H2 faster on {:.0}% (paper context [35]: ~80%); \
         mean change {:+.1}%, median {:+.1}%",
        deltas.len(),
        share_below(&deltas, 0.0) * 100.0,
        s.mean,
        s.median
    );

    // Part 2: RTT sensitivity on one many-object page (de Saxcé/Wang).
    let page = &sites[0];
    println!("\nRTT sweep on {} ({} requests):", page.name, page.resources.len());
    println!("{:>8} {:>12} {:>12} {:>9}", "RTT", "H1 PLT", "H2 PLT", "H2 gain");
    for rtt_ms in [10u64, 25, 50, 100, 200] {
        let mut plts = [0.0f64; 2];
        for (i, proto) in [Protocol::H1, Protocol::H2].iter().enumerate() {
            let mut cfg = ReplayConfig::testbed(Strategy::NoPush);
            cfg.protocol = *proto;
            cfg.network.client_down.delay = SimDuration::from_micros(rtt_ms * 500);
            cfg.network.client_up.delay = SimDuration::from_micros(rtt_ms * 500);
            plts[i] = replay(page, &cfg).expect("replay completes").load.plt();
        }
        println!(
            "{:>6}ms {:>10.0}ms {:>10.0}ms {:>8.1}%",
            rtt_ms,
            plts[0],
            plts[1],
            (plts[1] - plts[0]) / plts[0] * 100.0
        );
    }
    println!("\nH2 wins through header compression and multiplexed request waves; H1");
    println!("fights back with six parallel slow-starts (aggregate IW ≈ 60 segments),");
    println!("which pays off on bandwidth-bound pages — the same ambivalence Wang et");
    println!("al. [37] documented for SPDY, and why most-but-not-all sites gain.");
}
