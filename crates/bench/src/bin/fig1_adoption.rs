//! Fig. 1 — monthly H2 and Server Push adoption on a 1 M-domain
//! population (§1).
use h2push_testbed::adoption::AdoptionModel;

fn main() {
    let model = AdoptionModel::new(1_000_000, 2017);
    println!("Fig. 1 — adoption of HTTP/2 and Server Push over 2017 (synthetic Alexa-1M scan)");
    println!("{:>5} {:>12} {:>12}", "month", "HTTP/2", "Server Push");
    for scan in model.year() {
        println!("{:>5} {:>12} {:>12}", scan.month + 1, scan.h2_domains, scan.push_domains);
    }
    let year = model.year();
    let (first, last) = (&year[0], &year[year.len() - 1]);
    println!(
        "\nH2 grew {:.1}x; push grew {:.1}x; push is {:.0}x rarer than H2 in December.",
        last.h2_domains as f64 / first.h2_domains as f64,
        last.push_domains as f64 / first.push_domains.max(1) as f64,
        last.h2_domains as f64 / last.push_domains.max(1) as f64
    );
}
