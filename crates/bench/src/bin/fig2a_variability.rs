//! Fig. 2a — per-site standard error of PLT and SpeedIndex over repeated
//! runs: testbed vs Internet (§4.1).
use h2push_bench::{cdf_summary, scale_from_args};
use h2push_testbed::experiments::fig2::fig2a_variability;

fn main() {
    let scale = scale_from_args();
    println!("Fig. 2a — std. error σx̄ over {} runs, {} sites", scale.runs, scale.sites);
    let rows = fig2a_variability(scale);
    let col = |f: fn(&h2push_testbed::experiments::fig2::VariabilityRow) -> f64| {
        rows.iter().map(f).collect::<Vec<f64>>()
    };
    let t = [50.0, 100.0, 250.0];
    cdf_summary("PLT σx̄ testbed [ms]", &col(|r| r.tb_plt_stderr), &t);
    cdf_summary("PLT σx̄ internet [ms]", &col(|r| r.inet_plt_stderr), &t);
    cdf_summary("SI σx̄ testbed [ms]", &col(|r| r.tb_si_stderr), &t);
    cdf_summary("SI σx̄ internet [ms]", &col(|r| r.inet_si_stderr), &t);
    println!("\npaper: testbed σx̄ < 100 ms for 95% of sites (PLT); Internet only 14%.");
}
