//! Fig. 2b — Δ(PLT/SpeedIndex) of push-as-deployed vs no push in the
//! testbed (§4.1).
use h2push_bench::{cdf_summary, scale_from_args};
use h2push_metrics::share_below;
use h2push_testbed::experiments::fig2::fig2b_push_vs_nopush;

fn main() {
    let scale = scale_from_args();
    println!(
        "Fig. 2b — push (as recorded) vs no push, {} sites × {} runs",
        scale.sites, scale.runs
    );
    let rows = fig2b_push_vs_nopush(scale);
    let d_plt: Vec<f64> = rows.iter().map(|r| r.d_plt).collect();
    let d_si: Vec<f64> = rows.iter().map(|r| r.d_si).collect();
    cdf_summary("ΔPLT [ms]", &d_plt, &[-100.0, 0.0, 100.0]);
    cdf_summary("ΔSpeedIndex [ms]", &d_si, &[-100.0, 0.0, 100.0]);
    println!(
        "\nno benefit (Δ ≥ 0): PLT {:.0}%  SI {:.0}%   (paper: 49% / 35%)",
        (1.0 - share_below(&d_plt, 0.0)) * 100.0,
        (1.0 - share_below(&d_si, 0.0)) * 100.0
    );
}
