//! Fig. 3a — push all (computed order) vs no push on both corpora (§4.2.1).
use h2push_bench::{cdf_summary, scale_from_args};
use h2push_metrics::share_below;
use h2push_testbed::experiments::fig3::fig3a_push_all;
use h2push_webmodel::CorpusKind;

fn main() {
    let scale = scale_from_args();
    for (kind, label, paper_benefit) in
        [(CorpusKind::Top, "top-100", 58.0), (CorpusKind::Random, "random-100", 45.0)]
    {
        println!("Fig. 3a [{label}] — push all in computed order vs no push");
        let rows = fig3a_push_all(kind, scale);
        let d_si: Vec<f64> = rows.iter().map(|r| r.d_si).collect();
        let d_plt: Vec<f64> = rows.iter().map(|r| r.d_plt).collect();
        cdf_summary("ΔSpeedIndex [ms]", &d_si, &[-100.0, 0.0, 100.0]);
        cdf_summary("ΔPLT [ms]", &d_plt, &[-100.0, 0.0, 100.0]);
        println!(
            "  → sites benefiting (ΔSI<0): {:.0}%   (paper: {paper_benefit:.0}%)\n",
            share_below(&d_si, 0.0) * 100.0
        );
    }
}
