//! Fig. 3b — push 1/5/10/15/all on the random corpus (§4.2.1).
use h2push_bench::{cdf_summary, scale_from_args};
use h2push_testbed::experiments::fig3::{fig3b_push_limit, LIMITS};

fn main() {
    let scale = scale_from_args();
    println!(
        "Fig. 3b — limited push amounts, random-100, {} sites × {} runs",
        scale.sites, scale.runs
    );
    let rows = fig3b_push_limit(scale);
    for &limit in &LIMITS {
        let label = match limit {
            Some(n) => format!("push {n}"),
            None => "push all".to_string(),
        };
        let d_plt: Vec<f64> = rows.iter().filter(|r| r.limit == limit).map(|r| r.d_plt).collect();
        let d_si: Vec<f64> = rows.iter().filter(|r| r.limit == limit).map(|r| r.d_si).collect();
        cdf_summary(&format!("{label}: ΔPLT [ms]"), &d_plt, &[0.0]);
        cdf_summary(&format!("{label}: ΔSI  [ms]"), &d_si, &[0.0]);
    }
}
