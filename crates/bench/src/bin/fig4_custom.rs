//! Fig. 4 — custom strategies on the synthetic sites s1–s10 (§4.3).
use h2push_bench::scale_from_args;
use h2push_testbed::experiments::fig4::fig4_custom;

fn main() {
    let scale = scale_from_args();
    println!(
        "Fig. 4 — s1..s10, {} runs each (avg relative change vs no push; Δ<0 better)",
        scale.runs
    );
    println!(
        "{:22} {:>9} {:>9} | {:>9} {:>9} | {:>10} {:>10} | {:>8}",
        "site", "all ΔPLT%", "all ΔSI%", "cust ΔPLT%", "cust ΔSI%", "cust KB", "all KB", "±CI95 SI"
    );
    for r in fig4_custom(scale) {
        println!(
            "{:22} {:>9.1} {:>9.1} | {:>10.1} {:>9.1} | {:>10.0} {:>10.0} | {:>8.1}",
            r.site,
            r.push_all_plt_pct,
            r.push_all_si_pct,
            r.custom_plt_pct,
            r.custom_si_pct,
            r.custom_bytes / 1024.0,
            r.push_all_bytes / 1024.0,
            r.custom.speed_index.ci_half_width(0.95)
        );
    }
}
