//! Fig. 5b — the Interleaving Push motivating example (§5).
use h2push_bench::scale_from_args;
use h2push_testbed::experiments::fig5::{fig5b_interleaving, Fig5Strategy};

fn main() {
    let scale = scale_from_args();
    println!("Fig. 5b — SpeedIndex [ms] vs HTML size; mean ± std over {} runs", scale.runs);
    println!("{:>9} {:>18} {:>18} {:>18}", "HTML", "no push", "push", "interleaving");
    let points = fig5b_interleaving(scale);
    for size in h2push_testbed::experiments::fig5::fig5_sizes() {
        let cell = |s: Fig5Strategy| {
            let p = points.iter().find(|p| p.html_size == size && p.strategy == s).unwrap();
            format!("{:8.1} ±{:5.1}", p.metrics.speed_index.mean, p.metrics.speed_index.std_dev)
        };
        println!(
            "{:>6} KB {:>18} {:>18} {:>18}",
            size / 1024,
            cell(Fig5Strategy::NoPush),
            cell(Fig5Strategy::Push),
            cell(Fig5Strategy::Interleaving)
        );
    }
    println!("\npaper: no push and push grow with the document; interleaving stays flat.");
}
