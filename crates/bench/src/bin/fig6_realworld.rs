//! Fig. 6 — the six §5 strategies on the Table-1 sites w1–w20.
use h2push_bench::scale_from_args;
use h2push_strategies::PaperStrategy;
use h2push_testbed::experiments::fig6::{fig6_realworld, winners};

fn main() {
    let scale = scale_from_args();
    println!(
        "Fig. 6 — avg relative ΔSpeedIndex vs no push [%], ±99.5% CI half-width, {} runs",
        scale.runs
    );
    println!(
        "{:18} {:>8} | {:>8} {:>8} {:>8} {:>8} {:>8} | {:>9} {:>7}",
        "site", "base SI", "np-opt", "push all", "pa-opt", "push crit", "pc-opt", "pushed KB", "CI"
    );
    let rows = fig6_realworld(scale);
    for r in &rows {
        let c = |s: PaperStrategy| r.cell(s).si_pct;
        let pco = r.cell(PaperStrategy::PushCriticalOptimized);
        println!(
            "{:18} {:>8.0} | {:>8.1} {:>8.1} {:>8.1} {:>9.1} {:>8.1} | {:>9.0} {:>7.1}",
            r.site,
            r.cell(PaperStrategy::NoPush).metrics.speed_index.mean,
            c(PaperStrategy::NoPushOptimized),
            c(PaperStrategy::PushAll),
            c(PaperStrategy::PushAllOptimized),
            c(PaperStrategy::PushCritical),
            c(PaperStrategy::PushCriticalOptimized),
            pco.pushed_bytes / 1024.0,
            pco.metrics.speed_index.ci_half_width(0.995)
        );
    }
    let w: Vec<&str> = winners(&rows).iter().map(|r| r.site.as_str()).collect();
    println!("\nFig. 6a winners (≥20% SI improvement under push critical optimized): {w:?}");
    println!("paper: five winners, led by w1-wikipedia (−68.9%), w2-apple (−29.7%), w16-twitter (−19.7%).");
}
