//! `h2push-load` — loopback load client for a running `h2push-serve`.
//!
//! Drives the real `h2push-browser` engine over real TCP connections to
//! one address and reports the same `LoadResult` a simulated replay
//! produces: PLT, SpeedIndex, push counters. Exit codes make the server's
//! supervision decisions scriptable:
//!
//! * `0` — load finished (and pushed, if `--expect-push`).
//! * `1` — load did not finish within the timeout (no server-side close
//!   observed — a plain stall).
//! * `2` — usage / IO error (bad flags, unresolvable address; a refused
//!   connect reports the server as gone or draining).
//! * `3` — the server **shed** a connection: closed before a single
//!   response byte arrived (the accept-gate signature).
//! * `4` — the server closed a connection mid-load: a supervision
//!   timeout or abuse defense fired.
//!
//! ```text
//! h2push-load --addr HOST:PORT [--corpus top|random|push-users]
//!             [--seed N] [--no-push] [--timeout SECS] [--expect-push]
//! ```
//!
//! The `(corpus, seed)` pair must match the server's — client and server
//! regenerate the same deterministic page instead of transferring a
//! manifest.

use h2push_browser::BrowserConfig;
use h2push_testbed::load_page;
use h2push_webmodel::{generate_site, CorpusKind};
use std::net::ToSocketAddrs;
use std::sync::Arc;
use std::time::Duration;

fn die(msg: &str) -> ! {
    eprintln!("h2push-load: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut addr: Option<String> = None;
    let mut kind = "random".to_string();
    let mut seed = 7u64;
    let mut enable_push = true;
    let mut timeout = 30u64;
    let mut expect_push = false;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val =
            |flag: &str| args.next().unwrap_or_else(|| die(&format!("{flag} needs a value")));
        match flag.as_str() {
            "--addr" => addr = Some(val("--addr")),
            "--corpus" => kind = val("--corpus"),
            "--seed" => {
                seed = val("--seed").parse().unwrap_or_else(|_| die("--seed needs a number"))
            }
            "--no-push" => enable_push = false,
            "--timeout" => {
                timeout = val("--timeout").parse().unwrap_or_else(|_| die("--timeout: seconds"))
            }
            "--expect-push" => expect_push = true,
            other => die(&format!("unknown flag {other:?}")),
        }
    }

    let addr = addr.unwrap_or_else(|| die("--addr HOST:PORT is required"));
    let sockaddr = addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut a| a.next())
        .unwrap_or_else(|| die(&format!("cannot resolve {addr}")));

    let kind = match kind.as_str() {
        "top" => CorpusKind::Top,
        "random" => CorpusKind::Random,
        "push-users" => CorpusKind::PushUsers,
        other => die(&format!("unknown corpus {other:?} (top|random|push-users)")),
    };
    let page = Arc::new(generate_site(kind, seed));

    let cfg = BrowserConfig { enable_push, ..BrowserConfig::default() };
    let report = load_page(sockaddr, Arc::clone(&page), cfg, Duration::from_secs(timeout))
        .unwrap_or_else(|e| {
            if e.kind() == std::io::ErrorKind::ConnectionRefused {
                die(&format!("connect {addr}: refused (server gone or draining)"));
            }
            die(&format!("load {addr}: {e}"))
        });

    let load = &report.load;
    println!(
        "site {}: finished={} partial={} requests={} pushed={} ({} B, {} cancelled)",
        load.site,
        load.finished(),
        load.partial,
        load.requests,
        load.pushed_count,
        load.pushed_bytes,
        load.cancelled_pushes,
    );
    println!("wire: {} conns, {} B in, {} B out", report.conns, report.bytes_in, report.bytes_out);
    if load.finished() {
        println!("plt {:.1} ms, speed index {:.1} ms", load.plt(), load.speed_index());
    }

    if !load.finished() {
        // A distinct code and a one-line reason per supervision outcome,
        // so CI can assert *why* a load failed, not just that it did.
        if report.shed_conns > 0 {
            eprintln!(
                "h2push-load: server shed {} connection(s) (closed before any response byte)",
                report.shed_conns,
            );
            std::process::exit(3);
        }
        if report.closed_conns > 0 {
            eprintln!(
                "h2push-load: server closed {} connection(s) mid-load (timeout or abuse defense)",
                report.closed_conns,
            );
            std::process::exit(4);
        }
        eprintln!("h2push-load: load did not finish within {timeout}s");
        std::process::exit(1);
    }
    if expect_push && load.pushed_count == 0 {
        eprintln!("h2push-load: expected pushed resources, got none");
        std::process::exit(1);
    }
}
