//! `h2push-serve` — serve a webmodel corpus site over real TCP with any
//! push strategy, on the sans-IO live runtime.
//!
//! The serving half of live mode (the counterpart of `h2push-load`): the
//! same `ReplayServer` state machine the simulator replays answers real
//! sockets, so a strategy measured in the testbed can be exercised
//! against a real client byte-for-byte — under the live supervision
//! layer (accept gate, lifecycle deadlines, bounded output queues).
//!
//! ```text
//! h2push-serve [--addr 127.0.0.1:0] [--corpus top|random|push-users]
//!              [--seed N] [--strategy no-push|push-all|push-first:N]
//!              [--duration SECS]
//!              [--limits default|strict|permissive] [--max-conns N]
//!              [--preface-timeout-ms N] [--header-timeout-ms N]
//!              [--idle-timeout-ms N] [--write-stall-ms N]
//!              [--max-queue-bytes N] [--drain-ms N]
//!              [--stats-json PATH]
//! ```
//!
//! Prints `listening <addr>` once bound (scriptable: `--addr 127.0.0.1:0`
//! picks a free port) and serves until the duration elapses (default:
//! forever), then drains gracefully. On exit, prints the accumulated
//! server stats; `--stats-json` additionally writes them — including the
//! per-close-reason counters and every typed connection error — as JSON.

use h2push_h2proto::ConnLimits;
use h2push_strategies::{push_all, push_first_n, Strategy};
use h2push_testbed::{LiveLimits, LiveServer, LiveServerStats};
use h2push_webmodel::{generate_site, CorpusKind, Page};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

fn corpus(name: &str) -> CorpusKind {
    match name {
        "top" => CorpusKind::Top,
        "random" => CorpusKind::Random,
        "push-users" => CorpusKind::PushUsers,
        other => die(&format!("unknown corpus {other:?} (top|random|push-users)")),
    }
}

fn strategy(name: &str, page: &Page) -> Strategy {
    if let Some(n) = name.strip_prefix("push-first:") {
        let n: usize = n.parse().unwrap_or_else(|_| die("push-first:N needs a number"));
        return push_first_n(page, &[], n);
    }
    match name {
        "no-push" => Strategy::NoPush,
        "push-all" => push_all(page, &[]),
        other => die(&format!("unknown strategy {other:?} (no-push|push-all|push-first:N)")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("h2push-serve: {msg}");
    std::process::exit(2);
}

/// Hand-rolled JSON (the workspace carries no serde); every emitted field
/// is a number, a string literal, or a map of those.
fn stats_json(stats: &LiveServerStats) -> String {
    let mut errors: BTreeMap<&'static str, u64> = BTreeMap::new();
    for close in &stats.close_log {
        if let Some(e) = close.error {
            *errors.entry(e.reason()).or_insert(0) += 1;
        }
    }
    let mut reasons: BTreeMap<&'static str, u64> = BTreeMap::new();
    for close in &stats.close_log {
        *reasons.entry(close.reason.label()).or_insert(0) += 1;
    }
    let map_json = |m: &BTreeMap<&'static str, u64>| {
        let mut s = String::from("{");
        for (i, (k, v)) in m.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{k}\": {v}");
        }
        s.push('}');
        s
    };
    let c = &stats.closed;
    format!(
        "{{\n  \"accepted\": {},\n  \"shed\": {},\n  \"bytes_in\": {},\n  \"bytes_out\": {},\n  \
         \"requests\": {},\n  \"pushed_bytes\": {},\n  \"protocol_errors\": {},\n  \
         \"max_queued_bytes\": {},\n  \"closed\": {{\"clean\": {}, \"protocol_error\": {}, \
         \"timeout\": {}, \"shed\": {}, \"write_stall\": {}, \"io_error\": {}, \
         \"drain_killed\": {}}},\n  \"close_reasons\": {},\n  \"conn_errors\": {}\n}}\n",
        stats.accepted,
        stats.shed,
        stats.bytes_in,
        stats.bytes_out,
        stats.requests,
        stats.pushed_bytes,
        stats.protocol_errors,
        stats.max_queued_bytes,
        c.clean,
        c.protocol_error,
        c.timeout,
        c.shed,
        c.write_stall,
        c.io_error,
        c.drain_killed,
        map_json(&reasons),
        map_json(&errors),
    )
}

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut kind = "random".to_string();
    let mut seed = 7u64;
    let mut strat = "push-all".to_string();
    let mut duration: Option<u64> = None;
    let mut limits = LiveLimits::new();
    let mut stats_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val =
            |flag: &str| args.next().unwrap_or_else(|| die(&format!("{flag} needs a value")));
        let mut num = |flag: &str| -> u64 {
            val(flag).parse().unwrap_or_else(|_| die(&format!("{flag} needs a number")))
        };
        match flag.as_str() {
            "--addr" => addr = val("--addr"),
            "--corpus" => kind = val("--corpus"),
            "--seed" => seed = num("--seed"),
            "--strategy" => strat = val("--strategy"),
            "--duration" => duration = Some(num("--duration")),
            "--limits" => {
                limits.conn = match val("--limits").as_str() {
                    "default" => ConnLimits::new(),
                    "strict" => ConnLimits::strict(),
                    "permissive" => ConnLimits::permissive(),
                    other => die(&format!("unknown limits {other:?} (default|strict|permissive)")),
                }
            }
            "--max-conns" => limits.max_conns = num("--max-conns") as usize,
            "--preface-timeout-ms" => {
                limits.preface_timeout = Duration::from_millis(num("--preface-timeout-ms"))
            }
            "--header-timeout-ms" => {
                limits.header_timeout = Duration::from_millis(num("--header-timeout-ms"))
            }
            "--idle-timeout-ms" => {
                limits.idle_timeout = Duration::from_millis(num("--idle-timeout-ms"))
            }
            "--write-stall-ms" => {
                limits.write_stall_timeout = Duration::from_millis(num("--write-stall-ms"))
            }
            "--max-queue-bytes" => limits.max_queued_bytes = num("--max-queue-bytes") as usize,
            "--drain-ms" => limits.drain_deadline = Duration::from_millis(num("--drain-ms")),
            "--stats-json" => stats_path = Some(val("--stats-json")),
            other => die(&format!("unknown flag {other:?}")),
        }
    }

    let page = Arc::new(generate_site(corpus(&kind), seed));
    let strategy = strategy(&strat, &page);
    let pushing = strategy.pushed_resources().len();

    let mut server = LiveServer::bind(addr.as_str(), Arc::clone(&page), strategy)
        .unwrap_or_else(|e| die(&format!("bind {addr}: {e}")));
    server.set_limits(limits);
    if let Some(secs) = duration {
        server.set_deadline(Duration::from_secs(secs));
    }
    let bound = server.local_addr().expect("local addr");
    println!("listening {bound}");
    println!(
        "site {} ({} resources, {} origins), strategy {strat} ({pushing} pushed)",
        page.name,
        page.resources.len(),
        page.server_group_count(),
    );

    let stats = server.run().unwrap_or_else(|e| die(&format!("serve loop: {e}")));
    println!(
        "served: {} conns ({} shed), {} requests, {} B in, {} B out, {} B pushed, {} protocol errors",
        stats.accepted,
        stats.shed,
        stats.requests,
        stats.bytes_in,
        stats.bytes_out,
        stats.pushed_bytes,
        stats.protocol_errors,
    );
    let c = &stats.closed;
    println!(
        "closed: {} clean, {} protocol, {} timeout, {} shed, {} write-stall, {} io, {} drain-killed",
        c.clean, c.protocol_error, c.timeout, c.shed, c.write_stall, c.io_error, c.drain_killed,
    );
    if let Some(path) = stats_path {
        std::fs::write(&path, stats_json(&stats))
            .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        println!("stats written to {path}");
    }
}
