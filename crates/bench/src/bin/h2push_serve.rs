//! `h2push-serve` — serve a webmodel corpus site over real TCP with any
//! push strategy, on the sans-IO live runtime.
//!
//! The serving half of live mode (the counterpart of `h2push-load`): the
//! same `ReplayServer` state machine the simulator replays answers real
//! sockets, so a strategy measured in the testbed can be exercised
//! against a real client byte-for-byte.
//!
//! ```text
//! h2push-serve [--addr 127.0.0.1:0] [--corpus top|random|push-users]
//!              [--seed N] [--strategy no-push|push-all|push-first:N]
//!              [--duration SECS]
//! ```
//!
//! Prints `listening <addr>` once bound (scriptable: `--addr 127.0.0.1:0`
//! picks a free port) and serves until the duration elapses (default:
//! forever). On exit, prints the accumulated server stats.

use h2push_strategies::{push_all, push_first_n, Strategy};
use h2push_testbed::LiveServer;
use h2push_webmodel::{generate_site, CorpusKind, Page};
use std::sync::Arc;
use std::time::Duration;

fn corpus(name: &str) -> CorpusKind {
    match name {
        "top" => CorpusKind::Top,
        "random" => CorpusKind::Random,
        "push-users" => CorpusKind::PushUsers,
        other => die(&format!("unknown corpus {other:?} (top|random|push-users)")),
    }
}

fn strategy(name: &str, page: &Page) -> Strategy {
    if let Some(n) = name.strip_prefix("push-first:") {
        let n: usize = n.parse().unwrap_or_else(|_| die("push-first:N needs a number"));
        return push_first_n(page, &[], n);
    }
    match name {
        "no-push" => Strategy::NoPush,
        "push-all" => push_all(page, &[]),
        other => die(&format!("unknown strategy {other:?} (no-push|push-all|push-first:N)")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("h2push-serve: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut kind = "random".to_string();
    let mut seed = 7u64;
    let mut strat = "push-all".to_string();
    let mut duration: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val =
            |flag: &str| args.next().unwrap_or_else(|| die(&format!("{flag} needs a value")));
        match flag.as_str() {
            "--addr" => addr = val("--addr"),
            "--corpus" => kind = val("--corpus"),
            "--seed" => {
                seed = val("--seed").parse().unwrap_or_else(|_| die("--seed needs a number"))
            }
            "--strategy" => strat = val("--strategy"),
            "--duration" => {
                duration =
                    Some(val("--duration").parse().unwrap_or_else(|_| die("--duration: seconds")))
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }

    let page = Arc::new(generate_site(corpus(&kind), seed));
    let strategy = strategy(&strat, &page);
    let pushing = strategy.pushed_resources().len();

    let mut server = LiveServer::bind(addr.as_str(), Arc::clone(&page), strategy)
        .unwrap_or_else(|e| die(&format!("bind {addr}: {e}")));
    if let Some(secs) = duration {
        server.set_deadline(Duration::from_secs(secs));
    }
    let bound = server.local_addr().expect("local addr");
    println!("listening {bound}");
    println!(
        "site {} ({} resources, {} origins), strategy {strat} ({pushing} pushed)",
        page.name,
        page.resources.len(),
        page.server_group_count(),
    );

    let stats = server.run().unwrap_or_else(|e| die(&format!("serve loop: {e}")));
    println!(
        "served: {} conns, {} requests, {} B in, {} B out, {} B pushed, {} protocol errors",
        stats.accepted,
        stats.requests,
        stats.bytes_in,
        stats.bytes_out,
        stats.pushed_bytes,
        stats.protocol_errors,
    );
}
