//! Chaos sweep: push strategies under bursty loss.
//!
//! The paper evaluates push over a clean emulated DSL link; related work
//! (the lossy-cellular domain-sharding line) argues that loss is where
//! HTTP/2's single connection — and therefore push — is most exposed.
//! This sweep injects Gilbert–Elliott burst loss at increasing rates and
//! reruns the strategy matrix on one realworld page, reporting median PLT
//! alongside the observed loss/recovery counters. Fully deterministic:
//! same `--seed`, same table.

use h2push_bench::scale_from_args;
use h2push_strategies::{critical_set, interleave_offset, push_all, Strategy};
use h2push_testbed::{run_fault_matrix, FaultProfile, ReplayInputs};
use h2push_webmodel::realworld_site;

fn main() {
    let scale = scale_from_args();
    let page = realworld_site(1); // wikipedia: large document, late CSS
    let strategies = vec![
        Strategy::NoPush,
        push_all(&page, &[]),
        Strategy::Interleaved {
            offset: interleave_offset(&page),
            critical: critical_set(&page),
            after: Vec::new(),
        },
    ];
    let profiles: Vec<FaultProfile> = std::iter::once(FaultProfile::none())
        .chain([0.005, 0.01, 0.02, 0.05].into_iter().map(FaultProfile::gilbert_elliott))
        .collect();
    let inputs = ReplayInputs::from(page);

    println!(
        "Gilbert–Elliott loss sweep on {} ({} runs/cell, seed {})",
        inputs.page.name, scale.runs, scale.seed
    );
    println!(
        "{:>14} {:>12} | {:>10} {:>9} {:>9} {:>8} {:>8}",
        "profile", "strategy", "PLT [ms]", "loss", "rexmit", "retries", "partial"
    );
    let cells = run_fault_matrix(&inputs, &strategies, &profiles, scale.runs, scale.seed);
    let mut current = String::new();
    for cell in &cells {
        if cell.profile != current {
            current.clone_from(&cell.profile);
            println!("{:-<78}", "");
        }
        println!(
            "{:>14} {:>12} | {:>10.0} {:>8.2}% {:>8.2}% {:>8.2} {:>7.0}%",
            cell.profile,
            cell.strategy,
            cell.median_plt,
            cell.recovery.loss_rate() * 100.0,
            cell.recovery.retransmit_rate() * 100.0,
            cell.recovery.mean_retries(),
            cell.recovery.partial_share() * 100.0,
        );
    }
}
