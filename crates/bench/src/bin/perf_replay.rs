//! Replay hot-path baseline: serial-cold vs serial-shared vs prepared vs
//! parallel over a fixed seeded corpus, plus a worker-scaling sweep.
//!
//! All paths must produce identical PLT / SpeedIndex / traces — this
//! binary asserts that — so the only difference is wall time. Each path is
//! measured as best-of-N after a warmup pass (single-shot wall clock on a
//! small grid is dominated by scheduler noise; the minimum over passes is
//! the stable statistic). Sharing inputs must never lose to re-recording
//! them, and the binary fails loudly if it does.
//!
//! The scaling sweep re-runs the parallel path with the pool pinned to
//! 1, 2 and 4 total worker threads ([`h2push_testbed::set_worker_threads`])
//! and records runs/s for each width; outcomes stay byte-identical at any
//! width. On a single-core host the parallel-beats-serial expectation is
//! meaningless, so the artifact marks it `"skipped_single_core": true`
//! instead of asserting it, and the scaling sweep itself is skipped and
//! recorded as `"scaling": {"skipped_single_core": true}`.
//!
//! Flags beyond the common scale arguments:
//! - `--threads N` pins the pool for the main measurement.
//! - `--gate` compares `serial_prepared.runs_per_sec` against the
//!   committed `BENCH_replay.json` and fails on a >10 % regression
//!   instead of rewriting the artifact (the CI perf gate).
//!
//! Results go to `BENCH_replay.json` at the repo root:
//! `{wall_ms, runs_per_sec, speedup_vs_serial}` per path plus a `meta`
//! block (cores, threads, rustc, git revision) and the `scaling` table.

use h2push_bench::{bench_args, BenchMeta};
use h2push_strategies::Strategy;
use h2push_testbed::{
    replay, run_config, set_worker_threads, Mode, ReplayInputs, ReplayOutcome, RunPlan,
};
use h2push_webmodel::{generate_site, CorpusKind, Page};
use std::time::Instant;

/// Measured passes per path (after one untimed warmup).
const PASSES: usize = 5;

/// Measured passes per scaling width (the sweep re-runs one path three
/// times; a smaller N keeps its cost proportionate).
const SCALING_PASSES: usize = 3;

/// Sharing may never be slower than re-recording; allow this much noise.
/// Shared single-core containers show ±20 % wall-clock swings between
/// whole invocations even on a best-of-5, so the gate is deliberately
/// loose — it exists to catch structural regressions (sharing or
/// preparation costing real work per rep), not scheduler jitter.
const SHARED_TOLERANCE: f64 = 1.25;

/// `--gate`: fail when `serial_prepared` drops more than this fraction
/// below the committed baseline.
const GATE_TOLERANCE: f64 = 0.10;

/// Fresh measurement attempts a below-floor gate reading earns before it
/// counts as a real regression (noise on shared runners routinely exceeds
/// the gate tolerance; a real slowdown fails every attempt).
const GATE_RETRIES: usize = 2;

/// Multicore scaling floor: with 2 workers the parallel path must deliver
/// at least this speedup over 1 worker (only asserted when the host
/// actually has more than one core).
const SCALING_FLOOR_2W: f64 = 1.7;

struct PathResult {
    label: &'static str,
    wall_ms: f64,
    runs_per_sec: f64,
    speedup_vs_serial: f64,
}

fn outcomes_equal(a: &[Vec<ReplayOutcome>], b: &[Vec<ReplayOutcome>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.len() == y.len()
                && x.iter().zip(y).all(|(p, q)| {
                    p.load.plt() == q.load.plt()
                        && p.load.speed_index() == q.load.speed_index()
                        && p.trace.order == q.trace.order
                        && p.server_pushed_bytes == q.server_pushed_bytes
                })
        })
}

type Grid = Vec<Vec<ReplayOutcome>>;
type Path<'a> = (&'static str, Box<dyn FnMut() -> Grid + 'a>);

/// One warmup call per path, then each path's best wall time over
/// [`PASSES`] rounds. Rounds are interleaved (cold, shared, prepared,
/// parallel, repeat) so machine-load drift during the measurement hits
/// every path equally instead of penalising whichever ran last.
fn measure(paths: &mut [Path<'_>]) -> (Vec<f64>, Vec<Grid>) {
    let mut outs: Vec<Grid> = paths.iter_mut().map(|(_, f)| f()).collect();
    let mut best = vec![f64::INFINITY; paths.len()];
    for _ in 0..PASSES {
        for (i, (_, f)) in paths.iter_mut().enumerate() {
            let t = Instant::now();
            outs[i] = f();
            best[i] = best[i].min(t.elapsed().as_secs_f64() * 1e3);
        }
    }
    (best, outs)
}

/// Pull `"runs_per_sec": X` out of `path_label`'s object in a committed
/// `BENCH_replay.json` (our own single-line-per-path format; no JSON
/// parser needed or wanted here).
fn baseline_runs_per_sec(json: &str, path_label: &str) -> Option<f64> {
    let line = json.lines().find(|l| l.trim_start().starts_with(&format!("\"{path_label}\"")))?;
    let tail = line.split("\"runs_per_sec\":").nth(1)?;
    let num: String = tail
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// Fail `--gate` with a one-line actionable error instead of a panic
/// backtrace when the committed baseline is missing or malformed.
fn gate_unusable(msg: &str) -> ! {
    eprintln!(
        "perf gate: {msg}\nperf gate: regenerate it with \
         `cargo run --release -p h2push-bench --bin perf_replay` (no --gate) \
         and commit BENCH_replay.json"
    );
    std::process::exit(1);
}

fn main() {
    let args = bench_args();
    let scale = args.scale;
    set_worker_threads(args.threads);
    let sites = scale.sites.min(12);
    let runs = scale.runs;
    let pages: Vec<Page> =
        (0..sites).map(|i| generate_site(CorpusKind::Random, scale.seed ^ i as u64)).collect();
    let strategy = std::sync::Arc::new(Strategy::NoPush);
    let total_runs = sites * runs;
    let meta = BenchMeta::capture();
    println!(
        "perf_replay: {sites} sites x {runs} runs (seed {}, best of {PASSES}, {} threads)",
        scale.seed, meta.threads
    );

    let inputs: Vec<ReplayInputs> = pages.iter().map(ReplayInputs::from).collect();
    let plans: Vec<RunPlan> = inputs
        .iter()
        .map(|i| {
            RunPlan::new(i)
                .strategy(strategy.clone())
                .mode(Mode::Testbed)
                .reps(runs)
                .seed(scale.seed)
        })
        .collect();
    let prepared_plans: Vec<RunPlan> = plans.iter().map(|p| p.clone().prepared()).collect();

    let mut paths: [Path<'_>; 4] = [
        // Serial-cold: the pre-overhaul shape — every run re-clones the
        // page and re-records the response DB through the public replay().
        (
            "serial_cold",
            Box::new(|| {
                pages
                    .iter()
                    .map(|p| {
                        (0..runs)
                            .filter_map(|r| {
                                let cfg = run_config(
                                    &strategy,
                                    Mode::Testbed,
                                    scale.seed.wrapping_add(r as u64),
                                    p,
                                );
                                replay(p, &cfg).ok()
                            })
                            .collect()
                    })
                    .collect()
            }),
        ),
        // Serial-shared: inputs built once per site, same run loop.
        (
            "serial_shared",
            Box::new(|| plans.iter().map(|p| p.clone().serial().run().into_outcomes()).collect()),
        ),
        // Serial-prepared: page-level precomputation (PreparedPage) shared
        // across every rep of a site.
        (
            "serial_prepared",
            Box::new(|| {
                prepared_plans.iter().map(|p| p.clone().serial().run().into_outcomes()).collect()
            }),
        ),
        // Parallel-prepared: the production path (pool-scheduled
        // repetitions over the shared artifact).
        (
            "parallel_prepared",
            Box::new(|| prepared_plans.iter().map(|p| p.run().into_outcomes()).collect()),
        ),
    ];
    let (best, outs) = measure(&mut paths);
    let (cold_ms, serial_ms, prepared_ms, parallel_ms) = (best[0], best[1], best[2], best[3]);
    let (cold, serial, prepared, parallel) = (&outs[0], &outs[1], &outs[2], &outs[3]);

    assert!(outcomes_equal(cold, serial), "shared inputs changed replay outputs");
    assert!(outcomes_equal(serial, prepared), "PreparedPage changed replay outputs");
    assert!(outcomes_equal(serial, parallel), "parallel RunPlan changed replay outputs");
    // Sharing must never be slower than re-recording per rep. (Historic
    // regression: a single-shot measurement once showed serial_shared at
    // 0.86x serial_cold — scheduler noise, which best-of-N removes; a real
    // regression now fails the bench.)
    assert!(
        serial_ms <= cold_ms * SHARED_TOLERANCE,
        "serial_shared ({serial_ms:.1} ms) slower than serial_cold ({cold_ms:.1} ms): \
         input sharing regressed"
    );
    assert!(
        prepared_ms <= serial_ms * SHARED_TOLERANCE,
        "serial_prepared ({prepared_ms:.1} ms) slower than serial_shared ({serial_ms:.1} ms): \
         page-level precomputation regressed"
    );
    // A pool that costs more than it parallelizes is a bug — but only on
    // hosts where it *can* parallelize. On one core the parallel path
    // degrades (correctly) to serial plus pool bookkeeping, so the
    // expectation is recorded as skipped rather than asserted.
    let single_core = meta.cores <= 1;
    if !single_core {
        assert!(
            parallel_ms <= prepared_ms * SHARED_TOLERANCE,
            "parallel_prepared ({parallel_ms:.1} ms) slower than serial_prepared \
             ({prepared_ms:.1} ms) on a {}-core host: pool scheduling regressed",
            meta.cores
        );
    }

    // Worker-scaling sweep: the same prepared parallel path pinned to 1,
    // 2 and 4 total threads. Byte-equality must hold at every width; the
    // speedup is only asserted where the host can actually scale. On a
    // single-core host every width degenerates to the same serial schedule,
    // so the whole sweep is skipped and recorded as such rather than
    // burning three widths' worth of passes measuring pool bookkeeping.
    let mut scaling: Vec<(usize, f64, f64)> = Vec::new(); // (threads, wall_ms, runs/s)
    if !single_core {
        for &threads in &[1usize, 2, 4] {
            set_worker_threads(Some(threads));
            let run_path =
                || -> Grid { prepared_plans.iter().map(|p| p.run().into_outcomes()).collect() };
            let first = run_path(); // warmup (and equality probe)
            assert!(
                outcomes_equal(serial, &first),
                "parallel outcomes diverged from serial at {threads} worker threads"
            );
            let mut best = f64::INFINITY;
            for _ in 0..SCALING_PASSES {
                let t = Instant::now();
                let out = run_path();
                best = best.min(t.elapsed().as_secs_f64() * 1e3);
                assert!(
                    outcomes_equal(serial, &out),
                    "parallel outcomes diverged from serial at {threads} worker threads"
                );
            }
            scaling.push((threads, best, total_runs as f64 / (best / 1e3)));
        }
        set_worker_threads(args.threads);
        let one_worker_ms = scaling[0].1;
        let two_worker_ms = scaling[1].1;
        let speedup = one_worker_ms / two_worker_ms;
        assert!(
            speedup >= SCALING_FLOOR_2W,
            "2-worker speedup {speedup:.2}x below the {SCALING_FLOOR_2W}x floor \
             on a {}-core host",
            meta.cores
        );
    }

    let results = [
        ("serial_cold", cold_ms),
        ("serial_shared", serial_ms),
        ("serial_prepared", prepared_ms),
        ("parallel_prepared", parallel_ms),
    ]
    .map(|(label, wall_ms)| PathResult {
        label,
        wall_ms,
        runs_per_sec: total_runs as f64 / (wall_ms / 1e3),
        speedup_vs_serial: cold_ms / wall_ms,
    });

    let mut json = String::from("{\n");
    json.push_str(&format!("  {},\n", meta.to_json()));
    for r in results.iter() {
        let skipped = if r.label == "parallel_prepared" && single_core {
            ", \"skipped_single_core\": true"
        } else {
            ""
        };
        json.push_str(&format!(
            "  \"{}\": {{\"wall_ms\": {:.1}, \"runs_per_sec\": {:.2}, \
             \"speedup_vs_serial\": {:.2}{}}},\n",
            r.label, r.wall_ms, r.runs_per_sec, r.speedup_vs_serial, skipped,
        ));
        println!(
            "{:18} {:9.1} ms  {:7.2} runs/s  {:5.2}x vs serial-cold{}",
            r.label,
            r.wall_ms,
            r.runs_per_sec,
            r.speedup_vs_serial,
            if skipped.is_empty() { "" } else { "  (single core: no parallel expectation)" },
        );
    }
    json.push_str("  \"scaling\": {");
    if single_core {
        json.push_str("\"skipped_single_core\": true");
        println!("scaling sweep skipped (single core: widths cannot diverge)");
    } else {
        let one_worker_ms = scaling[0].1;
        for (i, (threads, wall_ms, rps)) in scaling.iter().enumerate() {
            json.push_str(&format!(
                "\"threads_{threads}\": {{\"wall_ms\": {wall_ms:.1}, \"runs_per_sec\": {rps:.2}, \
                 \"speedup_vs_1_thread\": {:.2}}}{}",
                one_worker_ms / wall_ms,
                if i + 1 < scaling.len() { ", " } else { "" },
            ));
            println!(
                "scaling {threads} thread(s): {wall_ms:9.1} ms  {rps:7.2} runs/s  \
                 {:5.2}x vs 1 thread",
                one_worker_ms / wall_ms
            );
        }
    }
    json.push_str("}\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replay.json");
    if args.gate {
        // CI perf gate: compare against the committed artifact, never
        // rewrite it. Absolute runs/s differ across machines, so the gate
        // is only meaningful against a baseline from comparable hardware;
        // the committed baseline comes from the slowest container in use.
        let committed = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => gate_unusable(&format!("cannot read committed baseline {path}: {e}")),
        };
        let base = match baseline_runs_per_sec(&committed, "serial_prepared") {
            Some(b) => b,
            None => gate_unusable(&format!(
                "committed baseline {path} is malformed: no serial_prepared.runs_per_sec"
            )),
        };
        let mut now = results[2].runs_per_sec;
        let floor = base * (1.0 - GATE_TOLERANCE);
        // Shared CI runners are noisy well beyond the gate tolerance, so a
        // reading below the floor earns fresh best-of-PASSES re-measurements
        // before it counts as a regression: a genuinely slow build fails
        // every attempt, a scheduler hiccup doesn't.
        for attempt in 0..GATE_RETRIES {
            if now >= floor {
                break;
            }
            println!(
                "perf gate: {now:.2} runs/s below floor {floor:.2}, \
                 re-measuring (attempt {}/{GATE_RETRIES})",
                attempt + 1
            );
            let mut best = f64::INFINITY;
            for _ in 0..PASSES {
                let t = Instant::now();
                let out: Grid = prepared_plans
                    .iter()
                    .map(|p| p.clone().serial().run().into_outcomes())
                    .collect();
                best = best.min(t.elapsed().as_secs_f64() * 1e3);
                assert!(outcomes_equal(serial, &out), "re-measured outcomes diverged");
            }
            now = now.max(total_runs as f64 / (best / 1e3));
        }
        println!(
            "perf gate: serial_prepared {now:.2} runs/s vs committed {base:.2} \
             (floor {floor:.2})"
        );
        assert!(
            now >= floor,
            "perf gate failed: serial_prepared {now:.2} runs/s is more than \
             {:.0}% below the committed baseline {base:.2} across {GATE_RETRIES} \
             re-measurements",
            GATE_TOLERANCE * 100.0
        );
        println!("perf gate passed");
    } else {
        std::fs::write(path, json).expect("write BENCH_replay.json");
        println!("wrote {path}");
    }
}
