//! Replay hot-path baseline: serial-cold vs serial-shared vs
//! parallel-shared over a fixed seeded corpus.
//!
//! The three paths must produce identical PLT / SpeedIndex / traces — this
//! binary asserts that — so the only difference is wall time. Results go to
//! `BENCH_replay.json` at the repo root:
//! `{wall_ms, runs_per_sec, speedup_vs_serial}` per path.

use h2push_bench::scale_from_args;
use h2push_strategies::Strategy;
use h2push_testbed::{replay, run_config, Mode, ReplayInputs, ReplayOutcome, RunPlan};
use h2push_webmodel::{generate_site, CorpusKind, Page};
use std::time::Instant;

struct PathResult {
    label: &'static str,
    wall_ms: f64,
    runs_per_sec: f64,
    speedup_vs_serial: f64,
}

fn outcomes_equal(a: &[Vec<ReplayOutcome>], b: &[Vec<ReplayOutcome>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.len() == y.len()
                && x.iter().zip(y).all(|(p, q)| {
                    p.load.plt() == q.load.plt()
                        && p.load.speed_index() == q.load.speed_index()
                        && p.trace.order == q.trace.order
                        && p.server_pushed_bytes == q.server_pushed_bytes
                })
        })
}

fn main() {
    let scale = scale_from_args();
    let sites = scale.sites.min(12);
    let runs = scale.runs;
    let pages: Vec<Page> =
        (0..sites).map(|i| generate_site(CorpusKind::Random, scale.seed ^ i as u64)).collect();
    let strategy = Strategy::NoPush;
    let total_runs = sites * runs;
    println!("perf_replay: {sites} sites x {runs} runs (seed {})", scale.seed);

    // Serial-cold: the pre-overhaul shape — every run re-clones the page
    // and re-records the response DB through the public replay().
    let t = Instant::now();
    let cold: Vec<Vec<ReplayOutcome>> = pages
        .iter()
        .map(|p| {
            (0..runs)
                .filter_map(|r| {
                    let cfg =
                        run_config(&strategy, Mode::Testbed, scale.seed.wrapping_add(r as u64), p);
                    replay(p, &cfg).ok()
                })
                .collect()
        })
        .collect();
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;

    // Serial-shared: inputs built once per site, same run loop.
    let inputs: Vec<ReplayInputs> = pages.iter().map(ReplayInputs::from).collect();
    let plans: Vec<RunPlan> = inputs
        .iter()
        .map(|i| {
            RunPlan::new(i)
                .strategy(strategy.clone())
                .mode(Mode::Testbed)
                .reps(runs)
                .seed(scale.seed)
        })
        .collect();
    let t = Instant::now();
    let serial: Vec<Vec<ReplayOutcome>> =
        plans.iter().map(|p| p.clone().serial().run().into_outcomes()).collect();
    let serial_ms = t.elapsed().as_secs_f64() * 1e3;

    // Parallel-shared: the production path (pool-scheduled repetitions).
    let t = Instant::now();
    let parallel: Vec<Vec<ReplayOutcome>> = plans.iter().map(|p| p.run().into_outcomes()).collect();
    let parallel_ms = t.elapsed().as_secs_f64() * 1e3;

    assert!(outcomes_equal(&cold, &serial), "shared inputs changed replay outputs");
    assert!(outcomes_equal(&serial, &parallel), "parallel RunPlan changed replay outputs");

    let results =
        [("serial_cold", cold_ms), ("serial_shared", serial_ms), ("parallel_shared", parallel_ms)]
            .map(|(label, wall_ms)| PathResult {
                label,
                wall_ms,
                runs_per_sec: total_runs as f64 / (wall_ms / 1e3),
                speedup_vs_serial: cold_ms / wall_ms,
            });

    let mut json = String::from("{\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "  \"{}\": {{\"wall_ms\": {:.1}, \"runs_per_sec\": {:.2}, \"speedup_vs_serial\": {:.2}}}{}\n",
            r.label,
            r.wall_ms,
            r.runs_per_sec,
            r.speedup_vs_serial,
            if i + 1 < results.len() { "," } else { "" },
        ));
        println!(
            "{:16} {:9.1} ms  {:7.2} runs/s  {:5.2}x vs serial-cold",
            r.label, r.wall_ms, r.runs_per_sec, r.speedup_vs_serial
        );
    }
    json.push('}');
    json.push('\n');
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replay.json");
    std::fs::write(path, json).expect("write BENCH_replay.json");
    println!("wrote {path}");
}
