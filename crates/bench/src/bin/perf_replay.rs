//! Replay hot-path baseline: serial-cold vs serial-shared vs prepared vs
//! parallel over a fixed seeded corpus.
//!
//! All paths must produce identical PLT / SpeedIndex / traces — this
//! binary asserts that — so the only difference is wall time. Each path is
//! measured as best-of-N after a warmup pass (single-shot wall clock on a
//! small grid is dominated by scheduler noise; the minimum over passes is
//! the stable statistic). Sharing inputs must never lose to re-recording
//! them, and the binary fails loudly if it does.
//!
//! Results go to `BENCH_replay.json` at the repo root:
//! `{wall_ms, runs_per_sec, speedup_vs_serial}` per path plus a `meta`
//! block (cores, rustc, git revision).

use h2push_bench::{scale_from_args, BenchMeta};
use h2push_strategies::Strategy;
use h2push_testbed::{replay, run_config, Mode, ReplayInputs, ReplayOutcome, RunPlan};
use h2push_webmodel::{generate_site, CorpusKind, Page};
use std::time::Instant;

/// Measured passes per path (after one untimed warmup).
const PASSES: usize = 5;

/// Sharing may never be slower than re-recording; allow this much noise.
/// Shared single-core containers show ±20 % wall-clock swings between
/// whole invocations even on a best-of-5, so the gate is deliberately
/// loose — it exists to catch structural regressions (sharing or
/// preparation costing real work per rep), not scheduler jitter.
const SHARED_TOLERANCE: f64 = 1.25;

struct PathResult {
    label: &'static str,
    wall_ms: f64,
    runs_per_sec: f64,
    speedup_vs_serial: f64,
}

fn outcomes_equal(a: &[Vec<ReplayOutcome>], b: &[Vec<ReplayOutcome>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.len() == y.len()
                && x.iter().zip(y).all(|(p, q)| {
                    p.load.plt() == q.load.plt()
                        && p.load.speed_index() == q.load.speed_index()
                        && p.trace.order == q.trace.order
                        && p.server_pushed_bytes == q.server_pushed_bytes
                })
        })
}

type Grid = Vec<Vec<ReplayOutcome>>;
type Path<'a> = (&'static str, Box<dyn FnMut() -> Grid + 'a>);

/// One warmup call per path, then each path's best wall time over
/// [`PASSES`] rounds. Rounds are interleaved (cold, shared, prepared,
/// parallel, repeat) so machine-load drift during the measurement hits
/// every path equally instead of penalising whichever ran last.
fn measure(paths: &mut [Path<'_>]) -> (Vec<f64>, Vec<Grid>) {
    let mut outs: Vec<Grid> = paths.iter_mut().map(|(_, f)| f()).collect();
    let mut best = vec![f64::INFINITY; paths.len()];
    for _ in 0..PASSES {
        for (i, (_, f)) in paths.iter_mut().enumerate() {
            let t = Instant::now();
            outs[i] = f();
            best[i] = best[i].min(t.elapsed().as_secs_f64() * 1e3);
        }
    }
    (best, outs)
}

fn main() {
    let scale = scale_from_args();
    let sites = scale.sites.min(12);
    let runs = scale.runs;
    let pages: Vec<Page> =
        (0..sites).map(|i| generate_site(CorpusKind::Random, scale.seed ^ i as u64)).collect();
    let strategy = Strategy::NoPush;
    let total_runs = sites * runs;
    println!("perf_replay: {sites} sites x {runs} runs (seed {}, best of {PASSES})", scale.seed);

    let inputs: Vec<ReplayInputs> = pages.iter().map(ReplayInputs::from).collect();
    let plans: Vec<RunPlan> = inputs
        .iter()
        .map(|i| {
            RunPlan::new(i)
                .strategy(strategy.clone())
                .mode(Mode::Testbed)
                .reps(runs)
                .seed(scale.seed)
        })
        .collect();
    let prepared_plans: Vec<RunPlan> = plans.iter().map(|p| p.clone().prepared()).collect();

    let mut paths: [Path<'_>; 4] = [
        // Serial-cold: the pre-overhaul shape — every run re-clones the
        // page and re-records the response DB through the public replay().
        (
            "serial_cold",
            Box::new(|| {
                pages
                    .iter()
                    .map(|p| {
                        (0..runs)
                            .filter_map(|r| {
                                let cfg = run_config(
                                    &strategy,
                                    Mode::Testbed,
                                    scale.seed.wrapping_add(r as u64),
                                    p,
                                );
                                replay(p, &cfg).ok()
                            })
                            .collect()
                    })
                    .collect()
            }),
        ),
        // Serial-shared: inputs built once per site, same run loop.
        (
            "serial_shared",
            Box::new(|| plans.iter().map(|p| p.clone().serial().run().into_outcomes()).collect()),
        ),
        // Serial-prepared: page-level precomputation (PreparedPage) shared
        // across every rep of a site.
        (
            "serial_prepared",
            Box::new(|| {
                prepared_plans.iter().map(|p| p.clone().serial().run().into_outcomes()).collect()
            }),
        ),
        // Parallel-prepared: the production path (pool-scheduled
        // repetitions over the shared artifact).
        (
            "parallel_prepared",
            Box::new(|| prepared_plans.iter().map(|p| p.run().into_outcomes()).collect()),
        ),
    ];
    let (best, outs) = measure(&mut paths);
    let (cold_ms, serial_ms, prepared_ms, parallel_ms) = (best[0], best[1], best[2], best[3]);
    let (cold, serial, prepared, parallel) = (&outs[0], &outs[1], &outs[2], &outs[3]);

    assert!(outcomes_equal(cold, serial), "shared inputs changed replay outputs");
    assert!(outcomes_equal(serial, prepared), "PreparedPage changed replay outputs");
    assert!(outcomes_equal(serial, parallel), "parallel RunPlan changed replay outputs");
    // Sharing must never be slower than re-recording per rep. (Historic
    // regression: a single-shot measurement once showed serial_shared at
    // 0.86x serial_cold — scheduler noise, which best-of-N removes; a real
    // regression now fails the bench.)
    assert!(
        serial_ms <= cold_ms * SHARED_TOLERANCE,
        "serial_shared ({serial_ms:.1} ms) slower than serial_cold ({cold_ms:.1} ms): \
         input sharing regressed"
    );
    assert!(
        prepared_ms <= serial_ms * SHARED_TOLERANCE,
        "serial_prepared ({prepared_ms:.1} ms) slower than serial_shared ({serial_ms:.1} ms): \
         page-level precomputation regressed"
    );

    let results = [
        ("serial_cold", cold_ms),
        ("serial_shared", serial_ms),
        ("serial_prepared", prepared_ms),
        ("parallel_prepared", parallel_ms),
    ]
    .map(|(label, wall_ms)| PathResult {
        label,
        wall_ms,
        runs_per_sec: total_runs as f64 / (wall_ms / 1e3),
        speedup_vs_serial: cold_ms / wall_ms,
    });

    let mut json = String::from("{\n");
    json.push_str(&format!("  {},\n", BenchMeta::capture().to_json()));
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "  \"{}\": {{\"wall_ms\": {:.1}, \"runs_per_sec\": {:.2}, \"speedup_vs_serial\": {:.2}}}{}\n",
            r.label,
            r.wall_ms,
            r.runs_per_sec,
            r.speedup_vs_serial,
            if i + 1 < results.len() { "," } else { "" },
        ));
        println!(
            "{:18} {:9.1} ms  {:7.2} runs/s  {:5.2}x vs serial-cold",
            r.label, r.wall_ms, r.runs_per_sec, r.speedup_vs_serial
        );
    }
    json.push('}');
    json.push('\n');
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replay.json");
    std::fs::write(path, json).expect("write BENCH_replay.json");
    println!("wrote {path}");
}
