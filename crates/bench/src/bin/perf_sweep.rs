//! Grid-level sweep benchmark: strategies × sites × reps through one
//! [`SweepPlan`], versus the same grid as independent [`RunPlan`]s.
//!
//! The sweep builds each site's `PreparedPage` exactly once and schedules
//! the flattened grid as a single pool fan-out; the per-plan loop rebuilds
//! per-site state per cell and drains the pool at every cell boundary.
//! One cell is cross-checked outcome-for-outcome against a plain
//! [`RunPlan`] (the CI `sweep-smoke` gate), and results go to
//! `BENCH_sweep.json` at the repo root.
//!
//! Crash safety: `--checkpoint PATH` journals every completed cell so a
//! killed run loses only the cells in flight; `--resume PATH` replays the
//! journal and executes only the remainder (byte-identical to an
//! uninterrupted run — the CI `resume-smoke` job kills and resumes this
//! very binary). The JSON artifact carries a machine-readable `failures`
//! section: per-cell failure-kind counts plus the retry classification of
//! each failed rep.

use h2push_bench::{bench_args, BenchMeta};
use h2push_strategies::Strategy;
use h2push_testbed::{set_worker_threads, Mode, RunPlan, SweepCell, SweepPlan, SweepReport};
use h2push_webmodel::{generate_site, CorpusKind, Page, ResourceId};
use std::time::Instant;

/// The per-cell `"failures"` JSON fragment: kind-label counts plus one
/// entry per failed rep with its retry classification.
fn failures_json(cell: &SweepCell) -> String {
    let mut kinds: Vec<(&'static str, usize)> = Vec::new();
    for f in &cell.failures {
        let label = f.kind.label();
        match kinds.iter_mut().find(|(l, _)| *l == label) {
            Some((_, n)) => *n += 1,
            None => kinds.push((label, 1)),
        }
    }
    let counts: Vec<String> = kinds.iter().map(|(l, n)| format!("\"{l}\": {n}")).collect();
    let reps: Vec<String> = cell
        .failures
        .iter()
        .map(|f| {
            format!(
                "{{\"rep\": {}, \"kind\": \"{}\", \"retries\": {}, \"class\": \"{}\"}}",
                f.rep,
                f.kind.label(),
                f.retries,
                f.class.label(),
            )
        })
        .collect();
    format!(
        "{{\"counts\": {{{}}}, \"reps\": [{}], \"recovered\": {}}}",
        counts.join(", "),
        reps.join(", "),
        cell.recovered.len(),
    )
}

fn main() {
    let args = bench_args();
    let scale = args.scale;
    set_worker_threads(args.threads);
    let sites = scale.sites.clamp(1, 6);
    let runs = scale.runs;
    let pages: Vec<Page> =
        (0..sites).map(|i| generate_site(CorpusKind::Random, scale.seed ^ i as u64)).collect();
    // Page-independent strategy columns (every generated site has a
    // subresource 1, so the push list is always servable).
    let strategies = vec![Strategy::NoPush, Strategy::PushList { order: vec![ResourceId(1)] }];
    let n_strategies = strategies.len();
    let total_runs = n_strategies * sites * runs;
    println!(
        "perf_sweep: {n_strategies} strategies x {sites} sites x {runs} reps (seed {})",
        scale.seed
    );

    let plan = SweepPlan::new()
        .strategies(strategies.clone())
        .sites(pages.iter().cloned())
        .reps(runs)
        .seed(scale.seed)
        .mode(Mode::Testbed);

    // Warmup (fills the HPACK caches), then the measured sweep. With a
    // journal the measured run also pays per-cell encode+fsync, which is
    // the honest cost of crash safety.
    let _ = plan.run();
    let t = Instant::now();
    let report: SweepReport = match (&args.resume, &args.checkpoint) {
        (Some(path), _) => {
            println!("resuming journaled sweep from {path}");
            match plan.resume(path) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("perf_sweep: cannot resume: {e}");
                    std::process::exit(1);
                }
            }
        }
        (None, Some(path)) => {
            println!("journaling completed cells to {path}");
            match plan.checkpoint(path) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("perf_sweep: cannot checkpoint: {e}");
                    std::process::exit(1);
                }
            }
        }
        (None, None) => plan.run(),
    };
    let sweep_ms = t.elapsed().as_secs_f64() * 1e3;

    // The same grid as independent RunPlans (no shared PreparedPage, one
    // pool drain per cell).
    let t = Instant::now();
    let naive: Vec<_> = strategies
        .iter()
        .flat_map(|s| {
            pages.iter().map(|p| {
                RunPlan::new(p)
                    .strategy(s.clone())
                    .mode(Mode::Testbed)
                    .reps(runs)
                    .seed(scale.seed)
                    .run()
            })
        })
        .collect();
    let naive_ms = t.elapsed().as_secs_f64() * 1e3;

    // Failed cells (panic / watchdog / stall) are skipped, reported, and
    // excluded from the cross-check; clean cells must still match their
    // independent RunPlan outcome-for-outcome.
    if !report.is_complete() {
        println!("{} rep(s) failed; partial results:", report.failed());
        print!("{}", report.render_status());
    }
    assert_eq!(report.cells.len(), naive.len(), "grid shape mismatch");
    let mut checked = 0usize;
    for (cell, plain) in report.cells.iter().zip(&naive) {
        if !cell.is_clean() {
            println!("skipping cross-check for {}/{}: {}", cell.strategy, cell.site, cell.status());
            continue;
        }
        assert_eq!(cell.report.len(), plain.len(), "{}/{} rep count", cell.strategy, cell.site);
        for (a, b) in cell.report.outcomes().zip(plain.outcomes()) {
            assert_eq!(a.load, b.load, "{}/{} diverged", cell.strategy, cell.site);
            assert_eq!(a.trace.order, b.trace.order);
            assert_eq!(a.net, b.net);
        }
        checked += 1;
    }
    println!("cross-check: {checked} cells byte-identical to plain RunPlan");
    if let Some(prep) = plan.prepared_for(0) {
        let (hits, misses) = prep.hpack_cache().stats();
        println!("hpack cache (site 0): {hits} hits / {misses} misses");
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  {},\n", BenchMeta::capture().to_json()));
    json.push_str(&format!(
        "  \"grid\": {{\"strategies\": {n_strategies}, \"sites\": {sites}, \"reps\": {runs}}},\n"
    ));
    json.push_str(&format!(
        "  \"sweep\": {{\"wall_ms\": {:.1}, \"runs_per_sec\": {:.2}}},\n",
        sweep_ms,
        total_runs as f64 / (sweep_ms / 1e3)
    ));
    json.push_str(&format!(
        "  \"per_plan\": {{\"wall_ms\": {:.1}, \"runs_per_sec\": {:.2}}},\n",
        naive_ms,
        total_runs as f64 / (naive_ms / 1e3)
    ));
    json.push_str(&format!(
        "  \"failures\": {{\"failed_reps\": {}, \"recovered_reps\": {}, \"failed_cells\": {}}},\n",
        report.failed(),
        report.recovered(),
        report.failed_cells().count(),
    ));
    json.push_str("  \"cells\": [\n");
    for (i, cell) in report.cells.iter().enumerate() {
        // All-failed cells have no PLT observations; report 0.0 rather
        // than panicking the reporter (RunStats::try_of at the boundary).
        let mean_plt = cell.stats.plt_stats().map(|s| s.mean).unwrap_or(0.0);
        let mean_si = cell.stats.speed_index_stats().map(|s| s.mean).unwrap_or(0.0);
        json.push_str(&format!(
            "    {{\"strategy\": \"{}\", \"site\": \"{}\", \"reps\": {}, \"partial\": {}, \
             \"mean_plt_ms\": {:.1}, \"mean_speed_index\": {:.1}, \"failures\": {}}}{}\n",
            cell.strategy,
            cell.site,
            cell.stats.n,
            cell.stats.partial,
            mean_plt,
            mean_si,
            failures_json(cell),
            if i + 1 < report.cells.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(path, json).expect("write BENCH_sweep.json");
    println!(
        "sweep {:9.1} ms ({:.2} runs/s)  per-plan {:9.1} ms ({:.2} runs/s)",
        sweep_ms,
        total_runs as f64 / (sweep_ms / 1e3),
        naive_ms,
        total_runs as f64 / (naive_ms / 1e3)
    );
    println!("wrote {path}");
}
