//! Table 1 — the w1–w20 site inventory (structural view of our specs).
use h2push_webmodel::{realworld_set, ResourceType};

fn main() {
    println!("Table 1 — modelled structure of the interleaving-push site set");
    println!(
        "{:18} {:>8} {:>9} {:>8} {:>10} {:>10} {:>9}",
        "site", "HTML KB", "requests", "servers", "pushable", "push KB", "inline ms"
    );
    for p in realworld_set() {
        let inline_ms: u64 = p.inline_scripts.iter().map(|s| s.exec_us).sum::<u64>() / 1000;
        println!(
            "{:18} {:>8} {:>9} {:>8} {:>9.0}% {:>10.0} {:>9}",
            p.name,
            p.html_size() / 1024,
            p.resources.len(),
            p.server_group_count(),
            p.pushable_fraction() * 100.0,
            p.pushable_bytes() as f64 / 1024.0,
            inline_ms
        );
        let _ = p.by_type(ResourceType::Css);
    }
}
