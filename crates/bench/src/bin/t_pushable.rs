//! §4.2 "Pushable Objects" — share of sites with < 20 % pushable objects.
use h2push_bench::{cdf_summary, scale_from_args};
use h2push_testbed::experiments::fig3::pushable_stats;
use h2push_webmodel::CorpusKind;

fn main() {
    let scale = scale_from_args();
    println!("Pushable objects per site ({} sites per corpus)", scale.sites);
    for (kind, label, paper) in
        [(CorpusKind::Top, "top-100", 52.0), (CorpusKind::Random, "random-100", 24.0)]
    {
        let stats = pushable_stats(kind, scale);
        cdf_summary(&format!("{label} pushable fraction"), &stats.fractions, &[0.2, 0.5]);
        println!(
            "  → {:.0}% of {label} sites have <20% pushable (paper: {paper:.0}%)",
            stats.share_below_20pct * 100.0
        );
    }
}
