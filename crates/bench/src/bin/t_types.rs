//! §4.2.1 — pushing specific object types on the random corpus.
use h2push_bench::scale_from_args;
use h2push_metrics::RunStats;
use h2push_testbed::experiments::types_study::{type_study, TypeSelection};

fn main() {
    let scale = scale_from_args();
    println!("Type study — random-100, {} sites × {} runs", scale.sites, scale.runs);
    let study = type_study(scale);
    println!(
        "{:>12} {:>14} {:>14} {:>18}",
        "type", "mean ΔSI [ms]", "median ΔSI", "sites worse (SI)"
    );
    for sel in TypeSelection::ALL {
        let d: Vec<f64> = study
            .rows
            .iter()
            .filter_map(|r| r.deltas.iter().find(|(s, _, _)| *s == sel).map(|&(_, dsi, _)| dsi))
            .collect();
        let s = RunStats::of(&d);
        let worse = d.iter().filter(|&&x| x > 0.0).count() as f64 / d.len() as f64 * 100.0;
        println!("{:>12} {:>14.1} {:>14.1} {:>17.0}%", sel.label(), s.mean, s.median, worse);
    }
    println!(
        "\nimages worsen SI for {:.0}% of sites (paper: 74%); best-type improves SI for {:.0}% (paper: 24%), PLT for {:.0}% (paper: 20%)",
        study.images_worse_share * 100.0,
        study.best_type_improves_si * 100.0,
        study.best_type_improves_plt * 100.0
    );
}
