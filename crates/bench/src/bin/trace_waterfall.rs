//! Traced replay smoke: record a timeline, write the waterfall to
//! `results/`, and (optionally) validate the JSON export against the
//! checked-in schema.
//!
//! Runs a synthetic page under no-push and the planner's interleaved
//! recommendation, prints the interleaved text waterfall, and writes
//! `results/waterfall_<site>_<strategy>.{txt,json}` for both. With
//! `--check-schema` it additionally re-reads every JSON it wrote, parses
//! it with the built-in mini JSON reader and checks it against
//! `results/waterfall.schema.json` (required keys, value types, item
//! shapes) — the vendored serde_json has no dynamic `Value`, so the
//! validator is self-contained here. CI's `trace-smoke` job runs this
//! binary; any mismatch exits non-zero.
//!
//! Determinism is asserted on every invocation: the run is traced twice
//! with the same seed and both timelines must be bit-identical.

use h2push_core::PushPlanner;
use h2push_strategies::Strategy;
use h2push_testbed::{strategy_label, write_waterfall, ReplayInputs, RunPlan};
use h2push_trace::Timeline;
use h2push_webmodel::{synthetic_site, Page};
use std::path::Path;

// ---------------------------------------------------------------------------
// Mini JSON reader + structural schema check (draft-07 subset: `type`,
// `required`, `properties`, `items`; `type` may be a string or a list).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Num(n) => {
                if n.fract() == 0.0 {
                    "integer"
                } else {
                    "number"
                }
            }
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, what: &str) -> String {
        format!("JSON parse error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| self.err("unterminated string"))?
            {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc =
                        self.bytes.get(self.pos).copied().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Copy the full UTF-8 sequence starting here.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            pairs.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

/// Does `value` satisfy the schema node's `type` (string or list)?
fn type_matches(value: &Json, ty: &Json) -> bool {
    match ty {
        Json::Str(t) => {
            let actual = value.type_name();
            actual == t || (t == "number" && actual == "integer")
        }
        Json::Arr(options) => options.iter().any(|t| type_matches(value, t)),
        _ => false,
    }
}

/// Validate `value` against a draft-07 subset schema node; errors collect
/// into `errs` with a JSON-pointer-ish path.
fn validate(value: &Json, schema: &Json, path: &str, errs: &mut Vec<String>) {
    if let Some(ty) = schema.get("type") {
        if !type_matches(value, ty) {
            errs.push(format!("{path}: expected {ty:?}, got {}", value.type_name()));
            return;
        }
    }
    if let Some(Json::Arr(required)) = schema.get("required") {
        for key in required {
            if let Json::Str(key) = key {
                if value.get(key).is_none() {
                    errs.push(format!("{path}: missing required key \"{key}\""));
                }
            }
        }
    }
    if let (Some(Json::Obj(props)), Json::Obj(pairs)) = (schema.get("properties"), value) {
        for (key, sub) in props {
            if let Some((_, v)) = pairs.iter().find(|(k, _)| k == key) {
                validate(v, sub, &format!("{path}/{key}"), errs);
            }
        }
    }
    if let (Some(items), Json::Arr(elems)) = (schema.get("items"), value) {
        for (i, v) in elems.iter().enumerate() {
            validate(v, items, &format!("{path}/{i}"), errs);
        }
    }
}

// ---------------------------------------------------------------------------
// The smoke run itself.
// ---------------------------------------------------------------------------

fn traced_timeline(inputs: &ReplayInputs, strategy: &Strategy, seed: u64) -> Timeline {
    let out = RunPlan::new(inputs)
        .strategy(strategy.clone())
        .seed(seed)
        .traced()
        .run_one()
        .expect("traced replay completes");
    out.timeline.expect("traced run records a timeline")
}

fn main() {
    let check_schema = std::env::args().any(|a| a == "--check-schema");
    let seed = 42u64;
    let page: Page = synthetic_site(7);
    let inputs = ReplayInputs::from(&page);
    let strategies = [Strategy::NoPush, PushPlanner::static_recommendation(&page)];

    let results_dir = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"));
    let mut json_paths = Vec::new();
    for strategy in &strategies {
        let tl = traced_timeline(&inputs, strategy, seed);
        // Determinism gate: rerunning the same seed must reproduce the
        // timeline bit for bit.
        let again = traced_timeline(&inputs, strategy, seed);
        assert_eq!(tl, again, "same-seed timelines diverged for {}", strategy_label(strategy));

        let (txt, json) = write_waterfall(results_dir, &page, strategy, seed, &tl)
            .expect("write waterfall files");
        println!(
            "{}: {} events -> {} / {}",
            strategy_label(strategy),
            tl.len(),
            txt.display(),
            json.display()
        );
        if matches!(strategy, Strategy::Interleaved { .. }) {
            print!("{}", std::fs::read_to_string(&txt).unwrap());
        }
        json_paths.push(json);
    }

    if check_schema {
        let schema_path = results_dir.join("waterfall.schema.json");
        let schema_src = std::fs::read_to_string(&schema_path)
            .unwrap_or_else(|e| panic!("read {}: {e}", schema_path.display()));
        let schema = parse_json(&schema_src).expect("schema is valid JSON");
        for path in &json_paths {
            let doc = parse_json(&std::fs::read_to_string(path).unwrap())
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            let mut errs = Vec::new();
            validate(&doc, &schema, "", &mut errs);
            if !errs.is_empty() {
                eprintln!("{}: schema violations:", path.display());
                for e in &errs {
                    eprintln!("  {e}");
                }
                std::process::exit(1);
            }
            println!("{}: schema OK", path.display());
        }
    }
}
