//! # h2push-bench — regenerate every table and figure
//!
//! One binary per experiment (see `DESIGN.md` §3 for the index); shared
//! argument handling and table printing live here. All binaries accept
//! `--quick` (reduced scale), `--paper` (100 sites × 31 runs — the
//! default is an intermediate scale), and `--sites N` / `--runs N` /
//! `--seed N` overrides.

use h2push_testbed::experiments::Scale;

/// Parse the common CLI arguments into a [`Scale`].
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = Scale { sites: 40, runs: 11, seed: 42 };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = Scale::quick(),
            "--paper" => scale = Scale::paper(),
            "--sites" => {
                i += 1;
                scale.sites = args[i].parse().expect("--sites N");
            }
            "--runs" => {
                i += 1;
                scale.runs = args[i].parse().expect("--runs N");
            }
            "--seed" => {
                i += 1;
                scale.seed = args[i].parse().expect("--seed N");
            }
            other => panic!("unknown argument {other} (try --quick/--paper/--sites/--runs/--seed)"),
        }
        i += 1;
    }
    scale
}

/// Render CDF summary lines: the share of values below the given
/// thresholds plus key percentiles — enough to redraw the paper's CDFs.
pub fn cdf_summary(label: &str, values: &[f64], thresholds: &[f64]) {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    print!("{label:28}");
    for &t in thresholds {
        let share = h2push_metrics::share_below(values, t) * 100.0;
        print!("  P[x<{t:>6}]={share:5.1}%");
    }
    for p in [10.0, 50.0, 90.0] {
        print!("  p{p:.0}={:8.1}", h2push_metrics::percentile(values, p));
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_moderate() {
        // Can't inject argv easily; just exercise cdf_summary.
        cdf_summary("test", &[1.0, 2.0, 3.0], &[2.5]);
        let _ = Scale { sites: 1, runs: 1, seed: 1 };
    }
}
