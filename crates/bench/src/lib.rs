//! # h2push-bench — regenerate every table and figure
//!
//! One binary per experiment (see `DESIGN.md` §3 for the index); shared
//! argument handling and table printing live here. All binaries accept
//! `--quick` (reduced scale), `--paper` (100 sites × 31 runs — the
//! default is an intermediate scale), and `--sites N` / `--runs N` /
//! `--seed N` overrides.

use h2push_testbed::experiments::Scale;

/// Parse the common CLI arguments into a [`Scale`].
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = Scale { sites: 40, runs: 11, seed: 42 };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = Scale::quick(),
            "--paper" => scale = Scale::paper(),
            "--sites" => {
                i += 1;
                scale.sites = args[i].parse().expect("--sites N");
            }
            "--runs" => {
                i += 1;
                scale.runs = args[i].parse().expect("--runs N");
            }
            "--seed" => {
                i += 1;
                scale.seed = args[i].parse().expect("--seed N");
            }
            other => panic!("unknown argument {other} (try --quick/--paper/--sites/--runs/--seed)"),
        }
        i += 1;
    }
    scale
}

/// Machine and build provenance recorded into every benchmark artifact,
/// so numbers in `BENCH_*.json` can be traced to the machine and revision
/// that produced them.
#[derive(Debug, Clone)]
pub struct BenchMeta {
    /// Logical cores available to the process.
    pub cores: usize,
    /// `rustc -V` output ("unknown" when the compiler is not on PATH).
    pub rustc: String,
    /// Short git revision ("unknown" outside a work tree).
    pub git_rev: String,
}

impl BenchMeta {
    /// Probe the environment. Never fails: missing tools degrade to
    /// "unknown".
    pub fn capture() -> Self {
        let run = |cmd: &str, args: &[&str]| -> String {
            std::process::Command::new(cmd)
                .args(args)
                .output()
                .ok()
                .filter(|o| o.status.success())
                .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
                .filter(|s| !s.is_empty())
                .unwrap_or_else(|| "unknown".to_string())
        };
        BenchMeta {
            cores: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            rustc: run("rustc", &["-V"]),
            git_rev: run("git", &["rev-parse", "--short", "HEAD"]),
        }
    }

    /// The `"meta": {...}` JSON fragment (no trailing comma or newline).
    pub fn to_json(&self) -> String {
        format!(
            "\"meta\": {{\"cores\": {}, \"rustc\": \"{}\", \"git_rev\": \"{}\"}}",
            self.cores,
            self.rustc.replace('"', "'"),
            self.git_rev.replace('"', "'"),
        )
    }
}

/// Render CDF summary lines: the share of values below the given
/// thresholds plus key percentiles — enough to redraw the paper's CDFs.
pub fn cdf_summary(label: &str, values: &[f64], thresholds: &[f64]) {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    print!("{label:28}");
    for &t in thresholds {
        let share = h2push_metrics::share_below(values, t) * 100.0;
        print!("  P[x<{t:>6}]={share:5.1}%");
    }
    for p in [10.0, 50.0, 90.0] {
        print!("  p{p:.0}={:8.1}", h2push_metrics::percentile(values, p));
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_moderate() {
        // Can't inject argv easily; just exercise cdf_summary.
        cdf_summary("test", &[1.0, 2.0, 3.0], &[2.5]);
        let _ = Scale { sites: 1, runs: 1, seed: 1 };
    }
}
