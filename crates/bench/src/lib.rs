//! # h2push-bench — regenerate every table and figure
//!
//! One binary per experiment (see `DESIGN.md` §3 for the index); shared
//! argument handling and table printing live here. All binaries accept
//! `--quick` (reduced scale), `--paper` (100 sites × 31 runs — the
//! default is an intermediate scale), and `--sites N` / `--runs N` /
//! `--seed N` overrides.

use h2push_testbed::experiments::Scale;

/// Everything the common CLI surface can express: the grid [`Scale`],
/// an optional worker-thread pin (`--threads N`), and gate mode
/// (`--gate`: compare against the committed baseline and fail on
/// regression instead of rewriting it).
#[derive(Debug, Clone)]
pub struct BenchArgs {
    pub scale: Scale,
    /// Total worker threads to pin the testbed pool to (calling thread
    /// included); `None` leaves the `available_parallelism` default.
    pub threads: Option<usize>,
    /// Compare against the committed benchmark artifact instead of
    /// overwriting it.
    pub gate: bool,
    /// Journal every completed sweep cell to this path
    /// (`SweepPlan::checkpoint`) so a killed run can be resumed.
    pub checkpoint: Option<String>,
    /// Resume a journaled sweep from this path (`SweepPlan::resume`);
    /// a missing file starts a fresh checkpointed run there.
    pub resume: Option<String>,
}

/// Parse the common CLI arguments.
pub fn bench_args() -> BenchArgs {
    let args: Vec<String> = std::env::args().collect();
    let mut out = BenchArgs {
        scale: Scale { sites: 40, runs: 11, seed: 42 },
        threads: None,
        gate: false,
        checkpoint: None,
        resume: None,
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => out.scale = Scale::quick(),
            "--paper" => out.scale = Scale::paper(),
            "--sites" => {
                i += 1;
                out.scale.sites = args[i].parse().expect("--sites N");
            }
            "--runs" => {
                i += 1;
                out.scale.runs = args[i].parse().expect("--runs N");
            }
            "--seed" => {
                i += 1;
                out.scale.seed = args[i].parse().expect("--seed N");
            }
            "--threads" => {
                i += 1;
                let n: usize = args[i].parse().expect("--threads N");
                assert!(n >= 1, "--threads needs at least one thread");
                out.threads = Some(n);
            }
            "--gate" => out.gate = true,
            "--checkpoint" => {
                i += 1;
                out.checkpoint = Some(args.get(i).expect("--checkpoint PATH").clone());
            }
            "--resume" => {
                i += 1;
                out.resume = Some(args.get(i).expect("--resume PATH").clone());
            }
            other => panic!(
                "unknown argument {other} \
                 (try --quick/--paper/--sites/--runs/--seed/--threads/--gate\
                 /--checkpoint/--resume)"
            ),
        }
        i += 1;
    }
    out
}

/// Parse the common CLI arguments into a [`Scale`].
pub fn scale_from_args() -> Scale {
    bench_args().scale
}

/// Allocation counting behind the `count-allocs` feature: a global
/// allocator delegating to [`std::alloc::System`] with one relaxed atomic
/// increment per `alloc`/`alloc_zeroed`/`realloc`. Only the `alloc_gate`
/// binary wants it; every other build keeps the plain system allocator
/// (the feature is off by default, so the counter costs nothing in
/// normal benchmarks).
#[cfg(feature = "count-allocs")]
pub mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// The system allocator plus a relaxed allocation counter. Frees are
    /// not counted: the gate's currency is "new heap blocks per run", and
    /// a recycled context's whole point is to stop minting them.
    pub struct CountingAlloc;

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc_zeroed(layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    /// Heap allocations since process start. Sample before and after a
    /// region; the difference is that region's allocation count.
    pub fn allocations() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

/// Machine and build provenance recorded into every benchmark artifact,
/// so numbers in `BENCH_*.json` can be traced to the machine and revision
/// that produced them.
#[derive(Debug, Clone)]
pub struct BenchMeta {
    /// Logical cores available to the process.
    pub cores: usize,
    /// Effective worker-thread budget of the testbed pool (calling
    /// thread included) when the numbers were produced.
    pub threads: usize,
    /// `rustc -V` output ("unknown" when the compiler is not on PATH).
    pub rustc: String,
    /// Short git revision ("unknown" outside a work tree).
    pub git_rev: String,
    /// Steady-state heap allocations per replay, measured by the
    /// `alloc_gate` binary under the `count-allocs` allocator. `None`
    /// everywhere else — only the gate can measure it, and it stamps the
    /// figure into the committed artifact after the perf paths run.
    pub allocs_per_run: Option<u64>,
}

impl BenchMeta {
    /// Probe the environment. Never fails: missing tools degrade to
    /// "unknown".
    pub fn capture() -> Self {
        let run = |cmd: &str, args: &[&str]| -> String {
            std::process::Command::new(cmd)
                .args(args)
                .output()
                .ok()
                .filter(|o| o.status.success())
                .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
                .filter(|s| !s.is_empty())
                .unwrap_or_else(|| "unknown".to_string())
        };
        BenchMeta {
            cores: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            threads: h2push_testbed::worker_threads(),
            rustc: run("rustc", &["-V"]),
            git_rev: run("git", &["rev-parse", "--short", "HEAD"]),
            allocs_per_run: None,
        }
    }

    /// The `"meta": {...}` JSON fragment (no trailing comma or newline).
    pub fn to_json(&self) -> String {
        let allocs = match self.allocs_per_run {
            Some(n) => format!(", \"allocs_per_run\": {n}"),
            None => String::new(),
        };
        format!(
            "\"meta\": {{\"cores\": {}, \"threads\": {}, \"rustc\": \"{}\", \
             \"git_rev\": \"{}\"{allocs}}}",
            self.cores,
            self.threads,
            self.rustc.replace('"', "'"),
            self.git_rev.replace('"', "'"),
        )
    }
}

/// Render CDF summary lines: the share of values below the given
/// thresholds plus key percentiles — enough to redraw the paper's CDFs.
pub fn cdf_summary(label: &str, values: &[f64], thresholds: &[f64]) {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    print!("{label:28}");
    for &t in thresholds {
        let share = h2push_metrics::share_below(values, t) * 100.0;
        print!("  P[x<{t:>6}]={share:5.1}%");
    }
    for p in [10.0, 50.0, 90.0] {
        print!("  p{p:.0}={:8.1}", h2push_metrics::percentile(values, p));
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_moderate() {
        // Can't inject argv easily; just exercise cdf_summary.
        cdf_summary("test", &[1.0, 2.0, 3.0], &[2.5]);
        let _ = Scale { sites: 1, runs: 1, seed: 1 };
    }
}
