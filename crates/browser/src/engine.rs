//! The browser model: Chromium-64-like load and render behaviour (§2.2,
//! §4.2, §5 of the paper).
//!
//! What is modelled — exactly the mechanisms the paper's analysis leans on:
//!
//! * **Incremental HTML parsing** over the bytes received so far; the
//!   parser stops at classic `<script src>` tags (execution additionally
//!   waits for every stylesheet appearing earlier — the CSSOM rule that
//!   makes w2/w5 computation-bound) and at inline scripts.
//! * **Preload scanning**: references are discovered the moment the bytes
//!   containing them arrive, even while the parser is blocked.
//! * **Request priorities**: Chromium's exclusive dependency chain. Each
//!   request is spliced into a linear H2 priority chain ordered by class
//!   (HTML ≻ CSS/font ≻ blocking JS ≻ async/defer/other ≻ images), so an
//!   h2o-style server delivers responses *sequentially* in priority order —
//!   the very behaviour that makes a large HTML starve its own CSS (the
//!   paper's w1/Fig. 5 observation).
//! * **Server Push**: PUSH_PROMISEs are accepted (or cancelled with
//!   RST_STREAM CANCEL when the resource was already requested), and
//!   `SETTINGS_ENABLE_PUSH=0` implements the paper's *no push* baseline.
//! * **Rendering**: render-blocking CSS gates first paint; text paints
//!   progressively with parser progress; above-the-fold images paint when
//!   decoded. The resulting visual-progress curve feeds SpeedIndex.
//! * **A single main thread**: script execution, CSS parsing and decoding
//!   contend for it (`main_free_at`), reproducing the computation-bound
//!   pages where push cannot help (s5, w5).

use crate::result::{LoadResult, PaintSample, ResourceTiming};
use bytes::Bytes;
use h2push_h2proto::{
    CacheDigest, Connection, ErrorCode, Event, FifoScheduler, PrioritySpec, Settings,
};
use h2push_hpack::FxHashMap;
use h2push_hpack::{BlockCache, DecodeCache, Header};
use h2push_netsim::{SimDuration, SimTime};
use h2push_trace::{conn_label, TraceEvent, TraceHandle};
use h2push_webmodel::{Discovery, Page, ResourceId, ResourceType, ScriptMode};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Request priority classes, highest first (Chromium's five buckets).
const CLASS_WEIGHTS: [u16; 5] = [256, 220, 183, 147, 110];

/// Maximum parallel HTTP/1.1 connections per origin (the classic browser
/// limit the paper's §1 motivation assumes).
const H1_POOL_SIZE: usize = 6;

/// Which protocol the browser speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportMode {
    /// HTTP/2: one multiplexed connection per server group.
    #[default]
    H2,
    /// HTTP/1.1: up to six keep-alive connections per group, one request
    /// outstanding per connection — the baseline the paper motivates
    /// against.
    H1,
}

/// Browser configuration for one load.
#[derive(Debug, Clone)]
pub struct BrowserConfig {
    /// Advertise SETTINGS_ENABLE_PUSH (false ⇒ the paper's "no push").
    pub enable_push: bool,
    /// Per-stream receive window (Chromium uses ~6 MB).
    pub initial_window: u32,
    /// Multiplies all CPU times; models per-run client-side processing
    /// variance (the residual noise the paper's testbed still observes).
    pub cpu_scale: f64,
    /// Protocol to load over.
    pub transport: TransportMode,
    /// Whether the preload scanner runs (discovering references in
    /// received-but-unparsed bytes). All modern browsers have one; turning
    /// it off shows how much of Server Push's promise is really just
    /// "discover earlier" — the ablation behind the guidelines' "push
    /// saves discovery time" argument.
    pub preload_scanner: bool,
    /// Resources already in the browser cache (a warm revisit). Cached
    /// resources load instantly, and the browser advertises them in a
    /// `cache-digest` header (draft-ietf-httpbis-cache-digest) so a
    /// digest-aware server can skip pushing them; pushes that slip through
    /// are cancelled (§2.1 of the paper).
    pub warm_cache: Vec<ResourceId>,
    /// Per-resource fetch timeout. `None` (the default) schedules no
    /// timers at all, keeping fault-free loads byte-identical; under fault
    /// injection a stalled transfer is cancelled and retried after this
    /// long.
    pub resource_timeout: Option<SimDuration>,
    /// How many times a failed or timed-out fetch is re-issued before the
    /// resource is given up on. Only reachable under faults — fault-free
    /// loads never time out or see transport errors.
    pub max_retries: u32,
    /// Base delay before a retry; doubles per attempt (exponential
    /// backoff).
    pub retry_backoff: SimDuration,
    /// Hard deadline for the whole load. `None` (the default) schedules
    /// nothing; when set, a load still unfinished at the deadline is
    /// closed out as a *partial* result — PLT and SpeedIndex over what
    /// actually rendered.
    pub load_deadline: Option<SimDuration>,
    /// Adversarial-peer resource limits for every HTTP/2 connection this
    /// browser opens. Local enforcement only — never advertised in
    /// SETTINGS, so the knob is inert on benign replays.
    pub limits: h2push_h2proto::ConnLimits,
}

impl Default for BrowserConfig {
    fn default() -> Self {
        BrowserConfig {
            enable_push: true,
            initial_window: 6 * 1024 * 1024,
            cpu_scale: 1.0,
            transport: TransportMode::H2,
            preload_scanner: true,
            warm_cache: Vec::new(),
            resource_timeout: None,
            max_retries: 2,
            retry_backoff: SimDuration::from_millis(500),
            load_deadline: None,
            limits: h2push_h2proto::ConnLimits::new(),
        }
    }
}

/// What the browser asks its environment (the testbed) to do.
#[derive(Debug)]
pub enum BrowserAction {
    /// Open a TCP+TLS connection to this server group. HTTP/2 uses a
    /// single connection (slot 0); HTTP/1.1 opens up to six slots.
    OpenConnection { group: usize, slot: usize },
    /// Write bytes on connection `slot` of this group. The payload is a
    /// shared slice handed through to the network layer without copying.
    SendBytes { group: usize, slot: usize, bytes: Bytes },
    /// Wake the browser at `at` with `token`.
    SetTimer { at: SimTime, token: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResState {
    Undiscovered,
    /// Requested or promised; transfer in progress.
    Fetching,
    /// All bytes received; evaluation not finished.
    Loaded,
    /// Fully processed (executed / parsed / decoded).
    Evaluated,
    /// Given up on after exhausting retries. Terminal: the load completes
    /// around the hole (failed CSS stops gating render, failed scripts
    /// unblock the parser) instead of hanging.
    Failed,
}

#[derive(Debug)]
struct ResInfo {
    state: ResState,
    discovered: bool,
    pushed: bool,
    received: usize,
    eval_scheduled: bool,
    /// Fetch attempts so far (0 until the first timeout/error).
    attempts: u32,
    timing: ResourceTiming,
}

#[derive(Debug, Clone, Copy)]
enum StopKind {
    /// External parser-blocking script.
    Script(ResourceId),
    /// Inline script block (index into `Page::inline_scripts`).
    Inline(usize),
}

/// Pre-scanned, page-derived load inputs: parser stop points, the preload
/// scanner's HTML reference index, the visual-weight total, and per-resource
/// request header lists — everything [`Browser::new`] derives from the
/// [`Page`] alone. A pure function of the page, so a sweep builds it once
/// per site and shares it across every configuration and rep touching that
/// page; [`Browser::new`] builds one lazily otherwise.
#[derive(Debug)]
pub struct PreparedScan {
    /// Parser stop points (external blocking scripts + inline scripts),
    /// sorted by document offset.
    stops: Vec<(usize, StopKind)>,
    /// HTML references sorted by offset, for the preload scanner.
    html_refs: Vec<(usize, ResourceId)>,
    inline_count: usize,
    total_weight: f64,
    /// Per-resource GET header lists, byte-identical to what
    /// [`Browser::fetch`] would format live.
    request_headers: Vec<Vec<Header>>,
}

impl PreparedScan {
    /// Scan `page` once. Deterministic: depends only on the page.
    pub fn build(page: &Page) -> Self {
        let mut stops: Vec<(usize, StopKind)> = page
            .resources
            .iter()
            .filter(|r| r.is_parser_blocking_script())
            .filter_map(|r| match r.discovery {
                Discovery::Html { offset } => Some((offset, StopKind::Script(r.id))),
                _ => None,
            })
            .chain(
                page.inline_scripts
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (s.offset, StopKind::Inline(i))),
            )
            .collect();
        stops.sort_by_key(|&(off, _)| off);
        let mut html_refs: Vec<(usize, ResourceId)> = page
            .resources
            .iter()
            .skip(1)
            .filter_map(|r| match r.discovery {
                Discovery::Html { offset } => Some((offset, r.id)),
                _ => None,
            })
            .collect();
        html_refs.sort_by_key(|&(off, id)| (off, id));
        let request_headers = page
            .resources
            .iter()
            .map(|r| {
                vec![
                    Header::new(":method", "GET"),
                    Header::new(":scheme", "https"),
                    Header::new(":authority", page.host_of(r.id)),
                    Header::new(":path", &r.path),
                ]
            })
            .collect();
        PreparedScan {
            stops,
            html_refs,
            inline_count: page.inline_scripts.len(),
            total_weight: page.total_visual_weight(),
            request_headers,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Blocked {
    /// Waiting for an external script to load/execute.
    Script(ResourceId),
    /// Inline script waiting for earlier stylesheets.
    InlineCss(usize),
    /// Inline script executing on the main thread.
    InlineExec(usize),
}

#[derive(Debug, Clone, Copy)]
enum TimerKind {
    EvalDone(ResourceId),
    InlineDone(usize),
    /// The fetch of this resource (at this attempt number) ran out of
    /// time. Stamped with the attempt so a stale timer from a superseded
    /// attempt is ignored.
    ResourceTimeout(ResourceId, u32),
    /// Re-issue the fetch of this resource (after backoff).
    RetryFetch(ResourceId),
    /// The whole-page deadline: close out a partial load.
    LoadDeadline,
}

/// One HTTP/1.1 connection slot in a per-group pool.
struct H1Slot {
    conn: h2push_h1::H1ClientConn,
    current: Option<ResourceId>,
    /// The connection died (protocol error or cancelled mid-response —
    /// HTTP/1.1 cannot abort a response without closing). Dead slots keep
    /// their index (the testbed addresses connections by slot) but take no
    /// further work.
    dead: bool,
}

/// The per-group HTTP/1.1 connection pool with its priority-ordered
/// request queue.
#[derive(Default)]
struct H1Pool {
    slots: Vec<H1Slot>,
    /// Pending fetches: (class, discovery sequence, resource).
    queue: Vec<(u8, u64, ResourceId)>,
}

struct ConnState {
    conn: Connection,
    /// The priority chain: streams in dependency order (root-most first)
    /// with their class.
    chain: Vec<(u32, u8)>,
    /// Whether the cache digest was already sent on this connection.
    digest_sent: bool,
    /// Testbed slot this connection lives on. The first HTTP/2 connection
    /// to a group is slot 0; a replacement opened after a connection error
    /// takes the next slot, so bytes still in flight on the dead
    /// connection can no longer reach the new one.
    slot: usize,
}

/// Splice `stream` of priority `class` into the connection's exclusive
/// dependency chain (Chromium's scheme): it becomes an exclusive child of
/// the deepest live stream of equal-or-higher class, adopting everything
/// below. Returns the PRIORITY spec to signal.
fn splice_into_chain(cs: &mut ConnState, stream: u32, class: u8) -> PrioritySpec {
    let parent = cs.chain.iter().rev().find(|&&(_, c)| c <= class).map(|&(s, _)| s).unwrap_or(0);
    let spec =
        PrioritySpec { depends_on: parent, weight: CLASS_WEIGHTS[class as usize], exclusive: true };
    let pos = cs.chain.iter().position(|&(s, _)| s == parent).map(|i| i + 1).unwrap_or(0);
    cs.chain.insert(pos, (stream, class));
    spec
}

/// The browser: drive it with `on_connected` / `on_bytes` / `on_timer`,
/// collect [`BrowserAction`]s, read the [`LoadResult`] when done.
pub struct Browser {
    page: Arc<Page>,
    cfg: BrowserConfig,
    conns: BTreeMap<usize, ConnState>,
    h1: FxHashMap<usize, H1Pool>,
    h1_seq: u64,
    res: Vec<ResInfo>,
    stream_map: FxHashMap<(usize, u32), ResourceId>,
    // Page-derived scan data (stop points, reference index, request
    // headers); shared across loads of the same page.
    scan: Arc<PreparedScan>,
    // Parser state.
    available: usize,
    parsed: usize,
    stop_idx: usize,
    blocked: Option<Blocked>,
    inline_done: Vec<bool>,
    parser_done: bool,
    next_ref: usize,
    // Main thread.
    main_free_at: SimTime,
    timers: FxHashMap<u64, TimerKind>,
    next_token: u64,
    // Deferred scripts pending execution after parse end.
    defer_queue: Vec<ResourceId>,
    // Timeline.
    connect_end: Option<SimTime>,
    first_paint: Option<SimTime>,
    dcl: Option<SimTime>,
    onload: Option<SimTime>,
    paints: Vec<PaintSample>,
    last_completeness: f64,
    /// Shared HPACK block cache applied to every connection opened.
    hpack_cache: Option<BlockCache>,
    /// Shared HPACK decode cache applied to every connection opened.
    hpack_decode_cache: Option<DecodeCache>,
    // Stats.
    pushed_bytes: u64,
    pushed_count: u32,
    cancelled_pushes: u32,
    requests: u32,
    // Fault handling.
    /// Next slot for a replacement HTTP/2 connection, per group.
    next_h2_slot: FxHashMap<usize, usize>,
    partial: bool,
    retries: u32,
    timeouts: u32,
    conn_errors: u32,
    actions: Vec<BrowserAction>,
    trace: TraceHandle,
    /// Retired HTTP/2 connection machines (from [`Browser::reset`] or a
    /// failed connection), recycled by `ensure_conn` instead of building a
    /// fresh [`Connection`] per open.
    spare_conns: Vec<ConnState>,
    /// Retired HTTP/1.1 connection machines, recycled by `h1_dispatch`.
    spare_h1: Vec<h2push_h1::H1ClientConn>,
    /// Retired (emptied) HTTP/1.1 pools, recycled per group.
    spare_h1_pools: Vec<H1Pool>,
}

impl Browser {
    /// Create a browser for one load of `page`. The page is a shared
    /// immutable input: repeated loads of the same page reuse one
    /// allocation instead of deep-cloning per run.
    pub fn new(page: Arc<Page>, cfg: BrowserConfig) -> Self {
        let scan = Arc::new(PreparedScan::build(&page));
        Browser::with_scan(page, cfg, scan)
    }

    /// Like [`Browser::new`], but reusing a [`PreparedScan`] built once for
    /// this page — repeated loads skip the per-load page scan entirely.
    pub fn with_scan(page: Arc<Page>, cfg: BrowserConfig, scan: Arc<PreparedScan>) -> Self {
        let n = page.resources.len();
        let inline_count = scan.inline_count;
        Browser {
            res: (0..n)
                .map(|_| ResInfo {
                    state: ResState::Undiscovered,
                    discovered: false,
                    pushed: false,
                    received: 0,
                    eval_scheduled: false,
                    attempts: 0,
                    timing: ResourceTiming::default(),
                })
                .collect(),
            page,
            cfg,
            conns: BTreeMap::new(),
            h1: FxHashMap::default(),
            h1_seq: 0,
            stream_map: FxHashMap::default(),
            scan,
            available: 0,
            parsed: 0,
            stop_idx: 0,
            blocked: None,
            inline_done: vec![false; inline_count],
            parser_done: false,
            next_ref: 0,
            main_free_at: SimTime::ZERO,
            timers: FxHashMap::default(),
            next_token: 1,
            defer_queue: Vec::new(),
            connect_end: None,
            first_paint: None,
            dcl: None,
            onload: None,
            paints: Vec::new(),
            last_completeness: 0.0,
            hpack_cache: None,
            hpack_decode_cache: None,
            pushed_bytes: 0,
            pushed_count: 0,
            cancelled_pushes: 0,
            requests: 0,
            next_h2_slot: FxHashMap::default(),
            partial: false,
            retries: 0,
            timeouts: 0,
            conn_errors: 0,
            actions: Vec::new(),
            trace: TraceHandle::off(),
            spare_conns: Vec::new(),
            spare_h1: Vec::new(),
            spare_h1_pools: Vec::new(),
        }
    }

    /// Recycle this browser into a fresh one for a new load: equivalent to
    /// [`Browser::with_scan`] but reusing every buffer of the previous
    /// life. Connection machines are parked and re-issued by `ensure_conn`
    /// through the exact construction path a cold browser uses, so a
    /// recycled browser's wire behaviour is byte-identical to a fresh one.
    pub fn reset(&mut self, page: Arc<Page>, cfg: BrowserConfig, scan: Arc<PreparedScan>) {
        let n = page.resources.len();
        let inline_count = scan.inline_count;
        self.res.clear();
        self.res.extend((0..n).map(|_| ResInfo {
            state: ResState::Undiscovered,
            discovered: false,
            pushed: false,
            received: 0,
            eval_scheduled: false,
            attempts: 0,
            timing: ResourceTiming::default(),
        }));
        self.page = page;
        self.cfg = cfg;
        while let Some((_, cs)) = self.conns.pop_first() {
            self.park_conn(cs);
        }
        for (_, mut pool) in self.h1.drain() {
            pool.queue.clear();
            for slot in pool.slots.drain(..) {
                if self.spare_h1.len() < 16 {
                    self.spare_h1.push(slot.conn);
                }
            }
            if self.spare_h1_pools.len() < 8 {
                self.spare_h1_pools.push(pool);
            }
        }
        self.h1_seq = 0;
        self.stream_map.clear();
        self.scan = scan;
        self.available = 0;
        self.parsed = 0;
        self.stop_idx = 0;
        self.blocked = None;
        self.inline_done.clear();
        self.inline_done.resize(inline_count, false);
        self.parser_done = false;
        self.next_ref = 0;
        self.main_free_at = SimTime::ZERO;
        self.timers.clear();
        self.next_token = 1;
        self.defer_queue.clear();
        self.connect_end = None;
        self.first_paint = None;
        self.dcl = None;
        self.onload = None;
        self.paints.clear();
        self.last_completeness = 0.0;
        self.hpack_cache = None;
        self.hpack_decode_cache = None;
        self.pushed_bytes = 0;
        self.pushed_count = 0;
        self.cancelled_pushes = 0;
        self.requests = 0;
        self.next_h2_slot.clear();
        self.partial = false;
        self.retries = 0;
        self.timeouts = 0;
        self.conn_errors = 0;
        self.actions.clear();
        self.trace = TraceHandle::off();
    }

    fn park_conn(&mut self, mut cs: ConnState) {
        if self.spare_conns.len() < 8 {
            cs.chain.clear();
            self.spare_conns.push(cs);
        }
    }

    /// Attach a trace handle before [`Browser::start`]. Forwarded to every
    /// HTTP/2 client connection the browser opens; purely observational.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Share a memoized HPACK block cache across loads of the same page.
    /// Must be set before [`Browser::start`]; forwarded to every HTTP/2
    /// client connection the browser opens. Encoded output is unchanged —
    /// the cache only skips redundant encoding work.
    pub fn set_hpack_block_cache(&mut self, cache: BlockCache) {
        self.hpack_cache = Some(cache);
    }

    /// Share a memoized HPACK decode cache across loads of the same page.
    /// Must be set before [`Browser::start`]; forwarded to every HTTP/2
    /// client connection the browser opens. Decoded headers are unchanged —
    /// the cache only skips redundant decoding work.
    pub fn set_hpack_decode_cache(&mut self, cache: DecodeCache) {
        self.hpack_decode_cache = Some(cache);
    }

    /// Hand back an action buffer returned by [`start`] / [`on_bytes`] /
    /// [`on_connected`] / [`on_timer`] once its actions are consumed. The
    /// engine reuses the capacity, so a driver that recycles keeps the
    /// steady-state event loop allocation-free.
    ///
    /// [`start`]: Browser::start
    /// [`on_bytes`]: Browser::on_bytes
    /// [`on_connected`]: Browser::on_connected
    /// [`on_timer`]: Browser::on_timer
    pub fn recycle_actions(&mut self, mut spare: Vec<BrowserAction>) {
        spare.clear();
        if spare.capacity() > self.actions.capacity() {
            self.actions = spare;
        }
    }

    /// Begin navigation: opens the main connection and requests the
    /// document. Returns the initial actions.
    pub fn start(&mut self, now: SimTime) -> Vec<BrowserAction> {
        if let Some(deadline) = self.cfg.load_deadline {
            self.set_timer(now + deadline, TimerKind::LoadDeadline);
        }
        self.discover(ResourceId(0), now);
        self.flush_conns();
        std::mem::take(&mut self.actions)
    }

    /// The handshake of connection `slot` to `group` finished.
    pub fn on_connected(&mut self, group: usize, slot: usize, now: SimTime) -> Vec<BrowserAction> {
        let _ = slot;
        if group == self.page.server_group_of(ResourceId(0)) && self.connect_end.is_none() {
            self.connect_end = Some(now);
        }
        self.flush_conns();
        std::mem::take(&mut self.actions)
    }

    /// Wire bytes arrived on connection `slot` of `group`.
    pub fn on_bytes(
        &mut self,
        group: usize,
        slot: usize,
        bytes: &[u8],
        now: SimTime,
    ) -> Vec<BrowserAction> {
        match self.cfg.transport {
            TransportMode::H2 => {
                // Bytes from a connection abandoned after an error still
                // drain out of the network on the old slot; only the live
                // connection's slot is fed to the state machine.
                if let Some(cs) = self.conns.get_mut(&group) {
                    if cs.slot == slot {
                        cs.conn.receive(bytes);
                    }
                }
                self.drain_events(group, now);
            }
            TransportMode::H1 => self.h1_on_bytes(group, slot, bytes, now),
        }
        self.flush_conns();
        std::mem::take(&mut self.actions)
    }

    /// A timer set earlier fired.
    pub fn on_timer(&mut self, token: u64, now: SimTime) -> Vec<BrowserAction> {
        match self.timers.remove(&token) {
            Some(TimerKind::EvalDone(rid)) => self.finish_eval(rid, now),
            Some(TimerKind::InlineDone(idx)) => {
                self.inline_done[idx] = true;
                if self.blocked == Some(Blocked::InlineExec(idx)) {
                    self.blocked = None;
                    self.stop_idx += 1;
                    self.advance_parser(now);
                    if !self.cfg.preload_scanner {
                        self.scan(now);
                    }
                }
                self.after_state_change(now);
            }
            // Only the timer armed for the *current* attempt counts; a
            // stale one from a superseded attempt falls through as a no-op.
            Some(TimerKind::ResourceTimeout(rid, attempt))
                if self.res[rid.0].state == ResState::Fetching
                    && self.res[rid.0].attempts == attempt =>
            {
                self.timeouts += 1;
                self.cancel_inflight(rid);
                self.retry_or_fail(rid, now);
            }
            Some(TimerKind::ResourceTimeout(..)) => {}
            Some(TimerKind::RetryFetch(rid)) if self.res[rid.0].state == ResState::Fetching => {
                self.fetch(rid, now);
            }
            Some(TimerKind::RetryFetch(_)) => {}
            Some(TimerKind::LoadDeadline) if self.onload.is_none() => {
                self.give_up(now);
            }
            Some(TimerKind::LoadDeadline) | None => {}
        }
        self.flush_conns();
        std::mem::take(&mut self.actions)
    }

    /// Whether onload has fired.
    pub fn done(&self) -> bool {
        self.onload.is_some()
    }

    /// Collect the measurements (valid once [`Browser::done`]).
    pub fn result(&self) -> LoadResult {
        let failed = self.res.iter().filter(|i| i.state == ResState::Failed).count() as u32;
        LoadResult {
            site: self.page.name.clone(),
            connect_end: self.connect_end.unwrap_or(SimTime::ZERO),
            first_paint: self.first_paint,
            dom_content_loaded: self.dcl,
            onload: self.onload,
            paints: self.paints.clone(),
            pushed_bytes: self.pushed_bytes,
            pushed_count: self.pushed_count,
            cancelled_pushes: self.cancelled_pushes,
            requests: self.requests,
            partial: self.partial || failed > 0,
            failed_resources: failed,
            retries: self.retries,
            timeouts: self.timeouts,
            conn_errors: self.conn_errors,
            waterfall: self.res.iter().map(|i| i.timing).collect(),
        }
    }

    // ------------------------------------------------------------------
    // Requests and connections
    // ------------------------------------------------------------------

    fn class_of(&self, rid: ResourceId) -> u8 {
        let r = self.page.resource(rid);
        match r.rtype {
            ResourceType::Html => 0,
            // Deferred (non-render-blocking) stylesheets are fetched like
            // async scripts, not like critical CSS — that is the whole
            // point of the critical-CSS rewrite.
            ResourceType::Css if !r.render_blocking => 3,
            ResourceType::Css | ResourceType::Font => 1,
            ResourceType::Js if r.script_mode == ScriptMode::Blocking => 2,
            ResourceType::Js | ResourceType::Other => 3,
            ResourceType::Image => 4,
        }
    }

    fn ensure_conn(&mut self, group: usize) {
        if self.conns.contains_key(&group) {
            return;
        }
        let slot = self.next_h2_slot.get(&group).copied().unwrap_or(0);
        let settings = Settings {
            enable_push: Some(self.cfg.enable_push),
            initial_window_size: Some(self.cfg.initial_window),
            ..Default::default()
        };
        // A parked machine reset into the client role is byte-identical to
        // a fresh `Connection::client` (see `reset_client`).
        let mut cs = match self.spare_conns.pop() {
            Some(mut cs) => {
                cs.conn.reset_client(settings);
                cs.digest_sent = false;
                cs
            }
            None => ConnState {
                conn: Connection::client(settings),
                chain: Vec::new(),
                digest_sent: false,
                slot,
            },
        };
        cs.slot = slot;
        cs.conn.set_limits(self.cfg.limits);
        if self.trace.is_on() {
            cs.conn.set_trace(self.trace.clone(), conn_label(group, slot));
        }
        if let Some(cache) = &self.hpack_cache {
            cs.conn.set_hpack_block_cache(cache.clone());
        }
        if let Some(cache) = &self.hpack_decode_cache {
            cs.conn.set_hpack_decode_cache(cache.clone());
        }
        self.conns.insert(group, cs);
        self.actions.push(BrowserAction::OpenConnection { group, slot });
    }

    fn discover(&mut self, rid: ResourceId, now: SimTime) {
        if self.res[rid.0].discovered {
            return;
        }
        self.res[rid.0].discovered = true;
        self.res[rid.0].timing.discovered.get_or_insert(now);
        self.trace.emit_at(now.as_micros(), TraceEvent::ResourceDiscovered { resource: rid.0 });
        if self.res[rid.0].state != ResState::Undiscovered {
            // Already being pushed.
            return;
        }
        if rid.0 != 0 && self.cfg.warm_cache.contains(&rid) {
            // Cache hit: no network, straight to evaluation.
            let info = &mut self.res[rid.0];
            info.state = ResState::Loaded;
            info.received = self.page.resource(rid).size;
            info.timing.loaded.get_or_insert(now);
            self.try_schedule_eval(rid, now);
            return;
        }
        self.fetch(rid, now);
    }

    /// Issue (or re-issue) the network fetch of `rid`. Shared between
    /// first discovery and retries after a timeout or transport error; a
    /// retry requests the resource afresh on a live connection.
    fn fetch(&mut self, rid: ResourceId, now: SimTime) {
        self.res[rid.0].state = ResState::Fetching;
        if let Some(timeout) = self.cfg.resource_timeout {
            let attempt = self.res[rid.0].attempts;
            self.set_timer(now + timeout, TimerKind::ResourceTimeout(rid, attempt));
        }
        let group = self.page.server_group_of(rid);
        if self.cfg.transport == TransportMode::H1 {
            // HTTP/1.1: queue on the group pool, highest class first.
            let class = self.class_of(rid);
            let seq = self.h1_seq;
            self.h1_seq += 1;
            let spare_pools = &mut self.spare_h1_pools;
            let pool =
                self.h1.entry(group).or_insert_with(|| spare_pools.pop().unwrap_or_default());
            pool.queue.push((class, seq, rid));
            pool.queue.sort();
            self.requests += 1;
            self.h1_dispatch(group);
            return;
        }
        self.ensure_conn(group);
        let class = self.class_of(rid);
        let cs = self.conns.get_mut(&group).expect("just ensured");
        // Reserve the id the connection will assign, then splice it into
        // the Chromium-style exclusive chain and send HEADERS with that
        // priority.
        let spec_stream = cs.conn.peek_next_stream_id();
        let spec = splice_into_chain(cs, spec_stream, class);
        // The common path sends the pre-built GET list; only the first
        // request on a warm-cache connection appends a digest, built live.
        let digest_headers;
        let headers: &[Header] = if !cs.digest_sent && !self.cfg.warm_cache.is_empty() {
            cs.digest_sent = true;
            let mut headers = self.scan.request_headers[rid.0].clone();
            let urls: Vec<String> = self
                .cfg
                .warm_cache
                .iter()
                .map(|&c| self.page.resource(c).url(self.page.host_of(c)))
                .collect();
            let digest = CacheDigest::build(&urls, 7);
            headers.push(Header::new("cache-digest", &digest.to_hex()));
            digest_headers = headers;
            &digest_headers
        } else {
            &self.scan.request_headers[rid.0]
        };
        let stream = cs.conn.request(headers, Some(spec));
        debug_assert_eq!(stream, spec_stream);
        self.stream_map.insert((group, stream), rid);
        self.requests += 1;
        self.trace
            .emit_at(now.as_micros(), TraceEvent::RequestSent { resource: rid.0, group, stream });
    }

    /// Assign queued HTTP/1.1 fetches to idle pool slots, opening new
    /// connections up to the per-origin limit.
    fn h1_dispatch(&mut self, group: usize) {
        loop {
            let spare_pools = &mut self.spare_h1_pools;
            let spare_conns = &mut self.spare_h1;
            let pool =
                self.h1.entry(group).or_insert_with(|| spare_pools.pop().unwrap_or_default());
            if pool.queue.is_empty() {
                return;
            }
            let idle =
                pool.slots.iter().position(|s| !s.dead && s.current.is_none() && s.conn.is_idle());
            // Dead slots keep their index but free up their place in the
            // six-connection budget.
            let live = pool.slots.iter().filter(|s| !s.dead).count();
            let slot = match idle {
                Some(i) => i,
                None if live < H1_POOL_SIZE => {
                    // A parked machine reset is byte-identical to a fresh
                    // `H1ClientConn::new` (see `H1ClientConn::reset`).
                    let conn = match spare_conns.pop() {
                        Some(mut c) => {
                            c.reset();
                            c
                        }
                        None => h2push_h1::H1ClientConn::new(),
                    };
                    pool.slots.push(H1Slot { conn, current: None, dead: false });
                    let slot = pool.slots.len() - 1;
                    self.actions.push(BrowserAction::OpenConnection { group, slot });
                    slot
                }
                None => return, // all six busy; ResponseComplete re-dispatches
            };
            let (_, _, rid) = pool.queue.remove(0);
            let host = self.page.host_of(rid).to_string();
            let path = self.page.resource(rid).path.clone();
            let pool = self.h1.get_mut(&group).expect("pool exists");
            let s = &mut pool.slots[slot];
            s.current = Some(rid);
            // Real HTTP/1.1 requests carry the full header set on every
            // request (≈ 400–700 bytes in 2018 traffic) — the repetition
            // HPACK exists to remove (§2.1). These are what an H2-vs-H1
            // comparison actually compared.
            s.conn.send_request(
                &host,
                &path,
                &[
                    (
                        "user-agent",
                        "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.140 Safari/537.36",
                    ),
                    (
                        "accept",
                        "text/html,application/xhtml+xml,application/xml;q=0.9,image/webp,image/apng,*/*;q=0.8",
                    ),
                    ("accept-encoding", "gzip, deflate, br"),
                    ("accept-language", "en-US,en;q=0.9,de;q=0.8"),
                    (
                        "cookie",
                        "session=8f14e45fceea167a5a36dedd4bea2543; consent=1; ab_bucket=B; _ga=GA1.2.1234567890.1512345678; _gid=GA1.2.987654321.1512345678",
                    ),
                ],
            );
            let bytes = s.conn.produce();
            if !bytes.is_empty() {
                self.actions.push(BrowserAction::SendBytes {
                    group,
                    slot,
                    bytes: Bytes::from(bytes),
                });
            }
        }
    }

    fn h1_on_bytes(&mut self, group: usize, slot: usize, bytes: &[u8], now: SimTime) {
        let Some(pool) = self.h1.get_mut(&group) else { return };
        let Some(s) = pool.slots.get_mut(slot) else { return };
        if s.dead {
            return; // late bytes for an abandoned connection
        }
        s.conn.receive(bytes);
        loop {
            let pool = self.h1.get_mut(&group).expect("pool exists");
            let s = &mut pool.slots[slot];
            let Some(ev) = s.conn.poll_event() else { break };
            let rid = s.current;
            match ev {
                h2push_h1::H1ClientEvent::ResponseHead { .. } => {}
                h2push_h1::H1ClientEvent::BodyData { len } => {
                    if let Some(rid) = rid {
                        self.body_arrived(rid, len, now);
                    }
                }
                h2push_h1::H1ClientEvent::ResponseComplete => {
                    let pool = self.h1.get_mut(&group).expect("pool exists");
                    let rid = pool.slots[slot].current.take();
                    if let Some(rid) = rid {
                        self.response_finished(rid, now);
                    }
                    self.h1_dispatch(group);
                    self.after_state_change(now);
                }
                h2push_h1::H1ClientEvent::Error { .. } => {
                    // A malformed response kills the connection, not the
                    // load: retire the slot and retry its resource.
                    self.conn_errors += 1;
                    let pool = self.h1.get_mut(&group).expect("pool exists");
                    let s = &mut pool.slots[slot];
                    s.dead = true;
                    let rid = s.current.take();
                    if let Some(rid) = rid {
                        if self.res[rid.0].state == ResState::Fetching {
                            self.retry_or_fail(rid, now);
                        }
                    }
                    self.h1_dispatch(group);
                    self.after_state_change(now);
                    break;
                }
            }
        }
    }

    fn flush_conns(&mut self) {
        let mut sched = FifoScheduler;
        for (&group, cs) in self.conns.iter_mut() {
            // `wants_send` is a cheap conservative pre-check: when it says
            // no, `produce` would return empty, so skip the stream walk.
            while cs.conn.wants_send() {
                let bytes = cs.conn.produce(usize::MAX, &mut sched);
                if bytes.is_empty() {
                    break;
                }
                self.actions.push(BrowserAction::SendBytes { group, slot: cs.slot, bytes });
            }
        }
    }

    fn drain_events(&mut self, group: usize, now: SimTime) {
        loop {
            let ev = match self.conns.get_mut(&group) {
                Some(cs) => cs.conn.poll_event(),
                None => None,
            };
            let Some(ev) = ev else { break };
            match ev {
                Event::Headers { .. } | Event::Settings(_) | Event::SettingsAck => {}
                Event::PushPromise { parent: _, promised, headers } => {
                    self.handle_push_promise(group, promised, &headers);
                }
                Event::Data { stream, len, end_stream } => {
                    self.handle_data(group, stream, len, end_stream, now);
                }
                Event::Reset { stream, .. } => {
                    // Server refused/cancelled: treat the resource as failed
                    // ⇒ re-request it plainly.
                    if let Some(rid) = self.stream_map.remove(&(group, stream)) {
                        if self.res[rid.0].state == ResState::Fetching {
                            self.res[rid.0].state = ResState::Undiscovered;
                            self.res[rid.0].discovered = false;
                            self.discover(rid, now);
                        }
                    }
                }
                Event::StreamError { stream, .. } => {
                    // One stream failed; the connection lives. Retry the
                    // resource (with backoff) or give up on it.
                    if let Some(cs) = self.conns.get_mut(&group) {
                        cs.chain.retain(|&(s, _)| s != stream);
                    }
                    if let Some(rid) = self.stream_map.remove(&(group, stream)) {
                        if self.res[rid.0].state == ResState::Fetching {
                            self.retry_or_fail(rid, now);
                        }
                    }
                }
                Event::Priority { .. } | Event::GoAway { .. } => {}
                Event::ConnectionError { .. } => {
                    // Fatal protocol error: abandon the connection, retry
                    // every in-flight resource on a fresh one.
                    self.conn_errors += 1;
                    self.conn_failed(group, now);
                }
            }
        }
    }

    /// The HTTP/2 connection to `group` died: drop it (a later fetch
    /// reopens on the next slot) and retry or fail every resource that was
    /// in flight on it.
    fn conn_failed(&mut self, group: usize, now: SimTime) {
        self.trace.emit_at(now.as_micros(), TraceEvent::ConnError { group });
        if let Some(cs) = self.conns.remove(&group) {
            self.next_h2_slot.insert(group, cs.slot + 1);
            self.park_conn(cs);
        }
        let orphaned: Vec<(usize, u32)> =
            self.stream_map.keys().filter(|&&(g, _)| g == group).copied().collect();
        let mut rids: Vec<ResourceId> =
            orphaned.iter().filter_map(|k| self.stream_map.remove(k)).collect();
        // HashMap iteration order is arbitrary; sort so retry timers and
        // main-thread slots are assigned deterministically.
        rids.sort_unstable();
        rids.dedup();
        for rid in rids {
            if self.res[rid.0].state == ResState::Fetching {
                self.retry_or_fail(rid, now);
            }
        }
        self.after_state_change(now);
    }

    /// Book another attempt for `rid`: schedule a backed-off re-fetch, or
    /// fail the resource once the retry budget is spent.
    fn retry_or_fail(&mut self, rid: ResourceId, now: SimTime) {
        self.res[rid.0].attempts += 1;
        if self.res[rid.0].attempts > self.cfg.max_retries {
            self.fail_resource(rid, now);
            return;
        }
        self.retries += 1;
        let shift = (self.res[rid.0].attempts - 1).min(16);
        let delay = SimDuration::from_micros(self.cfg.retry_backoff.as_micros() << shift);
        self.set_timer(now + delay, TimerKind::RetryFetch(rid));
    }

    /// Cancel whatever transfer currently carries `rid`: reset its HTTP/2
    /// stream, or retire the HTTP/1.1 connection serving it (H1 cannot
    /// abandon a response without closing), and drop any queued fetch.
    fn cancel_inflight(&mut self, rid: ResourceId) {
        if let Some(key) = self.stream_map.iter().find(|&(_, &r)| r == rid).map(|(&k, _)| k) {
            self.stream_map.remove(&key);
            if let Some(cs) = self.conns.get_mut(&key.0) {
                cs.conn.reset(key.1, ErrorCode::Cancel);
                cs.chain.retain(|&(s, _)| s != key.1);
            }
        }
        let group = self.page.server_group_of(rid);
        if let Some(pool) = self.h1.get_mut(&group) {
            for s in pool.slots.iter_mut() {
                if s.current == Some(rid) {
                    s.current = None;
                    s.dead = true;
                }
            }
            pool.queue.retain(|&(_, _, r)| r != rid);
        }
    }

    /// Give up on `rid` for good. The load completes *around* the hole:
    /// anything gated on this resource (parser, CSSOM, defer queue,
    /// onload) treats it as settled.
    fn fail_resource(&mut self, rid: ResourceId, now: SimTime) {
        self.cancel_inflight(rid);
        if matches!(self.res[rid.0].state, ResState::Evaluated | ResState::Failed) {
            return;
        }
        self.res[rid.0].state = ResState::Failed;
        self.trace.emit_at(now.as_micros(), TraceEvent::ResourceFailed { resource: rid.0 });
        if rid.0 == 0 {
            // The document itself is unrecoverable: keep whatever rendered.
            self.give_up(now);
            return;
        }
        // Unblock the parser, mirroring finish_eval minus child discovery.
        match self.blocked {
            Some(Blocked::Script(b)) if b == rid => {
                self.blocked = None;
                self.stop_idx += 1;
                self.advance_parser(now);
            }
            Some(Blocked::Script(b)) => {
                // A failed stylesheet may satisfy the CSSOM condition of
                // the blocking script we're parked on.
                self.try_schedule_eval(b, now);
            }
            Some(Blocked::InlineCss(idx)) => {
                let s = self.page.inline_scripts[idx];
                if self.cssom_ready_before(s.offset) {
                    self.blocked = Some(Blocked::InlineExec(idx));
                    let dur =
                        SimDuration::from_micros((s.exec_us as f64 * self.cfg.cpu_scale) as u64);
                    let done = self.schedule_main_thread(now, dur);
                    self.set_timer(done, TimerKind::InlineDone(idx));
                }
            }
            _ => {}
        }
        if self.parser_done {
            self.process_defers(now);
        }
        self.after_state_change(now);
    }

    /// Close out the load as partial: whatever rendered by now is the
    /// result. The paint curve is *not* forced to 1.0 — SpeedIndex and PLT
    /// measure what actually made it to the screen.
    fn give_up(&mut self, now: SimTime) {
        if self.onload.is_some() {
            return;
        }
        self.partial = true;
        self.parser_done = true;
        if self.dcl.is_none() {
            self.dcl = Some(now);
            self.trace.emit_at(now.as_micros(), TraceEvent::DomContentLoaded);
        }
        self.onload = Some(now);
        self.trace.emit_at(now.as_micros(), TraceEvent::Onload);
    }

    fn handle_push_promise(&mut self, group: usize, promised: u32, headers: &[Header]) {
        let get = |name: &str| {
            headers
                .iter()
                .find(|h| h.name == name.as_bytes())
                .map(|h| String::from_utf8_lossy(&h.value).to_string())
                .unwrap_or_default()
        };
        let authority = get(":authority");
        let path = get(":path");
        let rid = self
            .page
            .resources
            .iter()
            .find(|r| r.path == path && self.page.origins[r.origin].host == authority)
            .map(|r| r.id);
        match rid {
            Some(id)
                if self.res[id.0].state == ResState::Undiscovered
                    && self.cfg.warm_cache.contains(&id) =>
            {
                // Already cached: cancel, like real clients do — by which
                // time the object may be in flight (§2.1).
                let cs = self.conns.get_mut(&group).expect("push on unknown group");
                cs.conn.reset(promised, ErrorCode::Cancel);
                self.cancelled_pushes += 1;
                self.trace.emit(TraceEvent::PushCancelled { group, stream: promised });
            }
            Some(id) if self.res[id.0].state == ResState::Undiscovered => {
                self.res[id.0].state = ResState::Fetching;
                self.res[id.0].pushed = true;
                self.stream_map.insert((group, promised), id);
                self.trace.emit(TraceEvent::PushAccepted {
                    resource: id.0,
                    group,
                    stream: promised,
                });
                // Chromium reprioritizes accepted pushes into its exclusive
                // dependency chain by resource type, exactly like its own
                // requests — otherwise later requests (which splice
                // *exclusively* under the document, adopting the pushes as
                // children) would starve pushed critical resources behind
                // low-priority content.
                let class = self.class_of(id);
                let cs = self.conns.get_mut(&group).expect("push on unknown group");
                let spec = splice_into_chain(cs, promised, class);
                cs.conn.send_priority(promised, spec);
            }
            _ => {
                // Duplicate (already requested) or unknown: cancel. Bytes
                // already in flight still arrive and are discarded — the
                // paper's §2.1 "can be already in flight" caveat.
                let cs = self.conns.get_mut(&group).expect("push on unknown group");
                cs.conn.reset(promised, ErrorCode::Cancel);
                self.cancelled_pushes += 1;
                self.trace.emit(TraceEvent::PushCancelled { group, stream: promised });
            }
        }
    }

    fn handle_data(&mut self, group: usize, stream: u32, len: usize, end: bool, now: SimTime) {
        let Some(&rid) = self.stream_map.get(&(group, stream)) else {
            return; // discarded push data after cancel
        };
        self.body_arrived(rid, len, now);
        if end {
            // Retire the stream from the priority chain.
            if let Some(cs) = self.conns.get_mut(&group) {
                cs.chain.retain(|&(s, _)| s != stream);
            }
            self.response_finished(rid, now);
        }
        self.after_state_change(now);
    }

    /// Transport-independent: body bytes of `rid` arrived.
    fn body_arrived(&mut self, rid: ResourceId, len: usize, now: SimTime) {
        let info = &mut self.res[rid.0];
        info.received += len;
        if info.pushed {
            self.pushed_bytes += len as u64;
        }
        if rid.0 == 0 {
            self.available = info.received.min(self.page.html_size());
            self.scan(now);
            self.advance_parser(now);
        }
    }

    /// Transport-independent: the response for `rid` completed.
    fn response_finished(&mut self, rid: ResourceId, now: SimTime) {
        let info = &mut self.res[rid.0];
        if info.state == ResState::Fetching {
            info.state = ResState::Loaded;
            info.timing.loaded.get_or_insert(now);
            info.timing.pushed = info.pushed;
            self.trace.emit_at(now.as_micros(), TraceEvent::ResourceLoaded { resource: rid.0 });
        }
        if info.pushed {
            self.pushed_count += 1;
        }
        self.try_schedule_eval(rid, now);
    }

    // ------------------------------------------------------------------
    // Preload scanner and parser
    // ------------------------------------------------------------------

    /// Discover HTML references. With the preload scanner, everything in
    /// the *received* bytes is found immediately (even while the parser is
    /// blocked); without it, only references the *parser* has passed are
    /// seen.
    fn scan(&mut self, now: SimTime) {
        // Without the scanner the parser still *reads* the tag it is
        // standing on, hence the +1.
        let horizon = if self.cfg.preload_scanner {
            self.available
        } else {
            self.parsed.saturating_add(1).min(self.available)
        };
        while self.next_ref < self.scan.html_refs.len()
            && self.scan.html_refs[self.next_ref].0 < horizon
        {
            let (_, rid) = self.scan.html_refs[self.next_ref];
            self.next_ref += 1;
            self.discover(rid, now);
        }
    }

    fn cssom_ready_before(&self, offset: usize) -> bool {
        // Every render-blocking stylesheet appearing earlier in the
        // document must be evaluated (a failed one stops gating — real
        // browsers proceed without the sheet).
        self.page.resources.iter().all(|r| {
            let gating = r.rtype == ResourceType::Css
                && r.render_blocking
                && matches!(r.discovery, Discovery::Html { offset: o } if o < offset);
            !gating || matches!(self.res[r.id.0].state, ResState::Evaluated | ResState::Failed)
        })
    }

    fn advance_parser(&mut self, now: SimTime) {
        loop {
            if self.parser_done || self.blocked.is_some() {
                return;
            }
            let limit = self.available;
            let stop = self.scan.stops.get(self.stop_idx).copied();
            match stop {
                Some((off, kind)) if off < limit => {
                    self.parsed = self.parsed.max(off);
                    if !self.cfg.preload_scanner {
                        // The parser has now read everything up to (and
                        // including) this tag.
                        self.scan(now);
                    }
                    match kind {
                        StopKind::Script(rid) => {
                            if self.res[rid.0].state == ResState::Evaluated {
                                self.stop_idx += 1;
                                continue;
                            }
                            self.blocked = Some(Blocked::Script(rid));
                            self.try_schedule_eval(rid, now);
                            return;
                        }
                        StopKind::Inline(idx) => {
                            if self.inline_done[idx] {
                                self.stop_idx += 1;
                                continue;
                            }
                            let s = self.page.inline_scripts[idx];
                            if s.needs_cssom && !self.cssom_ready_before(s.offset) {
                                self.blocked = Some(Blocked::InlineCss(idx));
                                return;
                            }
                            self.blocked = Some(Blocked::InlineExec(idx));
                            let dur = SimDuration::from_micros(
                                (s.exec_us as f64 * self.cfg.cpu_scale) as u64,
                            );
                            let done = self.schedule_main_thread(now, dur);
                            let token = self.set_timer(done, TimerKind::InlineDone(idx));
                            let _ = token;
                            return;
                        }
                    }
                }
                _ => {
                    self.parsed = limit;
                    if !self.cfg.preload_scanner {
                        self.scan(now);
                    }
                    if self.parsed >= self.page.html_size()
                        && self.res[0].state != ResState::Fetching
                        && self.res[0].state != ResState::Undiscovered
                    {
                        self.parser_done = true;
                        self.build_defer_queue();
                        self.process_defers(now);
                    }
                    return;
                }
            }
        }
    }

    fn build_defer_queue(&mut self) {
        let mut q: Vec<(usize, ResourceId)> = self
            .page
            .resources
            .iter()
            .filter(|r| {
                r.rtype == ResourceType::Js
                    && r.script_mode == ScriptMode::Defer
                    && self.res[r.id.0].discovered
            })
            .filter_map(|r| match r.discovery {
                Discovery::Html { offset } => Some((offset, r.id)),
                _ => None,
            })
            .collect();
        q.sort();
        self.defer_queue = q.into_iter().map(|(_, id)| id).collect();
    }

    fn process_defers(&mut self, now: SimTime) {
        // Execute deferred scripts in order; DCL after the last.
        for i in 0..self.defer_queue.len() {
            let rid = self.defer_queue[i];
            match self.res[rid.0].state {
                ResState::Evaluated | ResState::Failed => continue,
                ResState::Loaded => {
                    self.try_schedule_eval(rid, now);
                    return;
                }
                _ => return, // still fetching; resumes on load
            }
        }
        if self.dcl.is_none() {
            self.dcl = Some(now);
            self.trace.emit_at(now.as_micros(), TraceEvent::DomContentLoaded);
        }
    }

    // ------------------------------------------------------------------
    // Main-thread evaluation
    // ------------------------------------------------------------------

    fn schedule_main_thread(&mut self, now: SimTime, dur: SimDuration) -> SimTime {
        let start = self.main_free_at.max(now);
        let done = start + dur;
        self.main_free_at = done;
        done
    }

    fn set_timer(&mut self, at: SimTime, kind: TimerKind) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        self.timers.insert(token, kind);
        self.actions.push(BrowserAction::SetTimer { at, token });
        token
    }

    /// Schedule the evaluation (exec/parse/decode) of a loaded resource if
    /// its gating conditions hold.
    fn try_schedule_eval(&mut self, rid: ResourceId, now: SimTime) {
        if rid.0 == 0 {
            // The document has no evaluation of its own.
            if self.res[0].state == ResState::Loaded {
                self.res[0].state = ResState::Evaluated;
                self.advance_parser(now);
            }
            return;
        }
        let page = Arc::clone(&self.page);
        let r = page.resource(rid);
        let info = &mut self.res[rid.0];
        if info.state != ResState::Loaded || info.eval_scheduled {
            return;
        }
        let ready = match r.rtype {
            ResourceType::Js => match r.script_mode {
                ScriptMode::Blocking => {
                    // Executes only at parser position, after earlier CSSOM.
                    let at_parser = self.blocked == Some(Blocked::Script(rid));
                    let off = match r.discovery {
                        Discovery::Html { offset } => offset,
                        _ => 0,
                    };
                    at_parser && self.cssom_ready_before(off)
                }
                ScriptMode::Async => true,
                ScriptMode::Defer => {
                    // Only as the head of the defer queue after parsing
                    // (failed defers are skipped over, not waited on).
                    self.parser_done
                        && self.defer_queue.iter().find(|&&d| {
                            !matches!(self.res[d.0].state, ResState::Evaluated | ResState::Failed)
                        }) == Some(&rid)
                }
            },
            _ => true,
        };
        if !ready {
            return;
        }
        self.res[rid.0].eval_scheduled = true;
        let dur = SimDuration::from_micros((r.exec_us as f64 * self.cfg.cpu_scale) as u64);
        let done = self.schedule_main_thread(now, dur);
        self.set_timer(done, TimerKind::EvalDone(rid));
    }

    fn finish_eval(&mut self, rid: ResourceId, now: SimTime) {
        self.res[rid.0].state = ResState::Evaluated;
        self.res[rid.0].timing.evaluated.get_or_insert(now);
        self.trace.emit_at(now.as_micros(), TraceEvent::ResourceEvaluated { resource: rid.0 });
        let page = Arc::clone(&self.page);
        let r = page.resource(rid);
        // Children discovered by this resource.
        let children: Vec<ResourceId> = self
            .page
            .resources
            .iter()
            .filter(|c| match c.discovery {
                Discovery::Css { parent } => parent == rid && r.rtype == ResourceType::Css,
                Discovery::Script { parent } => parent == rid,
                _ => false,
            })
            .map(|c| c.id)
            .collect();
        for c in children {
            self.discover(c, now);
        }
        // Unblock the parser.
        match self.blocked {
            Some(Blocked::Script(b)) if b == rid => {
                self.blocked = None;
                self.stop_idx += 1;
                self.advance_parser(now);
            }
            Some(Blocked::Script(b)) => {
                // A stylesheet finishing may satisfy the CSSOM condition of
                // the blocking script we're parked on.
                self.try_schedule_eval(b, now);
            }
            Some(Blocked::InlineCss(idx)) => {
                let s = self.page.inline_scripts[idx];
                if self.cssom_ready_before(s.offset) {
                    self.blocked = Some(Blocked::InlineExec(idx));
                    let dur =
                        SimDuration::from_micros((s.exec_us as f64 * self.cfg.cpu_scale) as u64);
                    let done = self.schedule_main_thread(now, dur);
                    self.set_timer(done, TimerKind::InlineDone(idx));
                }
            }
            _ => {}
        }
        if self.parser_done {
            self.process_defers(now);
        }
        self.after_state_change(now);
    }

    // ------------------------------------------------------------------
    // Rendering and completion
    // ------------------------------------------------------------------

    fn render_unblocked(&self) -> bool {
        if self.parsed < self.page.head_end {
            return false;
        }
        self.page.resources.iter().all(|r| {
            let gating = r.rtype == ResourceType::Css
                && r.render_blocking
                && matches!(r.discovery, Discovery::Html { offset } if offset <= self.parsed);
            !gating || matches!(self.res[r.id.0].state, ResState::Evaluated | ResState::Failed)
        })
    }

    fn completeness(&self) -> f64 {
        if self.scan.total_weight <= 0.0 {
            return 1.0;
        }
        let mut done = 0.0;
        for t in &self.page.text_paints {
            if t.offset <= self.parsed {
                done += t.weight;
            }
        }
        for r in &self.page.resources {
            if !r.above_fold || r.visual_weight <= 0.0 {
                continue;
            }
            if self.res[r.id.0].state != ResState::Evaluated {
                continue;
            }
            // Layout must have reached an HTML-referenced resource.
            let laid_out = match r.discovery {
                Discovery::Html { offset } => offset <= self.parsed,
                _ => true,
            };
            if laid_out {
                done += r.visual_weight;
            }
        }
        (done / self.scan.total_weight).min(1.0)
    }

    fn after_state_change(&mut self, now: SimTime) {
        // Paint.
        if self.render_unblocked() {
            let c = self.completeness();
            if c > self.last_completeness + 1e-12 {
                self.last_completeness = c;
                if self.first_paint.is_none() {
                    self.trace.emit_at(now.as_micros(), TraceEvent::FirstPaint);
                }
                self.first_paint.get_or_insert(now);
                self.paints.push(PaintSample { time: now, completeness: c });
            }
        }
        // Loads done?
        if self.onload.is_none()
            && self.parser_done
            && self.dcl.is_some()
            && self.res.iter().all(|i| {
                matches!(i.state, ResState::Evaluated | ResState::Undiscovered | ResState::Failed)
            })
        {
            self.onload = Some(now);
            self.trace.emit_at(now.as_micros(), TraceEvent::Onload);
            // Whatever is painted by onload is the final frame: close the
            // visual progress curve — unless resources failed, in which
            // case the curve honestly stays below 1.0 (SpeedIndex then
            // integrates the missing fraction up to onload).
            let any_failed = self.res.iter().any(|i| i.state == ResState::Failed);
            if !any_failed && self.last_completeness < 1.0 {
                self.last_completeness = 1.0;
                if self.first_paint.is_none() {
                    self.trace.emit_at(now.as_micros(), TraceEvent::FirstPaint);
                }
                self.first_paint.get_or_insert(now);
                self.paints.push(PaintSample { time: now, completeness: 1.0 });
            }
        }
    }
}
