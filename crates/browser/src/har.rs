//! HAR 1.2 export of a replayed page load.
//!
//! Turns a [`LoadResult`] plus its [`Page`] into an HTTP-Archive document
//! that standard waterfall viewers (browser devtools, HAR analyzers) can
//! open — the replay-testbed equivalent of saving a devtools capture, and
//! a convenient way to eyeball what a push strategy did to the load.

use crate::result::LoadResult;
use h2push_netsim::SimTime;
use h2push_webmodel::Page;
use serde_json::{json, Value};

fn iso(t: SimTime) -> String {
    // Nominal wall-clock epoch of every replay (the sim clock starts at
    // 0): December 4 2018, the first day of CoNEXT '18.
    let total_ms = t.as_micros() / 1000;
    let (s, ms) = (total_ms / 1000, total_ms % 1000);
    let (m, s) = (s / 60, s % 60);
    format!("2018-12-04T00:{m:02}:{s:02}.{ms:03}Z")
}

/// Build the HAR document.
pub fn to_har(page: &Page, load: &LoadResult) -> Value {
    let t0 = SimTime::ZERO;
    let rel = |t: Option<SimTime>| -> Value {
        match t {
            Some(t) => json!(t.since(t0).as_millis_f64()),
            None => json!(-1),
        }
    };
    let entries: Vec<Value> = page
        .resources
        .iter()
        .enumerate()
        .filter_map(|(i, r)| {
            let w = load.waterfall.get(i)?;
            let started = w.discovered?;
            let loaded = w.loaded;
            let time = loaded.map(|l| l.since(started).as_millis_f64()).unwrap_or(-1.0);
            Some(json!({
                "pageref": "page_1",
                "startedDateTime": iso(started),
                "time": time,
                "request": {
                    "method": "GET",
                    "url": r.url(page.host_of(r.id)),
                    "httpVersion": "HTTP/2",
                    "headers": [],
                    "queryString": [],
                    "cookies": [],
                    "headersSize": -1,
                    "bodySize": 0,
                },
                "response": {
                    "status": 200,
                    "statusText": "OK",
                    "httpVersion": "HTTP/2",
                    "headers": [],
                    "cookies": [],
                    "content": { "size": r.size, "mimeType": r.rtype.mime() },
                    "redirectURL": "",
                    "headersSize": -1,
                    "bodySize": r.size,
                },
                "cache": {},
                "timings": {
                    "blocked": -1,
                    "dns": -1,
                    "connect": -1,
                    "send": 0,
                    "wait": -1,
                    "receive": time,
                },
                // Custom fields (underscore-prefixed per the HAR spec).
                "_resourceType": r.rtype.label(),
                "_pushed": w.pushed,
                "_evaluatedAt": rel(w.evaluated),
            }))
        })
        .collect();
    json!({
        "log": {
            "version": "1.2",
            "creator": { "name": "h2push", "version": env!("CARGO_PKG_VERSION") },
            "pages": [{
                "startedDateTime": iso(SimTime::ZERO),
                "id": "page_1",
                "title": page.name,
                "pageTimings": {
                    "onContentLoad": rel(load.dom_content_loaded),
                    "onLoad": rel(load.onload),
                    "_firstPaint": rel(load.first_paint),
                    "_connectEnd": json!(load.connect_end.as_millis_f64()),
                    "_speedIndex": json!(load.speed_index()),
                }
            }],
            "entries": entries,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::{PaintSample, ResourceTiming};
    use h2push_webmodel::{PageBuilder, ResourceSpec};

    fn fixture() -> (Page, LoadResult) {
        let mut b = PageBuilder::new("har-test", "har.test", 10_000, 1_000);
        b.resource(ResourceSpec::css(0, 4_000, 100, 0.5));
        let page = b.build();
        let t = SimTime::from_millis;
        let load = LoadResult {
            site: page.name.clone(),
            connect_end: t(150),
            first_paint: Some(t(300)),
            dom_content_loaded: Some(t(350)),
            onload: Some(t(400)),
            paints: vec![PaintSample { time: t(300), completeness: 1.0 }],
            pushed_bytes: 4_000,
            pushed_count: 1,
            cancelled_pushes: 0,
            requests: 1,
            partial: false,
            failed_resources: 0,
            retries: 0,
            timeouts: 0,
            conn_errors: 0,
            waterfall: vec![
                ResourceTiming {
                    discovered: Some(t(0)),
                    loaded: Some(t(280)),
                    evaluated: None,
                    pushed: false,
                },
                ResourceTiming {
                    discovered: Some(t(200)),
                    loaded: Some(t(290)),
                    evaluated: Some(t(295)),
                    pushed: true,
                },
            ],
        };
        (page, load)
    }

    #[test]
    fn har_has_pages_and_entries() {
        let (page, load) = fixture();
        let har = to_har(&page, &load);
        assert_eq!(har["log"]["version"], "1.2");
        assert_eq!(har["log"]["entries"].as_array().unwrap().len(), 2);
        assert_eq!(har["log"]["pages"][0]["title"], "har-test");
        assert_eq!(har["log"]["pages"][0]["pageTimings"]["onLoad"], 400.0);
    }

    #[test]
    fn pushed_entries_are_marked() {
        let (page, load) = fixture();
        let har = to_har(&page, &load);
        let entries = har["log"]["entries"].as_array().unwrap();
        assert_eq!(entries[0]["_pushed"], false);
        assert_eq!(entries[1]["_pushed"], true);
        assert_eq!(entries[1]["response"]["content"]["mimeType"], "text/css");
    }

    #[test]
    fn timestamps_are_iso_like() {
        let (page, load) = fixture();
        let har = to_har(&page, &load);
        let s = har["log"]["entries"][1]["startedDateTime"].as_str().unwrap();
        assert!(s.starts_with("2018-12-04T00:"), "got {s}");
        assert!(s.ends_with('Z'));
    }

    #[test]
    fn serializes_to_valid_json_string() {
        let (page, load) = fixture();
        let text = serde_json::to_string_pretty(&to_har(&page, &load)).unwrap();
        let _: Value = serde_json::from_str(&text).unwrap();
    }
}
