//! # h2push-browser — a deterministic browser load/render model
//!
//! The testbed's stand-in for the automated Chromium 64 the paper drives
//! with browsertime: an event-driven model of page loading (incremental
//! parsing, preload scanning, request prioritization via Chromium's
//! exclusive H2 dependency chains, CSSOM/script blocking, a single
//! contended main thread) and rendering (render-blocking CSS, progressive
//! text paint, above-the-fold images), producing the W3C-timing events and
//! the visual-progress curve that PLT and SpeedIndex are computed from.

pub mod engine;
pub mod har;
pub mod result;

pub use engine::{Browser, BrowserAction, BrowserConfig, PreparedScan, TransportMode};
pub use har::to_har;
pub use result::{LoadResult, PaintSample, ResourceTiming};

#[cfg(test)]
mod tests {
    use super::*;
    use h2push_h2proto::{Connection, DefaultScheduler, Event, Settings};
    use h2push_hpack::Header;
    use h2push_netsim::{EventQueue, SimDuration, SimTime};
    use h2push_webmodel::{Page, PageBuilder, RecordDb, ResourceId, ResourceSpec};
    use std::collections::{HashMap, VecDeque};
    use std::sync::Arc;

    /// A zero-latency in-memory harness: instant network, per-group replay
    /// servers answering from a RecordDb, timers honored on a virtual
    /// clock. (The full latency/bandwidth testbed lives in
    /// `h2push-testbed`; this harness isolates browser semantics.)
    struct MiniBed {
        page: Arc<Page>,
        db: RecordDb,
        push_on_html: Vec<ResourceId>,
        /// Which resource's request triggers the pushes (default: the HTML).
        push_trigger: ResourceId,
        /// Resources whose requests the server swallows without answering
        /// (a stalled origin, for exercising timeouts and retries).
        blackhole: Vec<ResourceId>,
        servers: HashMap<usize, (Connection, DefaultScheduler)>,
        /// Pending timer tokens on the shared simulator queue — the same
        /// timing-wheel `EventQueue` the full testbed schedules with, so
        /// MiniBed's tie-break (insertion order at equal instants) matches
        /// the real bed instead of a hand-rolled heap's token order.
        timers: EventQueue<u64>,
        now: SimTime,
        connect_latency: SimDuration,
    }

    impl MiniBed {
        fn new(page: Page, push_on_html: Vec<ResourceId>) -> Self {
            MiniBed {
                db: RecordDb::record(&page),
                page: Arc::new(page),
                push_on_html,
                push_trigger: ResourceId(0),
                blackhole: Vec::new(),
                servers: HashMap::new(),
                timers: EventQueue::new(),
                now: SimTime::ZERO,
                connect_latency: SimDuration::from_millis(30),
            }
        }

        fn run(&mut self, cfg: BrowserConfig) -> LoadResult {
            let mut browser = Browser::new(self.page.clone(), cfg);
            let mut pending: VecDeque<BrowserAction> = browser.start(self.now).into();
            let mut connects: Vec<(SimTime, usize)> = Vec::new();
            for _ in 0..1_000_000 {
                // Apply all actions, possibly cascading.
                while let Some(a) = pending.pop_front() {
                    match a {
                        BrowserAction::OpenConnection { group, .. } => {
                            self.servers.insert(
                                group,
                                (Connection::server(Settings::default()), DefaultScheduler::new()),
                            );
                            connects.push((self.now + self.connect_latency, group));
                        }
                        BrowserAction::SendBytes { group, bytes, .. } => {
                            let (server, _) = self.servers.get_mut(&group).unwrap();
                            server.receive(&bytes);
                            self.serve(group);
                            let out = self.pump_server(group);
                            if !out.is_empty() {
                                pending.extend(browser.on_bytes(group, 0, &out, self.now));
                            }
                        }
                        BrowserAction::SetTimer { at, token } => {
                            self.timers.push(at, token);
                        }
                    }
                }
                if browser.done() {
                    return browser.result();
                }
                // Advance the clock: earliest of timer or pending connect.
                let next_timer = self.timers.peek_time();
                let next_conn = connects.iter().map(|c| c.0).min();
                match (next_timer, next_conn) {
                    (Some(t), Some(c)) if c <= t => {
                        self.now = c;
                        let i = connects.iter().position(|x| x.0 == c).unwrap();
                        let (_, group) = connects.remove(i);
                        pending.extend(browser.on_connected(group, 0, self.now));
                    }
                    (Some(t), _) => {
                        self.now = t;
                        let (_, token) = self.timers.pop().unwrap();
                        pending.extend(browser.on_timer(token, self.now));
                    }
                    (None, Some(c)) => {
                        self.now = c;
                        let i = connects.iter().position(|x| x.0 == c).unwrap();
                        let (_, group) = connects.remove(i);
                        pending.extend(browser.on_connected(group, 0, self.now));
                    }
                    (None, None) => panic!("harness stalled before onload"),
                }
            }
            panic!("harness did not converge");
        }

        /// Answer any newly arrived requests on `group`'s server.
        fn serve(&mut self, group: usize) {
            let page = self.page.clone();
            let (server, _) = self.servers.get_mut(&group).unwrap();
            while let Some(ev) = server.poll_event() {
                if let Event::Headers { stream, headers, .. } = ev {
                    let get = |n: &str| {
                        headers
                            .iter()
                            .find(|h| h.name == n.as_bytes())
                            .map(|h| String::from_utf8_lossy(&h.value).to_string())
                            .unwrap_or_default()
                    };
                    let (host, path) = (get(":authority"), get(":path"));
                    let rec = self
                        .db
                        .lookup(&host, &path)
                        .unwrap_or_else(|| panic!("404 {host}{path}"))
                        .clone();
                    if self.blackhole.contains(&rec.resource) {
                        continue; // swallow the request: the stream stalls
                    }
                    if rec.resource == self.push_trigger {
                        for &pid in &self.push_on_html {
                            let r = page.resource(pid);
                            let req = vec![
                                Header::new(":method", "GET"),
                                Header::new(":scheme", "https"),
                                Header::new(":authority", &page.origins[r.origin].host),
                                Header::new(":path", &r.path),
                            ];
                            if let Some(sid) = server.push_promise(stream, &req) {
                                server.respond(sid, &[Header::new(":status", "200")], false);
                                server.queue_body(sid, r.size, true);
                            }
                        }
                    }
                    server.respond(stream, &[Header::new(":status", "200")], false);
                    server.queue_body(stream, rec.body_len, true);
                }
            }
        }

        fn pump_server(&mut self, group: usize) -> Vec<u8> {
            let (server, sched) = self.servers.get_mut(&group).unwrap();
            let mut out = Vec::new();
            loop {
                let bytes = server.produce(usize::MAX, sched);
                if bytes.is_empty() {
                    break;
                }
                out.extend_from_slice(&bytes);
            }
            out
        }
    }

    fn simple_page() -> Page {
        let mut b = PageBuilder::new("unit", "unit.test", 30_000, 3_000);
        b.resource(ResourceSpec::css(0, 10_000, 200, 0.4));
        b.resource(ResourceSpec::js(0, 15_000, 5_000, 20_000));
        b.resource(ResourceSpec::image(0, 20_000, 10_000, true, 2.0));
        b.text_paint(8_000, 1.0);
        b.text_paint(25_000, 1.0);
        b.build()
    }

    #[test]
    fn full_load_completes_and_orders_events() {
        let page = simple_page();
        let mut bed = MiniBed::new(page, vec![]);
        let r = bed.run(BrowserConfig::default());
        assert!(r.finished());
        let fp = r.first_paint.unwrap();
        let dcl = r.dom_content_loaded.unwrap();
        let onload = r.onload.unwrap();
        assert!(r.connect_end <= fp);
        assert!(fp <= onload);
        assert!(dcl <= onload);
        assert!(r.plt() > 0.0);
        assert!(r.speed_index() > 0.0);
        assert_eq!(r.requests, 4); // html + css + js + image
        assert_eq!(r.pushed_count, 0);
    }

    #[test]
    fn visual_progress_is_monotone_and_complete() {
        let page = simple_page();
        let r = MiniBed::new(page, vec![]).run(BrowserConfig::default());
        let mut last = 0.0;
        for p in &r.paints {
            assert!(p.completeness >= last, "monotone");
            assert!(p.completeness <= 1.0 + 1e-9);
            last = p.completeness;
        }
        assert!((last - 1.0).abs() < 1e-9, "curve ends complete");
    }

    #[test]
    fn push_delivers_without_request() {
        let page = simple_page();
        let css = ResourceId(1);
        let r = MiniBed::new(page, vec![css]).run(BrowserConfig::default());
        assert!(r.finished());
        assert_eq!(r.pushed_count, 1);
        assert_eq!(r.pushed_bytes, 10_000);
        // CSS no longer requested: html + js + image.
        assert_eq!(r.requests, 3);
        assert_eq!(r.cancelled_pushes, 0);
    }

    #[test]
    fn no_push_setting_suppresses_pushes() {
        let page = simple_page();
        let css = ResourceId(1);
        let cfg = BrowserConfig { enable_push: false, ..Default::default() };
        let r = MiniBed::new(page, vec![css]).run(cfg);
        assert!(r.finished());
        assert_eq!(r.pushed_count, 0, "server honored SETTINGS_ENABLE_PUSH=0");
        assert_eq!(r.requests, 4);
    }

    #[test]
    fn blocking_script_delays_dcl_by_execution_time() {
        // Same page with slow vs fast script execution: DCL must move by
        // roughly the difference.
        let mk = |exec_us: u64| {
            let mut b = PageBuilder::new("exec", "exec.test", 20_000, 2_000);
            b.resource(ResourceSpec::js(0, 5_000, 1_000, exec_us));
            b.text_paint(10_000, 1.0);
            b.build()
        };
        let fast = MiniBed::new(mk(1_000), vec![]).run(BrowserConfig::default());
        let slow = MiniBed::new(mk(301_000), vec![]).run(BrowserConfig::default());
        let delta = slow.dom_content_loaded.unwrap().since(fast.dom_content_loaded.unwrap());
        assert!((280.0..330.0).contains(&delta.as_millis_f64()), "expected ~300 ms, got {delta}");
    }

    #[test]
    fn cpu_scale_slows_the_load() {
        let page = simple_page();
        let r1 = MiniBed::new(page.clone(), vec![]).run(BrowserConfig::default());
        let r2 =
            MiniBed::new(page, vec![]).run(BrowserConfig { cpu_scale: 3.0, ..Default::default() });
        assert!(r2.plt() > r1.plt());
    }

    #[test]
    fn hidden_font_loads_after_css() {
        let mut b = PageBuilder::new("font", "font.test", 20_000, 2_000);
        let css = b.resource(ResourceSpec::css(0, 8_000, 200, 0.5));
        b.resource(ResourceSpec::font(0, 12_000, css));
        b.text_paint(10_000, 1.0);
        let page = b.build();
        let r = MiniBed::new(page, vec![]).run(BrowserConfig::default());
        assert!(r.finished());
        assert_eq!(r.requests, 3, "font was discovered through the stylesheet");
    }

    #[test]
    fn script_discovered_resource_extends_onload() {
        let mut b = PageBuilder::new("hidden", "hidden.test", 20_000, 2_000);
        let js = b.resource(ResourceSpec::js(0, 5_000, 1_000, 10_000));
        b.resource(ResourceSpec::script_loaded(
            0,
            30_000,
            js,
            h2push_webmodel::ResourceType::Other,
        ));
        b.text_paint(10_000, 1.0);
        let page = b.build();
        let r = MiniBed::new(page, vec![]).run(BrowserConfig::default());
        assert!(r.finished());
        assert_eq!(r.requests, 3);
        // onload strictly after DCL: the hidden resource arrives late.
        assert!(r.onload.unwrap() >= r.dom_content_loaded.unwrap());
    }

    #[test]
    fn third_party_resources_use_separate_connections() {
        let mut b = PageBuilder::new("tp", "tp.test", 20_000, 2_000);
        let third = b.origin("ads.example.net", 1, false);
        b.resource(ResourceSpec::css(0, 5_000, 200, 0.5));
        b.resource(ResourceSpec::js_async(third, 8_000, 10_000, 2_000));
        b.text_paint(9_000, 1.0);
        let page = b.build();
        let r = MiniBed::new(page, vec![]).run(BrowserConfig::default());
        assert!(r.finished());
        assert_eq!(r.requests, 3);
    }

    #[test]
    fn duplicate_push_is_cancelled() {
        // The server pushes the CSS only when the JS is requested — but by
        // then the browser's preload scanner has already requested the CSS
        // itself, so the promise duplicates an in-flight request and must
        // be cancelled (the paper's §2.1 cancellation caveat).
        let mut b = PageBuilder::new("dup", "dup.test", 20_000, 2_000);
        let css = b.resource(ResourceSpec::css(0, 9_000, 100, 0.5));
        let js = b.resource(ResourceSpec::js(0, 5_000, 300, 2_000));
        b.text_paint(5_000, 1.0);
        let page = b.build();
        let mut bed = MiniBed::new(page, vec![css]);
        bed.push_trigger = js;
        let r = bed.run(BrowserConfig::default());
        assert!(r.finished());
        assert_eq!(r.cancelled_pushes, 1, "duplicate push must be reset");
    }

    // ------------------------------------------------------------------
    // Fault handling: timeouts, retries, partial loads, dead connections
    // ------------------------------------------------------------------

    #[test]
    fn fault_free_loads_are_unaffected_by_retry_config() {
        // Timeout/retry/deadline knobs must be inert on a clean load: no
        // extra timers, no behaviour change (the byte-identity guarantee
        // the testbed's zero-fault acceptance check relies on).
        let r1 = MiniBed::new(simple_page(), vec![]).run(BrowserConfig::default());
        let r2 = MiniBed::new(simple_page(), vec![]).run(BrowserConfig {
            max_retries: 99,
            retry_backoff: SimDuration::from_millis(1),
            ..Default::default()
        });
        assert_eq!(r1, r2);
        assert!(!r1.partial);
        assert_eq!((r1.retries, r1.timeouts, r1.conn_errors, r1.failed_resources), (0, 0, 0, 0));
    }

    #[test]
    fn stalled_resource_times_out_retries_then_fails_partial() {
        // A render-blocking stylesheet whose origin never answers: the
        // fetch times out, is retried once, fails — and the load completes
        // *around* the hole instead of hanging, flagged partial.
        let mut b = PageBuilder::new("stall", "stall.test", 20_000, 2_000);
        let css = b.resource(ResourceSpec::css(0, 8_000, 200, 0.5));
        b.text_paint(10_000, 1.0);
        let page = b.build();
        let mut bed = MiniBed::new(page, vec![]);
        bed.blackhole.push(css);
        let r = bed.run(BrowserConfig {
            resource_timeout: Some(SimDuration::from_millis(200)),
            max_retries: 1,
            retry_backoff: SimDuration::from_millis(100),
            ..Default::default()
        });
        assert!(r.finished());
        assert!(r.partial);
        assert_eq!(r.failed_resources, 1);
        assert_eq!(r.timeouts, 2, "original attempt + one retry both timed out");
        assert_eq!(r.retries, 1);
        assert!(r.first_paint.is_some(), "render proceeded without the failed sheet");
        assert!(r.plt() > 0.0);
    }

    #[test]
    fn load_deadline_closes_out_a_stalled_load() {
        // No per-resource timeout: only the page deadline rescues the load
        // when a parser-blocking script never arrives.
        let mut b = PageBuilder::new("deadline", "deadline.test", 20_000, 2_000);
        let js = b.resource(ResourceSpec::js(0, 5_000, 300, 2_000));
        b.text_paint(3_000, 1.0);
        let page = b.build();
        let mut bed = MiniBed::new(page, vec![]);
        bed.blackhole.push(js);
        let r = bed.run(BrowserConfig {
            load_deadline: Some(SimDuration::from_millis(3_000)),
            ..Default::default()
        });
        assert!(r.finished());
        assert!(r.partial);
        assert_eq!(r.onload.unwrap(), SimTime::from_millis(3_000));
        assert_eq!(r.failed_resources, 0, "the fetch was still in flight, not failed");
        assert!(r.plt() > 0.0);
        assert!(r.speed_index() > 0.0);
    }

    #[test]
    fn h2_connection_error_retries_on_a_fresh_slot() {
        // A fatal protocol error from the "server" (an oversized frame
        // header) must not panic: the browser drops the connection,
        // schedules a backed-off retry, and reopens on the next slot so
        // stale bytes from the dead connection cannot reach the new one.
        let page = Arc::new(simple_page());
        let mut browser = Browser::new(page, BrowserConfig::default());
        let acts = browser.start(SimTime::ZERO);
        assert!(acts
            .iter()
            .any(|a| matches!(a, BrowserAction::OpenConnection { group: 0, slot: 0 })));
        let _ = browser.on_connected(0, 0, SimTime::from_millis(30));
        // Frame header announcing a 16 MB frame: FRAME_SIZE_ERROR, fatal.
        let junk = [0xFF, 0xFF, 0xFF, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00];
        let acts = browser.on_bytes(0, 0, &junk, SimTime::from_millis(40));
        let (at, token) = acts
            .iter()
            .find_map(|a| match a {
                BrowserAction::SetTimer { at, token } => Some((*at, *token)),
                _ => None,
            })
            .expect("a retry timer is scheduled");
        // Late bytes on the dead slot are ignored, not fed to anything.
        let _ = browser.on_bytes(0, 0, &junk, SimTime::from_millis(45));
        let acts = browser.on_timer(token, at);
        assert!(
            acts.iter().any(|a| matches!(a, BrowserAction::OpenConnection { group: 0, slot: 1 })),
            "retry reopens on the next slot"
        );
        let r = browser.result();
        assert_eq!(r.conn_errors, 1);
        assert_eq!(r.retries, 1);
    }

    #[test]
    fn h1_error_kills_the_slot_and_retries_on_a_new_connection() {
        let mut b = PageBuilder::new("h1err", "h1err.test", 10_000, 1_000);
        b.text_paint(5_000, 1.0);
        let page = Arc::new(b.build());
        let cfg =
            BrowserConfig { transport: TransportMode::H1, max_retries: 1, ..Default::default() };
        let mut browser = Browser::new(page, cfg);
        let acts = browser.start(SimTime::ZERO);
        assert!(acts
            .iter()
            .any(|a| matches!(a, BrowserAction::OpenConnection { group: 0, slot: 0 })));
        // A garbage status line kills the connection, not the load.
        let acts = browser.on_bytes(0, 0, b"BOGUS/9.9 garbage\r\n\r\n", SimTime::from_millis(10));
        let (at, token) = acts
            .iter()
            .find_map(|a| match a {
                BrowserAction::SetTimer { at, token } => Some((*at, *token)),
                _ => None,
            })
            .expect("a retry timer is scheduled");
        let acts = browser.on_timer(token, at);
        assert!(
            acts.iter().any(|a| matches!(a, BrowserAction::OpenConnection { group: 0, slot: 1 })),
            "the dead slot keeps its index; the retry opens the next one"
        );
        let r = browser.result();
        assert_eq!(r.conn_errors, 1);
        assert_eq!(r.retries, 1);
    }

    #[test]
    fn document_failure_gives_up_with_partial_result() {
        // The document itself never arrives and exhausts its retries: the
        // load closes out as partial instead of hanging forever.
        let page = simple_page();
        let mut bed = MiniBed::new(page, vec![]);
        bed.blackhole.push(ResourceId(0));
        let r = bed.run(BrowserConfig {
            resource_timeout: Some(SimDuration::from_millis(100)),
            max_retries: 0,
            ..Default::default()
        });
        assert!(r.finished());
        assert!(r.partial);
        assert_eq!(r.timeouts, 1);
        assert_eq!(r.retries, 0);
        assert_eq!(r.failed_resources, 1);
        assert!(r.first_paint.is_none(), "nothing ever rendered");
    }
}
