//! The outcome of one page load: the W3C-Navigation-Timing-style event
//! times plus the visual progress curve, from which the metrics crate
//! computes PLT and SpeedIndex (§2.2 of the paper).

use h2push_netsim::SimTime;

/// Per-resource load timing (a waterfall row).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceTiming {
    /// When the browser learned about the resource.
    pub discovered: Option<SimTime>,
    /// When the last body byte arrived.
    pub loaded: Option<SimTime>,
    /// When evaluation (exec/parse/decode) finished.
    pub evaluated: Option<SimTime>,
    /// Delivered by Server Push.
    pub pushed: bool,
}

/// A visual progress sample: at `time`, the above-the-fold viewport was
/// `completeness` (0..=1) identical to its final state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaintSample {
    /// Simulation time of the paint.
    pub time: SimTime,
    /// Fraction of final visual completeness reached.
    pub completeness: f64,
}

/// All measurements from a single page load.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadResult {
    /// Site name.
    pub site: String,
    /// `connectEnd` of the connection carrying the base document — the
    /// paper's PLT zero point.
    pub connect_end: SimTime,
    /// Time of the first visual change.
    pub first_paint: Option<SimTime>,
    /// DOMContentLoaded.
    pub dom_content_loaded: Option<SimTime>,
    /// `onload` — everything discovered has loaded.
    pub onload: Option<SimTime>,
    /// Monotone visual progress curve (completeness reaches 1.0 at the
    /// last visual change).
    pub paints: Vec<PaintSample>,
    /// Total bytes pushed to this client (protocol-level, as the paper
    /// reports its savings).
    pub pushed_bytes: u64,
    /// Number of pushed responses accepted.
    pub pushed_count: u32,
    /// Number of pushes the client cancelled (already requested/cached).
    pub cancelled_pushes: u32,
    /// Requests the browser issued itself.
    pub requests: u32,
    /// The load ended without every discovered resource arriving: the
    /// page-load deadline fired, the document itself failed, or some
    /// subresources exhausted their retries. PLT and SpeedIndex then
    /// measure what actually rendered.
    pub partial: bool,
    /// Resources that exhausted retries (or failed fatally) and were
    /// given up on.
    pub failed_resources: u32,
    /// Re-issued fetches (after a timeout, stream error or connection
    /// error).
    pub retries: u32,
    /// Per-resource timeouts that fired.
    pub timeouts: u32,
    /// Transport connections lost to protocol errors (HTTP/2 GOAWAY-level
    /// failures and dead HTTP/1.1 connections).
    pub conn_errors: u32,
    /// Per-resource waterfall (indexed like `Page::resources`).
    pub waterfall: Vec<ResourceTiming>,
}

impl LoadResult {
    /// Page Load Time as the paper defines it: `onload − connectEnd`.
    /// Panics if the load never finished (callers should check
    /// [`LoadResult::finished`] first).
    pub fn plt(&self) -> f64 {
        let on = self.onload.expect("load did not finish");
        on.since(self.connect_end).as_millis_f64()
    }

    /// Whether onload fired.
    pub fn finished(&self) -> bool {
        self.onload.is_some()
    }

    /// SpeedIndex in milliseconds, relative to `connectEnd`:
    /// ∫ (1 − completeness(t)) dt from connectEnd to the last visual
    /// change (the WebPagetest definition over our paint curve).
    pub fn speed_index(&self) -> f64 {
        let t0 = self.connect_end;
        let mut si = 0.0;
        let mut last_t = t0;
        let mut last_c = 0.0;
        for p in &self.paints {
            let t = p.time.max(t0);
            si += (1.0 - last_c) * t.since(last_t).as_millis_f64();
            last_t = t;
            last_c = p.completeness.min(1.0);
        }
        // If the curve never reaches 1.0 (no visual content at all), treat
        // the end of the load as full completeness.
        if last_c < 1.0 {
            if let Some(on) = self.onload {
                let t = on.max(last_t);
                si += (1.0 - last_c) * t.since(last_t).as_millis_f64();
            }
        }
        si
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn result(paints: Vec<PaintSample>) -> LoadResult {
        LoadResult {
            site: "t".into(),
            connect_end: t(100),
            first_paint: paints.first().map(|p| p.time),
            dom_content_loaded: Some(t(400)),
            onload: Some(t(1100)),
            paints,
            pushed_bytes: 0,
            pushed_count: 0,
            cancelled_pushes: 0,
            requests: 1,
            partial: false,
            failed_resources: 0,
            retries: 0,
            timeouts: 0,
            conn_errors: 0,
            waterfall: Vec::new(),
        }
    }

    #[test]
    fn plt_is_onload_minus_connect_end() {
        let r = result(vec![]);
        assert_eq!(r.plt(), 1000.0);
    }

    #[test]
    fn speed_index_single_instant_paint() {
        // Everything appears at once 500 ms after connectEnd ⇒ SI = 500.
        let r = result(vec![PaintSample { time: t(600), completeness: 1.0 }]);
        assert!((r.speed_index() - 500.0).abs() < 1e-6);
    }

    #[test]
    fn speed_index_rewards_progressive_paint() {
        // Half the pixels at 200 ms, the rest at 1000 ms (after connectEnd
        // at 100): SI = 100·1.0 + 800·0.5 = 500.
        let progressive = result(vec![
            PaintSample { time: t(200), completeness: 0.5 },
            PaintSample { time: t(1000), completeness: 1.0 },
        ]);
        assert!((progressive.speed_index() - 500.0).abs() < 1e-6);
        // All pixels at 1000 ms: SI = 900 — progressive wins.
        let late = result(vec![PaintSample { time: t(1000), completeness: 1.0 }]);
        assert!((late.speed_index() - 900.0).abs() < 1e-6);
        assert!(progressive.speed_index() < late.speed_index());
    }

    #[test]
    fn speed_index_incomplete_curve_falls_back_to_onload() {
        let r = result(vec![PaintSample { time: t(300), completeness: 0.8 }]);
        // 200 ms at 1.0 missing + (1100-300) ms at 0.2 missing.
        assert!((r.speed_index() - (200.0 + 800.0 * 0.2)).abs() < 1e-6);
    }

    #[test]
    fn paints_before_connect_end_are_clamped() {
        let r = result(vec![PaintSample { time: t(50), completeness: 1.0 }]);
        assert_eq!(r.speed_index(), 0.0);
    }
}
