//! # h2push-core — "Is the Web ready for HTTP/2 Server Push?" as a library
//!
//! The paper's contribution, packaged for reuse:
//!
//! * **evaluate** any Server-Push strategy on any modelled website in the
//!   deterministic replay testbed (§4.1) and read PLT / SpeedIndex;
//! * the **Interleaving Push** scheduler (§5) — suspend the document after
//!   a byte offset, push the critical set, resume;
//! * a **[`PushPlanner`]** that does what §6 sketches for CDNs: measure the
//!   six candidate strategies per site and pick the best one (preferring
//!   fewer pushed bytes among near-ties).
//!
//! ```
//! use h2push_core::{evaluate, Evaluation, PushPlanner};
//! use h2push_webmodel::synthetic_site;
//! use h2push_strategies::Strategy;
//!
//! let page = synthetic_site(7);
//! let base: Evaluation = evaluate(&page, Strategy::NoPush).unwrap();
//! let rec = PushPlanner::static_recommendation(&page);
//! let pushed = evaluate(&page, rec).unwrap();
//! println!("no push: SI {:.0} ms; interleaved: SI {:.0} ms", base.speed_index, pushed.speed_index);
//! ```

pub mod planner;

pub use planner::{Candidate, Plan, PushPlanner};

use h2push_strategies::Strategy;
use h2push_testbed::{ReplayConfig, ReplayError, ReplayInputs, RunPlan};
use h2push_webmodel::Page;

/// Headline metrics of one deterministic replay.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Page Load Time (connectEnd → onload), ms.
    pub plt: f64,
    /// SpeedIndex, ms.
    pub speed_index: f64,
    /// Time of first paint after connectEnd, ms.
    pub first_paint: f64,
    /// Bytes pushed by the server.
    pub pushed_bytes: u64,
    /// Pushes the client cancelled.
    pub cancelled_pushes: u32,
}

/// Replay `page` once under `strategy` in the paper's testbed conditions.
///
/// Builds the replay inputs on every call; to evaluate several strategies
/// on the same page, build [`ReplayInputs`] once and use
/// [`evaluate_shared`].
pub fn evaluate(page: &Page, strategy: Strategy) -> Result<Evaluation, ReplayError> {
    let run = RunPlan::new(page).config(ReplayConfig::testbed(strategy)).run_one()?;
    summarize_outcome(run.outcome)
}

/// [`evaluate`] over pre-built shared inputs (no page clone, no re-record).
pub fn evaluate_shared(
    inputs: &ReplayInputs,
    strategy: Strategy,
) -> Result<Evaluation, ReplayError> {
    let run = RunPlan::new(inputs).config(ReplayConfig::testbed(strategy)).run_one()?;
    summarize_outcome(run.outcome)
}

fn summarize_outcome(out: h2push_testbed::ReplayOutcome) -> Result<Evaluation, ReplayError> {
    let l = &out.load;
    Ok(Evaluation {
        plt: l.plt(),
        speed_index: l.speed_index(),
        first_paint: l
            .first_paint
            .map(|t| t.since(l.connect_end).as_millis_f64())
            .unwrap_or(f64::NAN),
        pushed_bytes: out.server_pushed_bytes,
        cancelled_pushes: l.cancelled_pushes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2push_webmodel::synthetic_site;

    #[test]
    fn evaluate_round_trips() {
        let page = synthetic_site(7);
        let e = evaluate(&page, Strategy::NoPush).unwrap();
        assert!(e.plt > 0.0);
        assert!(e.speed_index > 0.0);
        assert_eq!(e.pushed_bytes, 0);
        let rec = PushPlanner::static_recommendation(&page);
        let e2 = evaluate(&page, rec).unwrap();
        assert!(e2.pushed_bytes > 0);
    }

    #[test]
    fn evaluate_shared_matches_evaluate() {
        let page = synthetic_site(7);
        let cold = evaluate(&page, Strategy::NoPush).unwrap();
        let inputs = ReplayInputs::from(page);
        let shared = evaluate_shared(&inputs, Strategy::NoPush).unwrap();
        assert_eq!(cold, shared);
    }
}
