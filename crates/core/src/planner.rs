//! Automatic strategy generation (§6 "Use in CDN Deployments").
//!
//! The paper closes by sketching how a CDN could generate (interleaving)
//! push strategies automatically: analyse the page, derive critical
//! resources and a switch offset, validate candidate strategies in the
//! testbed, and pick the winner. [`PushPlanner`] implements exactly that
//! loop on top of the replay testbed.

use h2push_strategies::{critical_set, interleave_offset, paper_strategy, PaperStrategy, Strategy};
use h2push_testbed::{Mode, RunPlan};
use h2push_webmodel::Page;

/// A candidate strategy with its measured performance.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Which paper strategy this is.
    pub which: PaperStrategy,
    /// The page variant it runs on (possibly critical-CSS-rewritten).
    pub page: Page,
    /// The concrete strategy.
    pub strategy: Strategy,
    /// Median SpeedIndex over the validation runs (ms).
    pub speed_index: f64,
    /// Median PLT over the validation runs (ms).
    pub plt: f64,
    /// Bytes pushed per load.
    pub pushed_bytes: f64,
}

/// Outcome of planning: the winner plus every evaluated candidate.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Index of the chosen candidate in `candidates`.
    pub chosen: usize,
    /// All evaluated candidates, in [`PaperStrategy::ALL`] order.
    pub candidates: Vec<Candidate>,
}

impl Plan {
    /// The winning candidate.
    pub fn winner(&self) -> &Candidate {
        &self.candidates[self.chosen]
    }

    /// The no-push baseline.
    pub fn baseline(&self) -> &Candidate {
        self.candidates
            .iter()
            .find(|c| c.which == PaperStrategy::NoPush)
            .expect("baseline always evaluated")
    }

    /// Relative SpeedIndex improvement of the winner over no push (%).
    pub fn improvement_pct(&self) -> f64 {
        h2push_metrics::relative_change_pct(self.winner().speed_index, self.baseline().speed_index)
    }
}

/// Plans push strategies for pages by measuring candidates in the testbed.
#[derive(Debug, Clone)]
pub struct PushPlanner {
    /// Replays per candidate (the paper uses 31; planning tolerates less).
    pub runs: usize,
    /// Base seed for the validation runs.
    pub seed: u64,
    /// Prefer a candidate that pushes fewer bytes when it is within this
    /// fraction of the best SpeedIndex ("pushing less is preferable",
    /// §4.2.1 / §4.3).
    pub byte_tolerance: f64,
}

impl Default for PushPlanner {
    fn default() -> Self {
        PushPlanner { runs: 7, seed: 42, byte_tolerance: 0.03 }
    }
}

impl PushPlanner {
    /// Evaluate all six paper strategies on `page` and choose.
    pub fn plan(&self, page: &Page) -> Plan {
        let candidates: Vec<Candidate> = PaperStrategy::ALL
            .iter()
            .map(|&which| {
                let (variant, strategy) = paper_strategy(page, which);
                let outcomes = RunPlan::new(&variant)
                    .strategy(strategy.clone())
                    .mode(Mode::Testbed)
                    .reps(self.runs)
                    .seed(self.seed)
                    .run()
                    .into_outcomes();
                assert!(!outcomes.is_empty(), "all validation runs failed for {}", which.label());
                let mut sis: Vec<f64> = outcomes.iter().map(|o| o.load.speed_index()).collect();
                let mut plts: Vec<f64> = outcomes.iter().map(|o| o.load.plt()).collect();
                sis.sort_by(|a, b| a.partial_cmp(b).unwrap());
                plts.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let pushed = outcomes.iter().map(|o| o.server_pushed_bytes as f64).sum::<f64>()
                    / outcomes.len() as f64;
                Candidate {
                    which,
                    page: variant,
                    strategy,
                    speed_index: sis[sis.len() / 2],
                    plt: plts[plts.len() / 2],
                    pushed_bytes: pushed,
                }
            })
            .collect();
        // Choose: best SpeedIndex; among candidates within `byte_tolerance`
        // of it, the one pushing the fewest bytes.
        let best_si = candidates.iter().map(|c| c.speed_index).fold(f64::INFINITY, f64::min);
        let chosen = candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.speed_index <= best_si * (1.0 + self.byte_tolerance))
            .min_by(|(_, a), (_, b)| {
                a.pushed_bytes
                    .partial_cmp(&b.pushed_bytes)
                    .unwrap()
                    .then(a.speed_index.partial_cmp(&b.speed_index).unwrap())
            })
            .map(|(i, _)| i)
            .expect("at least one candidate");
        Plan { chosen, candidates }
    }

    /// The static (no-measurement) recommendation: interleave the critical
    /// set after the head — what a CDN would deploy before any A/B data
    /// exists.
    pub fn static_recommendation(page: &Page) -> Strategy {
        let critical = critical_set(page);
        if critical.is_empty() {
            return Strategy::NoPush;
        }
        Strategy::Interleaved { offset: interleave_offset(page), critical, after: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2push_webmodel::{PageBuilder, ResourceSpec};

    fn late_css_page() -> Page {
        let mut b = PageBuilder::new("planner-test", "p.test", 120_000, 3_000);
        b.resource(ResourceSpec::css(0, 30_000, 1_000, 0.3));
        b.resource(ResourceSpec::image(0, 40_000, 20_000, true, 2.0));
        b.text_paint(8_000, 1.5);
        b.build()
    }

    #[test]
    fn planner_beats_baseline_on_interleaving_friendly_page() {
        let planner = PushPlanner { runs: 3, ..Default::default() };
        let plan = planner.plan(&late_css_page());
        assert_eq!(plan.candidates.len(), 6);
        assert!(
            plan.improvement_pct() < -10.0,
            "planner should find a winning strategy: {}%",
            plan.improvement_pct()
        );
        // The winner pushes (it cannot be plain no-push on this page).
        assert!(plan.winner().which != PaperStrategy::NoPush);
    }

    #[test]
    fn static_recommendation_contains_the_css() {
        let page = late_css_page();
        match PushPlanner::static_recommendation(&page) {
            Strategy::Interleaved { critical, offset, .. } => {
                assert!(!critical.is_empty());
                assert!(offset >= page.head_end);
            }
            other => panic!("expected interleaved, got {other:?}"),
        }
    }

    #[test]
    fn empty_critical_set_yields_no_push() {
        let mut b = PageBuilder::new("plain", "p.test", 20_000, 2_000);
        b.resource(ResourceSpec::image(0, 10_000, 10_000, false, 0.0));
        b.text_paint(5_000, 1.0);
        let page = b.build();
        assert_eq!(PushPlanner::static_recommendation(&page), Strategy::NoPush);
    }
}

#[cfg(test)]
mod plan_shape_tests {
    use super::*;
    use h2push_webmodel::realworld_site;

    #[test]
    fn plan_on_w16_prefers_an_interleaving_variant() {
        // Twitter's page already ships critical CSS; the measurable win
        // comes from interleaving, so the planner must land on an
        // optimized (interleaving) strategy.
        let planner = PushPlanner { runs: 3, ..Default::default() };
        let plan = planner.plan(&realworld_site(16));
        assert!(
            matches!(
                plan.winner().which,
                PaperStrategy::PushCriticalOptimized | PaperStrategy::PushAllOptimized
            ),
            "chose {:?}",
            plan.winner().which
        );
        assert!(plan.improvement_pct() < -15.0);
    }

    #[test]
    fn baseline_accessor_finds_no_push() {
        let planner = PushPlanner { runs: 3, ..Default::default() };
        let plan = planner.plan(&realworld_site(5));
        assert_eq!(plan.baseline().which, PaperStrategy::NoPush);
        assert_eq!(plan.baseline().pushed_bytes, 0.0);
        // Candidates preserve the canonical order.
        let order: Vec<_> = plan.candidates.iter().map(|c| c.which).collect();
        assert_eq!(order, PaperStrategy::ALL.to_vec());
    }
}
