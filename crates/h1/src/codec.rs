//! HTTP/1.1 message framing (RFC 7230, the subset a replay needs).
//!
//! The paper's testbed records *HTTP/1.1* traffic ("record H1 traffic to a
//! database … captured in a browsing session", §4.1) and its motivation
//! rests on H1's inefficiencies (§1: head-of-line blocking, one request at
//! a time per connection). This codec frames requests and responses as
//! text heads plus `Content-Length` bodies — enough to replay recorded
//! sites over the baseline protocol.

/// A parsed HTTP/1.1 request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct H1Request {
    /// Request method (always GET in replays).
    pub method: String,
    /// Request target (origin-form path).
    pub path: String,
    /// `Host` header.
    pub host: String,
    /// Remaining headers (lowercased names).
    pub headers: Vec<(String, String)>,
}

/// A parsed HTTP/1.1 response head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct H1Response {
    /// Status code.
    pub status: u16,
    /// Declared body length.
    pub content_length: usize,
    /// `Content-Type` value, if present.
    pub content_type: Option<String>,
}

/// Serialize a GET request.
pub fn encode_request(host: &str, path: &str, extra: &[(&str, &str)]) -> Vec<u8> {
    let mut s = format!("GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: keep-alive\r\n");
    for (k, v) in extra {
        s.push_str(&format!("{k}: {v}\r\n"));
    }
    s.push_str("\r\n");
    s.into_bytes()
}

/// Serialize a response head; the body (filler bytes) follows separately.
/// Carries the typical 2018 response header set (server, date, caching
/// validators) — several hundred bytes that HTTP/1.1 repeats on every
/// response.
pub fn encode_response_head(status: u16, content_length: usize, content_type: &str) -> Vec<u8> {
    format!(
        concat!(
            "HTTP/1.1 {status} {reason}\r\n",
            "Content-Length: {len}\r\n",
            "Content-Type: {ctype}\r\n",
            "Connection: keep-alive\r\n",
            "Server: h2o/2.2.3\r\n",
            "Date: Tue, 04 Dec 2018 09:00:00 GMT\r\n",
            "Last-Modified: Mon, 03 Dec 2018 17:30:00 GMT\r\n",
            "Etag: \"5c0563f8-{len:x}\"\r\n",
            "Cache-Control: public, max-age=3600\r\n",
            "Vary: Accept-Encoding\r\n\r\n"
        ),
        status = status,
        reason = reason(status),
        len = content_length,
        ctype = content_type,
    )
    .into_bytes()
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        404 => "Not Found",
        _ => "Unknown",
    }
}

/// Find the end of a message head (`\r\n\r\n`); returns the offset *past*
/// the terminator.
pub fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Parse a request head (excluding any body). Returns the request and the
/// bytes consumed, or `None` if the head is not yet complete.
///
/// Errors (malformed heads) are reported as `Some(Err(..))` so callers can
/// distinguish "need more bytes" from "broken peer".
pub fn parse_request(buf: &[u8]) -> Option<Result<(H1Request, usize), &'static str>> {
    let end = head_end(buf)?;
    let text = match std::str::from_utf8(&buf[..end]) {
        Ok(t) => t,
        Err(_) => return Some(Err("request head is not UTF-8")),
    };
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, path, version) =
        (parts.next().unwrap_or(""), parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Some(Err("malformed request line"));
    }
    let mut host = String::new();
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((k, v)) = line.split_once(':') else {
            return Some(Err("malformed header line"));
        };
        let (k, v) = (k.trim().to_ascii_lowercase(), v.trim().to_string());
        if k == "host" {
            host = v;
        } else {
            headers.push((k, v));
        }
    }
    if host.is_empty() {
        return Some(Err("missing Host header"));
    }
    Some(Ok((H1Request { method: method.to_string(), path: path.to_string(), host, headers }, end)))
}

/// Parse a response head. Same completion/err semantics as
/// [`parse_request`].
pub fn parse_response(buf: &[u8]) -> Option<Result<(H1Response, usize), &'static str>> {
    let end = head_end(buf)?;
    let text = match std::str::from_utf8(&buf[..end]) {
        Ok(t) => t,
        Err(_) => return Some(Err("response head is not UTF-8")),
    };
    let mut lines = text.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let mut parts = status_line.split(' ');
    let version = parts.next().unwrap_or("");
    let status: u16 = match parts.next().unwrap_or("").parse() {
        Ok(s) => s,
        Err(_) => return Some(Err("malformed status line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Some(Err("not an HTTP/1.x response"));
    }
    let mut content_length = 0usize;
    let mut content_type = None;
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((k, v)) = line.split_once(':') else {
            return Some(Err("malformed header line"));
        };
        match k.trim().to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = match v.trim().parse() {
                    Ok(n) => n,
                    Err(_) => return Some(Err("bad Content-Length")),
                }
            }
            "content-type" => content_type = Some(v.trim().to_string()),
            _ => {}
        }
    }
    Some(Ok((H1Response { status, content_length, content_type }, end)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let wire = encode_request("example.org", "/a/b.css", &[("accept", "text/css")]);
        let (req, used) = parse_request(&wire).unwrap().unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/a/b.css");
        assert_eq!(req.host, "example.org");
        assert!(req.headers.iter().any(|(k, v)| k == "accept" && v == "text/css"));
    }

    #[test]
    fn response_round_trip() {
        let wire = encode_response_head(200, 12345, "text/html");
        let (resp, used) = parse_response(&wire).unwrap().unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_length, 12345);
        assert_eq!(resp.content_type.as_deref(), Some("text/html"));
    }

    #[test]
    fn incomplete_head_returns_none() {
        let wire = encode_request("example.org", "/", &[]);
        for cut in [0, 5, wire.len() - 1] {
            assert!(parse_request(&wire[..cut]).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn malformed_heads_error() {
        assert!(parse_request(b"BROKEN\r\n\r\n").unwrap().is_err());
        assert!(parse_request(b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n").unwrap().is_err());
        assert!(parse_request(b"GET / HTTP/1.1\r\n\r\n").unwrap().is_err()); // no Host
        assert!(parse_response(b"HTTP/1.1 abc OK\r\n\r\n").unwrap().is_err());
    }

    #[test]
    fn pipelined_heads_report_consumed_bytes() {
        let mut wire = encode_request("a.test", "/1", &[]);
        let second = encode_request("a.test", "/2", &[]);
        wire.extend_from_slice(&second);
        let (req1, used) = parse_request(&wire).unwrap().unwrap();
        assert_eq!(req1.path, "/1");
        let (req2, used2) = parse_request(&wire[used..]).unwrap().unwrap();
        assert_eq!(req2.path, "/2");
        assert_eq!(used + used2, wire.len());
    }
}
