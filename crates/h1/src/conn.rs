//! HTTP/1.1 connection state machines (client and server halves).
//!
//! The defining H1 behaviours the paper contrasts H2 against (§1, §2.1):
//! one outstanding request per connection (browsers shipped with pipelining
//! disabled), head-of-line blocking on that response, keep-alive reuse, and
//! consequently the classic six-connections-per-origin client pool
//! (implemented by the browser layer on top of these).

use crate::codec::{
    encode_request, encode_response_head, parse_request, parse_response, H1Request,
};
use std::collections::VecDeque;

/// Events surfaced by the client half.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum H1ClientEvent {
    /// The response head arrived.
    ResponseHead {
        /// HTTP status.
        status: u16,
        /// Declared body length.
        content_length: usize,
    },
    /// Body bytes arrived.
    BodyData {
        /// Number of bytes in this chunk.
        len: usize,
    },
    /// The response completed; the connection is idle again.
    ResponseComplete,
    /// The peer violated the protocol; the connection is dead.
    Error {
        /// Human-readable reason.
        reason: &'static str,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientState {
    Idle,
    /// Waiting for the response head.
    WaitingHead,
    /// Receiving the body; `usize` bytes remain.
    ReceivingBody(usize),
    Dead,
}

/// The client half of one HTTP/1.1 connection.
#[derive(Debug)]
pub struct H1ClientConn {
    state: ClientState,
    out: Vec<u8>,
    buf: Vec<u8>,
    events: VecDeque<H1ClientEvent>,
}

impl Default for H1ClientConn {
    fn default() -> Self {
        Self::new()
    }
}

impl H1ClientConn {
    /// A fresh idle connection.
    pub fn new() -> Self {
        H1ClientConn {
            state: ClientState::Idle,
            out: Vec::new(),
            buf: Vec::new(),
            events: VecDeque::new(),
        }
    }

    /// Whether a request may be sent now.
    pub fn is_idle(&self) -> bool {
        self.state == ClientState::Idle
    }

    /// Return to the fresh-idle state, retaining buffer capacity.
    pub fn reset(&mut self) {
        self.state = ClientState::Idle;
        self.out.clear();
        self.buf.clear();
        self.events.clear();
    }

    /// Queue a GET. Panics if the connection is busy (the pool's job is to
    /// never do that).
    pub fn send_request(&mut self, host: &str, path: &str, extra: &[(&str, &str)]) {
        assert!(self.is_idle(), "HTTP/1.1 without pipelining: one request at a time");
        self.out.extend_from_slice(&encode_request(host, path, extra));
        self.state = ClientState::WaitingHead;
    }

    /// Wire bytes to transmit.
    pub fn produce(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.out)
    }

    /// Feed received bytes.
    pub fn receive(&mut self, data: &[u8]) {
        if self.state == ClientState::Dead {
            return;
        }
        self.buf.extend_from_slice(data);
        loop {
            match self.state {
                ClientState::WaitingHead => match parse_response(&self.buf) {
                    None => break,
                    Some(Err(reason)) => {
                        self.state = ClientState::Dead;
                        self.events.push_back(H1ClientEvent::Error { reason });
                        break;
                    }
                    Some(Ok((head, used))) => {
                        self.buf.drain(..used);
                        self.events.push_back(H1ClientEvent::ResponseHead {
                            status: head.status,
                            content_length: head.content_length,
                        });
                        if head.content_length == 0 {
                            self.state = ClientState::Idle;
                            self.events.push_back(H1ClientEvent::ResponseComplete);
                        } else {
                            self.state = ClientState::ReceivingBody(head.content_length);
                        }
                    }
                },
                ClientState::ReceivingBody(remaining) => {
                    if self.buf.is_empty() {
                        break;
                    }
                    let take = remaining.min(self.buf.len());
                    self.buf.drain(..take);
                    self.events.push_back(H1ClientEvent::BodyData { len: take });
                    if take == remaining {
                        self.state = ClientState::Idle;
                        self.events.push_back(H1ClientEvent::ResponseComplete);
                    } else {
                        self.state = ClientState::ReceivingBody(remaining - take);
                    }
                }
                ClientState::Idle | ClientState::Dead => break,
            }
        }
    }

    /// Drain the next event.
    pub fn poll_event(&mut self) -> Option<H1ClientEvent> {
        self.events.pop_front()
    }
}

/// The server half of one HTTP/1.1 connection: parses requests, sends
/// queued responses strictly in order (this ordering *is* H1 head-of-line
/// blocking).
#[derive(Debug, Default)]
pub struct H1ServerConn {
    buf: Vec<u8>,
    requests: VecDeque<H1Request>,
    /// Responses not yet fully transmitted: remaining head bytes + body
    /// bytes.
    out_head: VecDeque<Vec<u8>>,
    out_body: VecDeque<usize>,
    dead: bool,
}

impl H1ServerConn {
    /// A fresh connection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return to the fresh state, retaining buffer capacity.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.requests.clear();
        self.out_head.clear();
        self.out_body.clear();
        self.dead = false;
    }

    /// Feed received bytes; completed requests become pollable.
    pub fn receive(&mut self, data: &[u8]) {
        if self.dead {
            return;
        }
        self.buf.extend_from_slice(data);
        loop {
            match parse_request(&self.buf) {
                None => break,
                Some(Err(_)) => {
                    self.dead = true;
                    break;
                }
                Some(Ok((req, used))) => {
                    self.buf.drain(..used);
                    self.requests.push_back(req);
                }
            }
        }
    }

    /// Next pending request.
    pub fn poll_request(&mut self) -> Option<H1Request> {
        self.requests.pop_front()
    }

    /// Queue a response (head now, filler body streamed by
    /// [`H1ServerConn::produce`]).
    pub fn respond(&mut self, status: u16, content_length: usize, content_type: &str) {
        self.out_head.push_back(encode_response_head(status, content_length, content_type));
        self.out_body.push_back(content_length);
    }

    /// Whether there are bytes to transmit.
    pub fn wants_send(&self) -> bool {
        !self.out_head.is_empty()
    }

    /// Produce up to `max` wire bytes (responses strictly in order).
    pub fn produce(&mut self, max: usize) -> Vec<u8> {
        let mut out = Vec::new();
        while out.len() < max {
            let Some(head) = self.out_head.front_mut() else { break };
            if !head.is_empty() {
                let take = head.len().min(max - out.len());
                out.extend(head.drain(..take));
                continue;
            }
            let body = self.out_body.front_mut().expect("head and body queues in sync");
            if *body > 0 {
                let take = (*body).min(max - out.len());
                out.resize(out.len() + take, 0);
                *body -= take;
            }
            if *body == 0 {
                self.out_head.pop_front();
                self.out_body.pop_front();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pump(client: &mut H1ClientConn, server: &mut H1ServerConn) -> Vec<H1ClientEvent> {
        let mut events = Vec::new();
        for _ in 0..50 {
            let up = client.produce();
            if !up.is_empty() {
                server.receive(&up);
            }
            let mut progressed = !up.is_empty();
            while server.wants_send() {
                let down = server.produce(usize::MAX);
                if down.is_empty() {
                    break;
                }
                progressed = true;
                client.receive(&down);
            }
            while let Some(e) = client.poll_event() {
                events.push(e);
            }
            if !progressed {
                break;
            }
        }
        events
    }

    #[test]
    fn request_response_cycle() {
        let mut c = H1ClientConn::new();
        let mut s = H1ServerConn::new();
        c.send_request("a.test", "/x.css", &[]);
        let up = c.produce();
        s.receive(&up);
        let req = s.poll_request().expect("request parsed");
        assert_eq!(req.path, "/x.css");
        s.respond(200, 5000, "text/css");
        let events = pump(&mut c, &mut s);
        assert_eq!(
            events.first(),
            Some(&H1ClientEvent::ResponseHead { status: 200, content_length: 5000 })
        );
        let body: usize = events
            .iter()
            .filter_map(|e| match e {
                H1ClientEvent::BodyData { len } => Some(*len),
                _ => None,
            })
            .sum();
        assert_eq!(body, 5000);
        assert_eq!(events.last(), Some(&H1ClientEvent::ResponseComplete));
        assert!(c.is_idle(), "keep-alive: connection reusable");
    }

    #[test]
    fn keep_alive_reuse() {
        let mut c = H1ClientConn::new();
        let mut s = H1ServerConn::new();
        for i in 0..3 {
            c.send_request("a.test", &format!("/{i}"), &[]);
            let up = c.produce();
            s.receive(&up);
            let req = s.poll_request().unwrap();
            assert_eq!(req.path, format!("/{i}"));
            s.respond(200, 100, "text/html");
            let events = pump(&mut c, &mut s);
            assert_eq!(events.last(), Some(&H1ClientEvent::ResponseComplete));
        }
    }

    #[test]
    #[should_panic(expected = "one request at a time")]
    fn no_pipelining() {
        let mut c = H1ClientConn::new();
        c.send_request("a.test", "/1", &[]);
        c.send_request("a.test", "/2", &[]);
    }

    #[test]
    fn chunked_arrival_of_head_and_body() {
        let mut c = H1ClientConn::new();
        c.send_request("a.test", "/", &[]);
        let _ = c.produce();
        let mut s = H1ServerConn::new();
        s.respond(200, 10, "text/html");
        let wire = s.produce(usize::MAX);
        for b in &wire {
            c.receive(std::slice::from_ref(b));
        }
        let mut body = 0;
        let mut complete = false;
        while let Some(e) = c.poll_event() {
            match e {
                H1ClientEvent::BodyData { len } => body += len,
                H1ClientEvent::ResponseComplete => complete = true,
                _ => {}
            }
        }
        assert_eq!(body, 10);
        assert!(complete);
    }

    #[test]
    fn server_responses_are_head_of_line_blocked() {
        // Two requests parsed; responses must come out strictly in order.
        let mut s = H1ServerConn::new();
        s.receive(&encode_request("a.test", "/big", &[]));
        s.receive(&encode_request("a.test", "/small", &[]));
        assert!(s.poll_request().is_some());
        assert!(s.poll_request().is_some());
        s.respond(200, 10_000, "text/html");
        s.respond(200, 10, "text/css");
        // Pull in small chunks: the tiny response cannot overtake.
        let mut got = Vec::new();
        while s.wants_send() {
            got.extend(s.produce(1000));
        }
        let first_head = crate::codec::parse_response(&got).unwrap().unwrap().0;
        assert_eq!(first_head.content_length, 10_000);
    }

    #[test]
    fn zero_length_response() {
        let mut c = H1ClientConn::new();
        c.send_request("a.test", "/empty", &[]);
        let _ = c.produce();
        c.receive(&encode_response_head(404, 0, "text/plain"));
        let mut seen_complete = false;
        while let Some(e) = c.poll_event() {
            if e == H1ClientEvent::ResponseComplete {
                seen_complete = true;
            }
        }
        assert!(seen_complete);
        assert!(c.is_idle());
    }

    #[test]
    fn garbage_kills_connection_cleanly() {
        let mut c = H1ClientConn::new();
        c.send_request("a.test", "/", &[]);
        let _ = c.produce();
        c.receive(b"SPDY/3 oops\r\n\r\n");
        assert!(matches!(c.poll_event(), Some(H1ClientEvent::Error { .. })));
        assert!(!c.is_idle());
    }
}
