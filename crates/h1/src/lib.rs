//! # h2push-h1 — the HTTP/1.1 baseline
//!
//! The protocol the paper's testbed records (§4.1) and the baseline all of
//! its H2 motivation is measured against (§1–§3: head-of-line blocking,
//! one request per connection, six-connection client pools). A text codec
//! (RFC 7230 subset) plus poll-style client/server connection state
//! machines, mirroring the HTTP/2 stack's architecture so the browser and
//! testbed can replay the same sites over either protocol.

pub mod codec;
pub mod conn;

pub use codec::{encode_request, encode_response_head, H1Request, H1Response};
pub use conn::{H1ClientConn, H1ClientEvent, H1ServerConn};
