//! Cache Digests for HTTP/2 (draft-ietf-httpbis-cache-digest-02).
//!
//! The paper notes (§2.1) that HTTP/2 has no way to signal the client's
//! cache state, so servers push objects the browser already has — the
//! client can only cancel after bytes are in flight — and cites the
//! cache-digest draft as the proposed remedy. This module implements the
//! draft's Golomb-compressed set so the replay testbed can quantify what
//! the proposal would save (see the `ablation_cache` bench).
//!
//! Substitution note: the draft hashes URLs with SHA-256; we use FNV-1a 64
//! (documented, deterministic, dependency-free). The digest's statistical
//! behaviour — membership, false-positive rate 2⁻ᵖ — is unchanged.

/// A Golomb-compressed set of URL hashes.
///
/// ```
/// use h2push_h2proto::CacheDigest;
///
/// let digest = CacheDigest::build(&["https://example.org/app.css"], 7);
/// assert!(digest.contains("https://example.org/app.css"));
/// assert!(!digest.contains("https://example.org/other.js"));
/// // Round-trips through its compact header form.
/// let wire = digest.to_hex();
/// assert_eq!(CacheDigest::from_hex(&wire).unwrap(), digest);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheDigest {
    /// log₂ of the (power-of-two rounded) number of entries.
    log_n: u8,
    /// log₂ of the inverse false-positive probability.
    p_bits: u8,
    /// Sorted, deduplicated hash values in `[0, 2^(log_n + p_bits))`.
    hashes: Vec<u64>,
}

fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct BitWriter {
    out: Vec<u8>,
    cur: u8,
    used: u8,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter { out: Vec::new(), cur: 0, used: 0 }
    }

    fn push_bit(&mut self, bit: bool) {
        self.cur = (self.cur << 1) | bit as u8;
        self.used += 1;
        if self.used == 8 {
            self.out.push(self.cur);
            self.cur = 0;
            self.used = 0;
        }
    }

    fn push_bits(&mut self, value: u64, count: u8) {
        for i in (0..count).rev() {
            self.push_bit((value >> i) & 1 == 1);
        }
    }

    fn finish(mut self) -> Vec<u8> {
        // Pad with ones (a padding quotient never terminates, so decoders
        // reading exactly N entries ignore it).
        while self.used != 0 {
            self.push_bit(true);
        }
        self.out
    }
}

struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0 }
    }

    fn read_bit(&mut self) -> Option<bool> {
        let byte = *self.data.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    fn read_bits(&mut self, count: u8) -> Option<u64> {
        let mut v = 0u64;
        for _ in 0..count {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Some(v)
    }
}

impl CacheDigest {
    /// Build a digest of `urls` with false-positive probability `2^-p_bits`
    /// (the draft default is p = 7 ⇒ <1 % false positives).
    pub fn build<S: AsRef<str>>(urls: &[S], p_bits: u8) -> CacheDigest {
        let count = urls.len().max(1) as u64;
        let log_n = (64 - (count - 1).leading_zeros()) as u8; // ceil(log2)
        let n2 = 1u64 << log_n;
        let modulus = n2 << p_bits;
        let mut hashes: Vec<u64> =
            urls.iter().map(|u| fnv1a64(u.as_ref().as_bytes()) % modulus).collect();
        hashes.sort_unstable();
        hashes.dedup();
        CacheDigest { log_n, p_bits, hashes }
    }

    /// An empty digest (nothing cached).
    pub fn empty() -> CacheDigest {
        CacheDigest { log_n: 0, p_bits: 7, hashes: Vec::new() }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// True when no URLs are in the digest.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Probabilistic membership: false negatives never occur; false
    /// positives with probability ≈ 2^-p_bits.
    pub fn contains(&self, url: &str) -> bool {
        if self.hashes.is_empty() {
            return false;
        }
        let modulus = (1u64 << self.log_n) << self.p_bits;
        let h = fnv1a64(url.as_bytes()) % modulus;
        self.hashes.binary_search(&h).is_ok()
    }

    /// Serialize: one header byte each for log-N and P, then Golomb-Rice
    /// coded deltas (unary quotient, `p_bits` remainder bits).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![self.log_n, self.p_bits, self.hashes.len() as u8];
        debug_assert!(self.hashes.len() < 256, "digest entry count fits a byte");
        let mut w = BitWriter::new();
        let mut prev = 0u64;
        for &h in &self.hashes {
            let delta = h - prev;
            prev = h + 1;
            let q = delta >> self.p_bits;
            for _ in 0..q {
                w.push_bit(true);
            }
            w.push_bit(false);
            w.push_bits(delta & ((1 << self.p_bits) - 1), self.p_bits);
        }
        out.extend(w.finish());
        out
    }

    /// Deserialize a digest produced by [`CacheDigest::encode`].
    pub fn decode(data: &[u8]) -> Option<CacheDigest> {
        if data.len() < 3 {
            return None;
        }
        let (log_n, p_bits, count) = (data[0], data[1], data[2] as usize);
        if log_n > 40 || p_bits > 16 {
            return None;
        }
        let mut r = BitReader::new(&data[3..]);
        let mut hashes = Vec::with_capacity(count);
        let mut prev = 0u64;
        for _ in 0..count {
            let mut q = 0u64;
            while r.read_bit()? {
                q += 1;
                if q > 1 << 24 {
                    return None; // corrupt
                }
            }
            let rem = r.read_bits(p_bits)?;
            let delta = (q << p_bits) | rem;
            let h = prev + delta;
            hashes.push(h);
            prev = h + 1;
        }
        Some(CacheDigest { log_n, p_bits, hashes })
    }

    /// Hex representation for transport in a header value.
    pub fn to_hex(&self) -> String {
        self.encode().iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Parse the hex header value form.
    pub fn from_hex(s: &str) -> Option<CacheDigest> {
        if !s.len().is_multiple_of(2) {
            return None;
        }
        let bytes: Option<Vec<u8>> =
            (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok()).collect();
        Self::decode(&bytes?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn urls(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("https://example.org/asset/{i}.css")).collect()
    }

    #[test]
    fn membership_has_no_false_negatives() {
        let u = urls(50);
        let d = CacheDigest::build(&u, 7);
        for url in &u {
            assert!(d.contains(url), "false negative for {url}");
        }
    }

    #[test]
    fn false_positive_rate_is_bounded() {
        let cached = urls(64);
        let d = CacheDigest::build(&cached, 7);
        let probes: Vec<String> =
            (0..4000).map(|i| format!("https://other.net/probe/{i}.js")).collect();
        let fp = probes.iter().filter(|p| d.contains(p)).count() as f64 / probes.len() as f64;
        // Expected ≈ 2^-7 ≈ 0.78 %; allow generous slack.
        assert!(fp < 0.03, "false positive rate {fp}");
    }

    #[test]
    fn encode_decode_round_trip() {
        for n in [1, 2, 7, 63, 200] {
            let u = urls(n);
            let d = CacheDigest::build(&u, 7);
            let back = CacheDigest::decode(&d.encode()).expect("decodes");
            assert_eq!(back, d, "n = {n}");
        }
    }

    #[test]
    fn hex_round_trip() {
        let d = CacheDigest::build(&urls(20), 7);
        let h = d.to_hex();
        assert_eq!(CacheDigest::from_hex(&h).unwrap(), d);
        assert!(CacheDigest::from_hex("zz").is_none());
        assert!(CacheDigest::from_hex("abc").is_none());
    }

    #[test]
    fn digest_is_compact() {
        // The draft's point: N entries cost ≈ N·(p+2) bits, far below
        // URL lists. 64 URLs at p=7 ⇒ ~72 bytes.
        let d = CacheDigest::build(&urls(64), 7);
        assert!(d.encode().len() < 120, "digest too large: {}", d.encode().len());
    }

    #[test]
    fn empty_digest() {
        let d = CacheDigest::empty();
        assert!(d.is_empty());
        assert!(!d.contains("https://example.org/"));
    }

    #[test]
    fn garbage_decode_is_safe() {
        assert!(CacheDigest::decode(&[]).is_none());
        assert!(CacheDigest::decode(&[50, 99, 10, 0xff]).is_none());
        let _ = CacheDigest::decode(&[3, 7, 200, 0xff, 0xff]); // may be None, must not panic
    }
}
