//! An HTTP/2 connection endpoint (client or server half).
//!
//! The endpoint is a synchronous state machine in the smoltcp style: bytes
//! in via [`Connection::receive`], bytes out via [`Connection::produce`],
//! application events out via [`Connection::poll_event`]. It owns the HPACK
//! contexts, the stream table, connection- and stream-level flow control,
//! and the priority tree; *which* stream's DATA is emitted next is delegated
//! to a [`Scheduler`] — the policy surface the
//! paper's Interleaving Push modifies.

use crate::error::{ConnError, StreamError};
use crate::frame::{
    ErrorCode, Frame, FrameError, PrioritySpec, Settings, DEFAULT_MAX_FRAME_SIZE, DEFAULT_WINDOW,
    FRAME_HEADER_LEN, PREFACE,
};
use crate::limits::ConnLimits;
use crate::priority::PriorityTree;
use crate::scheduler::{Scheduler, StreamSnapshot};
use crate::stream_slab::StreamSlab;
use bytes::{Bytes, BytesMut};
use h2push_hpack::{Decoder as HpackDecoder, Encoder as HpackEncoder, Header};
use h2push_trace::{FrameKind as TraceFrameKind, TraceEvent, TraceHandle};
use std::collections::VecDeque;
use std::sync::Arc;

/// Which side of the connection this endpoint is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The browser side: odd stream ids, sends the preface.
    Client,
    /// The replay-server side: even push ids.
    Server,
}

/// Stream lifecycle states (RFC 7540 §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamState {
    /// Reserved by a sent PUSH_PROMISE (server side).
    ReservedLocal,
    /// Reserved by a received PUSH_PROMISE (client side).
    ReservedRemote,
    /// Open in both directions.
    Open,
    /// We sent END_STREAM.
    HalfClosedLocal,
    /// Peer sent END_STREAM.
    HalfClosedRemote,
    /// Fully closed.
    Closed,
}

#[derive(Debug)]
struct OutBody {
    queued: usize,
    fin: bool,
    sent: u64,
    headers_sent: bool,
}

#[derive(Debug)]
struct Stream {
    state: StreamState,
    send_window: i64,
    recv_consumed: usize,
    out: OutBody,
}

impl Stream {
    fn new(state: StreamState, send_window: i64) -> Self {
        Stream {
            state,
            send_window,
            recv_consumed: 0,
            out: OutBody { queued: 0, fin: false, sent: 0, headers_sent: false },
        }
    }
}

/// Application-visible connection events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Peer SETTINGS arrived (already applied).
    Settings(Settings),
    /// Peer acknowledged our SETTINGS.
    SettingsAck,
    /// A complete header block arrived on `stream`. The list is shared
    /// (`Arc`) so event delivery never copies header bytes; consumers that
    /// need ownership clone the slice explicitly.
    Headers { stream: u32, headers: Arc<[Header]>, end_stream: bool },
    /// The peer promised to push `promised` in response to `parent`.
    PushPromise { parent: u32, promised: u32, headers: Arc<[Header]> },
    /// Body bytes arrived.
    Data { stream: u32, len: usize, end_stream: bool },
    /// Peer reset a stream.
    Reset { stream: u32, code: ErrorCode },
    /// Peer sent PRIORITY for `stream` (also applied to our tree).
    Priority { stream: u32, spec: PrioritySpec },
    /// Peer is going away.
    GoAway { last_stream: u32, code: ErrorCode },
    /// A single stream failed; the connection survives.
    StreamError { stream: u32, error: StreamError },
    /// A fatal protocol violation was observed; the connection is dead.
    ConnectionError { error: ConnError },
}

struct PendingHeaders {
    stream: u32,
    promised: Option<u32>,
    end_stream: bool,
    priority: Option<PrioritySpec>,
    block: Bytes,
}

/// One endpoint of an HTTP/2 connection.
pub struct Connection {
    role: Role,
    hpack_enc: HpackEncoder,
    hpack_dec: HpackDecoder,
    streams: StreamSlab<Stream>,
    tree: PriorityTree,
    control: VecDeque<Bytes>,
    recv_buf: Vec<u8>,
    /// Consumed prefix of `recv_buf`; compacted once per [`Connection::receive`]
    /// call instead of an O(n) drain per decoded frame.
    recv_pos: usize,
    events: VecDeque<Event>,
    next_stream_id: u32,
    next_push_id: u32,
    preface_sent: bool,
    preface_received: bool,
    // Peer-controlled send parameters.
    peer_enable_push: bool,
    peer_max_frame_size: usize,
    peer_initial_window: i64,
    conn_send_window: i64,
    // Our receive parameters.
    local_settings: Settings,
    local_initial_window: i64,
    conn_recv_consumed: usize,
    goaway_received: bool,
    dead: bool,
    // Adversarial-peer enforcement (see [`ConnLimits`]). The counters are
    // lifetime totals; benign replays stay far below every bound.
    limits: ConnLimits,
    resets_received: u32,
    settings_received: u32,
    pings_received: u32,
    refused_streams: u32,
    /// Highest peer-initiated stream id accepted (server side): client
    /// stream ids must be odd and monotonically increasing (§5.1.1).
    highest_peer_stream: u32,
    /// Highest promised stream id seen (client side): promises must be
    /// monotonically increasing too.
    last_promised_id: u32,
    trace: TraceHandle,
    /// Replay connection label stamped into trace events.
    trace_conn: u32,
    /// Persistent assembly buffer for [`Connection::produce`]; each call
    /// writes into it and hands out a `split().freeze()` view, so
    /// steady-state produces reuse capacity instead of growing a fresh Vec.
    send_buf: BytesMut,
    /// Persistent per-frame encode buffer for [`Connection::queue_frame`].
    frame_buf: BytesMut,
    /// Reused snapshot vector for the scheduler loop in `produce`.
    snap_scratch: Vec<StreamSnapshot>,
    /// A header block mid-assembly across CONTINUATION frames whose tail
    /// has not arrived yet. Carried across [`Connection::receive`] calls:
    /// chunk boundaries are transport artifacts the sans-IO contract says
    /// the machine must not observe (a live TCP read can split a block
    /// anywhere).
    pending_headers: Option<PendingHeaders>,
}

/// `(kind, stream, payload bytes)` of a frame, for trace stamping only.
fn frame_meta(frame: &Frame) -> (TraceFrameKind, u32, u32) {
    match frame {
        Frame::Data { stream, len, .. } => (TraceFrameKind::Data, *stream, *len as u32),
        Frame::Headers { stream, block, .. } => {
            (TraceFrameKind::Headers, *stream, block.len() as u32)
        }
        Frame::Priority { stream, .. } => (TraceFrameKind::Priority, *stream, 5),
        Frame::RstStream { stream, .. } => (TraceFrameKind::RstStream, *stream, 4),
        Frame::Settings { .. } => (TraceFrameKind::Settings, 0, 0),
        Frame::PushPromise { stream, block, .. } => {
            (TraceFrameKind::PushPromise, *stream, block.len() as u32 + 4)
        }
        Frame::Ping { .. } => (TraceFrameKind::Ping, 0, 8),
        Frame::GoAway { .. } => (TraceFrameKind::Goaway, 0, 8),
        Frame::WindowUpdate { stream, .. } => (TraceFrameKind::WindowUpdate, *stream, 4),
        Frame::Continuation { stream, block, .. } => {
            (TraceFrameKind::Continuation, *stream, block.len() as u32)
        }
    }
}

impl Connection {
    /// Create the client half. `settings` is sent in the connection preface
    /// — set `enable_push: Some(false)` for the paper's *no push* baseline.
    pub fn client(settings: Settings) -> Self {
        let mut c = Self::new(Role::Client, settings);
        c.queue_client_preface();
        c
    }

    /// Create the server half.
    pub fn server(settings: Settings) -> Self {
        let mut c = Self::new(Role::Server, settings);
        c.queue_server_preface();
        c
    }

    /// Queue the client connection preface: the 24-octet magic and our
    /// SETTINGS as one chunk, then the generous connection-window update.
    /// Assembled in `frame_buf` so a recycled connection reuses capacity.
    fn queue_client_preface(&mut self) {
        debug_assert!(self.frame_buf.is_empty());
        self.frame_buf.extend_from_slice(PREFACE);
        Frame::Settings { ack: false, settings: self.local_settings }
            .encode_to(&mut self.frame_buf);
        self.control.push_back(self.frame_buf.split().freeze());
        self.preface_sent = true;
        // Mirror Chromium: open the connection-level window generously so
        // stream windows are the effective limit.
        self.queue_frame(Frame::WindowUpdate { stream: 0, increment: 15 * 1024 * 1024 });
    }

    /// Queue the server half's opening SETTINGS and window update.
    fn queue_server_preface(&mut self) {
        self.queue_frame(Frame::Settings { ack: false, settings: self.local_settings });
        self.queue_frame(Frame::WindowUpdate { stream: 0, increment: 15 * 1024 * 1024 });
        self.preface_sent = true;
    }

    /// Recycle this endpoint into the state [`Connection::client`]
    /// `(settings)` constructs, retaining every container allocation
    /// (buffers, stream slab, tables, queues). Observable behavior is
    /// byte-identical to a freshly constructed client.
    pub fn reset_client(&mut self, settings: Settings) {
        self.role = Role::Client;
        self.reset_common(settings);
        self.queue_client_preface();
    }

    /// Recycle this endpoint into the state [`Connection::server`]
    /// `(settings)` constructs; see [`Connection::reset_client`].
    pub fn reset_server(&mut self, settings: Settings) {
        self.role = Role::Server;
        self.reset_common(settings);
        self.queue_server_preface();
    }

    /// Clear-don't-drop restoration of every field `Connection::new` sets.
    /// Kept in that function's field order so the two stay in sync.
    fn reset_common(&mut self, settings: Settings) {
        self.hpack_enc.reset();
        self.hpack_dec.reset();
        if let Some(hts) = settings.header_table_size {
            self.hpack_dec.set_capacity_limit(hts as usize);
        }
        if let Some(mhls) = settings.max_header_list_size {
            self.hpack_dec.set_max_header_list_size(mhls as usize);
        }
        self.streams.reset();
        self.tree.reset();
        self.control.clear();
        self.recv_buf.clear();
        self.recv_pos = 0;
        self.events.clear();
        self.next_stream_id = 1;
        self.next_push_id = 2;
        self.preface_sent = false;
        self.preface_received = self.role == Role::Client;
        self.peer_enable_push = true;
        self.peer_max_frame_size = DEFAULT_MAX_FRAME_SIZE;
        self.peer_initial_window = DEFAULT_WINDOW;
        self.conn_send_window = DEFAULT_WINDOW;
        self.local_initial_window =
            settings.initial_window_size.map(|v| v as i64).unwrap_or(DEFAULT_WINDOW);
        self.local_settings = settings;
        self.conn_recv_consumed = 0;
        self.goaway_received = false;
        self.dead = false;
        self.limits = ConnLimits::new();
        self.resets_received = 0;
        self.settings_received = 0;
        self.pings_received = 0;
        self.refused_streams = 0;
        self.highest_peer_stream = 0;
        self.last_promised_id = 0;
        self.trace = TraceHandle::off();
        self.trace_conn = 0;
        self.send_buf.clear();
        self.frame_buf.clear();
        self.snap_scratch.clear();
        self.pending_headers = None;
    }

    fn new(role: Role, settings: Settings) -> Self {
        let mut hpack_dec = HpackDecoder::new();
        if let Some(hts) = settings.header_table_size {
            // Our SETTINGS_HEADER_TABLE_SIZE caps the peer encoder's
            // dynamic table; the decoder must accept size updates up to it.
            hpack_dec.set_capacity_limit(hts as usize);
        }
        if let Some(mhls) = settings.max_header_list_size {
            hpack_dec.set_max_header_list_size(mhls as usize);
        }
        Connection {
            role,
            hpack_enc: HpackEncoder::new(),
            hpack_dec,
            streams: take_recycled_slab(),
            tree: PriorityTree::new(),
            control: VecDeque::new(),
            recv_buf: Vec::new(),
            recv_pos: 0,
            events: VecDeque::new(),
            next_stream_id: 1,
            next_push_id: 2,
            preface_sent: false,
            preface_received: role == Role::Client, // only servers expect it
            peer_enable_push: true,
            peer_max_frame_size: DEFAULT_MAX_FRAME_SIZE,
            peer_initial_window: DEFAULT_WINDOW,
            conn_send_window: DEFAULT_WINDOW,
            local_initial_window: settings
                .initial_window_size
                .map(|v| v as i64)
                .unwrap_or(DEFAULT_WINDOW),
            local_settings: settings,
            conn_recv_consumed: 0,
            goaway_received: false,
            dead: false,
            limits: ConnLimits::new(),
            resets_received: 0,
            settings_received: 0,
            pings_received: 0,
            refused_streams: 0,
            highest_peer_stream: 0,
            last_promised_id: 0,
            trace: TraceHandle::off(),
            trace_conn: 0,
            send_buf: BytesMut::new(),
            frame_buf: BytesMut::new(),
            snap_scratch: Vec::new(),
            pending_headers: None,
        }
    }

    /// Attach a shared HPACK block memo ([`h2push_hpack::BlockCache`]) to
    /// this endpoint's encoder. Pure acceleration: encoded bytes are
    /// identical with or without it.
    pub fn set_hpack_block_cache(&mut self, cache: h2push_hpack::BlockCache) {
        self.hpack_enc.set_block_cache(cache);
    }

    /// Attach a shared decode memo ([`h2push_hpack::DecodeCache`]) to this
    /// endpoint's decoder. Pure acceleration, like the block cache:
    /// decoded lists and table state are identical with or without it.
    pub fn set_hpack_decode_cache(&mut self, cache: h2push_hpack::DecodeCache) {
        self.hpack_dec.set_decode_cache(cache);
    }

    /// Our role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Replace the adversarial-peer enforcement bounds (defaults are
    /// [`ConnLimits::new`]). Limits are local policy only — nothing is
    /// advertised on the wire, so benign byte streams are unaffected.
    pub fn set_limits(&mut self, limits: ConnLimits) {
        // The header-list bound is enforced inside the HPACK decoder
        // (where decoded size is known before allocation). An explicit
        // SETTINGS_MAX_HEADER_LIST_SIZE still takes precedence.
        if self.local_settings.max_header_list_size.is_none() {
            self.hpack_dec.set_max_header_list_size(limits.max_header_list_size);
        }
        self.limits = limits;
    }

    /// The enforcement bounds currently in effect.
    pub fn limits(&self) -> &ConnLimits {
        &self.limits
    }

    /// True once a fatal [`ConnError`] killed this endpoint: it will
    /// ignore further input and produce at most its final GOAWAY.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Attach a trace handle; `conn` is the label stamped into every frame
    /// event from this endpoint. Timestamps come from the handle's shared
    /// clock (frame encoding has no time parameter of its own).
    pub fn set_trace(&mut self, trace: TraceHandle, conn: u32) {
        self.trace = trace;
        self.trace_conn = conn;
    }

    fn trace_role(&self) -> h2push_trace::Role {
        match self.role {
            Role::Client => h2push_trace::Role::Client,
            Role::Server => h2push_trace::Role::Server,
        }
    }

    /// The priority tree as currently negotiated.
    pub fn tree(&self) -> &PriorityTree {
        &self.tree
    }

    /// Whether the peer allows us to push (server side).
    pub fn peer_enable_push(&self) -> bool {
        self.peer_enable_push
    }

    /// True once a GOAWAY has been received.
    pub fn goaway_received(&self) -> bool {
        self.goaway_received
    }

    /// True once the peer's connection preface has been received. Client
    /// connections are born `true` (only servers expect the 24-octet
    /// magic); on a server this is the live runtime's accept-to-preface
    /// supervision signal.
    pub fn preface_received(&self) -> bool {
        self.preface_received
    }

    /// State of `stream`, if known.
    pub fn stream_state(&self, stream: u32) -> Option<StreamState> {
        self.streams.get(stream).map(|s| s.state)
    }

    /// Body bytes already sent on `stream`.
    pub fn bytes_sent(&self, stream: u32) -> u64 {
        self.streams.get(stream).map(|s| s.out.sent).unwrap_or(0)
    }

    /// Body bytes queued but not yet sent on `stream`.
    pub fn bytes_queued(&self, stream: u32) -> usize {
        self.streams.get(stream).map(|s| s.out.queued).unwrap_or(0)
    }

    fn queue_frame(&mut self, frame: Frame) {
        if self.trace.is_on() {
            let (kind, stream, bytes) = frame_meta(&frame);
            let end_stream = matches!(
                frame,
                Frame::Headers { end_stream: true, .. } | Frame::Data { end_stream: true, .. }
            );
            self.trace.emit(TraceEvent::FrameSent {
                conn: self.trace_conn,
                role: self.trace_role(),
                stream,
                kind,
                bytes,
                end_stream,
            });
        }
        debug_assert!(self.frame_buf.is_empty());
        frame.encode_to(&mut self.frame_buf);
        self.control.push_back(self.frame_buf.split().freeze());
        // Backpressure against response-forcing floods (PING acks,
        // SETTINGS acks, RSTs queued faster than the link drains them).
        // `fatal` itself queues a GOAWAY with `dead` already set, so this
        // cannot recurse.
        if self.control.len() > self.limits.max_control_frames && !self.dead {
            self.fatal(ConnError::ControlQueueOverflow);
        }
    }

    fn trace_limit_violation(&mut self, stream: u32, fatal: bool) {
        if self.trace.is_on() {
            self.trace.emit(TraceEvent::LimitViolation {
                conn: self.trace_conn,
                role: self.trace_role(),
                stream,
                fatal,
            });
        }
    }

    // ----- client API -----

    /// The id the next [`Connection::request`] will be assigned (clients
    /// build PRIORITY specs referencing the id before opening the stream).
    pub fn peek_next_stream_id(&self) -> u32 {
        self.next_stream_id
    }

    /// Open a request stream (client). Returns the new stream id.
    pub fn request(&mut self, headers: &[Header], priority: Option<PrioritySpec>) -> u32 {
        assert_eq!(self.role, Role::Client, "only clients open requests");
        let id = self.next_stream_id;
        self.next_stream_id += 2;
        let block = self.hpack_enc.encode_bytes(headers);
        self.queue_header_block(id, block, true, priority, None);
        // Requests in the replay have no body: half-closed (local) at once.
        self.streams
            .insert(id, Stream::new(StreamState::HalfClosedLocal, self.peer_initial_window));
        self.tree.insert(id, priority.unwrap_or_default());
        id
    }

    /// Send PRIORITY for `stream` (client reprioritization).
    pub fn send_priority(&mut self, stream: u32, spec: PrioritySpec) {
        self.tree.insert(stream, spec);
        self.queue_frame(Frame::Priority { stream, spec });
    }

    /// Reset a stream (e.g. cancel an unwanted push with CANCEL).
    pub fn reset(&mut self, stream: u32, code: ErrorCode) {
        if let Some(s) = self.streams.get_mut(stream) {
            if s.state != StreamState::Closed {
                s.state = StreamState::Closed;
                s.out.queued = 0;
                self.queue_frame(Frame::RstStream { stream, code });
                self.tree.remove(stream);
            }
        }
    }

    // ----- server API -----

    /// Promise a push in response to `parent` (server). Returns the
    /// promised stream id, or `None` if the peer disabled push, sent
    /// GOAWAY, the connection died, or the parent is gone.
    pub fn push_promise(&mut self, parent: u32, request_headers: &[Header]) -> Option<u32> {
        assert_eq!(self.role, Role::Server, "only servers push");
        // A peer that disabled push, announced departure (GOAWAY), or
        // killed the connection will never accept the promise.
        if !self.peer_enable_push || self.goaway_received || self.dead {
            return None;
        }
        let parent_alive = matches!(
            self.streams.get(parent).map(|s| s.state),
            Some(StreamState::Open) | Some(StreamState::HalfClosedRemote)
        );
        if !parent_alive {
            return None;
        }
        // Stream-id exhaustion (§5.1.1): ids above 2^31-1 cannot exist;
        // a server that pushed that much simply stops pushing.
        if self.next_push_id > 0x7fff_fffe {
            return None;
        }
        let id = self.next_push_id;
        self.next_push_id += 2;
        let block = self.hpack_enc.encode_bytes(request_headers);
        self.queue_push_promise(parent, id, block);
        self.streams.insert(id, Stream::new(StreamState::ReservedLocal, self.peer_initial_window));
        // h2o treats the pushed stream as a child of the stream that
        // triggered it (paper Fig. 5a), default weight.
        self.tree.insert(id, PrioritySpec { depends_on: parent, weight: 16, exclusive: false });
        Some(id)
    }

    /// Send response headers on `stream` (server). With `end_stream` the
    /// response has no body.
    pub fn respond(&mut self, stream: u32, headers: &[Header], end_stream: bool) {
        assert_eq!(self.role, Role::Server);
        let block = self.hpack_enc.encode_bytes(headers);
        self.queue_header_block(stream, block, end_stream, None, None);
        if let Some(s) = self.streams.get_mut(stream) {
            s.out.headers_sent = true;
            match (s.state, end_stream) {
                (StreamState::ReservedLocal, false) => s.state = StreamState::HalfClosedRemote,
                (StreamState::ReservedLocal, true) => s.state = StreamState::Closed,
                (_, true) => self.close_send_side(stream),
                _ => {}
            }
        }
        if end_stream {
            self.tree.remove(stream);
        }
    }

    /// Queue `len` body bytes on `stream`; `fin` marks the end of the
    /// response. Actual emission is driven by [`Connection::produce`].
    pub fn queue_body(&mut self, stream: u32, len: usize, fin: bool) {
        if let Some(s) = self.streams.get_mut(stream) {
            if s.state == StreamState::Closed {
                return;
            }
            // Saturating: a hostile application layer cannot overflow the
            // byte counter into a panic.
            s.out.queued = s.out.queued.saturating_add(len);
            s.out.fin |= fin;
        }
    }

    fn close_send_side(&mut self, stream: u32) {
        if let Some(s) = self.streams.get_mut(stream) {
            s.state = match s.state {
                StreamState::Open => StreamState::HalfClosedLocal,
                StreamState::HalfClosedRemote | StreamState::ReservedLocal => StreamState::Closed,
                other => other,
            };
        }
    }

    fn queue_header_block(
        &mut self,
        stream: u32,
        block: Bytes,
        end_stream: bool,
        priority: Option<PrioritySpec>,
        _promised: Option<u32>,
    ) {
        let limit = self.peer_max_frame_size - 16; // room for priority section
        if block.len() <= limit {
            self.queue_frame(Frame::Headers {
                stream,
                block,
                end_stream,
                end_headers: true,
                priority,
            });
            return;
        }
        // Every HEADERS/CONTINUATION chunk is an O(1) slice of the shared
        // block: chunking copies no payload bytes.
        let total = block.len();
        self.queue_frame(Frame::Headers {
            stream,
            block: block.slice(..limit),
            end_stream,
            end_headers: false,
            priority,
        });
        let mut pos = limit;
        while pos < total {
            let end = (pos + limit).min(total);
            self.queue_frame(Frame::Continuation {
                stream,
                block: block.slice(pos..end),
                end_headers: end == total,
            });
            pos = end;
        }
    }

    fn queue_push_promise(&mut self, parent: u32, promised: u32, block: Bytes) {
        // Push promise blocks are small in practice; single frame.
        self.queue_frame(Frame::PushPromise { stream: parent, promised, block, end_headers: true });
    }

    // ----- send path -----

    /// True when there is anything to put on the wire.
    pub fn wants_send(&self) -> bool {
        if !self.control.is_empty() {
            return true;
        }
        self.streams.values().any(|s| {
            s.out.headers_sent
                && s.state != StreamState::Closed
                && (s.out.queued > 0 || (s.out.fin && s.out.sent == 0 && s.out.queued == 0))
                && self.conn_send_window > 0
                && s.send_window > 0
        })
    }

    fn sendable(&self, s: &Stream) -> usize {
        if !s.out.headers_sent || s.state == StreamState::Closed {
            return 0;
        }
        s.out.queued.min(self.conn_send_window.max(0) as usize).min(s.send_window.max(0) as usize)
    }

    /// Produce up to roughly `max` wire bytes: pending control frames first,
    /// then DATA chunks chosen by `scheduler`. The returned [`Bytes`] is
    /// moved (not copied) out of the assembly buffer, so downstream layers
    /// can queue and re-slice it without further copies.
    pub fn produce(&mut self, max: usize, scheduler: &mut dyn Scheduler) -> Bytes {
        debug_assert!(self.send_buf.is_empty());
        while let Some(front) = self.control.front() {
            if !self.send_buf.is_empty() && self.send_buf.len() + front.len() > max {
                break;
            }
            self.send_buf.extend_from_slice(front);
            self.control.pop_front();
        }
        let mut snapshots = std::mem::take(&mut self.snap_scratch);
        while self.send_buf.len() < max {
            snapshots.clear();
            snapshots.extend(self.streams.iter().filter_map(|(id, s)| {
                let sendable = self.sendable(s);
                if sendable > 0 {
                    Some(StreamSnapshot {
                        id,
                        sendable,
                        sent: s.out.sent,
                        is_push: id.is_multiple_of(2),
                    })
                } else {
                    None
                }
            }));
            if snapshots.is_empty() {
                break;
            }
            let Some(id) = scheduler.pick(&snapshots, &self.tree) else { break };
            let Some(s) = self.streams.get_mut(id) else {
                // The scheduler picked an id the connection no longer
                // tracks (stale policy state). Fail the pick, tell the
                // scheduler the stream is gone, and keep the connection —
                // and this produce() batch — alive.
                scheduler.stream_closed(id);
                self.events.push_back(Event::StreamError {
                    stream: id,
                    error: StreamError::UnknownScheduled,
                });
                break;
            };
            let sendable = s
                .out
                .queued
                .min(self.conn_send_window.max(0) as usize)
                .min(s.send_window.max(0) as usize);
            let chunk =
                sendable.min(self.peer_max_frame_size).min(max - self.send_buf.len().min(max));
            if chunk == 0 {
                break;
            }
            s.out.queued -= chunk;
            s.out.sent += chunk as u64;
            s.send_window -= chunk as i64;
            self.conn_send_window -= chunk as i64;
            let end_stream = s.out.fin && s.out.queued == 0;
            // Exact reserve, not amortized growth: doubling would push a
            // recycled buffer's capacity past the recycle pool's cap and
            // lose it, so capacities converge on the real burst size and
            // steady-state DATA bursts never grow the buffer.
            if chunk + FRAME_HEADER_LEN > self.send_buf.capacity() - self.send_buf.len() {
                self.send_buf.reserve_exact(chunk + FRAME_HEADER_LEN);
            }
            Frame::Data { stream: id, len: chunk, end_stream }.encode_to(&mut self.send_buf);
            if self.trace.is_on() {
                self.trace.emit(TraceEvent::SchedulerPick {
                    conn: self.trace_conn,
                    stream: id,
                    bytes: chunk as u32,
                });
                self.trace.emit(TraceEvent::FrameSent {
                    conn: self.trace_conn,
                    role: self.trace_role(),
                    stream: id,
                    kind: TraceFrameKind::Data,
                    bytes: chunk as u32,
                    end_stream,
                });
            }
            scheduler.charge(id, chunk, &self.tree);
            if end_stream {
                self.close_send_side(id);
                self.tree.remove(id);
                scheduler.stream_closed(id);
            }
        }
        self.snap_scratch = snapshots;
        self.send_buf.split().freeze()
    }

    // ----- receive path -----

    /// Feed wire bytes from the peer.
    pub fn receive(&mut self, data: &[u8]) {
        if self.dead {
            return;
        }
        // Fast path: nothing buffered from a previous batch — decode frames
        // directly from `data` and buffer only an incomplete tail. This
        // skips copying the whole batch (dominated by DATA filler) into
        // `recv_buf`; the decoded frames and events are byte-identical to
        // the buffered path below.
        if self.preface_received && self.recv_buf.len() == self.recv_pos {
            self.recv_buf.clear();
            self.recv_pos = 0;
            let mut pos = 0usize;
            let mut pending = self.pending_headers.take();
            loop {
                let local_max = self
                    .local_settings
                    .max_frame_size
                    .map(|v| v as usize)
                    .unwrap_or(DEFAULT_MAX_FRAME_SIZE);
                match Frame::decode(&data[pos..], local_max) {
                    Ok((frame, used)) => {
                        pos += used;
                        if let Err(error) = self.handle_frame(frame, &mut pending) {
                            self.fatal(error);
                            return;
                        }
                        if self.dead {
                            // A limit tripped inside handle_frame (e.g.
                            // control-queue backpressure); stop consuming.
                            return;
                        }
                    }
                    Err(FrameError::Incomplete) => break,
                    Err(FrameError::UnknownType { skip }) => {
                        pos += skip;
                    }
                    Err(FrameError::TooLarge) => {
                        self.fatal(ConnError::FrameTooLarge);
                        return;
                    }
                    Err(FrameError::Protocol(reason)) => {
                        self.fatal(ConnError::Frame(reason));
                        return;
                    }
                }
            }
            if pos < data.len() {
                self.recv_buf.extend_from_slice(&data[pos..]);
            }
            // An unfinished CONTINUATION sequence simply waits for the
            // next batch, like any other partial frame.
            self.pending_headers = pending;
            return;
        }
        self.recv_buf.extend_from_slice(data);
        if !self.preface_received {
            if self.recv_buf.len() < PREFACE.len() {
                return;
            }
            if &self.recv_buf[..PREFACE.len()] != PREFACE {
                self.fatal(ConnError::BadPreface);
                return;
            }
            self.recv_pos = PREFACE.len();
            self.preface_received = true;
        }
        let mut pending = self.pending_headers.take();
        loop {
            let local_max = self
                .local_settings
                .max_frame_size
                .map(|v| v as usize)
                .unwrap_or(DEFAULT_MAX_FRAME_SIZE);
            match Frame::decode(&self.recv_buf[self.recv_pos..], local_max) {
                Ok((frame, used)) => {
                    self.recv_pos += used;
                    if let Err(error) = self.handle_frame(frame, &mut pending) {
                        self.fatal(error);
                        return;
                    }
                    if self.dead {
                        return;
                    }
                }
                Err(FrameError::Incomplete) => break,
                Err(FrameError::UnknownType { skip }) => {
                    self.recv_pos += skip;
                }
                Err(FrameError::TooLarge) => {
                    self.fatal(ConnError::FrameTooLarge);
                    return;
                }
                Err(FrameError::Protocol(reason)) => {
                    self.fatal(ConnError::Frame(reason));
                    return;
                }
            }
        }
        // One compaction per receive() batch (instead of an O(n) drain per
        // frame); retains the buffer's capacity for the next batch.
        if self.recv_pos > 0 {
            self.recv_buf.drain(..self.recv_pos);
            self.recv_pos = 0;
        }
        self.pending_headers = pending;
    }

    /// The sans-IO action surface (see [`crate::sansio`]): feed a chunk of
    /// received wire bytes and return every [`Event`] it produced, in
    /// order. Equivalent to [`receive`](Self::receive) followed by
    /// draining [`poll_event`](Self::poll_event) — use this form when the
    /// runtime wants the whole batch of actions at once (the badpeer
    /// fingerprint suite drives victims this way), and the incremental
    /// pair when events must be handled interleaved with other work (the
    /// browser engine). The connection needs no clock, so no timestamp is
    /// taken: time-dependent behaviour lives in the layers above.
    pub fn feed_bytes(&mut self, bytes: &[u8]) -> Vec<Event> {
        self.receive(bytes);
        let mut events = Vec::with_capacity(self.events.len());
        while let Some(ev) = self.poll_event() {
            events.push(ev);
        }
        events
    }

    fn fatal(&mut self, error: ConnError) {
        self.dead = true;
        self.recv_buf.clear();
        self.recv_pos = 0;
        if error.is_limit_violation() {
            self.trace_limit_violation(0, true);
        }
        self.queue_frame(Frame::GoAway { last_stream: 0, code: error.code() });
        self.events.push_back(Event::ConnectionError { error });
    }

    fn handle_frame(
        &mut self,
        frame: Frame,
        pending: &mut Option<PendingHeaders>,
    ) -> Result<(), ConnError> {
        if pending.is_some() && !matches!(frame, Frame::Continuation { .. }) {
            return Err(ConnError::ExpectedContinuation);
        }
        if self.trace.is_on() {
            let (kind, stream, bytes) = frame_meta(&frame);
            self.trace.emit(TraceEvent::FrameReceived {
                conn: self.trace_conn,
                role: self.trace_role(),
                stream,
                kind,
                bytes,
            });
        }
        match frame {
            Frame::Settings { ack, settings } => {
                if ack {
                    self.events.push_back(Event::SettingsAck);
                    return Ok(());
                }
                // Each non-ack SETTINGS forces an ack from us: a churn
                // attack amplifies unless bounded.
                self.settings_received = self.settings_received.saturating_add(1);
                if self.settings_received > self.limits.max_settings_frames {
                    return Err(ConnError::SettingsFlood);
                }
                if let Some(push) = settings.enable_push {
                    self.peer_enable_push = push;
                }
                if let Some(mfs) = settings.max_frame_size {
                    self.peer_max_frame_size = (mfs as usize).clamp(16_384, 1 << 24);
                }
                if let Some(iw) = settings.initial_window_size {
                    // §6.5.2: INITIAL_WINDOW_SIZE above 2^31-1 is a
                    // flow-control error.
                    if iw > 0x7fff_ffff {
                        return Err(ConnError::FlowControlOverflow);
                    }
                    let delta = iw as i64 - self.peer_initial_window;
                    self.peer_initial_window = iw as i64;
                    for s in self.streams.values_mut() {
                        s.send_window += delta;
                    }
                }
                if let Some(hts) = settings.header_table_size {
                    self.hpack_enc.set_table_size((hts as usize).min(4096));
                }
                self.queue_frame(Frame::Settings { ack: true, settings: Settings::default() });
                self.events.push_back(Event::Settings(settings));
            }
            Frame::WindowUpdate { stream, increment } => {
                // §6.9.1: a sender must not let a flow-control window
                // exceed 2^31-1; an update that would is FLOW_CONTROL_ERROR
                // (fatal on stream 0, RST on a stream).
                const MAX_WINDOW: i64 = 0x7fff_ffff;
                if stream == 0 {
                    if self.conn_send_window + increment as i64 > MAX_WINDOW {
                        return Err(ConnError::FlowControlOverflow);
                    }
                    self.conn_send_window += increment as i64;
                    self.trace.emit(TraceEvent::WindowUpdate {
                        conn: self.trace_conn,
                        role: self.trace_role(),
                        stream: 0,
                        increment,
                    });
                } else if let Some(s) = self.streams.get_mut(stream) {
                    if s.send_window + increment as i64 > MAX_WINDOW {
                        s.state = StreamState::Closed;
                        s.out.queued = 0;
                        self.tree.remove(stream);
                        self.trace_limit_violation(stream, false);
                        self.queue_frame(Frame::RstStream {
                            stream,
                            code: ErrorCode::FlowControlError,
                        });
                        self.events.push_back(Event::StreamError {
                            stream,
                            error: StreamError::WindowOverflow,
                        });
                        return Ok(());
                    }
                    s.send_window += increment as i64;
                    self.trace.emit(TraceEvent::WindowUpdate {
                        conn: self.trace_conn,
                        role: self.trace_role(),
                        stream,
                        increment,
                    });
                }
            }
            Frame::Priority { stream, spec } => {
                self.tree.insert(stream, spec);
                self.events.push_back(Event::Priority { stream, spec });
            }
            Frame::Headers { stream, block, end_stream, end_headers, priority } => {
                let ph = PendingHeaders { stream, promised: None, end_stream, priority, block };
                if end_headers {
                    self.finish_header_block(ph)?;
                } else {
                    *pending = Some(ph);
                }
            }
            Frame::PushPromise { stream, promised, block, end_headers } => {
                if self.role == Role::Client && self.local_settings.enable_push == Some(false) {
                    return Err(ConnError::PushDisabled);
                }
                if promised % 2 != 0 {
                    return Err(ConnError::OddPromisedStream);
                }
                // §5.1.1: stream ids are monotonically increasing; a
                // promise reusing or rewinding ids is hostile.
                if promised <= self.last_promised_id {
                    return Err(ConnError::PromisedStreamIdNotIncreasing);
                }
                self.last_promised_id = promised;
                let ph = PendingHeaders {
                    stream,
                    promised: Some(promised),
                    end_stream: false,
                    priority: None,
                    block,
                };
                if end_headers {
                    self.finish_header_block(ph)?;
                } else {
                    *pending = Some(ph);
                }
            }
            Frame::Continuation { stream, block, end_headers } => {
                let mut ph = pending.take().ok_or(ConnError::ContinuationWithoutHeaders)?;
                if ph.stream != stream {
                    return Err(ConnError::ContinuationWrongStream);
                }
                // Reassembly concatenates only on the (rare) multi-frame
                // header-block path; single-frame blocks stay zero-copy.
                let mut buf = BytesMut::with_capacity(ph.block.len() + block.len());
                buf.extend_from_slice(&ph.block);
                buf.extend_from_slice(&block);
                ph.block = buf.freeze();
                // A CONTINUATION flood grows the compressed block without
                // bound. Compressed HPACK is never larger than the decoded
                // list it carries, so the §10.5.1 decoded-list cap is a
                // sound bound on the fragment too.
                if ph.block.len() > self.limits.max_header_list_size {
                    return Err(ConnError::HeaderListTooLarge);
                }
                if end_headers {
                    self.finish_header_block(ph)?;
                } else {
                    *pending = Some(ph);
                }
            }
            Frame::Data { stream, len, end_stream } => {
                self.conn_recv_consumed += len;
                // Replenish the connection window at the halfway mark.
                let conn_limit = 15 * 1024 * 1024 + DEFAULT_WINDOW as usize;
                if self.conn_recv_consumed * 2 >= conn_limit {
                    let inc = self.conn_recv_consumed as u32;
                    self.conn_recv_consumed = 0;
                    self.queue_frame(Frame::WindowUpdate { stream: 0, increment: inc });
                }
                // Single borrow of the stream: the WINDOW_UPDATE is queued
                // after it ends, so no re-lookup (and no unwrap) is needed.
                let (known, window_inc) = match self.streams.get_mut(stream) {
                    Some(s) if s.state == StreamState::Closed => {
                        // Data raced our RST; ignore at stream level.
                        (false, None)
                    }
                    Some(s) => {
                        s.recv_consumed += len;
                        let inc = if s.recv_consumed as i64 * 2 >= self.local_initial_window {
                            let inc = s.recv_consumed as u32;
                            s.recv_consumed = 0;
                            Some(inc)
                        } else {
                            None
                        };
                        if end_stream {
                            s.state = match s.state {
                                StreamState::Open => StreamState::HalfClosedRemote,
                                StreamState::HalfClosedLocal | StreamState::HalfClosedRemote => {
                                    StreamState::Closed
                                }
                                other => other,
                            };
                        }
                        (true, inc)
                    }
                    None => return Err(ConnError::DataOnUnknownStream),
                };
                if let Some(increment) = window_inc {
                    self.queue_frame(Frame::WindowUpdate { stream, increment });
                }
                if known {
                    self.events.push_back(Event::Data { stream, len, end_stream });
                }
            }
            Frame::RstStream { stream, code } => {
                // Rapid-reset mitigation (cf. CVE-2023-44487): a peer that
                // opens-and-cancels streams pays for each RST against a
                // lifetime budget.
                self.resets_received = self.resets_received.saturating_add(1);
                if self.resets_received > self.limits.max_resets {
                    return Err(ConnError::ResetFlood);
                }
                if let Some(s) = self.streams.get_mut(stream) {
                    s.state = StreamState::Closed;
                    s.out.queued = 0;
                }
                self.tree.remove(stream);
                self.events.push_back(Event::Reset { stream, code });
            }
            Frame::Ping { ack, payload } => {
                if !ack {
                    self.pings_received = self.pings_received.saturating_add(1);
                    if self.pings_received > self.limits.max_pings {
                        return Err(ConnError::PingFlood);
                    }
                    self.queue_frame(Frame::Ping { ack: true, payload });
                }
            }
            Frame::GoAway { last_stream, code } => {
                self.goaway_received = true;
                self.events.push_back(Event::GoAway { last_stream, code });
            }
        }
        Ok(())
    }

    fn finish_header_block(&mut self, ph: PendingHeaders) -> Result<(), ConnError> {
        let headers = self.hpack_dec.decode_shared(&ph.block).map_err(|e| match e {
            // A header bomb (small wire bytes, huge decoded list) is a
            // flood, not a compression defect.
            h2push_hpack::Error::HeaderListTooLarge => ConnError::HeaderListTooLarge,
            _ => ConnError::HpackDecode,
        })?;
        match ph.promised {
            Some(promised) => {
                // Reserved push streams count against the concurrency
                // limit: a push-flooding server gets refusals, not
                // unbounded stream-table growth.
                let active =
                    self.streams.values().filter(|s| s.state != StreamState::Closed).count();
                if active >= self.limits.max_concurrent_streams as usize {
                    self.refused_streams = self.refused_streams.saturating_add(1);
                    if self.refused_streams > self.limits.max_concurrent_streams {
                        return Err(ConnError::ConcurrentStreamsExceeded);
                    }
                    self.trace_limit_violation(promised, false);
                    self.queue_frame(Frame::RstStream {
                        stream: promised,
                        code: ErrorCode::RefusedStream,
                    });
                    self.events.push_back(Event::StreamError {
                        stream: promised,
                        error: StreamError::RefusedByLimit,
                    });
                    return Ok(());
                }
                self.streams.insert(
                    promised,
                    Stream::new(StreamState::ReservedRemote, self.peer_initial_window),
                );
                self.tree.insert(
                    promised,
                    PrioritySpec { depends_on: ph.stream, weight: 16, exclusive: false },
                );
                self.events.push_back(Event::PushPromise { parent: ph.stream, promised, headers });
            }
            None => {
                if !self.streams.contains_key(ph.stream) {
                    // A request HEADERS opens the stream (server side
                    // only: a client's streams all originate locally or
                    // via PUSH_PROMISE, so an unknown id is hostile).
                    if self.role == Role::Client {
                        return Err(ConnError::HeadersOnUnknownStream);
                    }
                    if ph.stream.is_multiple_of(2) {
                        return Err(ConnError::Frame("client stream id must be odd"));
                    }
                    if ph.stream <= self.highest_peer_stream {
                        return Err(ConnError::Frame("stream id not increasing"));
                    }
                    // §5.1.2: refuse streams above the concurrency limit
                    // (RST REFUSED_STREAM, the stream-error path); a peer
                    // that keeps opening past a full limit's worth of
                    // refusals escalates to a connection error.
                    let active =
                        self.streams.values().filter(|s| s.state != StreamState::Closed).count();
                    if active >= self.limits.max_concurrent_streams as usize {
                        self.refused_streams = self.refused_streams.saturating_add(1);
                        if self.refused_streams > self.limits.max_concurrent_streams {
                            return Err(ConnError::ConcurrentStreamsExceeded);
                        }
                        self.trace_limit_violation(ph.stream, false);
                        self.queue_frame(Frame::RstStream {
                            stream: ph.stream,
                            code: ErrorCode::RefusedStream,
                        });
                        self.events.push_back(Event::StreamError {
                            stream: ph.stream,
                            error: StreamError::RefusedByLimit,
                        });
                        return Ok(());
                    }
                    self.highest_peer_stream = ph.stream;
                    self.streams.insert(
                        ph.stream,
                        Stream::new(StreamState::Open, self.peer_initial_window),
                    );
                }
                let Some(entry) = self.streams.get_mut(ph.stream) else {
                    return Ok(()); // unreachable: inserted or present above
                };
                match entry.state {
                    StreamState::ReservedRemote => {
                        // Push response headers.
                        entry.state = if ph.end_stream {
                            StreamState::Closed
                        } else {
                            StreamState::HalfClosedLocal
                        };
                    }
                    StreamState::Open if ph.end_stream => {
                        entry.state = StreamState::HalfClosedRemote;
                    }
                    StreamState::HalfClosedLocal if ph.end_stream => {
                        entry.state = StreamState::Closed;
                    }
                    _ => {}
                }
                if let Some(spec) = ph.priority {
                    self.tree.insert(ph.stream, spec);
                } else if !self.tree.contains(ph.stream) {
                    self.tree.insert(ph.stream, PrioritySpec::default());
                }
                self.events.push_back(Event::Headers {
                    stream: ph.stream,
                    headers,
                    end_stream: ph.end_stream,
                });
            }
        }
        Ok(())
    }

    /// Next pending application event.
    pub fn poll_event(&mut self) -> Option<Event> {
        self.events.pop_front()
    }
}

/// Connections retired per thread whose stream-slab allocation is kept
/// for the next endpoint. A sweep rep builds a client/server pair per
/// origin, so a small pool flattens per-rep allocator traffic.
const SLAB_POOL_CAP: usize = 8;
/// Dense slots pre-reserved per parity when no recycled slab is available
/// — enough for every benign page replay in the corpus.
const SLAB_INITIAL_SLOTS: usize = 64;

thread_local! {
    static SLAB_POOL: std::cell::RefCell<Vec<StreamSlab<Stream>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

fn take_recycled_slab() -> StreamSlab<Stream> {
    SLAB_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_else(|| StreamSlab::with_capacity(SLAB_INITIAL_SLOTS))
}

impl Drop for Connection {
    fn drop(&mut self) {
        let mut slab = std::mem::take(&mut self.streams);
        if slab.capacity() == 0 {
            // The placeholder left by a previous take (or a slab that
            // never carried a stream) is not worth pooling.
            return;
        }
        slab.reset();
        // `try_with`: a Connection can be dropped from another
        // thread-local's destructor (the testbed parks a whole replay
        // context per thread), at which point SLAB_POOL may already be
        // torn down — then the slab is simply freed instead of parked.
        let _ = SLAB_POOL.try_with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < SLAB_POOL_CAP {
                pool.push(slab);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{DefaultScheduler, FifoScheduler};

    fn h(n: &str, v: &str) -> Header {
        Header::new(n, v)
    }

    fn get_headers(path: &str) -> Vec<Header> {
        vec![
            h(":method", "GET"),
            h(":scheme", "https"),
            h(":authority", "example.org"),
            h(":path", path),
        ]
    }

    fn resp_headers() -> Vec<Header> {
        vec![h(":status", "200"), h("content-type", "text/html")]
    }

    /// Pump all bytes between the two halves until quiescent; collect events.
    fn pump(
        client: &mut Connection,
        server: &mut Connection,
        cs: &mut dyn Scheduler,
        ss: &mut dyn Scheduler,
    ) -> (Vec<Event>, Vec<Event>) {
        let (mut cev, mut sev) = (Vec::new(), Vec::new());
        for _ in 0..100 {
            let a = client.produce(usize::MAX, cs);
            let b = server.produce(usize::MAX, ss);
            if a.is_empty() && b.is_empty() {
                break;
            }
            server.receive(&a);
            client.receive(&b);
            while let Some(e) = client.poll_event() {
                cev.push(e);
            }
            while let Some(e) = server.poll_event() {
                sev.push(e);
            }
        }
        (cev, sev)
    }

    #[test]
    fn request_response_round_trip() {
        let mut c = Connection::client(Settings::default());
        let mut s = Connection::server(Settings::default());
        let mut cs = DefaultScheduler::new();
        let mut ss = DefaultScheduler::new();

        let id = c.request(&get_headers("/"), None);
        assert_eq!(id, 1);
        let (_, sev) = pump(&mut c, &mut s, &mut cs, &mut ss);
        let req = sev.iter().find_map(|e| match e {
            Event::Headers { stream, headers, end_stream } => {
                Some((*stream, headers.clone(), *end_stream))
            }
            _ => None,
        });
        let (stream, headers, end) = req.expect("server saw the request");
        assert_eq!(stream, 1);
        assert!(end);
        assert_eq!(headers[0], h(":method", "GET"));

        s.respond(1, &resp_headers(), false);
        s.queue_body(1, 10_000, true);
        let (cev, _) = pump(&mut c, &mut s, &mut cs, &mut ss);
        let total: usize = cev
            .iter()
            .filter_map(|e| match e {
                Event::Data { stream: 1, len, .. } => Some(*len),
                _ => None,
            })
            .sum();
        assert_eq!(total, 10_000);
        assert!(cev.iter().any(|e| matches!(e, Event::Data { end_stream: true, .. })));
        assert_eq!(s.stream_state(1), Some(StreamState::Closed));
    }

    #[test]
    fn push_promise_flows_to_client() {
        let mut c = Connection::client(Settings::default());
        let mut s = Connection::server(Settings::default());
        let mut cs = DefaultScheduler::new();
        let mut ss = DefaultScheduler::new();

        c.request(&get_headers("/"), None);
        pump(&mut c, &mut s, &mut cs, &mut ss);

        let pushed = s.push_promise(1, &get_headers("/style.css")).expect("push allowed");
        assert_eq!(pushed, 2);
        s.respond(2, &resp_headers(), false);
        s.queue_body(2, 500, true);
        s.respond(1, &resp_headers(), false);
        s.queue_body(1, 1000, true);

        let (cev, _) = pump(&mut c, &mut s, &mut cs, &mut ss);
        let pp = cev.iter().find_map(|e| match e {
            Event::PushPromise { parent, promised, headers } => {
                Some((*parent, *promised, headers.clone()))
            }
            _ => None,
        });
        let (parent, promised, headers) = pp.expect("client saw PUSH_PROMISE");
        assert_eq!((parent, promised), (1, 2));
        assert!(headers.contains(&h(":path", "/style.css")));
        // Both bodies arrive fully.
        let sum = |id: u32| -> usize {
            cev.iter()
                .filter_map(|e| match e {
                    Event::Data { stream, len, .. } if *stream == id => Some(*len),
                    _ => None,
                })
                .sum()
        };
        assert_eq!(sum(1), 1000);
        assert_eq!(sum(2), 500);
    }

    #[test]
    fn enable_push_false_blocks_pushes() {
        let mut c = Connection::client(Settings { enable_push: Some(false), ..Default::default() });
        let mut s = Connection::server(Settings::default());
        let mut cs = DefaultScheduler::new();
        let mut ss = DefaultScheduler::new();
        c.request(&get_headers("/"), None);
        pump(&mut c, &mut s, &mut cs, &mut ss);
        assert!(!s.peer_enable_push());
        assert_eq!(s.push_promise(1, &get_headers("/style.css")), None);
    }

    #[test]
    fn default_scheduler_sends_parent_before_push_child() {
        let mut c = Connection::client(Settings::default());
        let mut s = Connection::server(Settings::default());
        let mut cs = DefaultScheduler::new();
        let mut ss = DefaultScheduler::new();
        c.request(&get_headers("/"), None);
        pump(&mut c, &mut s, &mut cs, &mut ss);

        s.push_promise(1, &get_headers("/a.css")).unwrap();
        s.respond(2, &resp_headers(), false);
        s.queue_body(2, 30_000, true);
        s.respond(1, &resp_headers(), false);
        s.queue_body(1, 30_000, true);

        let (cev, _) = pump(&mut c, &mut s, &mut cs, &mut ss);
        // All HTML (stream 1) DATA must arrive before any push (stream 2)
        // DATA: h2o's default "push waits for parent".
        let order: Vec<u32> = cev
            .iter()
            .filter_map(|e| match e {
                Event::Data { stream, .. } => Some(*stream),
                _ => None,
            })
            .collect();
        let first_push = order.iter().position(|&s| s == 2).unwrap();
        let last_html = order.iter().rposition(|&s| s == 1).unwrap();
        assert!(last_html < first_push, "push interleaved under default scheduler: {order:?}");
    }

    #[test]
    fn client_cancel_push_stops_transfer() {
        let mut c = Connection::client(Settings::default());
        let mut s = Connection::server(Settings::default());
        let mut cs = DefaultScheduler::new();
        let mut ss = DefaultScheduler::new();
        c.request(&get_headers("/"), None);
        pump(&mut c, &mut s, &mut cs, &mut ss);

        s.push_promise(1, &get_headers("/big.js")).unwrap();
        s.respond(2, &resp_headers(), false);
        s.queue_body(2, 1_000_000, true);
        // Client cancels before pulling data.
        let a = s.produce(2000, &mut ss); // PUSH_PROMISE + HEADERS + some DATA
        c.receive(&a);
        while c.poll_event().is_some() {}
        c.reset(2, ErrorCode::Cancel);
        let b = c.produce(usize::MAX, &mut cs);
        s.receive(&b);
        while let Some(e) = s.poll_event() {
            if let Event::Reset { stream, code } = e {
                assert_eq!((stream, code), (2, ErrorCode::Cancel));
            }
        }
        // Server dropped the queued body.
        assert_eq!(s.bytes_queued(2), 0);
        assert_eq!(s.stream_state(2), Some(StreamState::Closed));
    }

    #[test]
    fn flow_control_limits_unacked_data() {
        let mut c = Connection::client(Settings::default());
        let mut s = Connection::server(Settings::default());
        let mut cs = DefaultScheduler::new();
        let mut ss = DefaultScheduler::new();
        c.request(&get_headers("/"), None);
        // Deliver request to server but DON'T deliver any client bytes back
        // afterwards: server can send at most the initial window.
        let a = c.produce(usize::MAX, &mut cs);
        s.receive(&a);
        while s.poll_event().is_some() {}
        s.respond(1, &resp_headers(), false);
        s.queue_body(1, 1_000_000, true);
        let mut sent = 0usize;
        loop {
            let bytes = s.produce(usize::MAX, &mut ss);
            if bytes.is_empty() {
                break;
            }
            sent += bytes.len();
        }
        // The stream window (65535) caps the body; headers/settings add a
        // little. It must be nowhere near 1 MB.
        assert!(sent < 80_000, "sent {sent} bytes without window updates");
        assert!(s.bytes_sent(1) as usize <= 65_535);
    }

    #[test]
    fn window_updates_resume_sending() {
        let mut c = Connection::client(Settings {
            initial_window_size: Some(6 * 1024 * 1024),
            ..Default::default()
        });
        let mut s = Connection::server(Settings::default());
        let mut cs = DefaultScheduler::new();
        let mut ss = DefaultScheduler::new();
        c.request(&get_headers("/"), None);
        pump(&mut c, &mut s, &mut cs, &mut ss);
        s.respond(1, &resp_headers(), false);
        s.queue_body(1, 1_000_000, true);
        let (cev, _) = pump(&mut c, &mut s, &mut cs, &mut ss);
        let total: usize = cev
            .iter()
            .filter_map(|e| match e {
                Event::Data { len, .. } => Some(*len),
                _ => None,
            })
            .sum();
        assert_eq!(total, 1_000_000, "full megabyte arrives with a 6 MB window");
    }

    #[test]
    fn priority_frame_updates_server_tree() {
        let mut c = Connection::client(Settings::default());
        let mut s = Connection::server(Settings::default());
        let mut cs = FifoScheduler;
        let mut ss = FifoScheduler;
        let a = c.request(
            &get_headers("/a"),
            Some(PrioritySpec { depends_on: 0, weight: 256, exclusive: false }),
        );
        let b = c.request(
            &get_headers("/b"),
            Some(PrioritySpec { depends_on: a, weight: 100, exclusive: false }),
        );
        pump(&mut c, &mut s, &mut cs, &mut ss);
        assert_eq!(s.tree().parent(b), Some(a));
        c.send_priority(b, PrioritySpec { depends_on: 0, weight: 50, exclusive: false });
        pump(&mut c, &mut s, &mut cs, &mut ss);
        assert_eq!(s.tree().parent(b), Some(0));
        assert_eq!(s.tree().weight(b), Some(50));
    }

    #[test]
    fn produce_respects_max_budget() {
        let mut c = Connection::client(Settings::default());
        let mut s = Connection::server(Settings::default());
        let mut cs = DefaultScheduler::new();
        let mut ss = DefaultScheduler::new();
        c.request(&get_headers("/"), None);
        pump(&mut c, &mut s, &mut cs, &mut ss);
        s.respond(1, &resp_headers(), false);
        s.queue_body(1, 50_000, true);
        let chunk = s.produce(1500, &mut ss);
        // One DATA frame roughly sized to the budget (never a huge burst).
        assert!(chunk.len() <= 1500 + 9, "chunk was {}", chunk.len());
        assert!(!chunk.is_empty());
    }

    #[test]
    fn bad_preface_kills_connection() {
        let mut s = Connection::server(Settings::default());
        s.receive(b"GET / HTTP/1.1\r\nHost: example.org\r\n\r\n");
        assert!(matches!(s.poll_event(), Some(Event::ConnectionError { .. })));
    }

    #[test]
    fn ping_is_acked() {
        let mut c = Connection::client(Settings::default());
        let mut s = Connection::server(Settings::default());
        let mut cs = FifoScheduler;
        let mut ss = FifoScheduler;
        pump(&mut c, &mut s, &mut cs, &mut ss);
        // Hand-craft a PING from client.
        let mut buf = Vec::new();
        Frame::Ping { ack: false, payload: [7; 8] }.encode(&mut buf);
        s.receive(&buf);
        let reply = s.produce(usize::MAX, &mut ss);
        let (f, _) = Frame::decode(&reply, DEFAULT_MAX_FRAME_SIZE).unwrap();
        assert_eq!(f, Frame::Ping { ack: true, payload: [7; 8] });
    }

    #[test]
    fn large_header_block_uses_continuation() {
        let mut c = Connection::client(Settings::default());
        let mut s = Connection::server(Settings::default());
        let mut cs = FifoScheduler;
        let mut ss = FifoScheduler;
        let mut headers = get_headers("/");
        // ~40 KB of cookie forces CONTINUATION frames.
        headers.push(h("cookie", &"x".repeat(40_000)));
        c.request(&headers, None);
        let (_, sev) = pump(&mut c, &mut s, &mut cs, &mut ss);
        let got = sev.iter().find_map(|e| match e {
            Event::Headers { headers, .. } => Some(headers.clone()),
            _ => None,
        });
        assert_eq!(got.expect("headers arrived").last().unwrap().value.len(), 40_000);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::scheduler::FifoScheduler;

    fn h(n: &str, v: &str) -> Header {
        Header::new(n, v)
    }

    fn request_headers() -> Vec<Header> {
        vec![
            h(":method", "GET"),
            h(":scheme", "https"),
            h(":authority", "edge.test"),
            h(":path", "/"),
        ]
    }

    fn exchange(c: &mut Connection, s: &mut Connection) {
        let mut cs = FifoScheduler;
        let mut ss = FifoScheduler;
        for _ in 0..50 {
            let a = c.produce(usize::MAX, &mut cs);
            let b = s.produce(usize::MAX, &mut ss);
            if a.is_empty() && b.is_empty() {
                break;
            }
            s.receive(&a);
            c.receive(&b);
        }
    }

    #[test]
    fn settings_max_frame_size_caps_data_frames() {
        let mut c = Connection::client(Settings {
            max_frame_size: Some(16_384),
            initial_window_size: Some(1 << 20),
            ..Default::default()
        });
        let mut s = Connection::server(Settings::default());
        c.request(&request_headers(), None);
        exchange(&mut c, &mut s);
        while s.poll_event().is_some() {}
        s.respond(1, &[h(":status", "200")], false);
        s.queue_body(1, 100_000, true);
        let mut sched = crate::scheduler::DefaultScheduler::new();
        let wire = s.produce(usize::MAX, &mut sched);
        // Walk the produced frames: no DATA frame exceeds 16 KiB.
        let mut pos = 0;
        while pos < wire.len() {
            let (frame, used) = Frame::decode(&wire[pos..], 1 << 24).unwrap();
            if let Frame::Data { len, .. } = frame {
                assert!(len <= 16_384, "oversized DATA frame: {len}");
            }
            pos += used;
        }
    }

    #[test]
    fn goaway_is_surfaced_and_remembered() {
        let mut c = Connection::client(Settings::default());
        let mut s = Connection::server(Settings::default());
        exchange(&mut c, &mut s);
        while c.poll_event().is_some() {}
        let mut buf = Vec::new();
        Frame::GoAway { last_stream: 1, code: ErrorCode::NoError }.encode(&mut buf);
        c.receive(&buf);
        assert!(matches!(
            c.poll_event(),
            Some(Event::GoAway { last_stream: 1, code: ErrorCode::NoError })
        ));
        assert!(c.goaway_received());
    }

    #[test]
    fn header_table_size_setting_shrinks_encoder() {
        // Client announces a small HPACK table; the server's encoder must
        // honor it (responses still decode on the client).
        let mut c =
            Connection::client(Settings { header_table_size: Some(64), ..Default::default() });
        let mut s = Connection::server(Settings::default());
        let id = c.request(&request_headers(), None);
        exchange(&mut c, &mut s);
        while s.poll_event().is_some() {}
        s.respond(id, &[h(":status", "200"), h("x-large-header", &"v".repeat(200))], true);
        exchange(&mut c, &mut s);
        let mut saw = false;
        while let Some(ev) = c.poll_event() {
            if let Event::Headers { headers, .. } = ev {
                assert_eq!(headers[0], h(":status", "200"));
                saw = true;
            }
        }
        assert!(saw, "response decoded despite tiny dynamic table");
    }

    #[test]
    fn data_on_unknown_stream_is_connection_error() {
        let mut s = Connection::server(Settings::default());
        let mut c = Connection::client(Settings::default());
        exchange(&mut c, &mut s);
        while s.poll_event().is_some() {}
        let mut buf = Vec::new();
        Frame::Data { stream: 99, len: 10, end_stream: false }.encode(&mut buf);
        s.receive(&buf);
        let mut got_error = false;
        while let Some(ev) = s.poll_event() {
            if matches!(ev, Event::ConnectionError { .. }) {
                got_error = true;
            }
        }
        assert!(got_error);
    }

    #[test]
    fn window_update_overflow_is_a_typed_flow_control_error() {
        // Maximal WINDOW_UPDATEs must not panic via overflow: the first
        // increment that would push the window past 2^31-1 is answered
        // with GOAWAY(FLOW_CONTROL_ERROR), §6.9.1.
        let mut c = Connection::client(Settings::default());
        let mut s = Connection::server(Settings::default());
        exchange(&mut c, &mut s);
        let mut buf = Vec::new();
        for _ in 0..64 {
            Frame::WindowUpdate { stream: 0, increment: 0x7fff_ffff }.encode(&mut buf);
        }
        s.receive(&buf);
        let mut found = None;
        while let Some(ev) = s.poll_event() {
            if let Event::ConnectionError { error } = ev {
                found = Some(error);
            }
        }
        assert_eq!(found, Some(crate::error::ConnError::FlowControlOverflow));
        assert!(s.is_dead());
    }

    /// A hostile scheduler that always picks a stream id nobody opened.
    struct RogueScheduler;

    impl crate::scheduler::Scheduler for RogueScheduler {
        fn pick(
            &mut self,
            _streams: &[crate::scheduler::StreamSnapshot],
            _tree: &crate::priority::PriorityTree,
        ) -> Option<u32> {
            Some(4242)
        }
    }

    #[test]
    fn rogue_scheduler_pick_is_a_stream_error_not_a_panic() {
        let mut c = Connection::client(Settings::default());
        let mut s = Connection::server(Settings::default());
        c.request(&request_headers(), None);
        exchange(&mut c, &mut s);
        while s.poll_event().is_some() {}
        s.respond(1, &[h(":status", "200")], false);
        s.queue_body(1, 5_000, true);
        let wire = s.produce(usize::MAX, &mut RogueScheduler);
        // The control frames (response HEADERS) still go out; the bogus
        // DATA pick is surfaced as a recoverable per-stream error.
        assert!(!wire.is_empty());
        let mut saw = false;
        while let Some(ev) = s.poll_event() {
            if let Event::StreamError { stream, error } = ev {
                assert_eq!(stream, 4242);
                assert_eq!(error, crate::error::StreamError::UnknownScheduled);
                saw = true;
            }
        }
        assert!(saw, "unknown pick must surface a StreamError");
        // The connection is alive: a sane scheduler drains the body.
        let mut sched = crate::scheduler::DefaultScheduler::new();
        let rest = s.produce(usize::MAX, &mut sched);
        assert!(!rest.is_empty(), "connection must survive the rogue pick");
    }

    #[test]
    fn push_refused_after_goaway() {
        let mut c = Connection::client(Settings::default());
        let mut s = Connection::server(Settings::default());
        c.request(&request_headers(), None);
        exchange(&mut c, &mut s);
        while s.poll_event().is_some() {}
        assert!(s.push_promise(1, &request_headers()).is_some());
        let mut buf = Vec::new();
        Frame::GoAway { last_stream: 1, code: ErrorCode::NoError }.encode(&mut buf);
        s.receive(&buf);
        assert!(s.push_promise(1, &request_headers()).is_none(), "no pushes after GOAWAY");
    }

    #[test]
    fn connection_error_carries_typed_cause_and_matching_goaway() {
        let mut s = Connection::server(Settings::default());
        s.receive(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n");
        let mut found = None;
        while let Some(ev) = s.poll_event() {
            if let Event::ConnectionError { error } = ev {
                found = Some(error);
            }
        }
        assert_eq!(found, Some(crate::error::ConnError::BadPreface));
        // The queued GOAWAY carries the error's code.
        let wire = s.produce(usize::MAX, &mut FifoScheduler);
        let mut pos = 0;
        let mut goaway = None;
        while pos < wire.len() {
            let (frame, used) = Frame::decode(&wire[pos..], 1 << 24).unwrap();
            if let Frame::GoAway { code, .. } = frame {
                goaway = Some(code);
            }
            pos += used;
        }
        assert_eq!(goaway, Some(ErrorCode::ProtocolError));
    }

    #[test]
    fn rapid_reset_flood_trips_typed_error() {
        let mut s = Connection::server(Settings::default());
        s.set_limits(crate::ConnLimits::strict());
        let mut c = Connection::client(Settings::default());
        exchange(&mut c, &mut s);
        while s.poll_event().is_some() {}
        let mut buf = Vec::new();
        for i in 0..40u32 {
            Frame::RstStream { stream: 2 * i + 1, code: ErrorCode::Cancel }.encode(&mut buf);
        }
        s.receive(&buf);
        let mut found = None;
        while let Some(ev) = s.poll_event() {
            if let Event::ConnectionError { error } = ev {
                found = Some(error);
            }
        }
        assert_eq!(found, Some(crate::error::ConnError::ResetFlood));
        // The GOAWAY carries ENHANCE_YOUR_CALM.
        let wire = s.produce(usize::MAX, &mut FifoScheduler);
        let mut pos = 0;
        let mut goaway = None;
        while pos < wire.len() {
            let (frame, used) = Frame::decode(&wire[pos..], 1 << 24).unwrap();
            if let Frame::GoAway { code, .. } = frame {
                goaway = Some(code);
            }
            pos += used;
        }
        assert_eq!(goaway, Some(ErrorCode::EnhanceYourCalm));
    }

    #[test]
    fn ping_and_settings_floods_trip_typed_errors() {
        for (mk, want) in [
            (
                (|buf: &mut Vec<u8>| Frame::Ping { ack: false, payload: [0; 8] }.encode(buf))
                    as fn(&mut Vec<u8>),
                crate::error::ConnError::PingFlood,
            ),
            (
                (|buf: &mut Vec<u8>| {
                    Frame::Settings { ack: false, settings: Settings::default() }.encode(buf)
                }) as fn(&mut Vec<u8>),
                crate::error::ConnError::SettingsFlood,
            ),
        ] {
            let mut s = Connection::server(Settings::default());
            s.set_limits(crate::ConnLimits::strict());
            let mut c = Connection::client(Settings::default());
            exchange(&mut c, &mut s);
            while s.poll_event().is_some() {}
            let mut buf = Vec::new();
            for _ in 0..20 {
                mk(&mut buf);
            }
            s.receive(&buf);
            let mut found = None;
            while let Some(ev) = s.poll_event() {
                if let Event::ConnectionError { error } = ev {
                    found = Some(error);
                }
            }
            assert_eq!(found, Some(want));
        }
    }

    #[test]
    fn concurrency_limit_refuses_excess_streams_but_keeps_connection() {
        let mut s = Connection::server(Settings::default());
        s.set_limits(crate::ConnLimits::strict()); // 8 concurrent streams
        let mut c = Connection::client(Settings::default());
        for i in 0..12 {
            c.request(&request_headers(), None);
            let _ = i;
        }
        exchange(&mut c, &mut s);
        let mut refused = Vec::new();
        let mut fatal = false;
        while let Some(ev) = s.poll_event() {
            match ev {
                Event::StreamError { stream, error: crate::error::StreamError::RefusedByLimit } => {
                    refused.push(stream)
                }
                Event::ConnectionError { .. } => fatal = true,
                _ => {}
            }
        }
        assert_eq!(refused.len(), 4, "streams 9..12 refused: {refused:?}");
        assert!(!fatal, "refusals alone must not kill the connection");
        // The client saw RST(REFUSED_STREAM) for each refused stream.
        let mut resets = 0;
        while let Some(ev) = c.poll_event() {
            if let Event::Reset { code: ErrorCode::RefusedStream, .. } = ev {
                resets += 1;
            }
        }
        assert_eq!(resets, 4);
        // Accepted streams still serve.
        s.respond(1, &[h(":status", "200")], true);
        exchange(&mut c, &mut s);
        let mut ok = false;
        while let Some(ev) = c.poll_event() {
            if matches!(ev, Event::Headers { stream: 1, .. }) {
                ok = true;
            }
        }
        assert!(ok, "stream 1 answered despite refusals");
    }

    #[test]
    fn header_bomb_is_a_header_list_error() {
        let mut s = Connection::server(Settings::default());
        s.set_limits(crate::ConnLimits::strict()); // 16 KiB header list
        let mut c = Connection::client(Settings::default());
        exchange(&mut c, &mut s);
        while s.poll_event().is_some() {}
        let mut headers = request_headers();
        headers.push(h("cookie", &"x".repeat(64 * 1024)));
        c.request(&headers, None);
        let wire = c.produce(usize::MAX, &mut FifoScheduler);
        s.receive(&wire);
        let mut found = None;
        while let Some(ev) = s.poll_event() {
            if let Event::ConnectionError { error } = ev {
                found = Some(error);
            }
        }
        assert_eq!(found, Some(crate::error::ConnError::HeaderListTooLarge));
    }

    #[test]
    fn stream_window_overflow_resets_only_that_stream() {
        let mut c = Connection::client(Settings::default());
        let mut s = Connection::server(Settings::default());
        c.request(&request_headers(), None);
        exchange(&mut c, &mut s);
        while s.poll_event().is_some() {}
        let mut buf = Vec::new();
        Frame::WindowUpdate { stream: 1, increment: 0x7fff_ffff }.encode(&mut buf);
        s.receive(&buf);
        let mut stream_err = None;
        let mut fatal = false;
        while let Some(ev) = s.poll_event() {
            match ev {
                Event::StreamError { stream, error } => stream_err = Some((stream, error)),
                Event::ConnectionError { .. } => fatal = true,
                _ => {}
            }
        }
        assert_eq!(stream_err, Some((1, crate::error::StreamError::WindowOverflow)));
        assert!(!fatal);
        assert_eq!(s.stream_state(1), Some(StreamState::Closed));
        // The RST carries FLOW_CONTROL_ERROR.
        let wire = s.produce(usize::MAX, &mut FifoScheduler);
        let mut pos = 0;
        let mut rst = None;
        while pos < wire.len() {
            let (frame, used) = Frame::decode(&wire[pos..], 1 << 24).unwrap();
            if let Frame::RstStream { stream, code } = frame {
                rst = Some((stream, code));
            }
            pos += used;
        }
        assert_eq!(rst, Some((1, ErrorCode::FlowControlError)));
    }

    #[test]
    fn non_increasing_promised_id_is_rejected() {
        let mut c = Connection::client(Settings::default());
        let mut s = Connection::server(Settings::default());
        c.request(&request_headers(), None);
        exchange(&mut c, &mut s);
        while c.poll_event().is_some() {}
        // Hand-craft two promises with the same id.
        let mut enc = h2push_hpack::Encoder::new();
        let block: Bytes = enc.encode(&request_headers()).into();
        let mut buf = Vec::new();
        Frame::PushPromise { stream: 1, promised: 2, block: block.clone(), end_headers: true }
            .encode(&mut buf);
        Frame::PushPromise { stream: 1, promised: 2, block, end_headers: true }.encode(&mut buf);
        c.receive(&buf);
        let mut found = None;
        while let Some(ev) = c.poll_event() {
            if let Event::ConnectionError { error } = ev {
                found = Some(error);
            }
        }
        assert_eq!(found, Some(crate::error::ConnError::PromisedStreamIdNotIncreasing));
    }

    #[test]
    fn headers_on_unknown_stream_is_error_on_client() {
        let mut c = Connection::client(Settings::default());
        let mut s = Connection::server(Settings::default());
        exchange(&mut c, &mut s);
        while c.poll_event().is_some() {}
        // Server-sent HEADERS on a stream the client never opened.
        let mut enc = h2push_hpack::Encoder::new();
        let block: Bytes = enc.encode(&[h(":status", "200")]).into();
        let mut buf = Vec::new();
        Frame::Headers { stream: 7, block, end_stream: true, end_headers: true, priority: None }
            .encode(&mut buf);
        c.receive(&buf);
        let mut found = None;
        while let Some(ev) = c.poll_event() {
            if let Event::ConnectionError { error } = ev {
                found = Some(error);
            }
        }
        assert_eq!(found, Some(crate::error::ConnError::HeadersOnUnknownStream));
    }

    #[test]
    fn ping_flood_cannot_balloon_the_control_queue() {
        // Even below the PING flood budget, the outbound queue of acks is
        // bounded by max_control_frames.
        let mut s = Connection::server(Settings::default());
        let mut limits = crate::ConnLimits::strict();
        limits.max_pings = u32::MAX; // isolate the queue bound
        s.set_limits(limits);
        let mut c = Connection::client(Settings::default());
        exchange(&mut c, &mut s);
        while s.poll_event().is_some() {}
        let mut buf = Vec::new();
        for _ in 0..10_000 {
            Frame::Ping { ack: false, payload: [1; 8] }.encode(&mut buf);
        }
        s.receive(&buf);
        let mut found = None;
        while let Some(ev) = s.poll_event() {
            if let Event::ConnectionError { error } = ev {
                found = Some(error);
            }
        }
        assert_eq!(found, Some(crate::error::ConnError::ControlQueueOverflow));
        // The queue stopped growing at the bound (plus the final GOAWAY).
        let wire = s.produce(usize::MAX, &mut FifoScheduler);
        assert!(wire.len() < 300 * 17, "queue kept ballooning: {} bytes", wire.len());
    }

    #[test]
    fn interleaved_header_blocks_are_rejected() {
        // HEADERS without END_HEADERS must be followed by CONTINUATION on
        // the same stream; anything else is a connection error.
        let mut s = Connection::server(Settings::default());
        let mut c = Connection::client(Settings::default());
        exchange(&mut c, &mut s);
        while s.poll_event().is_some() {}
        let mut buf = Vec::new();
        Frame::Headers {
            stream: 1,
            block: vec![0x82].into(),
            end_stream: false,
            end_headers: false,
            priority: None,
        }
        .encode(&mut buf);
        Frame::Ping { ack: false, payload: [0; 8] }.encode(&mut buf);
        s.receive(&buf);
        let mut got_error = false;
        while let Some(ev) = s.poll_event() {
            if matches!(ev, Event::ConnectionError { .. }) {
                got_error = true;
            }
        }
        assert!(got_error);
    }
}
