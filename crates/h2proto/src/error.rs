//! Typed protocol errors.
//!
//! Under fault injection the replay path sees malformed, truncated or
//! unexpected frames that the fault-free testbed never produces. Those
//! conditions are *data*, not bugs: the connection surfaces a
//! [`ConnError`] (fatal, connection-level — answered with GOAWAY) or a
//! [`StreamError`] (recoverable, per-stream — the stream fails, the
//! connection lives), and the layers above decide whether to retry,
//! reopen or give up. Nothing on this path may `panic!`.

use crate::frame::ErrorCode;
use std::fmt;

/// A fatal connection-level protocol violation (RFC 7540 §5.4.1).
///
/// Every variant maps to the GOAWAY [`ErrorCode`] the endpoint sends via
/// [`ConnError::code`] and to a human-readable reason via
/// [`ConnError::reason`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnError {
    /// The client connection preface did not match (RFC 7540 §3.5).
    BadPreface,
    /// A header block was left open but the next frame was not
    /// CONTINUATION (§6.10).
    ExpectedContinuation,
    /// CONTINUATION arrived with no header block open.
    ContinuationWithoutHeaders,
    /// CONTINUATION arrived on a different stream than its HEADERS.
    ContinuationWrongStream,
    /// PUSH_PROMISE received although we disabled push (§8.2).
    PushDisabled,
    /// PUSH_PROMISE promised an odd (client-initiated) stream id (§5.1.1).
    OddPromisedStream,
    /// DATA addressed a stream this endpoint never knew (§6.1).
    DataOnUnknownStream,
    /// The peer's header block did not decode (§4.3).
    HpackDecode,
    /// A frame exceeded SETTINGS_MAX_FRAME_SIZE (§4.2).
    FrameTooLarge,
    /// A malformed frame, with the framing layer's description.
    Frame(&'static str),
    /// A WINDOW_UPDATE would push the connection-level send window past
    /// 2^31-1 (§6.9.1) — FLOW_CONTROL_ERROR.
    FlowControlOverflow,
    /// A decoded header list exceeded SETTINGS_MAX_HEADER_LIST_SIZE
    /// (§10.5.1) — treated as a flood, ENHANCE_YOUR_CALM.
    HeaderListTooLarge,
    /// HEADERS opened a stream on a client connection that never
    /// requested it (server-initiated non-push stream, §5.1.1).
    HeadersOnUnknownStream,
    /// The peer opened more concurrent streams than
    /// SETTINGS_MAX_CONCURRENT_STREAMS allows after being refused
    /// repeatedly (§5.1.2) — ENHANCE_YOUR_CALM.
    ConcurrentStreamsExceeded,
    /// PUSH_PROMISE promised a stream id not above every previous
    /// promise (§5.1.1: stream ids must be monotonically increasing).
    PromisedStreamIdNotIncreasing,
    /// RST_STREAM arrival rate exceeded the rapid-reset mitigation
    /// budget (cf. CVE-2023-44487) — ENHANCE_YOUR_CALM.
    ResetFlood,
    /// SETTINGS arrival rate exceeded the churn mitigation budget —
    /// ENHANCE_YOUR_CALM.
    SettingsFlood,
    /// PING arrival rate exceeded the mitigation budget —
    /// ENHANCE_YOUR_CALM.
    PingFlood,
    /// Outbound control-frame queue exceeded its bound: the peer forces
    /// responses (PING acks, SETTINGS acks, RSTs) faster than the link
    /// drains them — ENHANCE_YOUR_CALM.
    ControlQueueOverflow,
}

impl ConnError {
    /// Human-readable description (stable across variants; used by the
    /// layers above for failure accounting).
    pub fn reason(&self) -> &'static str {
        match self {
            ConnError::BadPreface => "bad connection preface",
            ConnError::ExpectedContinuation => "expected CONTINUATION",
            ConnError::ContinuationWithoutHeaders => "CONTINUATION without HEADERS",
            ConnError::ContinuationWrongStream => "CONTINUATION on wrong stream",
            ConnError::PushDisabled => "PUSH_PROMISE with push disabled",
            ConnError::OddPromisedStream => "odd promised stream id",
            ConnError::DataOnUnknownStream => "DATA on unknown stream",
            ConnError::HpackDecode => "HPACK decode error",
            ConnError::FrameTooLarge => "frame exceeds SETTINGS_MAX_FRAME_SIZE",
            ConnError::Frame(reason) => reason,
            ConnError::FlowControlOverflow => "flow-control window overflow",
            ConnError::HeaderListTooLarge => "header list exceeds SETTINGS_MAX_HEADER_LIST_SIZE",
            ConnError::HeadersOnUnknownStream => "HEADERS on unknown stream",
            ConnError::ConcurrentStreamsExceeded => "concurrent stream limit exceeded",
            ConnError::PromisedStreamIdNotIncreasing => "promised stream id not increasing",
            ConnError::ResetFlood => "RST_STREAM flood (rapid reset)",
            ConnError::SettingsFlood => "SETTINGS flood",
            ConnError::PingFlood => "PING flood",
            ConnError::ControlQueueOverflow => "control queue overflow",
        }
    }

    /// The GOAWAY error code this violation is answered with (§5.4.1).
    pub fn code(&self) -> ErrorCode {
        match self {
            ConnError::HpackDecode => ErrorCode::CompressionError,
            ConnError::FrameTooLarge => ErrorCode::FrameSizeError,
            ConnError::FlowControlOverflow => ErrorCode::FlowControlError,
            ConnError::HeaderListTooLarge
            | ConnError::ConcurrentStreamsExceeded
            | ConnError::ResetFlood
            | ConnError::SettingsFlood
            | ConnError::PingFlood
            | ConnError::ControlQueueOverflow => ErrorCode::EnhanceYourCalm,
            _ => ErrorCode::ProtocolError,
        }
    }

    /// True for the flood/limit class of violations (the adversarial-peer
    /// mitigations, as opposed to plain framing errors).
    pub fn is_limit_violation(&self) -> bool {
        matches!(
            self,
            ConnError::FlowControlOverflow
                | ConnError::HeaderListTooLarge
                | ConnError::ConcurrentStreamsExceeded
                | ConnError::PromisedStreamIdNotIncreasing
                | ConnError::ResetFlood
                | ConnError::SettingsFlood
                | ConnError::PingFlood
                | ConnError::ControlQueueOverflow
        )
    }
}

impl fmt::Display for ConnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.reason())
    }
}

impl std::error::Error for ConnError {}

/// A recoverable per-stream failure: the stream dies, the connection —
/// and every other stream on it — continues (RFC 7540 §5.4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// The scheduler picked a stream id the connection no longer tracks
    /// (e.g. reset between snapshot and pick). The scheduler is told the
    /// stream closed; production continues with the remaining streams.
    UnknownScheduled,
    /// The peer reset the stream with this code.
    ResetByPeer(ErrorCode),
    /// The stream was refused (RST REFUSED_STREAM) because accepting it
    /// would exceed SETTINGS_MAX_CONCURRENT_STREAMS (§5.1.2).
    RefusedByLimit,
    /// A WINDOW_UPDATE would push this stream's send window past 2^31-1
    /// (§6.9.1) — the stream is reset with FLOW_CONTROL_ERROR.
    WindowOverflow,
}

impl StreamError {
    /// Human-readable description.
    pub fn reason(&self) -> &'static str {
        match self {
            StreamError::UnknownScheduled => "scheduler picked unknown stream",
            StreamError::ResetByPeer(_) => "stream reset by peer",
            StreamError::RefusedByLimit => "stream refused by concurrency limit",
            StreamError::WindowOverflow => "stream flow-control window overflow",
        }
    }
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::ResetByPeer(code) => write!(f, "stream reset by peer ({code:?})"),
            other => f.write_str(other.reason()),
        }
    }
}

impl std::error::Error for StreamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goaway_codes_match_rfc_sections() {
        assert_eq!(ConnError::HpackDecode.code(), ErrorCode::CompressionError);
        assert_eq!(ConnError::FrameTooLarge.code(), ErrorCode::FrameSizeError);
        assert_eq!(ConnError::BadPreface.code(), ErrorCode::ProtocolError);
        assert_eq!(ConnError::DataOnUnknownStream.code(), ErrorCode::ProtocolError);
        assert_eq!(ConnError::FlowControlOverflow.code(), ErrorCode::FlowControlError);
        assert_eq!(ConnError::ResetFlood.code(), ErrorCode::EnhanceYourCalm);
        assert_eq!(ConnError::HeaderListTooLarge.code(), ErrorCode::EnhanceYourCalm);
        assert_eq!(ConnError::HeadersOnUnknownStream.code(), ErrorCode::ProtocolError);
    }

    #[test]
    fn limit_violations_are_classified() {
        assert!(ConnError::ResetFlood.is_limit_violation());
        assert!(ConnError::FlowControlOverflow.is_limit_violation());
        assert!(!ConnError::BadPreface.is_limit_violation());
        assert!(!ConnError::HpackDecode.is_limit_violation());
        assert_eq!(StreamError::RefusedByLimit.reason(), "stream refused by concurrency limit");
        assert_eq!(StreamError::WindowOverflow.reason(), "stream flow-control window overflow");
    }

    #[test]
    fn reasons_are_stable_strings() {
        assert_eq!(ConnError::BadPreface.reason(), "bad connection preface");
        assert_eq!(ConnError::Frame("bad flags").reason(), "bad flags");
        assert_eq!(ConnError::Frame("bad flags").to_string(), "bad flags");
        assert_eq!(StreamError::UnknownScheduled.reason(), "scheduler picked unknown stream");
        assert!(StreamError::ResetByPeer(ErrorCode::Cancel).to_string().contains("Cancel"));
    }
}
