//! HTTP/2 frame codec (RFC 7540 §4, §6).
//!
//! All ten frame types are supported. Frames are encoded to / decoded from
//! plain byte buffers; DATA payloads are carried as *lengths* plus opaque
//! filler, because the testbed replays body bytes as counted placeholders
//! (the record database knows the real sizes; the wire never needs the
//! content itself). Header-block fragments are carried as [`Bytes`] so a
//! block can be chunked into CONTINUATION frames — and re-queued on the
//! connection's control queue — without copying the fragment payloads.

use bytes::{Bytes, BytesMut};

/// The 9-octet frame header length.
pub(crate) const FRAME_HEADER_LEN: usize = 9;
/// Default and minimum SETTINGS_MAX_FRAME_SIZE.
pub const DEFAULT_MAX_FRAME_SIZE: usize = 16_384;
/// Default flow-control window (connection and stream).
pub const DEFAULT_WINDOW: i64 = 65_535;
/// The client connection preface (§3.5).
pub const PREFACE: &[u8] = b"PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n";

/// Frame type registry (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FrameType {
    Data,
    Headers,
    Priority,
    RstStream,
    Settings,
    PushPromise,
    Ping,
    GoAway,
    WindowUpdate,
    Continuation,
}

impl FrameType {
    fn code(self) -> u8 {
        match self {
            FrameType::Data => 0x0,
            FrameType::Headers => 0x1,
            FrameType::Priority => 0x2,
            FrameType::RstStream => 0x3,
            FrameType::Settings => 0x4,
            FrameType::PushPromise => 0x5,
            FrameType::Ping => 0x6,
            FrameType::GoAway => 0x7,
            FrameType::WindowUpdate => 0x8,
            FrameType::Continuation => 0x9,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0x0 => FrameType::Data,
            0x1 => FrameType::Headers,
            0x2 => FrameType::Priority,
            0x3 => FrameType::RstStream,
            0x4 => FrameType::Settings,
            0x5 => FrameType::PushPromise,
            0x6 => FrameType::Ping,
            0x7 => FrameType::GoAway,
            0x8 => FrameType::WindowUpdate,
            0x9 => FrameType::Continuation,
            _ => return None,
        })
    }
}

/// Error codes (§7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    NoError,
    ProtocolError,
    InternalError,
    FlowControlError,
    SettingsTimeout,
    StreamClosed,
    FrameSizeError,
    RefusedStream,
    Cancel,
    CompressionError,
    ConnectError,
    EnhanceYourCalm,
    InadequateSecurity,
    Http11Required,
}

impl ErrorCode {
    /// Wire representation.
    pub fn code(self) -> u32 {
        match self {
            ErrorCode::NoError => 0x0,
            ErrorCode::ProtocolError => 0x1,
            ErrorCode::InternalError => 0x2,
            ErrorCode::FlowControlError => 0x3,
            ErrorCode::SettingsTimeout => 0x4,
            ErrorCode::StreamClosed => 0x5,
            ErrorCode::FrameSizeError => 0x6,
            ErrorCode::RefusedStream => 0x7,
            ErrorCode::Cancel => 0x8,
            ErrorCode::CompressionError => 0x9,
            ErrorCode::ConnectError => 0xa,
            ErrorCode::EnhanceYourCalm => 0xb,
            ErrorCode::InadequateSecurity => 0xc,
            ErrorCode::Http11Required => 0xd,
        }
    }

    /// Parse a wire code; unknown codes map to `InternalError` per §7.
    pub fn from_code(code: u32) -> Self {
        match code {
            0x0 => ErrorCode::NoError,
            0x1 => ErrorCode::ProtocolError,
            0x2 => ErrorCode::InternalError,
            0x3 => ErrorCode::FlowControlError,
            0x4 => ErrorCode::SettingsTimeout,
            0x5 => ErrorCode::StreamClosed,
            0x6 => ErrorCode::FrameSizeError,
            0x7 => ErrorCode::RefusedStream,
            0x8 => ErrorCode::Cancel,
            0x9 => ErrorCode::CompressionError,
            0xa => ErrorCode::ConnectError,
            0xb => ErrorCode::EnhanceYourCalm,
            0xc => ErrorCode::InadequateSecurity,
            0xd => ErrorCode::Http11Required,
            _ => ErrorCode::InternalError,
        }
    }
}

/// SETTINGS parameters (§6.5.2). `None` means "not present in this frame".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Settings {
    /// SETTINGS_HEADER_TABLE_SIZE (0x1).
    pub header_table_size: Option<u32>,
    /// SETTINGS_ENABLE_PUSH (0x2) — the paper's §2.1 "no push" switch.
    pub enable_push: Option<bool>,
    /// SETTINGS_MAX_CONCURRENT_STREAMS (0x3).
    pub max_concurrent_streams: Option<u32>,
    /// SETTINGS_INITIAL_WINDOW_SIZE (0x4).
    pub initial_window_size: Option<u32>,
    /// SETTINGS_MAX_FRAME_SIZE (0x5).
    pub max_frame_size: Option<u32>,
    /// SETTINGS_MAX_HEADER_LIST_SIZE (0x6).
    pub max_header_list_size: Option<u32>,
}

/// A stream dependency (§5.3.1): parent stream, weight 1..=256, exclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrioritySpec {
    /// Stream this one depends on (0 = root).
    pub depends_on: u32,
    /// Weight in 1..=256.
    pub weight: u16,
    /// Exclusive dependency flag.
    pub exclusive: bool,
}

impl Default for PrioritySpec {
    fn default() -> Self {
        // §5.3.5: default priority — depend on root with weight 16.
        PrioritySpec { depends_on: 0, weight: 16, exclusive: false }
    }
}

/// A parsed HTTP/2 frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// DATA: `len` payload octets (content is opaque filler).
    Data { stream: u32, len: usize, end_stream: bool },
    /// HEADERS with an (already reassembled) header block fragment.
    Headers {
        stream: u32,
        block: Bytes,
        end_stream: bool,
        end_headers: bool,
        priority: Option<PrioritySpec>,
    },
    /// PRIORITY.
    Priority { stream: u32, spec: PrioritySpec },
    /// RST_STREAM.
    RstStream { stream: u32, code: ErrorCode },
    /// SETTINGS (ack == true ⇒ empty payload).
    Settings { ack: bool, settings: Settings },
    /// PUSH_PROMISE reserving `promised` with a request header block.
    PushPromise { stream: u32, promised: u32, block: Bytes, end_headers: bool },
    /// PING.
    Ping { ack: bool, payload: [u8; 8] },
    /// GOAWAY.
    GoAway { last_stream: u32, code: ErrorCode },
    /// WINDOW_UPDATE.
    WindowUpdate { stream: u32, increment: u32 },
    /// CONTINUATION of a header block.
    Continuation { stream: u32, block: Bytes, end_headers: bool },
}

/// Frame decode errors; most are connection errors per §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Not enough bytes yet (not an error; retry after more input).
    Incomplete,
    /// Unknown frame type (§4.1 says ignore; surfaced so callers can skip).
    UnknownType { skip: usize },
    /// Frame violates the protocol.
    Protocol(&'static str),
    /// Frame exceeds SETTINGS_MAX_FRAME_SIZE.
    TooLarge,
}

/// The shared all-zero filler region DATA payloads are sliced from: body
/// bytes are counted placeholders in this testbed, so every DATA payload is
/// a window into this one static block instead of freshly zeroed memory.
static ZERO_REGION: [u8; DEFAULT_MAX_FRAME_SIZE] = [0; DEFAULT_MAX_FRAME_SIZE];

/// A zero-copy [`Bytes`] slice of the shared zero region
/// (`n ≤ DEFAULT_MAX_FRAME_SIZE`) — pre-chunked DATA payload filler.
pub fn zero_payload(n: usize) -> Bytes {
    Bytes::from_static(&ZERO_REGION[..n])
}

/// An output buffer frames can serialize into. Implemented for `Vec<u8>`
/// (the original API) and [`BytesMut`], which lets the connection send path
/// reuse one buffer across calls and hand out `split().freeze()` views
/// without copying.
pub(crate) trait FrameBuf {
    /// Append one byte.
    fn put_byte(&mut self, b: u8);
    /// Append a slice.
    fn put_slice(&mut self, s: &[u8]);
    /// Append `n` zero bytes (DATA filler).
    fn put_zeros(&mut self, n: usize) {
        let mut left = n;
        while left > 0 {
            let take = left.min(ZERO_REGION.len());
            self.put_slice(&ZERO_REGION[..take]);
            left -= take;
        }
    }
}

impl FrameBuf for Vec<u8> {
    fn put_byte(&mut self, b: u8) {
        self.push(b);
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
    fn put_zeros(&mut self, n: usize) {
        self.resize(self.len() + n, 0);
    }
}

impl FrameBuf for BytesMut {
    fn put_byte(&mut self, b: u8) {
        self.extend_from_slice(&[b]);
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
    fn put_zeros(&mut self, n: usize) {
        self.resize(self.len() + n, 0);
    }
}

fn put_u24<B: FrameBuf + ?Sized>(out: &mut B, v: usize) {
    out.put_byte((v >> 16) as u8);
    out.put_byte((v >> 8) as u8);
    out.put_byte(v as u8);
}

fn put_u32<B: FrameBuf + ?Sized>(out: &mut B, v: u32) {
    out.put_slice(&v.to_be_bytes());
}

fn header<B: FrameBuf + ?Sized>(out: &mut B, len: usize, ty: FrameType, flags: u8, stream: u32) {
    put_u24(out, len);
    out.put_byte(ty.code());
    out.put_byte(flags);
    put_u32(out, stream & 0x7fff_ffff);
}

impl Frame {
    /// Serialize this frame, appending to `out`. DATA payload is filler
    /// zeros of the declared length.
    pub fn encode(&self, out: &mut Vec<u8>) {
        self.encode_to(out);
    }

    /// Serialize into any [`FrameBuf`] (`Vec<u8>` or `BytesMut`); the wire
    /// bytes are identical whichever buffer is used.
    pub(crate) fn encode_to<B: FrameBuf + ?Sized>(&self, out: &mut B) {
        match self {
            Frame::Data { stream, len, end_stream } => {
                header(out, *len, FrameType::Data, if *end_stream { 0x1 } else { 0 }, *stream);
                out.put_zeros(*len);
            }
            Frame::Headers { stream, block, end_stream, end_headers, priority } => {
                let mut flags = 0u8;
                if *end_stream {
                    flags |= 0x1;
                }
                if *end_headers {
                    flags |= 0x4;
                }
                let extra = if priority.is_some() {
                    flags |= 0x20;
                    5
                } else {
                    0
                };
                header(out, block.len() + extra, FrameType::Headers, flags, *stream);
                if let Some(p) = priority {
                    let dep =
                        (p.depends_on & 0x7fff_ffff) | if p.exclusive { 0x8000_0000 } else { 0 };
                    put_u32(out, dep);
                    out.put_byte((p.weight - 1) as u8);
                }
                out.put_slice(block);
            }
            Frame::Priority { stream, spec } => {
                header(out, 5, FrameType::Priority, 0, *stream);
                let dep =
                    (spec.depends_on & 0x7fff_ffff) | if spec.exclusive { 0x8000_0000 } else { 0 };
                put_u32(out, dep);
                out.put_byte((spec.weight - 1) as u8);
            }
            Frame::RstStream { stream, code } => {
                header(out, 4, FrameType::RstStream, 0, *stream);
                put_u32(out, code.code());
            }
            Frame::Settings { ack, settings } => {
                // Six defined settings at six octets each: a stack buffer
                // keeps connection setup allocation-free.
                fn put(buf: &mut [u8; 36], n: &mut usize, id: u16, v: u32) {
                    buf[*n..*n + 2].copy_from_slice(&id.to_be_bytes());
                    buf[*n + 2..*n + 6].copy_from_slice(&v.to_be_bytes());
                    *n += 6;
                }
                let mut payload = [0u8; 36];
                let mut n = 0usize;
                if !ack {
                    if let Some(v) = settings.header_table_size {
                        put(&mut payload, &mut n, 0x1, v);
                    }
                    if let Some(v) = settings.enable_push {
                        put(&mut payload, &mut n, 0x2, v as u32);
                    }
                    if let Some(v) = settings.max_concurrent_streams {
                        put(&mut payload, &mut n, 0x3, v);
                    }
                    if let Some(v) = settings.initial_window_size {
                        put(&mut payload, &mut n, 0x4, v);
                    }
                    if let Some(v) = settings.max_frame_size {
                        put(&mut payload, &mut n, 0x5, v);
                    }
                    if let Some(v) = settings.max_header_list_size {
                        put(&mut payload, &mut n, 0x6, v);
                    }
                }
                header(out, n, FrameType::Settings, if *ack { 0x1 } else { 0 }, 0);
                out.put_slice(&payload[..n]);
            }
            Frame::PushPromise { stream, promised, block, end_headers } => {
                let flags = if *end_headers { 0x4 } else { 0 };
                header(out, block.len() + 4, FrameType::PushPromise, flags, *stream);
                put_u32(out, promised & 0x7fff_ffff);
                out.put_slice(block);
            }
            Frame::Ping { ack, payload } => {
                header(out, 8, FrameType::Ping, if *ack { 0x1 } else { 0 }, 0);
                out.put_slice(payload);
            }
            Frame::GoAway { last_stream, code } => {
                header(out, 8, FrameType::GoAway, 0, 0);
                put_u32(out, last_stream & 0x7fff_ffff);
                put_u32(out, code.code());
            }
            Frame::WindowUpdate { stream, increment } => {
                header(out, 4, FrameType::WindowUpdate, 0, *stream);
                put_u32(out, increment & 0x7fff_ffff);
            }
            Frame::Continuation { stream, block, end_headers } => {
                let flags = if *end_headers { 0x4 } else { 0 };
                header(out, block.len(), FrameType::Continuation, flags, *stream);
                out.put_slice(block);
            }
        }
    }

    /// Serialized length of this frame including the 9-octet header.
    pub fn encoded_len(&self) -> usize {
        /// A [`FrameBuf`] that only counts — `encoded_len` without a heap
        /// buffer.
        struct LenCount(usize);
        impl FrameBuf for LenCount {
            fn put_byte(&mut self, _b: u8) {
                self.0 += 1;
            }
            fn put_slice(&mut self, s: &[u8]) {
                self.0 += s.len();
            }
            fn put_zeros(&mut self, n: usize) {
                self.0 += n;
            }
        }
        let mut c = LenCount(0);
        self.encode_to(&mut c);
        c.0
    }

    /// Try to decode one frame from the start of `buf`.
    ///
    /// On success returns the frame and the number of bytes consumed.
    pub fn decode(buf: &[u8], max_frame_size: usize) -> Result<(Frame, usize), FrameError> {
        if buf.len() < FRAME_HEADER_LEN {
            return Err(FrameError::Incomplete);
        }
        let len = ((buf[0] as usize) << 16) | ((buf[1] as usize) << 8) | buf[2] as usize;
        if len > max_frame_size {
            return Err(FrameError::TooLarge);
        }
        let ty = buf[3];
        let flags = buf[4];
        let stream = u32::from_be_bytes([buf[5], buf[6], buf[7], buf[8]]) & 0x7fff_ffff;
        let total = FRAME_HEADER_LEN + len;
        if buf.len() < total {
            return Err(FrameError::Incomplete);
        }
        let payload = &buf[FRAME_HEADER_LEN..total];
        let ty = match FrameType::from_code(ty) {
            Some(t) => t,
            None => return Err(FrameError::UnknownType { skip: total }),
        };
        let frame = match ty {
            FrameType::Data => {
                if stream == 0 {
                    return Err(FrameError::Protocol("DATA on stream 0"));
                }
                Frame::Data { stream, len, end_stream: flags & 0x1 != 0 }
            }
            FrameType::Headers => {
                if stream == 0 {
                    return Err(FrameError::Protocol("HEADERS on stream 0"));
                }
                let mut body = payload;
                // Padding (§6.2) — not produced by us but handled.
                if flags & 0x8 != 0 {
                    let pad = *body.first().ok_or(FrameError::Protocol("empty padded"))? as usize;
                    body = &body[1..];
                    if pad >= body.len() {
                        return Err(FrameError::Protocol("padding too long"));
                    }
                    body = &body[..body.len() - pad];
                }
                let priority = if flags & 0x20 != 0 {
                    if body.len() < 5 {
                        return Err(FrameError::Protocol("short priority section"));
                    }
                    let dep = u32::from_be_bytes([body[0], body[1], body[2], body[3]]);
                    let spec = PrioritySpec {
                        depends_on: dep & 0x7fff_ffff,
                        weight: body[4] as u16 + 1,
                        exclusive: dep & 0x8000_0000 != 0,
                    };
                    body = &body[5..];
                    Some(spec)
                } else {
                    None
                };
                Frame::Headers {
                    stream,
                    block: Bytes::copy_from_slice(body),
                    end_stream: flags & 0x1 != 0,
                    end_headers: flags & 0x4 != 0,
                    priority,
                }
            }
            FrameType::Priority => {
                if len != 5 {
                    return Err(FrameError::Protocol("PRIORITY length != 5"));
                }
                let dep = u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]]);
                Frame::Priority {
                    stream,
                    spec: PrioritySpec {
                        depends_on: dep & 0x7fff_ffff,
                        weight: payload[4] as u16 + 1,
                        exclusive: dep & 0x8000_0000 != 0,
                    },
                }
            }
            FrameType::RstStream => {
                if len != 4 {
                    return Err(FrameError::Protocol("RST_STREAM length != 4"));
                }
                let code = u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]]);
                Frame::RstStream { stream, code: ErrorCode::from_code(code) }
            }
            FrameType::Settings => {
                if stream != 0 {
                    return Err(FrameError::Protocol("SETTINGS on nonzero stream"));
                }
                if !len.is_multiple_of(6) {
                    return Err(FrameError::Protocol("SETTINGS length % 6"));
                }
                let mut settings = Settings::default();
                for chunk in payload.chunks_exact(6) {
                    let id = u16::from_be_bytes([chunk[0], chunk[1]]);
                    let v = u32::from_be_bytes([chunk[2], chunk[3], chunk[4], chunk[5]]);
                    match id {
                        0x1 => settings.header_table_size = Some(v),
                        0x2 => settings.enable_push = Some(v != 0),
                        0x3 => settings.max_concurrent_streams = Some(v),
                        0x4 => settings.initial_window_size = Some(v),
                        0x5 => settings.max_frame_size = Some(v),
                        0x6 => settings.max_header_list_size = Some(v),
                        _ => {} // §6.5.2: ignore unknown settings
                    }
                }
                Frame::Settings { ack: flags & 0x1 != 0, settings }
            }
            FrameType::PushPromise => {
                if len < 4 {
                    return Err(FrameError::Protocol("short PUSH_PROMISE"));
                }
                let promised = u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]])
                    & 0x7fff_ffff;
                Frame::PushPromise {
                    stream,
                    promised,
                    block: Bytes::copy_from_slice(&payload[4..]),
                    end_headers: flags & 0x4 != 0,
                }
            }
            FrameType::Ping => {
                if len != 8 {
                    return Err(FrameError::Protocol("PING length != 8"));
                }
                let mut p = [0u8; 8];
                p.copy_from_slice(payload);
                Frame::Ping { ack: flags & 0x1 != 0, payload: p }
            }
            FrameType::GoAway => {
                if len < 8 {
                    return Err(FrameError::Protocol("short GOAWAY"));
                }
                let last = u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]])
                    & 0x7fff_ffff;
                let code = u32::from_be_bytes([payload[4], payload[5], payload[6], payload[7]]);
                Frame::GoAway { last_stream: last, code: ErrorCode::from_code(code) }
            }
            FrameType::WindowUpdate => {
                if len != 4 {
                    return Err(FrameError::Protocol("WINDOW_UPDATE length != 4"));
                }
                let inc = u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]])
                    & 0x7fff_ffff;
                if inc == 0 {
                    return Err(FrameError::Protocol("zero WINDOW_UPDATE"));
                }
                Frame::WindowUpdate { stream, increment: inc }
            }
            FrameType::Continuation => Frame::Continuation {
                stream,
                block: Bytes::copy_from_slice(payload),
                end_headers: flags & 0x4 != 0,
            },
        };
        Ok((frame, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(f: Frame) {
        let mut buf = Vec::new();
        f.encode(&mut buf);
        let (g, used) = Frame::decode(&buf, DEFAULT_MAX_FRAME_SIZE).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(g, f);
    }

    #[test]
    fn data_round_trip() {
        round_trip(Frame::Data { stream: 1, len: 1000, end_stream: true });
        round_trip(Frame::Data { stream: 3, len: 0, end_stream: false });
    }

    #[test]
    fn headers_round_trip_with_priority() {
        round_trip(Frame::Headers {
            stream: 5,
            block: vec![0x82, 0x86].into(),
            end_stream: false,
            end_headers: true,
            priority: Some(PrioritySpec { depends_on: 3, weight: 256, exclusive: true }),
        });
        round_trip(Frame::Headers {
            stream: 1,
            block: Bytes::new(),
            end_stream: true,
            end_headers: false,
            priority: None,
        });
    }

    #[test]
    fn priority_round_trip() {
        round_trip(Frame::Priority {
            stream: 7,
            spec: PrioritySpec { depends_on: 0, weight: 1, exclusive: false },
        });
    }

    #[test]
    fn rst_settings_ping_goaway_window_update() {
        round_trip(Frame::RstStream { stream: 9, code: ErrorCode::Cancel });
        round_trip(Frame::Settings {
            ack: false,
            settings: Settings {
                enable_push: Some(false),
                initial_window_size: Some(1 << 20),
                max_frame_size: Some(16384),
                ..Default::default()
            },
        });
        round_trip(Frame::Settings { ack: true, settings: Settings::default() });
        round_trip(Frame::Ping { ack: false, payload: [1, 2, 3, 4, 5, 6, 7, 8] });
        round_trip(Frame::GoAway { last_stream: 13, code: ErrorCode::NoError });
        round_trip(Frame::WindowUpdate { stream: 0, increment: 0x7fff_ffff });
    }

    #[test]
    fn push_promise_round_trip() {
        round_trip(Frame::PushPromise {
            stream: 1,
            promised: 2,
            block: vec![0x82, 0x84, 0x87].into(),
            end_headers: true,
        });
    }

    #[test]
    fn continuation_round_trip() {
        round_trip(Frame::Continuation {
            stream: 1,
            block: vec![9; 100].into(),
            end_headers: true,
        });
    }

    #[test]
    fn incomplete_input() {
        let f = Frame::Data { stream: 1, len: 100, end_stream: false };
        let mut buf = Vec::new();
        f.encode(&mut buf);
        for cut in [0, 5, 8, 50, buf.len() - 1] {
            assert_eq!(
                Frame::decode(&buf[..cut], DEFAULT_MAX_FRAME_SIZE).unwrap_err(),
                FrameError::Incomplete
            );
        }
    }

    #[test]
    fn oversized_frame_rejected() {
        let f = Frame::Data { stream: 1, len: 20_000, end_stream: false };
        let mut buf = Vec::new();
        f.encode(&mut buf);
        assert_eq!(Frame::decode(&buf, 16_384).unwrap_err(), FrameError::TooLarge);
        assert!(Frame::decode(&buf, 20_000).is_ok());
    }

    #[test]
    fn unknown_type_is_skippable() {
        let mut buf = Vec::new();
        put_u24(&mut buf, 3);
        buf.push(0xbe); // unknown type
        buf.push(0);
        put_u32(&mut buf, 0);
        buf.extend_from_slice(&[1, 2, 3]);
        match Frame::decode(&buf, DEFAULT_MAX_FRAME_SIZE) {
            Err(FrameError::UnknownType { skip }) => assert_eq!(skip, buf.len()),
            other => panic!("expected UnknownType, got {other:?}"),
        }
    }

    #[test]
    fn weight_bounds_encode_as_minus_one() {
        // Weight 1..=256 maps to wire 0..=255.
        let f = Frame::Priority {
            stream: 3,
            spec: PrioritySpec { depends_on: 1, weight: 220, exclusive: false },
        };
        let mut buf = Vec::new();
        f.encode(&mut buf);
        assert_eq!(buf[FRAME_HEADER_LEN + 4], 219);
    }

    #[test]
    fn zero_window_update_rejected() {
        let mut buf = Vec::new();
        put_u24(&mut buf, 4);
        buf.push(0x8);
        buf.push(0);
        put_u32(&mut buf, 1);
        put_u32(&mut buf, 0);
        assert!(matches!(
            Frame::decode(&buf, DEFAULT_MAX_FRAME_SIZE),
            Err(FrameError::Protocol(_))
        ));
    }

    #[test]
    fn settings_ignores_unknown_ids() {
        let mut buf = Vec::new();
        put_u24(&mut buf, 12);
        buf.push(0x4);
        buf.push(0);
        put_u32(&mut buf, 0);
        buf.extend_from_slice(&0x2u16.to_be_bytes());
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.extend_from_slice(&0xffu16.to_be_bytes()); // unknown id
        buf.extend_from_slice(&7u32.to_be_bytes());
        let (f, _) = Frame::decode(&buf, DEFAULT_MAX_FRAME_SIZE).unwrap();
        match f {
            Frame::Settings { ack, settings } => {
                assert!(!ack);
                assert_eq!(settings.enable_push, Some(true));
                assert_eq!(settings.max_concurrent_streams, None);
            }
            other => panic!("expected SETTINGS, got {other:?}"),
        }
    }
}
