//! # h2push-h2proto — HTTP/2 wire protocol (RFC 7540)
//!
//! From-scratch HTTP/2: the binary framing layer (all ten frame types),
//! SETTINGS negotiation (including `SETTINGS_ENABLE_PUSH`, the paper's
//! "no push" switch), stream lifecycle states, connection- and stream-level
//! flow control, the §5.3 priority dependency tree, and a pluggable stream
//! scheduler — the policy surface on which the paper builds Interleaving
//! Push.
//!
//! The [`connection::Connection`] endpoint is a sans-IO state machine
//! (see [`sansio`]): wire bytes in via [`Connection::feed_bytes`] /
//! [`Connection::receive`], wire bytes out via `produce`, decoded
//! [`Event`]s as the action stream — no socket, queue or clock ownership,
//! so the same endpoint runs under the deterministic `h2push-netsim`
//! harness and the live TCP runtime unchanged.

pub mod cache_digest;
pub mod connection;
pub mod error;
pub mod frame;
pub mod limits;
pub mod priority;
pub mod sansio;
pub mod scheduler;
pub(crate) mod stream_slab;

pub use cache_digest::CacheDigest;
pub use connection::{Connection, Event, Role, StreamState};
pub use error::{ConnError, StreamError};
pub use frame::{
    zero_payload, ErrorCode, Frame, FrameError, PrioritySpec, Settings, DEFAULT_MAX_FRAME_SIZE,
    DEFAULT_WINDOW, PREFACE,
};
pub use h2push_hpack::BlockCache;
pub use limits::ConnLimits;
pub use priority::{PriorityTree, ROOT};
pub use scheduler::{DefaultScheduler, FairScheduler, FifoScheduler, Scheduler, StreamSnapshot};
