//! Resource limits against adversarial peers (RFC 7540 §10.5).
//!
//! A well-behaved replay never comes near any of these bounds — the
//! defaults are deliberately generous so that enforcement is *inert* on
//! benign workloads (no extra frames, no changed bytes). They exist for
//! the hostile peer: rapid-reset floods (CVE-2023-44487), SETTINGS/PING
//! churn, header bombs, window-overflow and stream-exhaustion attacks all
//! hit a typed [`crate::ConnError`]/[`crate::StreamError`] instead of
//! unbounded memory growth or a panic.
//!
//! The limits are purely *local* policy: they are **not** advertised in
//! SETTINGS (which would change wire bytes and break byte-identical
//! replay against earlier revisions); the endpoint simply refuses to be
//! abused past them.

/// Local enforcement bounds for one [`crate::Connection`] endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnLimits {
    /// Peer-opened streams that may be concurrently non-closed (§5.1.2).
    /// Excess streams are refused (RST `REFUSED_STREAM`); a peer that
    /// keeps pushing past the refusals escalates to
    /// [`crate::ConnError::ConcurrentStreamsExceeded`].
    pub max_concurrent_streams: u32,
    /// Maximum decoded size of one header list (name + value + 32 per
    /// field, §10.5.1). Violations are
    /// [`crate::ConnError::HeaderListTooLarge`].
    pub max_header_list_size: usize,
    /// Total RST_STREAM frames accepted from the peer before the
    /// connection declares a rapid-reset flood
    /// ([`crate::ConnError::ResetFlood`]).
    pub max_resets: u32,
    /// Total non-ack SETTINGS frames accepted before
    /// [`crate::ConnError::SettingsFlood`].
    pub max_settings_frames: u32,
    /// Total non-ack PING frames accepted before
    /// [`crate::ConnError::PingFlood`].
    pub max_pings: u32,
    /// Outbound control-queue depth (frames) before
    /// [`crate::ConnError::ControlQueueOverflow`] — the peer is forcing
    /// responses (acks, RSTs) faster than the link drains them.
    pub max_control_frames: usize,
}

impl ConnLimits {
    /// The enforcement defaults: far above anything a benign replay
    /// produces, far below what an abuser needs.
    pub fn new() -> Self {
        ConnLimits {
            max_concurrent_streams: 1024,
            max_header_list_size: 1 << 20,
            max_resets: 8192,
            max_settings_frames: 1024,
            max_pings: 4096,
            max_control_frames: 65_536,
        }
    }

    /// Effectively-unlimited bounds (for differential tests proving that
    /// enforcement is inert on benign workloads).
    pub fn permissive() -> Self {
        ConnLimits {
            max_concurrent_streams: u32::MAX,
            max_header_list_size: usize::MAX,
            max_resets: u32::MAX,
            max_settings_frames: u32::MAX,
            max_pings: u32::MAX,
            max_control_frames: usize::MAX,
        }
    }

    /// Tight bounds for abuse tests: every class of attack trips after a
    /// handful of frames.
    pub fn strict() -> Self {
        ConnLimits {
            max_concurrent_streams: 8,
            max_header_list_size: 16 * 1024,
            max_resets: 16,
            max_settings_frames: 8,
            max_pings: 8,
            max_control_frames: 256,
        }
    }
}

impl Default for ConnLimits {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_between_strict_and_permissive() {
        let d = ConnLimits::new();
        let s = ConnLimits::strict();
        let p = ConnLimits::permissive();
        assert!(s.max_concurrent_streams < d.max_concurrent_streams);
        assert!(d.max_concurrent_streams < p.max_concurrent_streams);
        assert!(s.max_resets < d.max_resets && d.max_resets < p.max_resets);
        assert!(s.max_control_frames < d.max_control_frames);
        assert!(d.max_control_frames < p.max_control_frames);
        assert_eq!(ConnLimits::default(), d);
    }
}
