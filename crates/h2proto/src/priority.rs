//! The HTTP/2 stream dependency tree (RFC 7540 §5.3).
//!
//! Chromium 64 — the browser the paper automates — expresses resource
//! priorities through this tree, and the paper's testbed reconstructs each
//! page's *dependency tree* from the PRIORITY information observed on the
//! wire (§4.2 "Computing the Push Order"). h2o's default scheduler, which
//! the paper modifies for Interleaving Push, walks this tree as well: a
//! pushed stream is inserted as a **child of its parent stream**, so its
//! frames are only scheduled when the parent has nothing to send (Fig. 5a).

use crate::frame::PrioritySpec;
use h2push_hpack::FxHashMap;

/// The root pseudo-stream id.
pub const ROOT: u32 = 0;

#[derive(Debug, Clone)]
struct Node {
    parent: u32,
    weight: u16,
    children: Vec<u32>,
}

/// A priority dependency tree over stream ids.
///
/// ```
/// use h2push_h2proto::{PriorityTree, PrioritySpec};
///
/// let mut tree = PriorityTree::new();
/// tree.insert(1, PrioritySpec { depends_on: 0, weight: 256, exclusive: false });
/// tree.insert(2, PrioritySpec { depends_on: 1, weight: 16, exclusive: false }); // a push
/// assert_eq!(tree.parent(2), Some(1));
/// tree.remove(1); // document finished: the push is promoted
/// assert_eq!(tree.parent(2), Some(0));
/// ```
#[derive(Debug, Clone)]
pub struct PriorityTree {
    nodes: FxHashMap<u32, Node>,
    /// Child-list buffers salvaged from removed nodes; [`insert`] reuses
    /// them so a recycled tree builds each run's streams without touching
    /// the allocator.
    ///
    /// [`insert`]: PriorityTree::insert
    spare: Vec<Vec<u32>>,
}

/// Child-list buffers kept for reuse — enough for every concurrent stream
/// of a page load.
const SPARE_CHILD_VECS: usize = 32;

impl PriorityTree {
    /// Tree containing only the root.
    pub fn new() -> Self {
        let mut nodes = FxHashMap::default();
        nodes.insert(ROOT, Node { parent: ROOT, weight: 256, children: Vec::new() });
        PriorityTree { nodes, spare: Vec::new() }
    }

    /// Restore the state of [`PriorityTree::new`] — only the root — while
    /// keeping the node map's capacity, the root's child-list buffer, and
    /// the removed nodes' child-list buffers (parked for reuse).
    pub fn reset(&mut self) {
        let spare = &mut self.spare;
        self.nodes.retain(|&id, n| {
            if id == ROOT {
                return true;
            }
            if spare.len() < SPARE_CHILD_VECS && n.children.capacity() > 0 {
                let mut v = std::mem::take(&mut n.children);
                v.clear();
                spare.push(v);
            }
            false
        });
        match self.nodes.get_mut(&ROOT) {
            Some(root) => {
                root.parent = ROOT;
                root.weight = 256;
                root.children.clear();
            }
            None => {
                self.nodes.insert(ROOT, Node { parent: ROOT, weight: 256, children: Vec::new() });
            }
        }
    }

    /// A child-list buffer: parked capacity when available, fresh otherwise.
    fn take_spare(&mut self) -> Vec<u32> {
        self.spare.pop().unwrap_or_default()
    }

    /// Park a child-list buffer for the next [`insert`](PriorityTree::insert).
    fn give_spare(&mut self, mut v: Vec<u32>) {
        if v.capacity() > 0 && self.spare.len() < SPARE_CHILD_VECS {
            v.clear();
            self.spare.push(v);
        }
    }

    /// Whether `id` is in the tree.
    pub fn contains(&self, id: u32) -> bool {
        self.nodes.contains_key(&id)
    }

    /// Number of streams (excluding the root).
    pub fn len(&self) -> usize {
        self.nodes.len() - 1
    }

    /// True if only the root exists.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Parent of `id` (None for the root or unknown ids).
    pub fn parent(&self, id: u32) -> Option<u32> {
        if id == ROOT {
            return None;
        }
        self.nodes.get(&id).map(|n| n.parent)
    }

    /// Weight of `id`.
    pub fn weight(&self, id: u32) -> Option<u16> {
        self.nodes.get(&id).map(|n| n.weight)
    }

    /// Children of `id` in insertion order.
    pub fn children(&self, id: u32) -> &[u32] {
        self.nodes.get(&id).map(|n| n.children.as_slice()).unwrap_or(&[])
    }

    /// Insert stream `id` with the given priority (§5.3.1).
    ///
    /// A dependency on an unknown stream falls back to the root with default
    /// weight, as §5.3.1 prescribes for streams absent from the tree.
    pub fn insert(&mut self, id: u32, spec: PrioritySpec) {
        if self.nodes.contains_key(&id) {
            self.reprioritize(id, spec);
            return;
        }
        let spec = self.sanitize(id, spec);
        if spec.exclusive {
            // All children of the new parent become children of `id`.
            // (`sanitize` guarantees the parent exists; stay panic-free
            // regardless — adversarial inputs reach this path.)
            let repl = self.take_spare();
            let moved = self
                .nodes
                .get_mut(&spec.depends_on)
                .map(|p| std::mem::replace(&mut p.children, repl))
                .unwrap_or_default();
            for c in &moved {
                if let Some(n) = self.nodes.get_mut(c) {
                    n.parent = id;
                }
            }
            self.nodes
                .insert(id, Node { parent: spec.depends_on, weight: spec.weight, children: moved });
        } else {
            let children = self.take_spare();
            self.nodes.insert(id, Node { parent: spec.depends_on, weight: spec.weight, children });
        }
        if let Some(p) = self.nodes.get_mut(&spec.depends_on) {
            p.children.push(id);
        }
    }

    /// Change the priority of an existing stream (§5.3.3).
    pub fn reprioritize(&mut self, id: u32, spec: PrioritySpec) {
        if !self.nodes.contains_key(&id) {
            self.insert(id, spec);
            return;
        }
        let mut spec = self.sanitize(id, spec);
        // §5.3.3: if the new parent is a descendant of `id`, first move that
        // descendant to `id`'s current parent (non-exclusively), keeping its
        // weight.
        if self.is_descendant(spec.depends_on, id) {
            let old_parent = self.nodes.get(&id).map(|n| n.parent).unwrap_or(ROOT);
            self.detach(spec.depends_on);
            self.attach(spec.depends_on, old_parent);
            spec = self.sanitize(id, spec); // parent may have been clamped
        }
        self.detach(id);
        if let Some(n) = self.nodes.get_mut(&id) {
            n.weight = spec.weight;
        }
        if spec.exclusive {
            let repl = self.take_spare();
            let moved = self
                .nodes
                .get_mut(&spec.depends_on)
                .map(|p| std::mem::replace(&mut p.children, repl))
                .unwrap_or_default();
            for c in &moved {
                if let Some(n) = self.nodes.get_mut(c) {
                    n.parent = id;
                }
            }
            if let Some(n) = self.nodes.get_mut(&id) {
                n.children.extend(moved.iter().copied());
            }
            self.give_spare(moved);
        }
        self.attach(id, spec.depends_on);
    }

    /// Remove a closed stream (§5.3.4): its children move to its parent,
    /// weights scaled proportionally (we keep the child's own weight — the
    /// proportional redistribution of the RFC is advisory and h2o keeps it
    /// simple the same way).
    pub fn remove(&mut self, id: u32) {
        if id == ROOT || !self.nodes.contains_key(&id) {
            return;
        }
        let Some(node) = self.nodes.remove(&id) else { return };
        let parent = node.parent;
        // Replace `id` in the parent's child list with `id`'s children,
        // preserving position (keeps sibling order deterministic). If the
        // parent is somehow gone the orphans reattach to the root.
        let parent = if self.nodes.contains_key(&parent) { parent } else { ROOT };
        if let Some(p) = self.nodes.get_mut(&parent) {
            let pc = &mut p.children;
            match pc.iter().position(|&c| c == id) {
                Some(pos) => {
                    pc.splice(pos..=pos, node.children.iter().copied());
                }
                None => pc.extend(node.children.iter().copied()),
            }
        }
        for c in &node.children {
            if let Some(n) = self.nodes.get_mut(c) {
                n.parent = parent;
            }
        }
        self.give_spare(node.children);
    }

    /// Depth-first order of all streams, parents before children, siblings
    /// by descending weight then insertion order. This is the traversal the
    /// testbed uses to linearize a page's dependency tree into a push order
    /// (§4.2).
    pub fn traversal(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len());
        let mut stack = vec![ROOT];
        while let Some(n) = stack.pop() {
            if n != ROOT {
                out.push(n);
            }
            // Sort children by weight descending (stable on insertion order),
            // pushed reversed so the heaviest pops first.
            let mut kids: Vec<u32> = self.children(n).to_vec();
            kids.sort_by_key(|&c| std::cmp::Reverse(self.weight(c).unwrap_or(16)));
            for &k in kids.iter().rev() {
                stack.push(k);
            }
        }
        out
    }

    /// Is `a` a descendant of `b`?
    pub fn is_descendant(&self, a: u32, b: u32) -> bool {
        let mut cur = a;
        while cur != ROOT {
            match self.nodes.get(&cur) {
                Some(n) => {
                    if n.parent == b {
                        return true;
                    }
                    cur = n.parent;
                }
                None => return false,
            }
        }
        false
    }

    /// Unlink `id` from its parent's child list (the node itself stays).
    fn detach(&mut self, id: u32) {
        let Some(parent) = self.nodes.get(&id).map(|n| n.parent) else { return };
        if let Some(p) = self.nodes.get_mut(&parent) {
            p.children.retain(|&c| c != id);
        }
    }

    /// Link `id` under `parent` (appended to the child list).
    fn attach(&mut self, id: u32, parent: u32) {
        let parent = if self.nodes.contains_key(&parent) { parent } else { ROOT };
        if let Some(n) = self.nodes.get_mut(&id) {
            n.parent = parent;
        }
        if let Some(p) = self.nodes.get_mut(&parent) {
            p.children.push(id);
        }
    }

    fn sanitize(&self, id: u32, mut spec: PrioritySpec) -> PrioritySpec {
        // §5.3.1: a stream cannot depend on itself; treat like default.
        if spec.depends_on == id || !self.nodes.contains_key(&spec.depends_on) {
            spec.depends_on = ROOT;
        }
        spec.weight = spec.weight.clamp(1, 256);
        spec
    }
}

impl Default for PriorityTree {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(dep: u32, weight: u16, excl: bool) -> PrioritySpec {
        PrioritySpec { depends_on: dep, weight, exclusive: excl }
    }

    #[test]
    fn insert_chain() {
        let mut t = PriorityTree::new();
        t.insert(1, spec(0, 256, false));
        t.insert(3, spec(1, 16, false));
        t.insert(5, spec(3, 16, false));
        assert_eq!(t.parent(3), Some(1));
        assert_eq!(t.parent(5), Some(3));
        assert_eq!(t.traversal(), vec![1, 3, 5]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn exclusive_insertion_adopts_children() {
        let mut t = PriorityTree::new();
        t.insert(1, spec(0, 16, false));
        t.insert(3, spec(0, 16, false));
        // Stream 5 exclusively depends on root: 1 and 3 become its children.
        t.insert(5, spec(0, 16, true));
        assert_eq!(t.parent(5), Some(0));
        assert_eq!(t.parent(1), Some(5));
        assert_eq!(t.parent(3), Some(5));
        assert_eq!(t.children(0), &[5]);
    }

    #[test]
    fn unknown_parent_falls_back_to_root() {
        let mut t = PriorityTree::new();
        t.insert(7, spec(99, 8, false));
        assert_eq!(t.parent(7), Some(0));
    }

    #[test]
    fn self_dependency_falls_back_to_root() {
        let mut t = PriorityTree::new();
        t.insert(3, spec(3, 8, false));
        assert_eq!(t.parent(3), Some(0));
    }

    #[test]
    fn remove_promotes_children_in_place() {
        let mut t = PriorityTree::new();
        t.insert(1, spec(0, 16, false));
        t.insert(3, spec(0, 16, false));
        t.insert(5, spec(1, 16, false));
        t.insert(7, spec(1, 16, false));
        t.remove(1);
        assert_eq!(t.children(0), &[5, 7, 3]);
        assert_eq!(t.parent(5), Some(0));
        assert!(!t.contains(1));
    }

    #[test]
    fn reprioritize_moves_subtree() {
        let mut t = PriorityTree::new();
        t.insert(1, spec(0, 16, false));
        t.insert(3, spec(1, 16, false));
        t.insert(5, spec(3, 16, false));
        // Move 3 (and its subtree) under root.
        t.reprioritize(3, spec(0, 32, false));
        assert_eq!(t.parent(3), Some(0));
        assert_eq!(t.parent(5), Some(3));
        assert_eq!(t.weight(3), Some(32));
    }

    #[test]
    fn reprioritize_onto_own_descendant() {
        // §5.3.3 example: moving a stream under its own descendant first
        // hoists the descendant.
        let mut t = PriorityTree::new();
        t.insert(1, spec(0, 16, false));
        t.insert(3, spec(1, 16, false));
        t.insert(5, spec(3, 16, false));
        // Make 1 depend on 5 (a descendant of 1).
        t.reprioritize(1, spec(5, 16, false));
        // 5 must have been moved to 1's old parent (root) first.
        assert_eq!(t.parent(5), Some(0));
        assert_eq!(t.parent(1), Some(5));
        assert_eq!(t.parent(3), Some(1));
        // No cycles: traversal terminates and covers all nodes.
        assert_eq!(t.traversal().len(), 3);
    }

    #[test]
    fn exclusive_reprioritize() {
        let mut t = PriorityTree::new();
        t.insert(1, spec(0, 16, false));
        t.insert(3, spec(0, 16, false));
        t.insert(5, spec(0, 16, false));
        t.reprioritize(5, spec(0, 16, true));
        assert_eq!(t.children(0), &[5]);
        assert_eq!(t.parent(1), Some(5));
        assert_eq!(t.parent(3), Some(5));
    }

    #[test]
    fn traversal_orders_siblings_by_weight() {
        let mut t = PriorityTree::new();
        t.insert(1, spec(0, 8, false));
        t.insert(3, spec(0, 255, false));
        t.insert(5, spec(0, 32, false));
        assert_eq!(t.traversal(), vec![3, 5, 1]);
    }

    #[test]
    fn chromium_style_exclusive_chain() {
        // Chromium builds an exclusive chain: each new stream depends
        // exclusively on the previous most-important one.
        let mut t = PriorityTree::new();
        t.insert(1, spec(0, 256, true)); // HTML
        t.insert(3, spec(1, 220, true)); // CSS
        t.insert(5, spec(3, 183, true)); // JS
        t.insert(7, spec(5, 110, true)); // image
        assert_eq!(t.traversal(), vec![1, 3, 5, 7]);
        // Finishing the HTML promotes the chain.
        t.remove(1);
        assert_eq!(t.traversal(), vec![3, 5, 7]);
    }

    #[test]
    fn weight_is_clamped() {
        let mut t = PriorityTree::new();
        t.insert(1, spec(0, 0, false));
        assert_eq!(t.weight(1), Some(1));
        t.insert(3, spec(0, 300, false));
        assert_eq!(t.weight(3), Some(256));
    }
}
