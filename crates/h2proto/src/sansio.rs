//! # The sans-IO contract
//!
//! Every protocol endpoint in this workspace — the HTTP/2
//! [`Connection`](crate::Connection), the replay servers in
//! `h2push-server`, and the browser's per-connection drivers — is a *pure
//! state machine over bytes*: it owns no socket, no queue, no clock and no
//! thread. The surrounding runtime (the deterministic netsim harness or
//! the live TCP runtime in `h2push-testbed`) is a thin adapter that
//! shuttles bytes and timestamps between a transport and the machine.
//!
//! The contract has three legs:
//!
//! 1. **Input**: `feed_bytes(bytes, now)` hands the machine a chunk of
//!    received wire bytes plus the current time. The machine may consume
//!    any prefix, buffer the rest internally, and update its state; it
//!    never blocks and never performs IO. Chunk boundaries carry no
//!    meaning — feeding one big buffer or the same bytes split at any
//!    points yields the same state (reassembly is the machine's job).
//! 2. **Output**: `wants_output()` is a cheap check for pending transmit
//!    bytes; `poll_output(max, now)` produces up to `max` wire bytes. The
//!    runtime decides when to call it (readiness, simulated send windows)
//!    and what to do with the buffer; an empty return means "nothing to
//!    send right now" (possibly flow-control blocked, not necessarily
//!    idle).
//! 3. **Time**: `now` is injected on every call as **microseconds since
//!    an arbitrary epoch** ([`Micros`]). The simulator passes sim-time;
//!    the live runtime passes a monotonic wall-clock offset. Machines
//!    never read a clock, so a replayed exchange is bit-identical no
//!    matter which runtime drives it.
//!
//! Machines that *initiate* work (the browser) additionally return typed
//! actions from their input methods — open a connection, send bytes,
//! arm a timer — instead of performing them; see
//! `h2push_browser::BrowserAction`. [`Connection`](crate::Connection)
//! exposes the same shape at the frame level:
//! [`Connection::feed_bytes`](crate::Connection::feed_bytes) returns the
//! decoded [`Event`](crate::Event)s, and `produce(max, scheduler)` is its
//! `poll_output` with the scheduling policy made explicit.

use bytes::Bytes;

/// Time injected into a sans-IO state machine: microseconds since an
/// arbitrary per-run epoch. The deterministic harness passes sim-time
/// (`SimTime::as_micros`); the live runtime passes the monotonic offset
/// from its start instant. Machines only ever compare and subtract these.
pub type Micros = u64;

/// One endpoint of a byte-stream transport, sans-IO: fed received bytes,
/// polled for transmit bytes, with time injected per call.
///
/// Implemented by the replay servers (`h2push-server`); both the netsim
/// adapter and the live TCP runtime in `h2push-testbed` drive servers
/// exclusively through this trait, which is what guarantees the two
/// runtimes exercise identical protocol behaviour.
pub trait Endpoint {
    /// Feed a chunk of received wire bytes at time `now`. Never blocks;
    /// never performs IO. Chunk boundaries are meaningless.
    fn feed_bytes(&mut self, bytes: &[u8], now: Micros);

    /// Cheap conservative check: `false` guarantees `poll_output` would
    /// return empty right now.
    fn wants_output(&self) -> bool;

    /// Produce up to `max` transmit bytes at time `now`. Empty means
    /// nothing is currently sendable (idle *or* flow-control blocked).
    fn poll_output(&mut self, max: usize, now: Micros) -> Bytes;
}

impl<T: Endpoint + ?Sized> Endpoint for Box<T> {
    fn feed_bytes(&mut self, bytes: &[u8], now: Micros) {
        (**self).feed_bytes(bytes, now)
    }

    fn wants_output(&self) -> bool {
        (**self).wants_output()
    }

    fn poll_output(&mut self, max: usize, now: Micros) -> Bytes {
        (**self).poll_output(max, now)
    }
}
