//! Stream scheduling: which stream's DATA goes on the wire next?
//!
//! This is the axis the paper turns on. The [`Scheduler`] trait lets a
//! server swap scheduling policies; [`DefaultScheduler`] reproduces h2o's
//! stock behaviour (strict dependency order over the RFC 7540 priority
//! tree, weight-ordered siblings with FIFO per class), under which a
//! pushed response — a *child* of the stream that triggered it — is only
//! sent when the parent is idle or finished (Fig. 5a of the paper).
//! [`FairScheduler`] is a byte-level weighted-fair variant for ablations.
//! The paper's Interleaving Push scheduler lives in the `h2push-server`
//! crate.

use crate::priority::{PriorityTree, ROOT};
use std::collections::HashMap;

/// Per-stream view handed to schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSnapshot {
    /// Stream id.
    pub id: u32,
    /// Body bytes queued and currently sendable (flow-control permitting).
    pub sendable: usize,
    /// Body bytes already sent on this stream.
    pub sent: u64,
    /// Whether this is a server-pushed stream (even id).
    pub is_push: bool,
}

/// A stream scheduling policy.
pub trait Scheduler {
    /// Choose the stream to send the next DATA chunk on. `streams` lists
    /// only streams that can make progress right now.
    fn pick(&mut self, streams: &[StreamSnapshot], tree: &PriorityTree) -> Option<u32>;

    /// Account `bytes` sent on `stream` (used by weighted round-robin).
    fn charge(&mut self, _stream: u32, _bytes: usize, _tree: &PriorityTree) {}

    /// A stream finished or was reset.
    fn stream_closed(&mut self, _stream: u32) {}
}

/// h2o-style default scheduler:
///
/// * strict parent-before-descendants over the priority tree (a pushed
///   stream, child of the triggering stream, is served only when its
///   parent has nothing to send — the paper's Fig. 5a);
/// * strictly higher weight classes first among siblings, FIFO by stream
///   id within a class, so pushes drain in promise order — which is why
///   the §4.2 push order matters.
///
/// A weighted-fair variant ([`FairScheduler`]) that shares bandwidth
/// *proportionally* across sibling weight classes (closer to h2o's
/// byte-level weighted fair queuing) is provided for ablation; with the
/// Chromium-style exclusive request chains the browser builds, the two
/// mostly coincide — they differ when low-weight pushed streams coexist
/// with the chain as siblings.
#[derive(Debug, Default)]
pub struct DefaultScheduler {
    /// Bytes charged per tree node (including traffic of its subtree).
    charged: HashMap<u32, u64>,
    /// Bytes charged per (parent node, child weight class).
    class_charged: HashMap<(u32, u16), u64>,
    /// Scratch map rebuilt on every [`Scheduler::pick`]; kept across calls
    /// so steady-state picks allocate nothing.
    ready_scratch: HashMap<u32, usize>,
}

impl DefaultScheduler {
    /// New scheduler with empty accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear all accounting, retaining map capacity for reuse.
    pub fn reset(&mut self) {
        self.charged.clear();
        self.class_charged.clear();
        self.ready_scratch.clear();
    }

    fn subtree_sendable(
        &self,
        node: u32,
        tree: &PriorityTree,
        ready: &HashMap<u32, usize>,
    ) -> bool {
        if node != ROOT && ready.contains_key(&node) {
            return true;
        }
        tree.children(node).iter().any(|&c| self.subtree_sendable(c, tree, ready))
    }

    fn pick_rec(&self, node: u32, tree: &PriorityTree, ready: &HashMap<u32, usize>) -> Option<u32> {
        // Strict dependency order: a sendable stream outranks its whole
        // subtree.
        if node != ROOT && ready.contains_key(&node) {
            return Some(node);
        }
        // Among children with sendable descendants: strictly higher weight
        // first; equal weights serve in stream-id order — i.e. pushes
        // drain sequentially in the order they were promised, like h2o's
        // per-class FIFO queues.
        let best = tree
            .children(node)
            .iter()
            .copied()
            .filter(|&c| self.subtree_sendable(c, tree, ready))
            .min_by(|&a, &b| {
                let wa = tree.weight(a).unwrap_or(16);
                let wb = tree.weight(b).unwrap_or(16);
                wb.cmp(&wa).then(a.cmp(&b))
            })?;
        self.pick_rec(best, tree, ready)
    }
}

impl Scheduler for DefaultScheduler {
    fn pick(&mut self, streams: &[StreamSnapshot], tree: &PriorityTree) -> Option<u32> {
        let mut ready = std::mem::take(&mut self.ready_scratch);
        ready.clear();
        ready.extend(streams.iter().filter(|s| s.sendable > 0).map(|s| (s.id, s.sendable)));
        if ready.is_empty() {
            self.ready_scratch = ready;
            return None;
        }
        // Streams the tree doesn't know (e.g. no HEADERS seen yet) are
        // treated as root children implicitly by falling back to any ready
        // stream if the walk finds nothing.
        let pick = self.pick_rec(ROOT, tree, &ready).or_else(|| ready.keys().min().copied());
        self.ready_scratch = ready;
        pick
    }

    fn charge(&mut self, stream: u32, bytes: usize, tree: &PriorityTree) {
        // Charge the stream and every ancestor link so sibling WFQ is fair
        // at each level of the tree.
        let mut cur = stream;
        loop {
            *self.charged.entry(cur).or_insert(0) += bytes as u64;
            match tree.parent(cur) {
                Some(p) if cur != ROOT => {
                    let w = tree.weight(cur).unwrap_or(16);
                    *self.class_charged.entry((p, w)).or_insert(0) += bytes as u64;
                    cur = p;
                }
                _ => break,
            }
        }
    }

    fn stream_closed(&mut self, stream: u32) {
        self.charged.remove(&stream);
    }
}

/// Weighted-fair variant of the default scheduler: among sibling weight
/// classes, bandwidth is shared *proportionally* to aggregate class weight
/// (byte-level weighted fair queuing, h2o's documented long-run behaviour)
/// instead of strictly by weight; FIFO by stream id within a class. Used
/// by the scheduler ablation bench.
#[derive(Debug, Default)]
pub struct FairScheduler {
    charged: HashMap<u32, u64>,
    class_charged: HashMap<(u32, u16), u64>,
    /// Scratch map rebuilt on every [`Scheduler::pick`] (see
    /// [`DefaultScheduler`]).
    ready_scratch: HashMap<u32, usize>,
}

impl FairScheduler {
    /// New scheduler with empty accounting.
    pub fn new() -> Self {
        Self::default()
    }

    fn subtree_sendable(
        &self,
        node: u32,
        tree: &PriorityTree,
        ready: &HashMap<u32, usize>,
    ) -> bool {
        if node != ROOT && ready.contains_key(&node) {
            return true;
        }
        tree.children(node).iter().any(|&c| self.subtree_sendable(c, tree, ready))
    }

    fn pick_rec(&self, node: u32, tree: &PriorityTree, ready: &HashMap<u32, usize>) -> Option<u32> {
        if node != ROOT && ready.contains_key(&node) {
            return Some(node);
        }
        let eligible: Vec<u32> = tree
            .children(node)
            .iter()
            .copied()
            .filter(|&c| self.subtree_sendable(c, tree, ready))
            .collect();
        if eligible.is_empty() {
            return None;
        }
        // Weighted fair queuing across classes: the class with the least
        // virtual time (bytes per unit of aggregate weight) goes next.
        let mut classes: Vec<(u16, usize)> = Vec::new();
        for &c in &eligible {
            let w = tree.weight(c).unwrap_or(16);
            match classes.iter_mut().find(|(cw, _)| *cw == w) {
                Some((_, n)) => *n += 1,
                None => classes.push((w, 1)),
            }
        }
        let best_class = classes
            .iter()
            .min_by(|&&(wa, na), &&(wb, nb)| {
                let va = *self.class_charged.get(&(node, wa)).unwrap_or(&0) as f64
                    / (wa as u64 * na as u64) as f64;
                let vb = *self.class_charged.get(&(node, wb)).unwrap_or(&0) as f64
                    / (wb as u64 * nb as u64) as f64;
                // `total_cmp` keeps this panic-free even if a hostile
                // weight combination produced a NaN ratio.
                va.total_cmp(&vb).then(wb.cmp(&wa))
            })
            .map(|&(w, _)| w)?;
        let best =
            eligible.into_iter().filter(|&c| tree.weight(c).unwrap_or(16) == best_class).min()?;
        self.pick_rec(best, tree, ready)
    }
}

impl Scheduler for FairScheduler {
    fn pick(&mut self, streams: &[StreamSnapshot], tree: &PriorityTree) -> Option<u32> {
        let mut ready = std::mem::take(&mut self.ready_scratch);
        ready.clear();
        ready.extend(streams.iter().filter(|s| s.sendable > 0).map(|s| (s.id, s.sendable)));
        if ready.is_empty() {
            self.ready_scratch = ready;
            return None;
        }
        let pick = self.pick_rec(ROOT, tree, &ready).or_else(|| ready.keys().min().copied());
        self.ready_scratch = ready;
        pick
    }

    fn charge(&mut self, stream: u32, bytes: usize, tree: &PriorityTree) {
        let mut cur = stream;
        loop {
            *self.charged.entry(cur).or_insert(0) += bytes as u64;
            match tree.parent(cur) {
                Some(p) if cur != ROOT => {
                    let w = tree.weight(cur).unwrap_or(16);
                    *self.class_charged.entry((p, w)).or_insert(0) += bytes as u64;
                    cur = p;
                }
                _ => break,
            }
        }
    }

    fn stream_closed(&mut self, stream: u32) {
        self.charged.remove(&stream);
    }
}

/// A trivial FIFO scheduler: always the lowest stream id. Useful as a
/// baseline and in tests.
#[derive(Debug, Default)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn pick(&mut self, streams: &[StreamSnapshot], _tree: &PriorityTree) -> Option<u32> {
        streams.iter().filter(|s| s.sendable > 0).map(|s| s.id).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::PrioritySpec;

    fn snap(id: u32, sendable: usize) -> StreamSnapshot {
        StreamSnapshot { id, sendable, sent: 0, is_push: id.is_multiple_of(2) }
    }

    fn spec(dep: u32, weight: u16, excl: bool) -> PrioritySpec {
        PrioritySpec { depends_on: dep, weight, exclusive: excl }
    }

    #[test]
    fn parent_preempts_child() {
        let mut tree = PriorityTree::new();
        tree.insert(1, spec(0, 16, false));
        tree.insert(2, spec(1, 16, false)); // push, child of 1
        let mut s = DefaultScheduler::new();
        // Both have data: the parent (HTML) wins.
        assert_eq!(s.pick(&[snap(1, 100), snap(2, 100)], &tree), Some(1));
        // Parent has nothing: the push flows.
        assert_eq!(s.pick(&[snap(1, 0), snap(2, 100)], &tree), Some(2));
    }

    #[test]
    fn heavier_sibling_is_served_strictly_first() {
        let mut tree = PriorityTree::new();
        tree.insert(1, spec(0, 100, false));
        tree.insert(3, spec(0, 200, false));
        let mut s = DefaultScheduler::new();
        // The heavier stream drains completely before the lighter one.
        assert_eq!(s.pick(&[snap(1, 1000), snap(3, 1000)], &tree), Some(3));
        s.charge(3, 1000, &tree);
        assert_eq!(s.pick(&[snap(1, 1000), snap(3, 1000)], &tree), Some(3));
        assert_eq!(s.pick(&[snap(1, 1000)], &tree), Some(1));
    }

    #[test]
    fn fair_scheduler_shares_bandwidth_by_weight() {
        // The WFQ ablation variant: 200-weight and 100-weight siblings
        // share the link 2:1 over time.
        let mut tree = PriorityTree::new();
        tree.insert(1, spec(0, 200, false));
        tree.insert(3, spec(0, 100, false));
        let mut s = FairScheduler::new();
        let mut sent = HashMap::new();
        for _ in 0..300 {
            let pick = s.pick(&[snap(1, 1000), snap(3, 1000)], &tree).unwrap();
            s.charge(pick, 1000, &tree);
            *sent.entry(pick).or_insert(0u64) += 1000;
        }
        let ratio = sent[&1] as f64 / sent[&3] as f64;
        assert!((1.8..2.2).contains(&ratio), "weight ratio violated: {ratio}");
    }

    #[test]
    fn equal_weight_pushes_drain_in_promise_order() {
        // h2o-style sequential delivery: pushes (even ids, ascending in
        // promise order) as children of the HTML drain one after another.
        let mut tree = PriorityTree::new();
        tree.insert(1, spec(0, 256, false));
        for id in [2u32, 4, 6] {
            tree.insert(id, spec(1, 16, false));
        }
        let mut s = DefaultScheduler::new();
        let all = [snap(2, 100), snap(4, 100), snap(6, 100)];
        assert_eq!(s.pick(&all, &tree), Some(2));
        s.charge(2, 100, &tree);
        // Still stream 2 while it has data; then 4; then 6.
        assert_eq!(s.pick(&all, &tree), Some(2));
        assert_eq!(s.pick(&all[1..], &tree), Some(4));
        assert_eq!(s.pick(&all[2..], &tree), Some(6));
    }

    #[test]
    fn deep_tree_walk() {
        // root → 1 → {2 (push), 3} ; 3 → 5
        let mut tree = PriorityTree::new();
        tree.insert(1, spec(0, 16, false));
        tree.insert(2, spec(1, 16, false));
        tree.insert(3, spec(1, 16, false));
        tree.insert(5, spec(3, 16, false));
        let mut s = DefaultScheduler::new();
        // Only the leaf has data.
        assert_eq!(s.pick(&[snap(5, 10)], &tree), Some(5));
        // Mid-level stream 3 outranks its child 5.
        assert_eq!(s.pick(&[snap(3, 10), snap(5, 10)], &tree), Some(3));
    }

    #[test]
    fn unknown_stream_still_schedulable() {
        let tree = PriorityTree::new();
        let mut s = DefaultScheduler::new();
        assert_eq!(s.pick(&[snap(9, 10)], &tree), Some(9));
    }

    #[test]
    fn nothing_ready_returns_none() {
        let tree = PriorityTree::new();
        let mut s = DefaultScheduler::new();
        assert_eq!(s.pick(&[snap(1, 0)], &tree), None);
        assert_eq!(s.pick(&[], &tree), None);
    }

    #[test]
    fn fifo_picks_lowest_id() {
        let tree = PriorityTree::new();
        let mut s = FifoScheduler;
        assert_eq!(s.pick(&[snap(5, 1), snap(3, 1), snap(7, 1)], &tree), Some(3));
    }
}
