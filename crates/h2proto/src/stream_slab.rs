//! Dense, id-indexed storage for per-stream state.
//!
//! HTTP/2 stream ids are two interleaved arithmetic sequences: clients
//! open odd ids (1, 3, 5, …) and servers promise even ids (2, 4, 6, …),
//! both strictly increasing (RFC 7540 §5.1.1). A `BTreeMap<u32, Stream>`
//! models that as a general ordered map and pays a node allocation plus
//! a pointer-chasing descent per touch — on the replay hot path every
//! DATA frame, WINDOW_UPDATE and scheduler snapshot goes through it.
//!
//! [`StreamSlab`] exploits the id structure instead: two dense vectors
//! (one per parity, indexed by `id / 2` rounded down to the sequence
//! position) give O(1) array lookups and a single allocation that is
//! recycled across connections. Ascending-id iteration — which the
//! deterministic scheduler snapshot in `produce()` depends on — is a
//! two-pointer merge of the parity lanes.
//!
//! A hostile peer is not bound by "next id": PUSH_PROMISE and request
//! HEADERS carry peer-chosen ids up to 2^31-1, and the badpeer suite
//! exercises exactly that. Ids whose sequence position exceeds
//! [`MAX_DENSE_SLOTS`] therefore fall back to a sorted spill map, so an
//! adversarial id costs one BTreeMap node instead of a gigabyte-sized
//! vector. Spill ids are by construction larger than every dense id, so
//! the merge stays a strict ascending walk.

use std::collections::BTreeMap;

/// Largest per-parity sequence position stored densely (ids up to
/// ~16 000 — far beyond any benign page replay, which tops out at a few
/// hundred streams). Beyond this, entries go to the spill map.
const MAX_DENSE_SLOTS: usize = 8192;

/// Id-indexed slab with a dense region per stream-id parity and a
/// sorted spill for adversarially large ids.
#[derive(Debug)]
pub(crate) struct StreamSlab<T> {
    /// Client-initiated ids 1, 3, 5, … at slots 0, 1, 2, …
    odd: Vec<Option<T>>,
    /// Server-push ids 2, 4, 6, … at slots 0, 1, 2, …
    even: Vec<Option<T>>,
    /// Entries whose slot would exceed [`MAX_DENSE_SLOTS`]. Always ids
    /// larger than every dense id (see module docs).
    spill: BTreeMap<u32, T>,
}

impl<T> Default for StreamSlab<T> {
    fn default() -> Self {
        StreamSlab { odd: Vec::new(), even: Vec::new(), spill: BTreeMap::new() }
    }
}

/// Sequence position of `id` within its parity lane, or `None` for the
/// connection pseudo-stream 0 (never stored).
#[inline]
fn slot_of(id: u32) -> Option<usize> {
    match id {
        0 => None,
        _ => Some(((id - 1) / 2) as usize),
    }
}

impl<T> StreamSlab<T> {
    /// A slab with `slots` dense positions pre-reserved per parity.
    pub(crate) fn with_capacity(slots: usize) -> Self {
        StreamSlab {
            odd: Vec::with_capacity(slots),
            even: Vec::with_capacity(slots),
            spill: BTreeMap::new(),
        }
    }

    #[inline]
    fn lane(&self, id: u32) -> &Vec<Option<T>> {
        if id % 2 == 1 {
            &self.odd
        } else {
            &self.even
        }
    }

    #[inline]
    fn lane_mut(&mut self, id: u32) -> &mut Vec<Option<T>> {
        if id % 2 == 1 {
            &mut self.odd
        } else {
            &mut self.even
        }
    }

    pub(crate) fn get(&self, id: u32) -> Option<&T> {
        match slot_of(id) {
            Some(slot) if slot < MAX_DENSE_SLOTS => {
                self.lane(id).get(slot).and_then(Option::as_ref)
            }
            Some(_) => self.spill.get(&id),
            None => None,
        }
    }

    pub(crate) fn get_mut(&mut self, id: u32) -> Option<&mut T> {
        match slot_of(id) {
            Some(slot) if slot < MAX_DENSE_SLOTS => {
                self.lane_mut(id).get_mut(slot).and_then(Option::as_mut)
            }
            Some(_) => self.spill.get_mut(&id),
            None => None,
        }
    }

    pub(crate) fn contains_key(&self, id: u32) -> bool {
        self.get(id).is_some()
    }

    /// Insert `value` at `id`, returning any previous occupant.
    /// Stream 0 is the connection itself and is never stored; inserting
    /// it is a caller bug, caught in debug builds.
    pub(crate) fn insert(&mut self, id: u32, value: T) -> Option<T> {
        debug_assert_ne!(id, 0, "stream 0 is the connection, not a stream");
        match slot_of(id) {
            Some(slot) if slot < MAX_DENSE_SLOTS => {
                let lane = self.lane_mut(id);
                if lane.len() <= slot {
                    lane.resize_with(slot + 1, || None);
                }
                lane[slot].replace(value)
            }
            _ => self.spill.insert(id, value),
        }
    }

    /// All stored values, iteration order unspecified.
    pub(crate) fn values(&self) -> impl Iterator<Item = &T> {
        self.odd.iter().flatten().chain(self.even.iter().flatten()).chain(self.spill.values())
    }

    /// All stored values mutably, iteration order unspecified.
    pub(crate) fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.odd
            .iter_mut()
            .flatten()
            .chain(self.even.iter_mut().flatten())
            .chain(self.spill.values_mut())
    }

    /// `(id, value)` pairs in strictly ascending id order — the order the
    /// deterministic scheduler snapshot depends on.
    pub(crate) fn iter(&self) -> AscendingIter<'_, T> {
        AscendingIter { slab: self, oi: 0, ei: 0, spill: self.spill.iter() }
    }

    /// Drop every entry but keep the dense lanes' capacity, so a
    /// recycled slab costs zero allocations to refill.
    pub(crate) fn reset(&mut self) {
        for s in &mut self.odd {
            *s = None;
        }
        for s in &mut self.even {
            *s = None;
        }
        self.spill.clear();
    }

    /// Reserved dense positions (both lanes) — the recycling signal:
    /// nonzero once a connection has carried any dense stream.
    pub(crate) fn capacity(&self) -> usize {
        self.odd.capacity() + self.even.capacity()
    }
}

/// Ascending-id merge over the odd lane, the even lane and the spill.
pub(crate) struct AscendingIter<'a, T> {
    slab: &'a StreamSlab<T>,
    /// Next odd-lane slot to inspect.
    oi: usize,
    /// Next even-lane slot to inspect.
    ei: usize,
    spill: std::collections::btree_map::Iter<'a, u32, T>,
}

impl<'a, T> Iterator for AscendingIter<'a, T> {
    type Item = (u32, &'a T);

    fn next(&mut self) -> Option<(u32, &'a T)> {
        // Cursors only ever advance, so skipped empty slots are paid for
        // once per full iteration, not once per call.
        while self.oi < self.slab.odd.len() && self.slab.odd[self.oi].is_none() {
            self.oi += 1;
        }
        while self.ei < self.slab.even.len() && self.slab.even[self.ei].is_none() {
            self.ei += 1;
        }
        let odd_id = (self.oi < self.slab.odd.len()).then(|| 2 * self.oi as u32 + 1);
        let even_id = (self.ei < self.slab.even.len()).then(|| 2 * self.ei as u32 + 2);
        match (odd_id, even_id) {
            (Some(o), Some(e)) if o < e => {
                self.oi += 1;
                Some((o, self.slab.odd[self.oi - 1].as_ref().unwrap()))
            }
            (_, Some(e)) => {
                self.ei += 1;
                Some((e, self.slab.even[self.ei - 1].as_ref().unwrap()))
            }
            (Some(o), None) => {
                self.oi += 1;
                Some((o, self.slab.odd[self.oi - 1].as_ref().unwrap()))
            }
            // Spill ids always exceed dense ids, so the spill drains last.
            (None, None) => self.spill.next().map(|(&id, v)| (id, v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_roundtrip_both_parities() {
        let mut slab: StreamSlab<u32> = StreamSlab::default();
        for id in [1u32, 2, 3, 4, 9, 10, 31, 100] {
            assert!(slab.insert(id, id * 10).is_none());
        }
        for id in [1u32, 2, 3, 4, 9, 10, 31, 100] {
            assert_eq!(slab.get(id), Some(&(id * 10)));
            assert!(slab.contains_key(id));
        }
        assert_eq!(slab.get(5), None);
        assert_eq!(slab.get(0), None);
        *slab.get_mut(9).unwrap() = 77;
        assert_eq!(slab.get(9), Some(&77));
        assert_eq!(slab.insert(9, 78), Some(77));
    }

    #[test]
    fn iteration_is_ascending_across_lanes_and_spill() {
        let mut slab: StreamSlab<u32> = StreamSlab::default();
        // Deliberately interleaved insertion order, including two
        // adversarially large ids that land in the spill.
        for id in [7u32, 2, 1, 10, 0x7fff_fffe, 3, 0x7000_0001, 8] {
            slab.insert(id, id);
        }
        let ids: Vec<u32> = slab.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![1, 2, 3, 7, 8, 10, 0x7000_0001, 0x7fff_fffe]);
        assert_eq!(slab.values().count(), 8);
        for v in slab.values_mut() {
            *v += 1;
        }
        assert_eq!(slab.get(0x7fff_fffe), Some(&0x7fff_ffff));
    }

    #[test]
    fn adversarial_ids_do_not_allocate_dense_slots() {
        let mut slab: StreamSlab<u32> = StreamSlab::default();
        slab.insert(0x7fff_fffe, 1); // even, near the §5.1.1 ceiling
        slab.insert(0x7fff_fffd, 2); // odd
        assert!(slab.odd.len() <= MAX_DENSE_SLOTS);
        assert!(slab.even.len() <= MAX_DENSE_SLOTS);
        assert_eq!(slab.spill.len(), 2);
        assert_eq!(slab.get(0x7fff_fffe), Some(&1));
        assert_eq!(slab.get(0x7fff_fffd), Some(&2));
    }

    #[test]
    fn reset_keeps_capacity_and_drops_entries() {
        let mut slab: StreamSlab<u32> = StreamSlab::with_capacity(16);
        for id in 1..=40u32 {
            slab.insert(id, id);
        }
        slab.insert(0x7fff_fffe, 99);
        let cap = slab.capacity();
        assert!(cap >= 40);
        slab.reset();
        assert_eq!(slab.values().count(), 0);
        assert_eq!(slab.iter().count(), 0);
        for id in 1..=40u32 {
            assert_eq!(slab.get(id), None, "stale entry for id {id} after reset");
        }
        assert_eq!(slab.get(0x7fff_fffe), None);
        assert_eq!(slab.capacity(), cap, "reset must keep the allocation");
        // Refilled after reset, ids resolve to the new values only.
        slab.insert(3, 1234);
        assert_eq!(slab.get(3), Some(&1234));
        assert_eq!(slab.iter().map(|(id, _)| id).collect::<Vec<_>>(), vec![3]);
    }
}
