//! Stream-slab recycling must never alias state across connections.
//!
//! Connections recycle their dense stream storage through a thread-local
//! pool (one sweep rep builds a client/server pair per origin, so the
//! same allocation is reused rep after rep). These tests prove the reuse
//! is observationally invisible: a connection built from a recycled slab
//! answers every stream-id query exactly like one built from scratch.

use h2push_h2proto::connection::{Connection, Event, StreamState};
use h2push_h2proto::frame::Settings;
use h2push_hpack::Header;

fn req_headers(path: &str) -> Vec<Header> {
    vec![
        Header::new(":method", "GET"),
        Header::new(":scheme", "https"),
        Header::new(":authority", "origin.test"),
        Header::new(":path", path),
    ]
}

/// Shuttle bytes both ways until neither endpoint has anything to send.
fn drain(client: &mut Connection, server: &mut Connection) {
    let mut sched = h2push_h2proto::scheduler::FifoScheduler;
    for _ in 0..64 {
        let c2s = client.produce(1 << 20, &mut sched);
        if !c2s.is_empty() {
            server.receive(&c2s);
        }
        let s2c = server.produce(1 << 20, &mut sched);
        if !s2c.is_empty() {
            client.receive(&s2c);
        }
        if c2s.is_empty() && s2c.is_empty() {
            break;
        }
    }
}

/// Run one "rep": a client/server pair exchanging requests and pushes,
/// returning every stream id that existed on the client.
fn run_rep(paths: usize) -> Vec<u32> {
    let mut client = Connection::client(Settings::default());
    let mut server = Connection::server(Settings::default());
    drain(&mut client, &mut server);
    let mut ids = Vec::new();
    for i in 0..paths {
        let id = client.request(&req_headers(&format!("/r{i}")), None);
        ids.push(id);
        drain(&mut client, &mut server);
        if let Some(push) = server.push_promise(id, &req_headers(&format!("/p{i}"))) {
            server.respond(push, &[Header::new(":status", "200")], true);
            ids.push(push);
        }
        server.respond(id, &[Header::new(":status", "200")], true);
        drain(&mut client, &mut server);
        while client.poll_event().is_some() {}
        while server.poll_event().is_some() {}
    }
    for &id in &ids {
        assert!(client.stream_state(id).is_some(), "rep lost track of stream {id}");
    }
    ids
}

#[test]
fn recycled_slabs_never_alias_stream_ids_across_reps() {
    // First rep opens plenty of streams, then its connections drop and
    // their slabs enter the thread-local pool.
    let first_ids = run_rep(40);
    assert!(first_ids.len() >= 40);

    // The next pair on this thread is built from the recycled slabs. No
    // id from the previous rep may resolve before this rep creates it.
    let client = Connection::client(Settings::default());
    let server = Connection::server(Settings::default());
    for &id in &first_ids {
        assert_eq!(
            client.stream_state(id),
            None,
            "stream {id} from a previous rep leaked through the recycled slab"
        );
        assert_eq!(server.stream_state(id), None);
    }
    assert_eq!(client.peek_next_stream_id(), 1, "id allocation must restart per connection");
    assert!(!client.wants_send() || client.stream_state(1).is_none());
    drop(client);
    drop(server);

    // A full second rep over recycled storage behaves byte-for-byte like
    // the first: same ids in the same order, same terminal states.
    let second_ids = run_rep(40);
    assert_eq!(first_ids, second_ids, "recycled slabs changed id allocation");
}

#[test]
fn recycled_slab_streams_start_fresh() {
    // Open-and-finish a stream in rep 1; in rep 2 the same id must come
    // back with pristine per-stream state (no inherited bytes counters).
    {
        let mut client = Connection::client(Settings::default());
        let mut server = Connection::server(Settings::default());
        drain(&mut client, &mut server);
        let id = client.request(&req_headers("/a"), None);
        drain(&mut client, &mut server);
        server.respond(id, &[Header::new(":status", "200")], false);
        server.queue_body(id, 9000, true);
        drain(&mut client, &mut server);
        assert_eq!(server.bytes_sent(id), 9000);
    }
    let mut client = Connection::client(Settings::default());
    let mut server = Connection::server(Settings::default());
    drain(&mut client, &mut server);
    let id = client.request(&req_headers("/a"), None);
    assert_eq!(id, 1);
    drain(&mut client, &mut server);
    assert_eq!(server.bytes_sent(id), 0, "recycled stream slot kept old counters");
    assert_eq!(server.stream_state(id), Some(StreamState::HalfClosedRemote));
    let mut saw_headers = false;
    server.respond(id, &[Header::new(":status", "200")], true);
    drain(&mut client, &mut server);
    while let Some(ev) = client.poll_event() {
        if matches!(ev, Event::Headers { stream, .. } if stream == id) {
            saw_headers = true;
        }
    }
    assert!(saw_headers, "second rep's stream {id} never completed");
}
