//! HTTP/1.1 replay server — the baseline deployment the paper records
//! (§4.1: "If there is no H2 version, we capture the respective H1
//! version").
//!
//! One instance per *connection* (H1 state is per-connection); the record
//! database is shared across the pool through an `Arc`.

use bytes::Bytes;
use h2push_h1::H1ServerConn;
use h2push_netsim::SimTime;
use h2push_webmodel::RecordDb;
use std::sync::Arc;

/// The server half of one HTTP/1.1 replay connection.
pub struct H1ReplayServer {
    db: Arc<RecordDb>,
    conn: H1ServerConn,
    served: u32,
}

impl H1ReplayServer {
    /// New connection server answering from `db`.
    pub fn new(db: Arc<RecordDb>) -> Self {
        H1ReplayServer { db, conn: H1ServerConn::new(), served: 0 }
    }

    /// Recycle into a fresh connection server answering from `db`,
    /// retaining the H1 machine's buffers.
    pub fn reset(&mut self, db: Arc<RecordDb>) {
        self.db = db;
        self.conn.reset();
        self.served = 0;
    }

    /// Responses served on this connection.
    pub fn served(&self) -> u32 {
        self.served
    }

    /// Feed wire bytes; answers any completed requests immediately.
    pub fn on_bytes(&mut self, bytes: &[u8], _now: SimTime) {
        self.conn.receive(bytes);
        while let Some(req) = self.conn.poll_request() {
            match self.db.lookup(&req.host, &req.path) {
                Some(rec) => {
                    self.conn.respond(200, rec.body_len, &rec.content_type);
                    self.served += 1;
                }
                None => self.conn.respond(404, 0, "text/plain"),
            }
        }
    }

    /// Whether there are bytes to transmit.
    pub fn wants_send(&self) -> bool {
        self.conn.wants_send()
    }

    /// Produce up to `max` wire bytes.
    pub fn produce(&mut self, max: usize) -> Bytes {
        Bytes::from(self.conn.produce(max))
    }
}

/// Sans-IO transport surface — see `h2push_h2proto::sansio`. The H1
/// server ignores time entirely; the impl exists so the runtimes can
/// drive both protocols through one trait object.
impl h2push_h2proto::sansio::Endpoint for H1ReplayServer {
    fn feed_bytes(&mut self, bytes: &[u8], now: h2push_h2proto::sansio::Micros) {
        self.on_bytes(bytes, SimTime(now));
    }

    fn wants_output(&self) -> bool {
        self.wants_send()
    }

    fn poll_output(&mut self, max: usize, _now: h2push_h2proto::sansio::Micros) -> Bytes {
        self.produce(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2push_h1::encode_request;
    use h2push_webmodel::{PageBuilder, ResourceSpec};

    #[test]
    fn serves_and_counts() {
        let mut b = PageBuilder::new("h1srv", "h1.test", 10_000, 1_000);
        b.resource(ResourceSpec::css(0, 3_000, 100, 0.5));
        let page = b.build();
        let db = Arc::new(RecordDb::record(&page));
        let mut srv = H1ReplayServer::new(db.clone());
        srv.on_bytes(&encode_request("h1.test", "/", &[]), SimTime::ZERO);
        assert!(srv.wants_send());
        let out = srv.produce(usize::MAX);
        // Head + 10 000 filler bytes.
        assert!(out.len() > 10_000);
        assert_eq!(srv.served(), 1);
        // Unknown path → 404, still answered.
        let mut srv2 = H1ReplayServer::new(db);
        srv2.on_bytes(&encode_request("h1.test", "/nope", &[]), SimTime::ZERO);
        let out = srv2.produce(usize::MAX);
        assert!(String::from_utf8_lossy(&out).starts_with("HTTP/1.1 404"));
        assert_eq!(srv2.served(), 0);
    }
}
