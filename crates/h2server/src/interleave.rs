//! The paper's Interleaving Push stream scheduler (§5, Fig. 5a).
//!
//! h2o's stock scheduler treats a pushed stream as a *child* of the stream
//! that triggered it: the push is only sent when the parent blocks or
//! finishes. The paper modifies the scheduler to **stop the parent stream
//! after a configured byte offset** (e.g. right after `</head>` plus the
//! first bytes of `<body>`), hard-switch to pushing the critical resources,
//! and only then resume the parent — delivering "the right resource at the
//! right time" while the browser's preload scanner has already seen the
//! head.

use h2push_h2proto::{DefaultScheduler, PriorityTree, Scheduler, StreamSnapshot};
use h2push_trace::{TraceEvent, TraceHandle};

/// Scheduler phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Sending the parent up to the offset.
    Head,
    /// Hard switch: critical pushes drain.
    Critical,
    /// Back to normal (tree-based) scheduling.
    Resume,
}

/// The interleaving scheduler: wraps the default tree scheduler with the
/// offset-based hard switch.
#[derive(Debug)]
pub struct InterleavingScheduler {
    inner: DefaultScheduler,
    /// The parent (HTML) stream, set once its request arrives.
    parent: Option<u32>,
    /// Byte offset at which to suspend the parent.
    offset: u64,
    /// Pushed streams to interleave, in push order.
    critical: Vec<u32>,
    phase: Phase,
    trace: TraceHandle,
}

impl InterleavingScheduler {
    /// Create a scheduler that will switch after `offset` parent bytes.
    pub fn new(offset: usize) -> Self {
        InterleavingScheduler {
            inner: DefaultScheduler::new(),
            parent: None,
            offset: offset as u64,
            critical: Vec::new(),
            phase: Phase::Head,
            trace: TraceHandle::off(),
        }
    }

    /// Attach a trace handle; suspend/resume decisions are stamped with
    /// the handle's shared clock (`pick` has no time parameter).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Return to the fresh state with a new offset, retaining capacity.
    pub fn reset(&mut self, offset: usize) {
        self.inner.reset();
        self.parent = None;
        self.offset = offset as u64;
        self.critical.clear();
        self.phase = Phase::Head;
        self.trace = TraceHandle::off();
    }

    /// Register the parent (document) stream.
    pub fn set_parent(&mut self, stream: u32) {
        self.parent = Some(stream);
    }

    /// Register a critical push stream (in push order).
    pub fn add_critical(&mut self, stream: u32) {
        self.critical.push(stream);
    }

    /// Currently in the hard-switch phase?
    pub fn in_critical_phase(&self) -> bool {
        self.phase == Phase::Critical
    }
}

impl Scheduler for InterleavingScheduler {
    fn pick(&mut self, streams: &[StreamSnapshot], tree: &PriorityTree) -> Option<u32> {
        let find = |id: u32| streams.iter().find(|s| s.id == id && s.sendable > 0);
        loop {
            match self.phase {
                Phase::Head => {
                    let Some(parent) = self.parent else {
                        // No parent yet: nothing special to do.
                        return self.inner.pick(streams, tree);
                    };
                    match find(parent) {
                        Some(p) if p.sent < self.offset => return Some(parent),
                        Some(_) | None => {
                            // Offset reached (or parent already done):
                            // switch. `sent` only advances when we pick the
                            // parent, so reaching here means the offset is
                            // covered or the parent has nothing sendable
                            // while criticals wait — either way, switch.
                            let parent_sent =
                                streams.iter().find(|s| s.id == parent).map(|s| s.sent);
                            if parent_sent.map(|s| s >= self.offset).unwrap_or(true) {
                                self.phase = Phase::Critical;
                                self.trace.emit(TraceEvent::InterleaveSuspend {
                                    parent,
                                    offset: self.offset,
                                });
                                continue;
                            }
                            // Parent exists but is flow-blocked below the
                            // offset: let the default scheduler fill the
                            // pipe meanwhile.
                            return self.inner.pick(streams, tree);
                        }
                    }
                }
                Phase::Critical => {
                    for &c in &self.critical {
                        if find(c).is_some() {
                            return Some(c);
                        }
                    }
                    // Critical pushes drained (or not yet promised — the
                    // server promises them before any DATA is produced, so
                    // an empty list means there are none): resume.
                    self.phase = Phase::Resume;
                    if let Some(parent) = self.parent {
                        self.trace.emit(TraceEvent::InterleaveResume { parent });
                    }
                    continue;
                }
                Phase::Resume => return self.inner.pick(streams, tree),
            }
        }
    }

    fn charge(&mut self, stream: u32, bytes: usize, tree: &PriorityTree) {
        self.inner.charge(stream, bytes, tree);
    }

    fn stream_closed(&mut self, stream: u32) {
        self.inner.stream_closed(stream);
        self.critical.retain(|&c| c != stream);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2push_h2proto::PrioritySpec;

    fn snap(id: u32, sendable: usize, sent: u64) -> StreamSnapshot {
        StreamSnapshot { id, sendable, sent, is_push: id.is_multiple_of(2) }
    }

    fn tree_with_push() -> PriorityTree {
        let mut t = PriorityTree::new();
        t.insert(1, PrioritySpec { depends_on: 0, weight: 256, exclusive: false });
        t.insert(2, PrioritySpec { depends_on: 1, weight: 16, exclusive: false });
        t.insert(4, PrioritySpec { depends_on: 1, weight: 16, exclusive: false });
        t
    }

    #[test]
    fn sends_parent_until_offset_then_criticals_then_parent() {
        let tree = tree_with_push();
        let mut s = InterleavingScheduler::new(4096);
        s.set_parent(1);
        s.add_critical(2);
        s.add_critical(4);

        // Below the offset: the parent wins even though pushes wait.
        assert_eq!(s.pick(&[snap(1, 10_000, 0), snap(2, 500, 0), snap(4, 500, 0)], &tree), Some(1));
        assert_eq!(
            s.pick(&[snap(1, 10_000, 3000), snap(2, 500, 0), snap(4, 500, 0)], &tree),
            Some(1)
        );
        // Offset reached: hard switch to the criticals, in order.
        assert_eq!(
            s.pick(&[snap(1, 10_000, 4096), snap(2, 500, 0), snap(4, 500, 0)], &tree),
            Some(2)
        );
        assert!(s.in_critical_phase());
        assert_eq!(s.pick(&[snap(1, 10_000, 4096), snap(4, 500, 500)], &tree), Some(4));
        // Criticals drained: resume the parent (tree order).
        assert_eq!(s.pick(&[snap(1, 10_000, 4096)], &tree), Some(1));
        assert!(!s.in_critical_phase());
    }

    #[test]
    fn without_parent_behaves_like_default() {
        let tree = tree_with_push();
        let mut s = InterleavingScheduler::new(4096);
        assert_eq!(s.pick(&[snap(1, 100, 0), snap(2, 100, 0)], &tree), Some(1));
    }

    #[test]
    fn parent_finished_before_offset_still_switches() {
        let tree = tree_with_push();
        let mut s = InterleavingScheduler::new(1 << 20);
        s.set_parent(1);
        s.add_critical(2);
        // Parent has no sendable data left (finished small document).
        assert_eq!(s.pick(&[snap(2, 500, 0)], &tree), Some(2));
    }

    #[test]
    fn closed_critical_is_skipped() {
        let tree = tree_with_push();
        let mut s = InterleavingScheduler::new(100);
        s.set_parent(1);
        s.add_critical(2);
        s.add_critical(4);
        s.stream_closed(2);
        assert_eq!(s.pick(&[snap(1, 10, 100), snap(4, 10, 0)], &tree), Some(4));
    }
}
