//! # h2push-server — the replay web server
//!
//! The h2o-equivalent of the paper's testbed (§4.1): servers that answer
//! requests from a Mahimahi-style record database over our own HTTP/2
//! stack, execute configurable Server-Push strategies, and — the paper's
//! §5 contribution — can run the modified *interleaving* stream scheduler
//! that suspends the document after a byte offset to push critical
//! resources (Fig. 5a).

pub mod h1server;
pub mod interleave;
pub mod server;

pub use h1server::H1ReplayServer;
pub use interleave::InterleavingScheduler;
pub use server::{Prepared, ReplayServer, RequestObservation};
