//! The replay server: h2o + FastCGI-record-matching equivalent (§4.1).
//!
//! One [`ReplayServer`] instance stands in for one server group of the
//! recorded deployment (Mahimahi spawns one server per origin IP; origins
//! coalesced by certificate share a group). It answers requests from the
//! record database, and — on the group hosting the base document — executes
//! the configured push strategy, either with the stock child-of-parent
//! scheduler or with the paper's interleaving scheduler.

use crate::interleave::InterleavingScheduler;
use bytes::Bytes;
use h2push_h2proto::{
    CacheDigest, ConnError, Connection, DefaultScheduler, Event, Scheduler, Settings,
};
use h2push_hpack::Header;
use h2push_netsim::SimTime;
use h2push_strategies::Strategy;
use h2push_trace::{TraceEvent, TraceHandle};
use h2push_webmodel::{Page, RecordDb, ResourceId};
use std::sync::Arc;

/// A request observation (for computing push orders, §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestObservation {
    /// Which resource was requested.
    pub resource: ResourceId,
    /// When the request arrived at the server.
    pub at: SimTime,
}

/// Precomputed per-resource server metadata, shared across every
/// connection of every repetition of a page.
///
/// The header lists are built exactly as the live path builds them, so a
/// prepared server's wire output is byte-identical to an unprepared one —
/// it just skips re-formatting `content-length`, the response header
/// triple and the synthetic push request on every request.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// Response headers (`:status`/`content-type`/`content-length`) per
    /// resource, indexed by [`ResourceId`].
    resp_headers: Vec<Vec<Header>>,
    /// Synthetic request headers a push promise carries, per resource.
    push_req: Vec<Vec<Header>>,
    /// Full URL per resource (cache-digest membership checks).
    urls: Vec<String>,
}

impl Prepared {
    /// Build the per-resource header lists for `page`.
    pub fn build(page: &Page) -> Self {
        let mut resp_headers = Vec::with_capacity(page.resources.len());
        let mut push_req = Vec::with_capacity(page.resources.len());
        let mut urls = Vec::with_capacity(page.resources.len());
        for r in &page.resources {
            let host = &page.origins[r.origin].host;
            resp_headers.push(vec![
                Header::new(":status", "200"),
                Header::new("content-type", r.rtype.mime()),
                Header::new("content-length", &r.size.to_string()),
            ]);
            push_req.push(vec![
                Header::new(":method", "GET"),
                Header::new(":scheme", "https"),
                Header::new(":authority", host),
                Header::new(":path", &r.path),
            ]);
            urls.push(r.url(host));
        }
        Prepared { resp_headers, push_req, urls }
    }
}

/// The scheduler variants a replay server can run.
enum Sched {
    /// h2o stock behaviour.
    Default(DefaultScheduler),
    /// The paper's modified scheduler.
    Interleaving(InterleavingScheduler),
}

impl Sched {
    fn as_dyn(&mut self) -> &mut dyn Scheduler {
        match self {
            Sched::Default(s) => s,
            Sched::Interleaving(s) => s,
        }
    }

    fn interleaving(&mut self) -> Option<&mut InterleavingScheduler> {
        match self {
            Sched::Interleaving(s) => Some(s),
            Sched::Default(_) => None,
        }
    }
}

/// One replay server (= one server group).
///
/// The page and record database are shared immutable inputs: every server
/// group of every connection of every repetition points at the same
/// [`Arc`]s, so opening a connection no longer clones the page or rebuilds
/// the database.
pub struct ReplayServer {
    page: Arc<Page>,
    db: Arc<RecordDb>,
    /// Optional precomputed header lists; `None` formats headers live.
    prepared: Option<Arc<Prepared>>,
    group: usize,
    conn: Connection,
    sched: Sched,
    /// The armed strategy; `None` on groups that never push, so firing it
    /// on the document request is an `Arc` refbump, not a deep clone.
    strategy: Option<Arc<Strategy>>,
    html_stream: Option<u32>,
    observations: Vec<RequestObservation>,
    pushed_bytes: u64,
    /// Whether a received `cache-digest` header suppresses pushes of
    /// cached resources (the draft behaviour); configurable so the waste
    /// of digest-oblivious deployments can be measured.
    honor_cache_digest: bool,
    client_digest: Option<CacheDigest>,
    digest_suppressed: u32,
    /// Protocol violations seen from the client (connection- and
    /// stream-level). Under fault injection corrupted input is *data*, not
    /// a bug: the connection answers with GOAWAY/RST and the count is
    /// surfaced instead of panicking.
    protocol_errors: u32,
    /// The first fatal connection error, if any (the connection is dead
    /// after it; remaining queued bytes — the GOAWAY — still drain).
    fatal_error: Option<ConnError>,
    trace: TraceHandle,
    /// Replay connection label stamped into push events.
    trace_conn: u32,
}

impl ReplayServer {
    /// Create the server for `group`. The strategy only fires on the group
    /// serving the document (group of origin 0); other groups never push.
    /// `page` and `db` are shared, pre-built inputs; the strategy is an
    /// `Arc` refbump, never a deep clone.
    pub fn new(page: Arc<Page>, db: Arc<RecordDb>, group: usize, strategy: &Arc<Strategy>) -> Self {
        let main_group = page.server_group_of(ResourceId(0));
        let effective = Self::arm(group, main_group, strategy);
        let sched = match effective.as_deref() {
            Some(Strategy::Interleaved { offset, .. }) => {
                Sched::Interleaving(InterleavingScheduler::new(*offset))
            }
            _ => Sched::Default(DefaultScheduler::new()),
        };
        ReplayServer {
            page,
            db,
            prepared: None,
            group,
            conn: Connection::server(Settings::default()),
            sched,
            strategy: effective,
            html_stream: None,
            observations: Vec::new(),
            pushed_bytes: 0,
            honor_cache_digest: true,
            client_digest: None,
            digest_suppressed: 0,
            protocol_errors: 0,
            fatal_error: None,
            trace: TraceHandle::off(),
            trace_conn: 0,
        }
    }

    /// The strategy armed on `group`: the real one on the document's
    /// group, nothing elsewhere.
    fn arm(group: usize, main_group: usize, strategy: &Arc<Strategy>) -> Option<Arc<Strategy>> {
        if group == main_group {
            Some(Arc::clone(strategy))
        } else {
            None
        }
    }

    /// Recycle this instance into a fresh server for (possibly different)
    /// inputs: equivalent to [`ReplayServer::new`] but reusing every buffer
    /// the previous life grew — the HTTP/2 connection, the scheduler maps
    /// and the observation log are cleared, not reallocated.
    pub fn reset(
        &mut self,
        page: Arc<Page>,
        db: Arc<RecordDb>,
        group: usize,
        strategy: &Arc<Strategy>,
    ) {
        let main_group = page.server_group_of(ResourceId(0));
        let effective = Self::arm(group, main_group, strategy);
        match (effective.as_deref(), &mut self.sched) {
            (Some(Strategy::Interleaved { offset, .. }), Sched::Interleaving(il)) => {
                il.reset(*offset)
            }
            (Some(Strategy::Interleaved { offset, .. }), sched) => {
                *sched = Sched::Interleaving(InterleavingScheduler::new(*offset))
            }
            (_, Sched::Default(d)) => d.reset(),
            (_, sched) => *sched = Sched::Default(DefaultScheduler::new()),
        }
        self.page = page;
        self.db = db;
        self.prepared = None;
        self.group = group;
        self.conn.reset_server(Settings::default());
        self.strategy = effective;
        self.html_stream = None;
        self.observations.clear();
        self.pushed_bytes = 0;
        self.honor_cache_digest = true;
        self.client_digest = None;
        self.digest_suppressed = 0;
        self.protocol_errors = 0;
        self.fatal_error = None;
        self.trace = TraceHandle::off();
        self.trace_conn = 0;
    }

    /// Attach a trace handle, forwarded to the HTTP/2 endpoint and the
    /// scheduler; `conn` is the replay connection label.
    pub fn set_trace(&mut self, trace: TraceHandle, conn: u32) {
        self.conn.set_trace(trace.clone(), conn);
        if let Some(il) = self.sched.interleaving() {
            il.set_trace(trace.clone());
        }
        self.trace = trace;
        self.trace_conn = conn;
    }

    /// Control whether `cache-digest` headers suppress pushes (on by
    /// default; turn off to model digest-oblivious deployments).
    pub fn set_honor_cache_digest(&mut self, honor: bool) {
        self.honor_cache_digest = honor;
    }

    /// Attach precomputed header lists ([`Prepared::build`] of the same
    /// page). Purely a fast path: responses are byte-identical either way.
    pub fn set_prepared(&mut self, prepared: Arc<Prepared>) {
        self.prepared = Some(prepared);
    }

    /// Share a memoized HPACK block cache with this connection's encoder.
    pub fn set_hpack_block_cache(&mut self, cache: h2push_h2proto::BlockCache) {
        self.conn.set_hpack_block_cache(cache);
    }

    /// Share a memoized HPACK decode cache with this connection's decoder.
    pub fn set_hpack_decode_cache(&mut self, cache: h2push_hpack::DecodeCache) {
        self.conn.set_hpack_decode_cache(cache);
    }

    /// Override the endpoint's adversarial-peer resource limits
    /// ([`h2push_h2proto::ConnLimits`]); purely local policy, never
    /// advertised on the wire.
    pub fn set_limits(&mut self, limits: h2push_h2proto::ConnLimits) {
        self.conn.set_limits(limits);
    }

    /// Pushes skipped because the client's digest already covered them.
    pub fn digest_suppressed(&self) -> u32 {
        self.digest_suppressed
    }

    /// Protocol violations observed on this connection (0 on clean runs).
    pub fn protocol_errors(&self) -> u32 {
        self.protocol_errors
    }

    /// The fatal connection error that killed this connection, if any.
    pub fn fatal_error(&self) -> Option<ConnError> {
        self.fatal_error
    }

    /// True once the client's 24-octet connection preface has arrived
    /// (the live runtime's accept-to-preface supervision signal).
    pub fn preface_received(&self) -> bool {
        self.conn.preface_received()
    }

    /// True once a fatal [`ConnError`] killed the connection: it ignores
    /// further input and produces at most its final GOAWAY.
    pub fn is_dead(&self) -> bool {
        self.conn.is_dead()
    }

    /// The server group this instance answers for.
    pub fn group(&self) -> usize {
        self.group
    }

    /// Requests observed so far (arrival order).
    pub fn observations(&self) -> &[RequestObservation] {
        &self.observations
    }

    /// Bytes of response bodies queued for push streams.
    pub fn pushed_bytes(&self) -> u64 {
        self.pushed_bytes
    }

    /// Feed wire bytes from the client; handles any completed requests.
    pub fn on_bytes(&mut self, bytes: &[u8], now: SimTime) {
        self.conn.receive(bytes);
        while let Some(ev) = self.conn.poll_event() {
            match ev {
                Event::Headers { stream, headers, .. } => {
                    self.handle_request(stream, &headers, now);
                }
                Event::Reset { .. }
                | Event::Settings(_)
                | Event::SettingsAck
                | Event::Priority { .. }
                | Event::GoAway { .. } => {}
                Event::Data { .. } | Event::PushPromise { .. } => {
                    // Clients send neither bodies nor pushes in the replay.
                }
                Event::StreamError { .. } => {
                    // One stream failed; the connection (and every other
                    // stream on it) carries on.
                    self.protocol_errors += 1;
                }
                Event::ConnectionError { error } => {
                    // The connection has queued its GOAWAY and is dead;
                    // record the cause and let the client's recovery
                    // (reopen / retry) drive what happens next.
                    self.protocol_errors += 1;
                    self.fatal_error.get_or_insert(error);
                }
            }
        }
    }

    /// True when the connection has bytes to transmit.
    pub fn wants_send(&self) -> bool {
        self.conn.wants_send()
    }

    /// Produce up to `max` wire bytes under the configured scheduler.
    pub fn produce(&mut self, max: usize) -> Bytes {
        self.conn.produce(max, self.sched.as_dyn())
    }

    /// Build a live-mode server for `page`: the strategy is armed
    /// unconditionally (every live connection may receive the document
    /// request, and only the one that does triggers pushes), so the same
    /// instance answers any origin of the page by host+path lookup.
    pub fn live(page: Arc<Page>, db: Arc<RecordDb>, strategy: &Arc<Strategy>) -> Self {
        let main_group = page.server_group_of(ResourceId(0));
        Self::new(page, db, main_group, strategy)
    }

    fn handle_request(&mut self, stream: u32, headers: &[Header], now: SimTime) {
        // Borrowed (Cow) header values: valid UTF-8 — the always case in a
        // replay — costs no allocation.
        let find = |n: &[u8]| {
            headers
                .iter()
                .find(|h| h.name == n)
                .map(|h| String::from_utf8_lossy(&h.value))
                .unwrap_or(std::borrow::Cow::Borrowed(""))
        };
        let host = find(b":authority");
        let path = find(b":path");
        if let Some(d) = headers
            .iter()
            .find(|h| h.name == b"cache-digest")
            .and_then(|h| CacheDigest::from_hex(&String::from_utf8_lossy(&h.value)))
        {
            self.client_digest = Some(d);
        }
        // Borrow the record through a local Arc handle so the response can
        // be queued without cloning the record.
        let db = Arc::clone(&self.db);
        let Some(rec) = db.lookup(&host, &path) else {
            // Mahimahi aborts on unmatched requests; we answer 404 so a
            // broken strategy surfaces as a failed load, not a hang.
            self.conn.respond(
                stream,
                &[Header::new(":status", "404"), Header::new("content-length", "0")],
                true,
            );
            return;
        };
        self.observations.push(RequestObservation { resource: rec.resource, at: now });

        let is_html = rec.resource == ResourceId(0);
        if is_html {
            self.html_stream = Some(stream);
            if let Some(il) = self.sched.interleaving() {
                il.set_parent(stream);
            }
            // Fire the strategy: promises go out before the document's
            // response so the client cannot race requests for them. The
            // `Arc` clone is a refbump that releases the borrow on `self`.
            if let Some(strategy) = self.strategy.clone() {
                match &*strategy {
                    Strategy::NoPush => {}
                    Strategy::PushList { order } => {
                        for &rid in order {
                            self.start_push(stream, rid, false);
                        }
                    }
                    Strategy::Interleaved { critical, after, .. } => {
                        // All promises go out up front (h2o promises before
                        // the referencing bytes); only the critical list
                        // takes part in the hard switch. The `after` pushes
                        // stay ordinary children of the document stream, so
                        // the stock tree scheduling delivers them once the
                        // document finished.
                        for &rid in critical {
                            self.start_push(stream, rid, true);
                        }
                        for &rid in after {
                            self.start_push(stream, rid, false);
                        }
                    }
                }
            }
        }

        // The response itself. The prepared header list is byte-identical
        // to the live formatting below (both derive from the same page).
        match &self.prepared {
            Some(p) => self.conn.respond(stream, &p.resp_headers[rec.resource.0], false),
            None => self.conn.respond(
                stream,
                &[
                    Header::new(":status", "200"),
                    Header::new("content-type", &rec.content_type),
                    Header::new("content-length", &rec.body_len.to_string()),
                ],
                false,
            ),
        }
        self.conn.queue_body(stream, rec.body_len, true);
    }

    fn start_push(&mut self, parent: u32, rid: ResourceId, critical: bool) {
        let page = Arc::clone(&self.page);
        let prepared = self.prepared.clone();
        let r = page.resource(rid);
        let host = &page.origins[r.origin].host;
        if self.honor_cache_digest {
            if let Some(d) = &self.client_digest {
                let covered = match &prepared {
                    Some(p) => d.contains(&p.urls[rid.0]),
                    None => d.contains(&r.url(host)),
                };
                if covered {
                    self.digest_suppressed += 1;
                    return;
                }
            }
        }
        let live_req;
        let req: &[Header] = match &prepared {
            Some(p) => &p.push_req[rid.0],
            None => {
                live_req = vec![
                    Header::new(":method", "GET"),
                    Header::new(":scheme", "https"),
                    Header::new(":authority", host),
                    Header::new(":path", &r.path),
                ];
                &live_req
            }
        };
        let Some(promised) = self.conn.push_promise(parent, req) else {
            return; // peer disabled push, or parent gone
        };
        self.trace.emit(TraceEvent::PushPromised {
            conn: self.trace_conn,
            parent,
            promised,
            resource: rid.0,
            critical,
        });
        if critical {
            if let Some(il) = self.sched.interleaving() {
                il.add_critical(promised);
            }
        }
        match &prepared {
            Some(p) => self.conn.respond(promised, &p.resp_headers[rid.0], false),
            None => self.conn.respond(
                promised,
                &[
                    Header::new(":status", "200"),
                    Header::new("content-type", r.rtype.mime()),
                    Header::new("content-length", &r.size.to_string()),
                ],
                false,
            ),
        }
        self.conn.queue_body(promised, r.size, true);
        self.pushed_bytes += r.size as u64;
    }
}

/// The sans-IO transport surface (`h2push_h2proto::sansio`): both the
/// netsim adapter and the live TCP runtime drive a replay server through
/// exactly these three calls, so the wire behaviour cannot diverge
/// between the simulated and the real transport.
impl h2push_h2proto::sansio::Endpoint for ReplayServer {
    fn feed_bytes(&mut self, bytes: &[u8], now: h2push_h2proto::sansio::Micros) {
        self.on_bytes(bytes, SimTime(now));
    }

    fn wants_output(&self) -> bool {
        self.wants_send()
    }

    fn poll_output(&mut self, max: usize, _now: h2push_h2proto::sansio::Micros) -> Bytes {
        self.produce(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2push_h2proto::{Connection, FifoScheduler, Settings, StreamState};
    use h2push_webmodel::{PageBuilder, ResourceSpec};

    fn page() -> Arc<Page> {
        let mut b = PageBuilder::new("srv-test", "srv.test", 20_000, 2_000);
        let third = b.origin("cdn.third.net", 1, false);
        b.resource(ResourceSpec::css(0, 6_000, 200, 0.5)); // 1
        b.resource(ResourceSpec::image(0, 9_000, 8_000, true, 1.0)); // 2
        b.resource(ResourceSpec::js_async(third, 4_000, 9_000, 1_000)); // 3
        b.text_paint(5_000, 1.0);
        Arc::new(b.build())
    }

    fn server_for(p: &Arc<Page>, group: usize, strategy: Strategy) -> ReplayServer {
        ReplayServer::new(Arc::clone(p), Arc::new(RecordDb::record(p)), group, &Arc::new(strategy))
    }

    /// Drive a raw h2proto client against the server; returns collected
    /// client events.
    fn converse(
        server: &mut ReplayServer,
        client: &mut Connection,
        rounds: usize,
    ) -> Vec<h2push_h2proto::Event> {
        let mut sched = FifoScheduler;
        let mut events = Vec::new();
        for _ in 0..rounds {
            let up = client.produce(usize::MAX, &mut sched);
            if !up.is_empty() {
                server.on_bytes(&up, SimTime::ZERO);
            }
            let mut moved = false;
            while server.wants_send() {
                let down = server.produce(usize::MAX);
                if down.is_empty() {
                    break;
                }
                moved = true;
                client.receive(&down);
            }
            while let Some(e) = client.poll_event() {
                events.push(e);
            }
            if !moved && client.produce(usize::MAX, &mut sched).is_empty() {
                break;
            }
        }
        events
    }

    fn get(path: &str) -> Vec<Header> {
        vec![
            Header::new(":method", "GET"),
            Header::new(":scheme", "https"),
            Header::new(":authority", "srv.test"),
            Header::new(":path", path),
        ]
    }

    #[test]
    fn serves_recorded_response() {
        let p = page();
        let mut server = server_for(&p, 0, Strategy::NoPush);
        let mut client = Connection::client(Settings {
            initial_window_size: Some(1 << 20),
            ..Default::default()
        });
        let s = client.request(&get("/"), None);
        let events = converse(&mut server, &mut client, 20);
        let body: usize = events
            .iter()
            .filter_map(|e| match e {
                h2push_h2proto::Event::Data { stream, len, .. } if *stream == s => Some(*len),
                _ => None,
            })
            .sum();
        assert_eq!(body, 20_000, "full document body served");
        assert_eq!(server.observations().len(), 1);
        assert_eq!(server.observations()[0].resource, ResourceId(0));
    }

    #[test]
    fn unknown_path_gets_404() {
        let p = page();
        let mut server = server_for(&p, 0, Strategy::NoPush);
        let mut client = Connection::client(Settings::default());
        client.request(&get("/not-recorded"), None);
        let events = converse(&mut server, &mut client, 10);
        let status = events.iter().find_map(|e| match e {
            h2push_h2proto::Event::Headers { headers, end_stream, .. } => {
                Some((String::from_utf8_lossy(&headers[0].value).to_string(), *end_stream))
            }
            _ => None,
        });
        assert_eq!(status, Some(("404".to_string(), true)));
    }

    #[test]
    fn strategy_fires_only_on_document_request() {
        let p = page();
        let mut server = server_for(&p, 0, Strategy::PushList { order: vec![ResourceId(1)] });
        let mut client = Connection::client(Settings {
            initial_window_size: Some(1 << 20),
            ..Default::default()
        });
        // Request the image first: no pushes may fire.
        let img_path = p.resource(ResourceId(2)).path.clone();
        client.request(&get(&img_path), None);
        let events = converse(&mut server, &mut client, 10);
        assert!(
            !events.iter().any(|e| matches!(e, h2push_h2proto::Event::PushPromise { .. })),
            "subresource request must not trigger pushes"
        );
        assert_eq!(server.pushed_bytes(), 0);
        // Now the document: the CSS is promised and delivered.
        client.request(&get("/"), None);
        let events = converse(&mut server, &mut client, 30);
        assert!(events.iter().any(|e| matches!(e, h2push_h2proto::Event::PushPromise { .. })));
        assert_eq!(server.pushed_bytes(), 6_000);
    }

    #[test]
    fn third_party_group_never_pushes() {
        let p = page();
        // The strategy is configured, but this instance serves group 1.
        let mut server = server_for(&p, 1, Strategy::PushList { order: vec![ResourceId(1)] });
        let mut client = Connection::client(Settings::default());
        let js = p.resource(ResourceId(3));
        client.request(
            &[
                Header::new(":method", "GET"),
                Header::new(":scheme", "https"),
                Header::new(":authority", "cdn.third.net"),
                Header::new(":path", &js.path),
            ],
            None,
        );
        let events = converse(&mut server, &mut client, 10);
        assert!(!events.iter().any(|e| matches!(e, h2push_h2proto::Event::PushPromise { .. })));
        let body: usize = events
            .iter()
            .filter_map(|e| match e {
                h2push_h2proto::Event::Data { len, .. } => Some(*len),
                _ => None,
            })
            .sum();
        assert_eq!(body, 4_000);
    }

    #[test]
    fn disabled_push_client_gets_plain_responses() {
        let p = page();
        let mut server = server_for(&p, 0, Strategy::PushList { order: vec![ResourceId(1)] });
        let mut client =
            Connection::client(Settings { enable_push: Some(false), ..Default::default() });
        client.request(&get("/"), None);
        let events = converse(&mut server, &mut client, 20);
        assert!(!events.iter().any(|e| matches!(e, h2push_h2proto::Event::PushPromise { .. })));
        assert_eq!(server.pushed_bytes(), 0, "SETTINGS_ENABLE_PUSH=0 honored");
    }

    #[test]
    fn interleaved_strategy_marks_parent_and_closes_cleanly() {
        let p = page();
        let mut server = server_for(
            &p,
            0,
            Strategy::Interleaved {
                offset: 4_096,
                critical: vec![ResourceId(1)],
                after: vec![ResourceId(2)],
            },
        );
        let mut client = Connection::client(Settings {
            initial_window_size: Some(1 << 20),
            ..Default::default()
        });
        let html = client.request(&get("/"), None);
        let events = converse(&mut server, &mut client, 50);
        // Both the critical and the after push arrive completely.
        let push_bytes: usize = events
            .iter()
            .filter_map(|e| match e {
                h2push_h2proto::Event::Data { stream, len, .. } if stream.is_multiple_of(2) => {
                    Some(*len)
                }
                _ => None,
            })
            .sum();
        assert_eq!(push_bytes, 6_000 + 9_000);
        assert_eq!(client.stream_state(html), Some(StreamState::Closed));
    }

    #[test]
    fn garbage_input_is_counted_not_fatal_to_the_process() {
        // Corrupted client bytes (a botched preface) must not panic the
        // replay: the server records the violation, answers GOAWAY, and
        // the harness can keep driving other connections.
        let p = page();
        let mut server = server_for(&p, 0, Strategy::NoPush);
        assert_eq!(server.protocol_errors(), 0);
        server.on_bytes(b"GARBAGE / HTTP/1.1\r\n\r\nxxxxxxxx", SimTime::ZERO);
        assert_eq!(server.protocol_errors(), 1);
        assert_eq!(server.fatal_error(), Some(ConnError::BadPreface));
        assert!(server.wants_send(), "the GOAWAY still drains");
        let bytes = server.produce(usize::MAX);
        assert!(!bytes.is_empty());
        // Further input on the dead connection stays harmless.
        server.on_bytes(b"more garbage", SimTime::ZERO);
        assert_eq!(server.fatal_error(), Some(ConnError::BadPreface));
    }
}
