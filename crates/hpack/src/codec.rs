//! HPACK block encoder and decoder (RFC 7541 §6), plus a memoizing
//! [`BlockCache`] for replay workloads that encode the same header lists
//! from identical encoder states over and over.

use crate::fx::FxHashMap;
use crate::huffman;
use crate::integer;
use crate::table::{Header, IndexTable, Match};
use crate::Error;
use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Fowler–Noll–Vo 1a, 64-bit: deterministic across runs/platforms (unlike
/// `DefaultHasher`), which the encoder-state fingerprint requires.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

pub(crate) fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

pub(crate) fn fnv1a_usize(hash: &mut u64, v: usize) {
    fnv1a(hash, &(v as u64).to_le_bytes());
}

/// One memoized header block: the encoded bytes plus the dynamic-table
/// insertions the live encoding performed, replayed verbatim on a cache hit
/// so the encoder state after a hit is identical to a live encode. The
/// block is a [`Bytes`] so a hit hands out a reference-counted view — no
/// per-hit copy.
#[derive(Debug, Clone)]
struct CachedBlock {
    block: Bytes,
    inserts: Vec<Header>,
}

/// One memoized decode: the decoded header list (shared via `Arc` so a hit
/// allocates nothing) plus the table effects the live decode performed —
/// dynamic-table size updates followed by insertions, replayed in that
/// order on a hit (§4.2 guarantees updates precede fields).
#[derive(Debug, Clone)]
struct CachedDecode {
    headers: Arc<[Header]>,
    size_updates: Vec<usize>,
    inserts: Vec<Header>,
}

/// Table effects recorded during a live decode for later replay.
#[derive(Debug, Default)]
struct DecodeRecord {
    size_updates: Vec<usize>,
    inserts: Vec<Header>,
}

/// A shared memo of encoded header blocks, keyed by (encoder-state
/// fingerprint, header-list hash).
///
/// The fingerprint covers the full observable encoder state — dynamic-table
/// entries, size limits, pending size updates and Huffman policy — so a hit
/// is only possible when a previous live encode ran from a byte-identical
/// state. When connection histories diverge (different push strategies
/// insert different entries), the fingerprint differs, the lookup misses,
/// and the encoder transparently falls back to live encoding; the result is
/// then memoized for the next repetition. Cache contents therefore affect
/// speed, never bytes.
///
/// Cloning is shallow: clones share one map, which is how a page-level
/// [`BlockCache`] is shared across every connection and repetition touching
/// that page. The map is split into [`SHARDS`] independently-locked
/// shards selected by key hash, so parallel repetitions encoding
/// different blocks never serialize on one mutex; keys are already
/// FNV-mixed fingerprints, making the shard index and the in-shard
/// [`FxHashMap`] lookup both one multiply away.
#[derive(Debug, Clone, Default)]
pub struct BlockCache {
    inner: Arc<Sharded<CachedBlock>>,
}

/// A shared memo of *decoded* header blocks, keyed by (decoder-state
/// fingerprint, block-bytes hash) — the receive-side twin of
/// [`BlockCache`], with the same transparency contract: a hit is only
/// possible when a previous live decode ran from a byte-identical decoder
/// state on byte-identical input, and the hit replays the live decode's
/// table effects verbatim. Cache contents affect speed, never bytes.
#[derive(Debug, Clone, Default)]
pub struct DecodeCache {
    inner: Arc<Sharded<CachedDecode>>,
}

/// Shard count (power of two). Sized for worker counts up to the teens:
/// with 16 shards and uniform keys, two workers collide on a lock with
/// probability 1/16 per encode.
const SHARDS: usize = 16;

/// The sharded, independently-locked map both caches are built on.
#[derive(Debug)]
struct Sharded<V> {
    shards: [Mutex<FxHashMap<(u64, u64), V>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V> Default for Sharded<V> {
    fn default() -> Self {
        Sharded {
            shards: std::array::from_fn(|_| Mutex::new(FxHashMap::default())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

/// Lock one cache shard, recovering from poisoning: a panicking replay
/// that a sweep cell caught with `catch_unwind` must not disable the
/// shared cache for every other cell (a shard is never left mid-mutation
/// — each guard scope performs one complete get or insert).
fn lock_shard<V>(
    m: &Mutex<FxHashMap<(u64, u64), V>>,
) -> std::sync::MutexGuard<'_, FxHashMap<(u64, u64), V>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<V> Sharded<V> {
    /// The shard holding `key`. Both key halves are FNV-mixed already;
    /// fold them so the shard index uses different bits than the in-shard
    /// bucket index.
    fn shard(&self, key: (u64, u64)) -> &Mutex<FxHashMap<(u64, u64), V>> {
        let h = key.0 ^ key.1.rotate_left(32);
        &self.shards[((h >> 57) as usize) & (SHARDS - 1)]
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).len()).sum()
    }

    fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

impl BlockCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct (state, header-list) blocks memoized.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (hits, misses) since creation — diagnostics for benches/tests.
    pub fn stats(&self) -> (u64, u64) {
        self.inner.stats()
    }

    /// Deterministic hash of a header list (order-sensitive).
    fn headers_hash(headers: &[Header]) -> u64 {
        let mut h = FNV_OFFSET;
        fnv1a_usize(&mut h, headers.len());
        for hd in headers {
            fnv1a_usize(&mut h, hd.name.len());
            fnv1a(&mut h, &hd.name);
            fnv1a_usize(&mut h, hd.value.len());
            fnv1a(&mut h, &hd.value);
        }
        h
    }
}

impl DecodeCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct (state, block-bytes) decodes memoized.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (hits, misses) since creation — diagnostics for benches/tests.
    pub fn stats(&self) -> (u64, u64) {
        self.inner.stats()
    }

    /// Deterministic hash of the wire bytes of one block.
    fn block_hash(block: &[u8]) -> u64 {
        let mut h = FNV_OFFSET;
        fnv1a_usize(&mut h, block.len());
        fnv1a(&mut h, block);
        h
    }
}

impl Encoder {
    /// Deterministic fingerprint of everything that can influence the bytes
    /// this encoder emits next: dynamic-table contents and limits, pending
    /// size updates, and the Huffman policy.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        fnv1a(&mut h, &[self.policy as u8]);
        fnv1a_usize(&mut h, self.pending_size_updates.len());
        for &s in &self.pending_size_updates {
            fnv1a_usize(&mut h, s);
        }
        self.table.fold_state(&mut h);
        h
    }

    /// Attach a shared [`BlockCache`]; subsequent [`Encoder::encode`] calls
    /// memoize through it.
    pub fn set_block_cache(&mut self, cache: BlockCache) {
        self.cache = Some(cache);
    }
}

/// When the encoder applies Huffman coding to string literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HuffmanPolicy {
    /// Huffman-encode when strictly shorter (what real encoders do and what
    /// the RFC Appendix C.4/C.6 examples assume).
    #[default]
    Auto,
    /// Never Huffman-encode (Appendix C.2/C.3 examples).
    Never,
    /// Always Huffman-encode.
    Always,
}

/// Stateful header block encoder.
///
/// Strategy: exact matches are emitted as indexed fields; everything else is
/// emitted as "literal with incremental indexing" (indexing the name when
/// possible) so subsequent blocks on the connection compress well — the same
/// policy as the RFC examples and mainstream servers.
///
/// ```
/// use h2push_hpack::{Encoder, Decoder, Header};
///
/// let mut enc = Encoder::new();
/// let mut dec = Decoder::new();
/// let headers = vec![Header::new(":method", "GET"), Header::new(":path", "/app.css")];
/// let block = enc.encode(&headers);
/// assert_eq!(dec.decode(&block).unwrap(), headers);
/// // The second occurrence compresses to two indexed bytes.
/// assert!(enc.encode(&headers).len() <= 2);
/// ```
#[derive(Debug)]
pub struct Encoder {
    table: IndexTable,
    policy: HuffmanPolicy,
    /// Pending dynamic-table size updates to emit at the start of the next
    /// block (§4.2).
    pending_size_updates: Vec<usize>,
    /// Optional shared block memo; `None` means every block is encoded live.
    cache: Option<BlockCache>,
}

impl Encoder {
    /// Encoder with the default 4096-octet table.
    pub fn new() -> Self {
        Encoder {
            table: IndexTable::new(),
            policy: HuffmanPolicy::Auto,
            pending_size_updates: Vec::new(),
            cache: None,
        }
    }

    /// Set the Huffman policy.
    pub fn with_policy(mut self, policy: HuffmanPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Change the dynamic table size; the update is signalled in the next
    /// encoded block.
    pub fn set_table_size(&mut self, size: usize) {
        self.table.set_capacity_limit(size);
        // Cannot fail: the capacity limit was just raised to `size`. Kept
        // panic-free anyway — a failed resize skips the wire announcement
        // rather than poisoning the encoder.
        if self.table.set_max_size(size).is_ok() {
            self.pending_size_updates.push(size);
        }
    }

    /// Dynamic table size (for tests / diagnostics).
    pub fn table(&self) -> &IndexTable {
        &self.table
    }

    /// Encode one header block. With a [`BlockCache`] attached, a block
    /// already encoded from a byte-identical encoder state is returned from
    /// the memo (replaying its recorded table insertions); otherwise the
    /// block is encoded live and memoized.
    pub fn encode(&mut self, headers: &[Header]) -> Vec<u8> {
        self.encode_bytes(headers).to_vec()
    }

    /// [`Encoder::encode`] returning a reference-counted [`Bytes`] view:
    /// a cache hit hands out the memoized buffer without copying it, so
    /// steady-state encoding of a previously-seen block allocates nothing.
    pub fn encode_bytes(&mut self, headers: &[Header]) -> Bytes {
        let Some(cache) = self.cache.clone() else {
            return Bytes::from(self.encode_live(headers, None));
        };
        let key = (self.fingerprint(), BlockCache::headers_hash(headers));
        {
            let map = lock_shard(cache.inner.shard(key));
            if let Some(entry) = map.get(&key) {
                let block = entry.block.clone();
                for h in &entry.inserts {
                    self.table.insert_from(&h.name, &h.value);
                }
                // The cached block already carries the size-update prefix
                // the live encode emitted from this same state.
                self.pending_size_updates.clear();
                cache.inner.hits.fetch_add(1, Ordering::Relaxed);
                return block;
            }
        }
        cache.inner.misses.fetch_add(1, Ordering::Relaxed);
        let mut inserts = Vec::new();
        let block = Bytes::from(self.encode_live(headers, Some(&mut inserts)));
        lock_shard(cache.inner.shard(key))
            .insert(key, CachedBlock { block: block.clone(), inserts });
        block
    }

    /// Restore the state of [`Encoder::new`] — empty default-sized table,
    /// no pending size updates, no cache attached — while keeping the
    /// table's container allocations for reuse.
    pub fn reset(&mut self) {
        self.table.reset(4096);
        self.policy = HuffmanPolicy::Auto;
        self.pending_size_updates.clear();
        self.cache = None;
    }

    fn encode_live(&mut self, headers: &[Header], mut record: Option<&mut Vec<Header>>) -> Vec<u8> {
        let mut out = Vec::new();
        for size in self.pending_size_updates.drain(..) {
            integer::encode(size as u64, 5, 0x20, &mut out);
        }
        for h in headers {
            self.encode_header(h, &mut out, record.as_deref_mut());
        }
        out
    }

    fn encode_header(&mut self, h: &Header, out: &mut Vec<u8>, record: Option<&mut Vec<Header>>) {
        match self.table.find(h) {
            Match::Full(i) => {
                // Indexed header field (§6.1): '1' + 7-bit index.
                integer::encode(i as u64, 7, 0x80, out);
            }
            Match::Name(i) => {
                // Literal with incremental indexing, indexed name (§6.2.1).
                integer::encode(i as u64, 6, 0x40, out);
                self.encode_string(&h.value, out);
                self.table.insert(h.clone());
                if let Some(rec) = record {
                    rec.push(h.clone());
                }
            }
            Match::None => {
                // Literal with incremental indexing, new name.
                out.push(0x40);
                self.encode_string(&h.name, out);
                self.encode_string(&h.value, out);
                self.table.insert(h.clone());
                if let Some(rec) = record {
                    rec.push(h.clone());
                }
            }
        }
    }

    fn encode_string(&self, s: &[u8], out: &mut Vec<u8>) {
        // One encoded_len pass serves both the Auto decision and the length
        // prefix; Never skips the scan entirely.
        let hlen = match self.policy {
            HuffmanPolicy::Never => 0,
            _ => huffman::encoded_len(s),
        };
        let use_huffman = match self.policy {
            HuffmanPolicy::Never => false,
            HuffmanPolicy::Always => true,
            // "No shorter" rather than "strictly shorter": the RFC C.6.2
            // example Huffman-encodes "307" although both forms are 3
            // octets.
            HuffmanPolicy::Auto => !s.is_empty() && hlen <= s.len(),
        };
        if use_huffman {
            integer::encode(hlen as u64, 7, 0x80, out);
            huffman::encode(s, out);
        } else {
            integer::encode(s.len() as u64, 7, 0, out);
            out.extend_from_slice(s);
        }
    }
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

/// Stateful header block decoder.
#[derive(Debug)]
pub struct Decoder {
    table: IndexTable,
    /// Guard against header bombs: maximum decoded size of one block
    /// (sum of name+value+32 per field, like SETTINGS_MAX_HEADER_LIST_SIZE).
    max_header_list_size: usize,
    /// Optional shared decode memo; `None` means every block decodes live.
    cache: Option<DecodeCache>,
}

impl Decoder {
    /// Decoder with the default 4096-octet table.
    pub fn new() -> Self {
        Decoder { table: IndexTable::new(), max_header_list_size: 1 << 20, cache: None }
    }

    /// Raise or lower the protocol ceiling on the peer's table size.
    pub fn set_capacity_limit(&mut self, limit: usize) {
        self.table.set_capacity_limit(limit);
    }

    /// Set the maximum decoded size of one header block (the local
    /// endpoint's SETTINGS_MAX_HEADER_LIST_SIZE, RFC 7540 §6.5.2).
    pub fn set_max_header_list_size(&mut self, limit: usize) {
        self.max_header_list_size = limit;
    }

    /// Attach a shared [`DecodeCache`]; subsequent
    /// [`Decoder::decode_shared`] calls memoize through it.
    pub fn set_decode_cache(&mut self, cache: DecodeCache) {
        self.cache = Some(cache);
    }

    /// Restore the state of [`Decoder::new`] while keeping the table's
    /// container allocations for reuse.
    pub fn reset(&mut self) {
        self.table.reset(4096);
        self.max_header_list_size = 1 << 20;
        self.cache = None;
    }

    /// Deterministic fingerprint of everything that can influence what this
    /// decoder produces next: dynamic-table contents and limits plus the
    /// header-list size bound.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        fnv1a_usize(&mut h, self.max_header_list_size);
        self.table.fold_state(&mut h);
        h
    }

    /// Dynamic table (for tests / diagnostics).
    pub fn table(&self) -> &IndexTable {
        &self.table
    }

    /// Decode one complete header block into a shared list. With a
    /// [`DecodeCache`] attached, a block already decoded from a
    /// byte-identical decoder state is returned from the memo (replaying
    /// its recorded size updates and table insertions); otherwise the block
    /// decodes live and is memoized. Only successful decodes are cached, so
    /// error behavior is exactly [`Decoder::decode`]'s.
    pub fn decode_shared(&mut self, buf: &[u8]) -> Result<Arc<[Header]>, Error> {
        let Some(cache) = self.cache.clone() else {
            return self.decode_inner(buf, None).map(Arc::from);
        };
        let key = (self.fingerprint(), DecodeCache::block_hash(buf));
        {
            let map = lock_shard(cache.inner.shard(key));
            if let Some(entry) = map.get(&key) {
                let headers = entry.headers.clone();
                // Replay the live decode's table effects in live order:
                // §4.2 puts every size update before the first field.
                for &s in &entry.size_updates {
                    self.table.set_max_size(s)?;
                }
                for h in &entry.inserts {
                    self.table.insert_from(&h.name, &h.value);
                }
                cache.inner.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(headers);
            }
        }
        cache.inner.misses.fetch_add(1, Ordering::Relaxed);
        let mut rec = DecodeRecord::default();
        let headers: Arc<[Header]> = self.decode_inner(buf, Some(&mut rec))?.into();
        lock_shard(cache.inner.shard(key)).insert(
            key,
            CachedDecode {
                headers: headers.clone(),
                size_updates: rec.size_updates,
                inserts: rec.inserts,
            },
        );
        Ok(headers)
    }

    /// Decode one complete header block.
    pub fn decode(&mut self, buf: &[u8]) -> Result<Vec<Header>, Error> {
        self.decode_inner(buf, None)
    }

    fn decode_inner(
        &mut self,
        buf: &[u8],
        mut record: Option<&mut DecodeRecord>,
    ) -> Result<Vec<Header>, Error> {
        let mut headers = Vec::new();
        let mut listed = 0usize;
        let mut seen_field = false;
        let mut pos = 0usize;
        while pos < buf.len() {
            let b = buf[pos];
            if b & 0x80 != 0 {
                // Indexed header field.
                let idx = integer::decode(buf, &mut pos, 7)?;
                let h = self.table.get(idx as usize)?;
                listed += h.table_size();
                headers.push(h);
                seen_field = true;
            } else if b & 0xc0 == 0x40 {
                // Literal with incremental indexing.
                let idx = integer::decode(buf, &mut pos, 6)?;
                let h = self.read_literal(buf, &mut pos, idx as usize)?;
                listed += h.table_size();
                self.table.insert(h.clone());
                if let Some(rec) = record.as_deref_mut() {
                    rec.inserts.push(h.clone());
                }
                headers.push(h);
                seen_field = true;
            } else if b & 0xe0 == 0x20 {
                // Dynamic table size update — must precede fields (§4.2).
                if seen_field {
                    return Err(Error::SizeUpdateTooLarge);
                }
                let size = integer::decode(buf, &mut pos, 5)?;
                self.table.set_max_size(size as usize)?;
                if let Some(rec) = record.as_deref_mut() {
                    rec.size_updates.push(size as usize);
                }
            } else {
                // Literal without indexing (0000) or never indexed (0001):
                // both decode identically and do not touch the table.
                let idx = integer::decode(buf, &mut pos, 4)?;
                let h = self.read_literal(buf, &mut pos, idx as usize)?;
                listed += h.table_size();
                headers.push(h);
                seen_field = true;
            }
            if listed > self.max_header_list_size {
                return Err(Error::HeaderListTooLarge);
            }
        }
        Ok(headers)
    }

    fn read_literal(&self, buf: &[u8], pos: &mut usize, name_idx: usize) -> Result<Header, Error> {
        let name = if name_idx == 0 {
            self.read_string(buf, pos)?
        } else {
            self.table.get(name_idx)?.name
        };
        let value = self.read_string(buf, pos)?;
        Ok(Header { name, value })
    }

    fn read_string(&self, buf: &[u8], pos: &mut usize) -> Result<Vec<u8>, Error> {
        let huff = *buf.get(*pos).ok_or(Error::Truncated)? & 0x80 != 0;
        let len = integer::decode(buf, pos, 7)? as usize;
        let end = pos.checked_add(len).ok_or(Error::Truncated)?;
        let raw = buf.get(*pos..end).ok_or(Error::Truncated)?;
        *pos = end;
        if huff {
            huffman::decode(raw)
        } else {
            Ok(raw.to_vec())
        }
    }
}

impl Default for Decoder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(n: &str, v: &str) -> Header {
        Header::new(n, v)
    }

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // ----- RFC 7541 Appendix C.2 / C.3 (no Huffman) -----

    #[test]
    fn c_2_1_literal_with_indexing() {
        let mut e = Encoder::new().with_policy(HuffmanPolicy::Never);
        let out = e.encode(&[h("custom-key", "custom-header")]);
        assert_eq!(hex(&out), "400a637573746f6d2d6b65790d637573746f6d2d686561646572");
        assert_eq!(e.table().size(), 55);
        let mut d = Decoder::new();
        assert_eq!(d.decode(&out).unwrap(), vec![h("custom-key", "custom-header")]);
        assert_eq!(d.table().size(), 55);
    }

    #[test]
    fn c_3_request_sequence_without_huffman() {
        let mut e = Encoder::new().with_policy(HuffmanPolicy::Never);
        let mut d = Decoder::new();

        // C.3.1 first request.
        let req1 = [
            h(":method", "GET"),
            h(":scheme", "http"),
            h(":path", "/"),
            h(":authority", "www.example.com"),
        ];
        let out = e.encode(&req1);
        assert_eq!(hex(&out), "828684410f7777772e6578616d706c652e636f6d");
        assert_eq!(d.decode(&out).unwrap(), req1);
        assert_eq!(d.table().len(), 1);
        assert_eq!(d.table().size(), 57);

        // C.3.2 second request: :authority now in the dynamic table.
        let req2 = [
            h(":method", "GET"),
            h(":scheme", "http"),
            h(":path", "/"),
            h(":authority", "www.example.com"),
            h("cache-control", "no-cache"),
        ];
        let out = e.encode(&req2);
        assert_eq!(hex(&out), "828684be58086e6f2d6361636865");
        assert_eq!(d.decode(&out).unwrap(), req2);
        assert_eq!(d.table().len(), 2);

        // C.3.3 third request.
        let req3 = [
            h(":method", "GET"),
            h(":scheme", "https"),
            h(":path", "/index.html"),
            h(":authority", "www.example.com"),
            h("custom-key", "custom-value"),
        ];
        let out = e.encode(&req3);
        assert_eq!(hex(&out), "828785bf400a637573746f6d2d6b65790c637573746f6d2d76616c7565");
        assert_eq!(d.decode(&out).unwrap(), req3);
        assert_eq!(d.table().len(), 3);
        assert_eq!(d.table().size(), 164);
    }

    // ----- RFC 7541 Appendix C.4 (with Huffman) -----

    #[test]
    fn c_4_request_sequence_with_huffman() {
        let mut e = Encoder::new(); // Auto policy
        let mut d = Decoder::new();

        let req1 = [
            h(":method", "GET"),
            h(":scheme", "http"),
            h(":path", "/"),
            h(":authority", "www.example.com"),
        ];
        let out = e.encode(&req1);
        assert_eq!(hex(&out), "828684418cf1e3c2e5f23a6ba0ab90f4ff");
        assert_eq!(d.decode(&out).unwrap(), req1);

        let req2 = [
            h(":method", "GET"),
            h(":scheme", "http"),
            h(":path", "/"),
            h(":authority", "www.example.com"),
            h("cache-control", "no-cache"),
        ];
        let out = e.encode(&req2);
        assert_eq!(hex(&out), "828684be5886a8eb10649cbf");
        assert_eq!(d.decode(&out).unwrap(), req2);

        let req3 = [
            h(":method", "GET"),
            h(":scheme", "https"),
            h(":path", "/index.html"),
            h(":authority", "www.example.com"),
            h("custom-key", "custom-value"),
        ];
        let out = e.encode(&req3);
        assert_eq!(hex(&out), "828785bf408825a849e95ba97d7f8925a849e95bb8e8b4bf");
        assert_eq!(d.decode(&out).unwrap(), req3);
        assert_eq!(d.table().size(), 164);
    }

    // ----- RFC 7541 Appendix C.6 (responses, Huffman, 256-octet table) -----

    #[test]
    fn c_6_response_sequence_with_eviction() {
        let mut e = Encoder::new();
        e.set_table_size(256);
        let mut d = Decoder::new();
        d.set_capacity_limit(256);

        let resp1 = [
            h(":status", "302"),
            h("cache-control", "private"),
            h("date", "Mon, 21 Oct 2013 20:13:21 GMT"),
            h("location", "https://www.example.com"),
        ];
        let out = e.encode(&resp1);
        assert_eq!(
            hex(&out),
            // 0x3f 0xe1 0x01 = size update to 256 (31 + 225 with one
            // continuation octet), then exactly the C.6.1 block.
            "3fe101488264025885aec3771a4b6196d07abe941054d444a8200595040b8166e082a62d1bff6e919d29ad171863c78f0b97c8e9ae82ae43d3"
        );
        assert_eq!(d.decode(&out).unwrap(), resp1);
        assert_eq!(d.table().len(), 4);
        assert_eq!(d.table().size(), 222);

        // C.6.2: ":status: 307" evicts ":status: 302".
        let resp2 = [
            h(":status", "307"),
            h("cache-control", "private"),
            h("date", "Mon, 21 Oct 2013 20:13:21 GMT"),
            h("location", "https://www.example.com"),
        ];
        let out = e.encode(&resp2);
        assert_eq!(hex(&out), "4883640effc1c0bf");
        assert_eq!(d.decode(&out).unwrap(), resp2);
        assert_eq!(d.table().len(), 4);
        assert_eq!(d.table().size(), 222);

        // C.6.3.
        let resp3 = [
            h(":status", "200"),
            h("cache-control", "private"),
            h("date", "Mon, 21 Oct 2013 20:13:22 GMT"),
            h("location", "https://www.example.com"),
            h("content-encoding", "gzip"),
            h("set-cookie", "foo=ASDJKHQKBZXOQWEOPIUAXQWEOIU; max-age=3600; version=1"),
        ];
        let out = e.encode(&resp3);
        assert_eq!(
            hex(&out),
            "88c16196d07abe941054d444a8200595040b8166e084a62d1bffc05a839bd9ab77ad94e7821dd7f2e6c7b335dfdfcd5b3960d5af27087f3672c1ab270fb5291f9587316065c003ed4ee5b1063d5007"
        );
        assert_eq!(d.decode(&out).unwrap(), resp3);
        assert_eq!(d.table().len(), 3);
        assert_eq!(d.table().size(), 215);
    }

    #[test]
    fn size_update_after_field_rejected() {
        let mut d = Decoder::new();
        // 0x82 (:method GET) followed by a size update 0x20.
        assert!(d.decode(&[0x82, 0x20]).is_err());
    }

    #[test]
    fn invalid_index_rejected() {
        let mut d = Decoder::new();
        // Indexed field 70 with empty dynamic table.
        let mut buf = Vec::new();
        integer::encode(70, 7, 0x80, &mut buf);
        assert_eq!(d.decode(&buf), Err(Error::InvalidIndex));
        // Index 0 is never valid.
        assert_eq!(d.decode(&[0x80]), Err(Error::InvalidIndex));
    }

    #[test]
    fn never_indexed_literal_decodes_and_skips_table() {
        // 0001xxxx: never-indexed literal, new name "a" value "b".
        let buf = [0x10, 0x01, b'a', 0x01, b'b'];
        let mut d = Decoder::new();
        assert_eq!(d.decode(&buf).unwrap(), vec![h("a", "b")]);
        assert_eq!(d.table().len(), 0);
    }

    #[test]
    fn truncated_literal_rejected() {
        let mut d = Decoder::new();
        // Literal with indexing, new name, claims a 10-byte name but ends.
        assert_eq!(d.decode(&[0x40, 0x0a, b'x']), Err(Error::Truncated));
    }

    /// Drive two encoders through the same block sequence, one memoized and
    /// one live, asserting byte-identical output and identical end state.
    fn assert_cache_transparent(blocks: &[Vec<Header>]) {
        let cache = BlockCache::new();
        // Two passes so the second pass hits the memo populated by the first.
        for _ in 0..2 {
            let mut live = Encoder::new();
            let mut memo = Encoder::new();
            memo.set_block_cache(cache.clone());
            let mut dec = Decoder::new();
            for hs in blocks {
                let a = live.encode(hs);
                let b = memo.encode(hs);
                assert_eq!(a, b, "cached block differs from live encode");
                assert_eq!(live.fingerprint(), memo.fingerprint());
                assert_eq!(dec.decode(&b).unwrap(), *hs);
            }
        }
    }

    #[test]
    fn block_cache_is_bytes_transparent() {
        let blocks = vec![
            vec![h(":method", "GET"), h(":path", "/"), h(":authority", "a.test")],
            vec![h(":method", "GET"), h(":path", "/app.css"), h(":authority", "a.test")],
            vec![h(":status", "200"), h("content-type", "text/css"), h("content-length", "1234")],
            vec![h(":method", "GET"), h(":path", "/app.css"), h(":authority", "a.test")],
        ];
        assert_cache_transparent(&blocks);
    }

    #[test]
    fn block_cache_hits_on_repeated_state() {
        let cache = BlockCache::new();
        let hs = vec![h(":method", "GET"), h(":path", "/x"), h(":authority", "h.test")];
        let first = {
            let mut e = Encoder::new();
            e.set_block_cache(cache.clone());
            e.encode(&hs)
        };
        let second = {
            let mut e = Encoder::new();
            e.set_block_cache(cache.clone());
            e.encode(&hs)
        };
        assert_eq!(first, second);
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn block_cache_falls_back_on_divergent_state() {
        let cache = BlockCache::new();
        let hs = vec![h("x-a", "1")];
        let mut warm = Encoder::new();
        warm.set_block_cache(cache.clone());
        warm.encode(&hs);

        // An encoder whose dynamic table diverged must not see the memo.
        let mut diverged = Encoder::new();
        diverged.set_block_cache(cache.clone());
        diverged.encode(&[h("x-other", "z")]); // different table now
        let out = diverged.encode(&hs);
        let mut reference = Encoder::new();
        reference.encode(&[h("x-other", "z")]);
        assert_eq!(out, reference.encode(&hs));
        let (_, misses) = cache.stats();
        assert_eq!(misses, 3);
    }

    #[test]
    fn block_cache_covers_size_updates() {
        // A pending size update is part of the fingerprint and of the
        // cached bytes (C.6-style prefix).
        let cache = BlockCache::new();
        let hs = vec![h(":status", "302"), h("cache-control", "private")];
        let encode_with_resize = || {
            let mut e = Encoder::new();
            e.set_block_cache(cache.clone());
            e.set_table_size(256);
            e.encode(&hs)
        };
        let a = encode_with_resize();
        let b = encode_with_resize();
        assert_eq!(a, b);
        assert!(a[0] & 0xe0 == 0x20, "block starts with a size update");
        let (hits, _) = cache.stats();
        assert_eq!(hits, 1);
    }

    /// Drive two decoders through the same block sequence, one memoized and
    /// one live, asserting identical decoded lists and identical end state.
    fn assert_decode_cache_transparent(blocks: &[Vec<Header>]) {
        let cache = DecodeCache::new();
        // Two passes so the second pass hits the memo populated by the first.
        for _ in 0..2 {
            let mut enc_a = Encoder::new();
            let mut enc_b = Encoder::new();
            let mut live = Decoder::new();
            let mut memo = Decoder::new();
            memo.set_decode_cache(cache.clone());
            for hs in blocks {
                let wire = enc_a.encode(hs);
                assert_eq!(wire, enc_b.encode(hs));
                let a = live.decode(&wire).unwrap();
                let b = memo.decode_shared(&wire).unwrap();
                assert_eq!(a.as_slice(), &b[..], "cached decode differs from live decode");
                assert_eq!(live.fingerprint(), memo.fingerprint());
            }
        }
        assert!(cache.stats().0 > 0, "second pass must hit the memo");
    }

    #[test]
    fn decode_cache_is_bytes_transparent() {
        let blocks = vec![
            vec![h(":method", "GET"), h(":path", "/"), h(":authority", "a.test")],
            vec![h(":method", "GET"), h(":path", "/app.css"), h(":authority", "a.test")],
            vec![h(":status", "200"), h("content-type", "text/css"), h("content-length", "1234")],
            vec![h(":method", "GET"), h(":path", "/app.css"), h(":authority", "a.test")],
        ];
        assert_decode_cache_transparent(&blocks);
    }

    #[test]
    fn decode_cache_covers_size_updates() {
        // A block with a size-update prefix replays the update on a hit.
        let mut enc = Encoder::new();
        enc.set_table_size(256);
        let wire = enc.encode(&[h(":status", "302"), h("cache-control", "private")]);
        assert!(wire[0] & 0xe0 == 0x20, "block starts with a size update");
        let cache = DecodeCache::new();
        let states: Vec<(usize, usize)> = (0..2)
            .map(|_| {
                let mut d = Decoder::new();
                d.set_decode_cache(cache.clone());
                d.decode_shared(&wire).unwrap();
                (d.table().len(), d.table().max_size())
            })
            .collect();
        assert_eq!(states[0], states[1]);
        assert_eq!(states[0].1, 256);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn codec_reset_restores_fresh_state() {
        let blocks = vec![
            vec![h(":method", "GET"), h(":path", "/x"), h(":authority", "r.test")],
            vec![h("x-custom", "one"), h("x-custom", "two")],
        ];
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        let first: Vec<Vec<u8>> = blocks.iter().map(|b| enc.encode(b)).collect();
        for w in &first {
            dec.decode(w).unwrap();
        }
        enc.reset();
        dec.reset();
        assert_eq!(enc.fingerprint(), Encoder::new().fingerprint());
        assert_eq!(dec.fingerprint(), Decoder::new().fingerprint());
        let second: Vec<Vec<u8>> = blocks.iter().map(|b| enc.encode(b)).collect();
        assert_eq!(first, second, "reset encoder must re-produce identical bytes");
        for (w, b) in second.iter().zip(&blocks) {
            assert_eq!(dec.decode(w).unwrap(), *b);
        }
    }

    #[test]
    fn encoder_decoder_state_stays_synchronized() {
        let mut e = Encoder::new();
        let mut d = Decoder::new();
        for i in 0..50 {
            let hs = vec![
                h(":method", "GET"),
                h(":path", &format!("/resource/{i}")),
                h("x-trace", &format!("run-{}", i % 7)),
            ];
            let block = e.encode(&hs);
            assert_eq!(d.decode(&block).unwrap(), hs);
        }
        assert_eq!(e.table().size(), d.table().size());
        assert_eq!(e.table().len(), d.table().len());
    }
}
