//! HPACK Huffman coding (RFC 7541 §5.2 and Appendix B).
//!
//! The RFC's code is a *canonical* Huffman code: codes are assigned in order
//! of increasing length, and within one length in order of increasing symbol
//! value. We therefore only store the 257 code **lengths** and derive the
//! codewords at start-up; a unit test checks the Kraft equality (the lengths
//! form a complete code) and the RFC Appendix C test vectors pin the result
//! to the exact RFC codewords.

use crate::Error;
use std::sync::OnceLock;

/// Code length in bits for each symbol 0..=256 (256 is EOS).
#[rustfmt::skip]
const CODE_LENGTHS: [u8; 257] = [
    // 0x00..0x0f
    13, 23, 28, 28, 28, 28, 28, 28, 28, 24, 30, 28, 28, 30, 28, 28,
    // 0x10..0x1f
    28, 28, 28, 28, 28, 28, 30, 28, 28, 28, 28, 28, 28, 28, 28, 28,
    // 0x20..0x2f:  ' ' ! " # $ % & ' ( ) * + , - . /
     6, 10, 10, 12, 13,  6,  8, 11, 10, 10,  8, 11,  8,  6,  6,  6,
    // 0x30..0x3f:  0-9 : ; < = > ?
     5,  5,  5,  6,  6,  6,  6,  6,  6,  6,  7,  8, 15,  6, 12, 10,
    // 0x40..0x4f:  @ A-O
    13,  6,  7,  7,  7,  7,  7,  7,  7,  7,  7,  7,  7,  7,  7,  7,
    // 0x50..0x5f:  P-Z [ \ ] ^ _
     7,  7,  7,  7,  7,  7,  7,  7,  8,  7,  8, 13, 19, 13, 14,  6,
    // 0x60..0x6f:  ` a-o
    15,  5,  6,  5,  6,  5,  6,  6,  6,  5,  7,  7,  6,  6,  6,  5,
    // 0x70..0x7f:  p-z { | } ~ DEL
     6,  7,  6,  5,  5,  6,  7,  7,  7,  7,  7, 15, 11, 14, 13, 28,
    // 0x80..0x8f
    20, 22, 20, 20, 22, 22, 22, 23, 22, 23, 23, 23, 23, 23, 24, 23,
    // 0x90..0x9f
    24, 24, 22, 23, 24, 23, 23, 23, 23, 21, 22, 23, 22, 23, 23, 24,
    // 0xa0..0xaf
    22, 21, 20, 22, 22, 23, 23, 21, 23, 22, 22, 24, 21, 22, 23, 23,
    // 0xb0..0xbf
    21, 21, 22, 21, 23, 22, 23, 23, 20, 22, 22, 22, 23, 22, 22, 23,
    // 0xc0..0xcf
    26, 26, 20, 19, 22, 23, 22, 25, 26, 26, 26, 27, 27, 26, 24, 25,
    // 0xd0..0xdf
    19, 21, 26, 27, 27, 26, 27, 24, 21, 21, 26, 26, 28, 27, 27, 27,
    // 0xe0..0xef
    20, 24, 20, 21, 22, 21, 21, 23, 22, 22, 25, 25, 24, 24, 26, 23,
    // 0xf0..0xff
    26, 27, 26, 26, 27, 27, 27, 27, 27, 28, 27, 27, 27, 27, 27, 26,
    // 256: EOS
    30,
];

/// A symbol's canonical codeword (right-aligned) and its length in bits.
#[derive(Debug, Clone, Copy)]
struct Code {
    bits: u32,
    len: u8,
}

struct Tables {
    encode: [Code; 257],
    /// Binary trie for decoding: `nodes[i] = [next_if_0, next_if_1]`; leaf
    /// values are encoded as `0x8000_0000 | symbol`.
    trie: Vec<[u32; 2]>,
}

const LEAF: u32 = 0x8000_0000;
const UNSET: u32 = u32::MAX;

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        // Canonical code assignment: sort by (length, symbol).
        let mut order: Vec<u16> = (0u16..257).collect();
        order.sort_by_key(|&s| (CODE_LENGTHS[s as usize], s));
        let mut encode = [Code { bits: 0, len: 0 }; 257];
        let mut code: u32 = 0;
        let mut prev_len: u8 = 0;
        for &sym in &order {
            let len = CODE_LENGTHS[sym as usize];
            if prev_len != 0 {
                code = (code + 1) << (len - prev_len);
            } else {
                code <<= len;
            }
            encode[sym as usize] = Code { bits: code, len };
            prev_len = len;
        }
        // Build the decode trie.
        let mut trie: Vec<[u32; 2]> = vec![[UNSET, UNSET]];
        for sym in 0..257u32 {
            let Code { bits, len } = encode[sym as usize];
            let mut node = 0usize;
            for i in (0..len).rev() {
                let bit = ((bits >> i) & 1) as usize;
                if i == 0 {
                    trie[node][bit] = LEAF | sym;
                } else {
                    if trie[node][bit] == UNSET {
                        trie.push([UNSET, UNSET]);
                        let next = (trie.len() - 1) as u32;
                        trie[node][bit] = next;
                    }
                    node = trie[node][bit] as usize;
                }
            }
        }
        Tables { encode, trie }
    })
}

/// The length in bytes of `data` once Huffman encoded.
pub fn encoded_len(data: &[u8]) -> usize {
    let t = tables();
    let bits: u64 = data.iter().map(|&b| t.encode[b as usize].len as u64).sum();
    bits.div_ceil(8) as usize
}

/// Huffman-encode `data`, appending to `out`. The final partial octet is
/// padded with the most-significant bits of EOS (all ones), per §5.2.
pub fn encode(data: &[u8], out: &mut Vec<u8>) {
    let t = tables();
    let mut acc: u64 = 0;
    let mut nbits: u32 = 0;
    for &b in data {
        let Code { bits, len } = t.encode[b as usize];
        acc = (acc << len) | bits as u64;
        nbits += len as u32;
        while nbits >= 8 {
            nbits -= 8;
            out.push((acc >> nbits) as u8);
        }
    }
    if nbits > 0 {
        let pad = 8 - nbits;
        out.push(((acc << pad) as u8) | ((1u16 << pad) - 1) as u8);
    }
}

/// Decode a Huffman-encoded string.
///
/// Errors on the EOS symbol appearing in the stream and on padding longer
/// than 7 bits or not matching the EOS prefix (both connection errors per
/// §5.2).
pub fn decode(data: &[u8]) -> Result<Vec<u8>, Error> {
    let t = tables();
    let mut out = Vec::with_capacity(data.len() * 8 / 5);
    let mut node = 0usize;
    let mut bits_since_symbol = 0u32;
    let mut all_ones_since_symbol = true;
    for &byte in data {
        for i in (0..8).rev() {
            let bit = ((byte >> i) & 1) as usize;
            bits_since_symbol += 1;
            all_ones_since_symbol &= bit == 1;
            let next = t.trie[node][bit];
            if next == UNSET {
                return Err(Error::InvalidHuffman);
            }
            if next & LEAF != 0 {
                let sym = next & !LEAF;
                if sym == 256 {
                    return Err(Error::InvalidHuffman); // explicit EOS
                }
                out.push(sym as u8);
                node = 0;
                bits_since_symbol = 0;
                all_ones_since_symbol = true;
            } else {
                node = next as usize;
            }
        }
    }
    // Whatever remains must be a ≤7-bit prefix of EOS (all ones).
    if bits_since_symbol > 7 || !all_ones_since_symbol {
        return Err(Error::InvalidHuffman);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kraft_equality_holds() {
        // The lengths must describe a *complete* prefix code.
        let sum: u64 = CODE_LENGTHS.iter().map(|&l| 1u64 << (30 - l as u32)).sum();
        assert_eq!(sum, 1u64 << 30);
    }

    #[test]
    fn rfc_appendix_b_spot_values() {
        let t = tables();
        let code = |s: usize| (t.encode[s].bits, t.encode[s].len);
        assert_eq!(code(b'0' as usize), (0x0, 5));
        assert_eq!(code(b'a' as usize), (0x3, 5));
        assert_eq!(code(b' ' as usize), (0x14, 6));
        assert_eq!(code(b':' as usize), (0x5c, 7));
        assert_eq!(code(b'w' as usize), (0x78, 7));
        assert_eq!(code(b'&' as usize), (0xf8, 8));
        assert_eq!(code(b'!' as usize), (0x3f8, 10));
        assert_eq!(code(b'\'' as usize), (0x7fa, 11));
        assert_eq!(code(b'#' as usize), (0xffa, 12));
        assert_eq!(code(0), (0x1ff8, 13));
        assert_eq!(code(b'^' as usize), (0x3ffc, 14));
        assert_eq!(code(b'<' as usize), (0x7ffc, 15));
        assert_eq!(code(b'\\' as usize), (0x7fff0, 19));
        assert_eq!(code(1), (0x7fffd8, 23));
        assert_eq!(code(9), (0xffffea, 24));
        assert_eq!(code(2), (0xfffffe2, 28));
        assert_eq!(code(10), (0x3ffffffc, 30));
        assert_eq!(code(13), (0x3ffffffd, 30));
        assert_eq!(code(22), (0x3ffffffe, 30));
        assert_eq!(code(256), (0x3fffffff, 30));
    }

    #[test]
    fn rfc_c4_1_www_example_com() {
        let mut out = Vec::new();
        encode(b"www.example.com", &mut out);
        assert_eq!(out, [0xf1, 0xe3, 0xc2, 0xe5, 0xf2, 0x3a, 0x6b, 0xa0, 0xab, 0x90, 0xf4, 0xff]);
        assert_eq!(decode(&out).unwrap(), b"www.example.com");
    }

    #[test]
    fn rfc_c4_2_no_cache() {
        let mut out = Vec::new();
        encode(b"no-cache", &mut out);
        assert_eq!(out, [0xa8, 0xeb, 0x10, 0x64, 0x9c, 0xbf]);
        assert_eq!(decode(&out).unwrap(), b"no-cache");
    }

    #[test]
    fn rfc_c4_3_custom_key_value() {
        let mut out = Vec::new();
        encode(b"custom-key", &mut out);
        assert_eq!(out, [0x25, 0xa8, 0x49, 0xe9, 0x5b, 0xa9, 0x7d, 0x7f]);
        out.clear();
        encode(b"custom-value", &mut out);
        assert_eq!(out, [0x25, 0xa8, 0x49, 0xe9, 0x5b, 0xb8, 0xe8, 0xb4, 0xbf]);
    }

    #[test]
    fn rfc_c6_1_response_strings() {
        let mut out = Vec::new();
        encode(b"302", &mut out);
        assert_eq!(out, [0x64, 0x02]);
        out.clear();
        encode(b"private", &mut out);
        assert_eq!(out, [0xae, 0xc3, 0x77, 0x1a, 0x4b]);
    }

    #[test]
    fn empty_string() {
        let mut out = Vec::new();
        encode(b"", &mut out);
        assert!(out.is_empty());
        assert_eq!(decode(&[]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn all_byte_values_round_trip() {
        let data: Vec<u8> = (0..=255u8).collect();
        let mut out = Vec::new();
        encode(&data, &mut out);
        assert_eq!(decode(&out).unwrap(), data);
    }

    #[test]
    fn encoded_len_matches_encode() {
        for s in [&b"a"[..], b"hello world", b"\x00\xff\x80", b"https://example.org/x?y=z"] {
            let mut out = Vec::new();
            encode(s, &mut out);
            assert_eq!(out.len(), encoded_len(s));
        }
    }

    #[test]
    fn bad_padding_rejected() {
        // 'a' = 00011 (5 bits); valid padding is 111. Zero padding is not.
        let ok = [0b00011_111u8];
        assert_eq!(decode(&ok).unwrap(), b"a");
        let bad = [0b00011_000u8];
        assert!(decode(&bad).is_err());
    }

    #[test]
    fn overlong_padding_rejected() {
        // A full byte of ones is a 8-bit padding ⇒ error per §5.2.
        let bad = [0b00011_111u8, 0xff];
        assert!(decode(&bad).is_err());
    }

    #[test]
    fn eos_in_stream_rejected() {
        // EOS = 30 bits of ones followed by anything.
        let bad = [0xff, 0xff, 0xff, 0xfc];
        assert!(decode(&bad).is_err());
    }
}
