//! HPACK prefix integers (RFC 7541 §5.1).
//!
//! An integer is encoded into the low `prefix` bits of the first octet; if
//! it does not fit, the prefix is filled with ones and the remainder follows
//! in little-endian base-128 groups with a continuation bit.

use crate::Error;

/// Encode `value` with an `prefix`-bit prefix, OR-ing `first_byte_flags`
/// into the first octet's high bits.
pub fn encode(value: u64, prefix: u8, first_byte_flags: u8, out: &mut Vec<u8>) {
    debug_assert!((1..=8).contains(&prefix));
    let max_prefix = (1u64 << prefix) - 1;
    if value < max_prefix {
        out.push(first_byte_flags | value as u8);
        return;
    }
    out.push(first_byte_flags | max_prefix as u8);
    let mut rest = value - max_prefix;
    while rest >= 128 {
        out.push((rest % 128) as u8 | 0x80);
        rest /= 128;
    }
    out.push(rest as u8);
}

/// Decode an integer with an `prefix`-bit prefix from `buf` starting at
/// `*pos`; advances `*pos` past the integer.
pub fn decode(buf: &[u8], pos: &mut usize, prefix: u8) -> Result<u64, Error> {
    debug_assert!((1..=8).contains(&prefix));
    let first = *buf.get(*pos).ok_or(Error::Truncated)?;
    *pos += 1;
    let max_prefix = (1u64 << prefix) - 1;
    let mut value = (first as u64) & max_prefix;
    if value < max_prefix {
        return Ok(value);
    }
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(Error::Truncated)?;
        *pos += 1;
        let group = (byte & 0x7f) as u64;
        value = value
            .checked_add(group.checked_shl(shift).ok_or(Error::IntegerOverflow)?)
            .ok_or(Error::IntegerOverflow)?;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 56 {
            return Err(Error::IntegerOverflow);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(value: u64, prefix: u8) {
        let mut buf = Vec::new();
        encode(value, prefix, 0, &mut buf);
        let mut pos = 0;
        assert_eq!(decode(&buf, &mut pos, prefix).unwrap(), value);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn rfc7541_c_1_1_ten_with_5bit_prefix() {
        // C.1.1: encoding 10 with a 5-bit prefix ⇒ 0b01010.
        let mut buf = Vec::new();
        encode(10, 5, 0, &mut buf);
        assert_eq!(buf, [0b01010]);
    }

    #[test]
    fn rfc7541_c_1_2_1337_with_5bit_prefix() {
        // C.1.2: 1337 ⇒ 1f 9a 0a.
        let mut buf = Vec::new();
        encode(1337, 5, 0, &mut buf);
        assert_eq!(buf, [0x1f, 0x9a, 0x0a]);
        let mut pos = 0;
        assert_eq!(decode(&buf, &mut pos, 5).unwrap(), 1337);
    }

    #[test]
    fn rfc7541_c_1_3_42_on_octet_boundary() {
        // C.1.3: 42 with an 8-bit prefix ⇒ 0x2a.
        let mut buf = Vec::new();
        encode(42, 8, 0, &mut buf);
        assert_eq!(buf, [0x2a]);
    }

    #[test]
    fn flags_are_preserved() {
        let mut buf = Vec::new();
        encode(3, 4, 0x80, &mut buf);
        assert_eq!(buf, [0x83]);
        let mut pos = 0;
        assert_eq!(decode(&buf, &mut pos, 4).unwrap(), 3);
    }

    #[test]
    fn boundary_values_round_trip() {
        for prefix in 1..=8 {
            let max_prefix = (1u64 << prefix) - 1;
            for v in
                [0, 1, max_prefix - 1, max_prefix, max_prefix + 1, 127, 128, 16384, u32::MAX as u64]
            {
                if v == 0 && max_prefix == 0 {
                    continue;
                }
                round_trip(v, prefix);
            }
        }
    }

    #[test]
    fn truncated_input_errors() {
        let buf = [0x1f]; // prefix filled, continuation missing
        let mut pos = 0;
        assert_eq!(decode(&buf, &mut pos, 5), Err(Error::Truncated));
        let mut pos = 0;
        assert_eq!(decode(&[], &mut pos, 5), Err(Error::Truncated));
    }

    #[test]
    fn unbounded_continuation_errors() {
        let mut buf = vec![0x1f];
        buf.extend([0xff; 12]);
        let mut pos = 0;
        assert_eq!(decode(&buf, &mut pos, 5), Err(Error::IntegerOverflow));
    }
}
