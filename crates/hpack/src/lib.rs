//! # h2push-hpack — HPACK header compression (RFC 7541)
//!
//! A from-scratch implementation of HPACK, the header compression used by
//! the HTTP/2 connections the paper's testbed replays (§2.1): prefix
//! integers, the canonical Huffman code of Appendix B, the static table of
//! Appendix A, a size-bounded dynamic table, and an encoder/decoder pair
//! validated against the RFC's Appendix C test vectors.

pub mod codec;
pub mod fx;
pub mod huffman;
pub mod integer;
pub mod table;

pub use codec::{BlockCache, DecodeCache, Decoder, Encoder, HuffmanPolicy};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use table::{Header, IndexTable, Match, STATIC_TABLE};

/// HPACK processing error; all of these are connection errors of type
/// COMPRESSION_ERROR at the HTTP/2 layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// Input ended in the middle of a field.
    Truncated,
    /// A prefix integer exceeded the implementation limit.
    IntegerOverflow,
    /// Invalid Huffman padding, an EOS symbol, or an undefined code.
    InvalidHuffman,
    /// A (static or dynamic) table index was out of range.
    InvalidIndex,
    /// A dynamic table size update exceeded the protocol maximum.
    SizeUpdateTooLarge,
    /// A decoded block exceeded the configured maximum header-list size
    /// (a header bomb: small wire bytes, huge decoded size).
    HeaderListTooLarge,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Truncated => write!(f, "truncated HPACK block"),
            Error::IntegerOverflow => write!(f, "HPACK integer overflow"),
            Error::InvalidHuffman => write!(f, "invalid Huffman data"),
            Error::InvalidIndex => write!(f, "invalid table index"),
            Error::SizeUpdateTooLarge => write!(f, "dynamic table size update above limit"),
            Error::HeaderListTooLarge => write!(f, "decoded header list above size limit"),
        }
    }
}

impl std::error::Error for Error {}
