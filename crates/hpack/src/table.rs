//! HPACK indexing tables (RFC 7541 §2.3, Appendix A).

use std::collections::VecDeque;

/// A header field: name and value as byte strings.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Header {
    /// Field name (lowercase for HTTP/2).
    pub name: Vec<u8>,
    /// Field value.
    pub value: Vec<u8>,
}

impl Header {
    /// Convenience constructor from string slices.
    pub fn new(name: &str, value: &str) -> Self {
        Header { name: name.as_bytes().to_vec(), value: value.as_bytes().to_vec() }
    }

    /// The size of an entry per §4.1: name length + value length + 32.
    pub fn table_size(&self) -> usize {
        self.name.len() + self.value.len() + 32
    }
}

/// The 61-entry static table of Appendix A, 1-indexed.
pub const STATIC_TABLE: [(&str, &str); 61] = [
    (":authority", ""),
    (":method", "GET"),
    (":method", "POST"),
    (":path", "/"),
    (":path", "/index.html"),
    (":scheme", "http"),
    (":scheme", "https"),
    (":status", "200"),
    (":status", "204"),
    (":status", "206"),
    (":status", "304"),
    (":status", "400"),
    (":status", "404"),
    (":status", "500"),
    ("accept-charset", ""),
    ("accept-encoding", "gzip, deflate"),
    ("accept-language", ""),
    ("accept-ranges", ""),
    ("accept", ""),
    ("access-control-allow-origin", ""),
    ("age", ""),
    ("allow", ""),
    ("authorization", ""),
    ("cache-control", ""),
    ("content-disposition", ""),
    ("content-encoding", ""),
    ("content-language", ""),
    ("content-length", ""),
    ("content-location", ""),
    ("content-range", ""),
    ("content-type", ""),
    ("cookie", ""),
    ("date", ""),
    ("etag", ""),
    ("expect", ""),
    ("expires", ""),
    ("from", ""),
    ("host", ""),
    ("if-match", ""),
    ("if-modified-since", ""),
    ("if-none-match", ""),
    ("if-range", ""),
    ("if-unmodified-since", ""),
    ("last-modified", ""),
    ("link", ""),
    ("location", ""),
    ("max-forwards", ""),
    ("proxy-authenticate", ""),
    ("proxy-authorization", ""),
    ("range", ""),
    ("referer", ""),
    ("refresh", ""),
    ("retry-after", ""),
    ("server", ""),
    ("set-cookie", ""),
    ("strict-transport-security", ""),
    ("transfer-encoding", ""),
    ("user-agent", ""),
    ("vary", ""),
    ("via", ""),
    ("www-authenticate", ""),
];

/// Result of searching the combined index space for a header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Match {
    /// Exact name+value match at this index.
    Full(usize),
    /// Name-only match at this index.
    Name(usize),
    /// No match.
    None,
}

/// The dynamic table plus the combined (static ∥ dynamic) index space.
///
/// Indices are 1-based; 1..=61 address the static table, 62.. address the
/// dynamic table newest-first (§2.3.3).
#[derive(Debug, Clone)]
pub struct IndexTable {
    entries: VecDeque<Header>,
    size: usize,
    max_size: usize,
    /// The protocol ceiling for `max_size` (SETTINGS_HEADER_TABLE_SIZE on
    /// the decoder side).
    capacity_limit: usize,
    /// Retired entries whose name/value buffers are reused by
    /// [`IndexTable::insert_from`]. Invisible to every observable table
    /// operation (lookups, folds, eviction accounting).
    free: Vec<Header>,
}

/// Retired entries kept for reuse; beyond this they are simply dropped.
const FREE_LIST_CAP: usize = 64;

impl IndexTable {
    /// Create a table with the HTTP/2 default size of 4096 octets.
    pub fn new() -> Self {
        Self::with_limit(4096)
    }

    /// Create a table whose size and ceiling are both `limit`.
    pub fn with_limit(limit: usize) -> Self {
        IndexTable {
            entries: VecDeque::new(),
            size: 0,
            max_size: limit,
            capacity_limit: limit,
            free: Vec::new(),
        }
    }

    /// Restore the state of [`IndexTable::with_limit`]`(limit)` while
    /// keeping every container allocation (entry ring, freelist, retired
    /// name/value buffers) for the next use.
    pub fn reset(&mut self, limit: usize) {
        while let Some(h) = self.entries.pop_back() {
            self.park(h);
        }
        self.size = 0;
        self.max_size = limit;
        self.capacity_limit = limit;
    }

    fn park(&mut self, h: Header) {
        if self.free.len() < FREE_LIST_CAP {
            self.free.push(h);
        }
    }

    /// Current dynamic table size in octets (§4.1 accounting).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Current maximum size.
    pub fn max_size(&self) -> usize {
        self.max_size
    }

    /// Number of dynamic entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the dynamic table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Change the maximum size (a "dynamic table size update"), evicting as
    /// needed. Fails if above the protocol ceiling.
    pub fn set_max_size(&mut self, new_max: usize) -> Result<(), crate::Error> {
        if new_max > self.capacity_limit {
            return Err(crate::Error::SizeUpdateTooLarge);
        }
        self.max_size = new_max;
        self.evict();
        Ok(())
    }

    /// Raise or lower the protocol ceiling (SETTINGS change).
    pub fn set_capacity_limit(&mut self, limit: usize) {
        self.capacity_limit = limit;
        if self.max_size > limit {
            self.max_size = limit;
            self.evict();
        }
    }

    /// Insert a header at the front of the dynamic table (§4.4). An entry
    /// larger than the whole table empties it.
    pub fn insert(&mut self, header: Header) {
        let esize = header.table_size();
        self.size += esize;
        self.entries.push_front(header);
        self.evict();
    }

    /// [`IndexTable::insert`] from borrowed name/value bytes, reusing a
    /// retired entry's buffers when one is available. Identical observable
    /// behavior; zero allocations in steady state.
    pub fn insert_from(&mut self, name: &[u8], value: &[u8]) {
        match self.free.pop() {
            Some(mut h) => {
                h.name.clear();
                h.name.extend_from_slice(name);
                h.value.clear();
                h.value.extend_from_slice(value);
                self.insert(h);
            }
            None => self.insert(Header { name: name.to_vec(), value: value.to_vec() }),
        }
    }

    fn evict(&mut self) {
        while self.size > self.max_size {
            match self.entries.pop_back() {
                Some(h) => {
                    self.size -= h.table_size();
                    self.park(h);
                }
                None => {
                    // Inserting an oversized entry leaves an empty table.
                    self.size = 0;
                    break;
                }
            }
        }
    }

    /// Resolve a 1-based index in the combined space.
    pub fn get(&self, index: usize) -> Result<Header, crate::Error> {
        if index == 0 {
            return Err(crate::Error::InvalidIndex);
        }
        if index <= STATIC_TABLE.len() {
            let (n, v) = STATIC_TABLE[index - 1];
            return Ok(Header::new(n, v));
        }
        self.entries.get(index - STATIC_TABLE.len() - 1).cloned().ok_or(crate::Error::InvalidIndex)
    }

    /// Fold the complete observable table state — limits plus every dynamic
    /// entry in index order — into `hash` (FNV-1a). Two tables with equal
    /// folds behave identically for all future operations, which is what
    /// the encoder-state fingerprint of [`crate::BlockCache`] relies on.
    pub(crate) fn fold_state(&self, hash: &mut u64) {
        use crate::codec::{fnv1a, fnv1a_usize};
        fnv1a_usize(hash, self.max_size);
        fnv1a_usize(hash, self.capacity_limit);
        fnv1a_usize(hash, self.entries.len());
        for e in &self.entries {
            fnv1a_usize(hash, e.name.len());
            fnv1a(hash, &e.name);
            fnv1a_usize(hash, e.value.len());
            fnv1a(hash, &e.value);
        }
    }

    /// Find the best index for `header`: an exact match if one exists,
    /// otherwise a name match. Static entries win ties (smaller indices
    /// compress better).
    pub fn find(&self, header: &Header) -> Match {
        let mut name_match: Option<usize> = None;
        for (i, (n, v)) in STATIC_TABLE.iter().enumerate() {
            if n.as_bytes() == header.name.as_slice() {
                if v.as_bytes() == header.value.as_slice() {
                    return Match::Full(i + 1);
                }
                name_match.get_or_insert(i + 1);
            }
        }
        for (i, e) in self.entries.iter().enumerate() {
            if e.name == header.name {
                let idx = STATIC_TABLE.len() + i + 1;
                if e.value == header.value {
                    return Match::Full(idx);
                }
                name_match.get_or_insert(idx);
            }
        }
        match name_match {
            Some(i) => Match::Name(i),
            None => Match::None,
        }
    }
}

impl Default for IndexTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_table_sanity() {
        assert_eq!(STATIC_TABLE.len(), 61);
        assert_eq!(STATIC_TABLE[0].0, ":authority");
        assert_eq!(STATIC_TABLE[1], (":method", "GET"));
        assert_eq!(STATIC_TABLE[60].0, "www-authenticate");
    }

    #[test]
    fn get_static_and_dynamic() {
        let mut t = IndexTable::new();
        assert_eq!(t.get(2).unwrap(), Header::new(":method", "GET"));
        t.insert(Header::new("x-a", "1"));
        t.insert(Header::new("x-b", "2"));
        // Newest entry is index 62.
        assert_eq!(t.get(62).unwrap(), Header::new("x-b", "2"));
        assert_eq!(t.get(63).unwrap(), Header::new("x-a", "1"));
        assert!(t.get(64).is_err());
        assert!(t.get(0).is_err());
    }

    #[test]
    fn entry_size_accounting() {
        // §4.1: size = len(name) + len(value) + 32.
        let h = Header::new("custom-key", "custom-header");
        assert_eq!(h.table_size(), 10 + 13 + 32);
        let mut t = IndexTable::new();
        t.insert(h);
        assert_eq!(t.size(), 55);
    }

    #[test]
    fn eviction_on_overflow() {
        let mut t = IndexTable::with_limit(100);
        t.insert(Header::new("aaaa", "bbbb")); // 40
        t.insert(Header::new("cccc", "dddd")); // 40
        assert_eq!(t.len(), 2);
        t.insert(Header::new("eeee", "ffff")); // 40 → evicts oldest
        assert_eq!(t.len(), 2);
        assert_eq!(t.size(), 80);
        assert_eq!(t.get(62).unwrap(), Header::new("eeee", "ffff"));
        assert_eq!(t.get(63).unwrap(), Header::new("cccc", "dddd"));
    }

    #[test]
    fn oversized_entry_empties_table() {
        let mut t = IndexTable::with_limit(50);
        t.insert(Header::new("a", "b"));
        assert_eq!(t.len(), 1);
        t.insert(Header::new("name", &"v".repeat(100)));
        assert_eq!(t.len(), 0);
        assert_eq!(t.size(), 0);
    }

    #[test]
    fn size_update_evicts() {
        let mut t = IndexTable::with_limit(4096);
        for i in 0..10 {
            t.insert(Header::new(&format!("h{i}"), "v"));
        }
        t.set_max_size(70).unwrap();
        assert!(t.size() <= 70);
        assert_eq!(t.len(), 2);
        assert!(t.set_max_size(5000).is_err());
    }

    #[test]
    fn find_prefers_full_match() {
        let mut t = IndexTable::new();
        assert_eq!(t.find(&Header::new(":method", "GET")), Match::Full(2));
        assert_eq!(t.find(&Header::new(":method", "PATCH")), Match::Name(2));
        assert_eq!(t.find(&Header::new("x-new", "v")), Match::None);
        t.insert(Header::new("x-new", "v"));
        assert_eq!(t.find(&Header::new("x-new", "v")), Match::Full(62));
        // Static name match beats dynamic full match? No — full match wins.
        t.insert(Header::new(":method", "PATCH"));
        assert_eq!(t.find(&Header::new(":method", "PATCH")), Match::Full(62));
    }

    #[test]
    fn capacity_limit_shrinks_max() {
        let mut t = IndexTable::with_limit(4096);
        for i in 0..20 {
            t.insert(Header::new(&format!("header-{i}"), "value"));
        }
        t.set_capacity_limit(100);
        assert!(t.size() <= 100);
        assert_eq!(t.max_size(), 100);
    }
}
