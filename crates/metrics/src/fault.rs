//! Loss-recovery and fault-tolerance aggregation.
//!
//! The netsim's fault injection (`h2push-netsim::FaultSpec`) produces
//! per-run packet counters, and the hardened browser produces per-run
//! recovery counters (retries, timeouts, connection errors, partial
//! loads). This module folds those per-run observations into the
//! aggregate rates an experiment reports — e.g. "at 2 % Gilbert–Elliott
//! loss, 4.1 % of packets were retransmitted and 3 % of loads ended
//! partial". Everything is plain numbers so this crate stays free of
//! simulator dependencies.

/// One run's worth of fault/recovery counters, as reported by the network
/// (`NetStats`) and the browser (`LoadResult`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultObservation {
    /// Data packets offered to the lossy access link.
    pub data_packets: u64,
    /// Packets dropped, for any reason (queue, random, fault, flap).
    pub drops: u64,
    /// RTO retransmissions the TCP model performed.
    pub retransmits: u64,
    /// Fetches the browser re-issued after a timeout or error.
    pub retries: u64,
    /// Per-resource timeouts that fired.
    pub timeouts: u64,
    /// Transport connections lost to protocol errors.
    pub conn_errors: u64,
    /// Resources given up on entirely.
    pub failed_resources: u64,
    /// The load ended partial (deadline hit or resources failed).
    pub partial: bool,
}

/// Aggregate loss-recovery statistics over many runs.
///
/// `record` each run's [`FaultObservation`]; read the derived rates once
/// all runs are in. All rates are safe on an empty accumulator (they
/// return 0).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LossRecovery {
    runs: u64,
    data_packets: u64,
    drops: u64,
    retransmits: u64,
    retries: u64,
    timeouts: u64,
    conn_errors: u64,
    failed_resources: u64,
    partial_loads: u64,
}

impl LossRecovery {
    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one run into the aggregate.
    pub fn record(&mut self, obs: FaultObservation) {
        self.runs += 1;
        self.data_packets += obs.data_packets;
        self.drops += obs.drops;
        self.retransmits += obs.retransmits;
        self.retries += obs.retries;
        self.timeouts += obs.timeouts;
        self.conn_errors += obs.conn_errors;
        self.failed_resources += obs.failed_resources;
        self.partial_loads += u64::from(obs.partial);
    }

    /// Merge another accumulator (e.g. per-strategy cells into a total).
    pub fn merge(&mut self, other: &LossRecovery) {
        self.runs += other.runs;
        self.data_packets += other.data_packets;
        self.drops += other.drops;
        self.retransmits += other.retransmits;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.conn_errors += other.conn_errors;
        self.failed_resources += other.failed_resources;
        self.partial_loads += other.partial_loads;
    }

    /// Number of runs recorded.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Total packets dropped across all runs.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Total RTO retransmissions across all runs.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Observed packet-loss rate: drops / data packets.
    pub fn loss_rate(&self) -> f64 {
        ratio(self.drops, self.data_packets)
    }

    /// Retransmission rate: RTO retransmits / data packets.
    pub fn retransmit_rate(&self) -> f64 {
        ratio(self.retransmits, self.data_packets)
    }

    /// Share of runs that ended as partial loads (0..=1).
    pub fn partial_share(&self) -> f64 {
        ratio(self.partial_loads, self.runs)
    }

    /// Mean browser retries per run.
    pub fn mean_retries(&self) -> f64 {
        ratio(self.retries, self.runs)
    }

    /// Mean per-resource timeouts per run.
    pub fn mean_timeouts(&self) -> f64 {
        ratio(self.timeouts, self.runs)
    }

    /// Mean connection errors per run.
    pub fn mean_conn_errors(&self) -> f64 {
        ratio(self.conn_errors, self.runs)
    }

    /// Mean resources given up on per run.
    pub fn mean_failed_resources(&self) -> f64 {
        ratio(self.failed_resources, self.runs)
    }

    /// True when no fault or recovery activity was observed at all — the
    /// zero-fault acceptance check ("a clean run records nothing").
    pub fn is_clean(&self) -> bool {
        self.drops == 0
            && self.retransmits == 0
            && self.retries == 0
            && self.timeouts == 0
            && self.conn_errors == 0
            && self.failed_resources == 0
            && self.partial_loads == 0
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator_reports_zero_rates() {
        let agg = LossRecovery::new();
        assert_eq!(agg.runs(), 0);
        assert_eq!(agg.loss_rate(), 0.0);
        assert_eq!(agg.retransmit_rate(), 0.0);
        assert_eq!(agg.partial_share(), 0.0);
        assert!(agg.is_clean());
    }

    #[test]
    fn rates_follow_recorded_observations() {
        let mut agg = LossRecovery::new();
        agg.record(FaultObservation {
            data_packets: 1_000,
            drops: 20,
            retransmits: 20,
            retries: 2,
            timeouts: 1,
            conn_errors: 0,
            failed_resources: 0,
            partial: false,
        });
        agg.record(FaultObservation {
            data_packets: 1_000,
            drops: 0,
            retransmits: 0,
            retries: 0,
            timeouts: 0,
            conn_errors: 1,
            failed_resources: 2,
            partial: true,
        });
        assert_eq!(agg.runs(), 2);
        assert!((agg.loss_rate() - 0.01).abs() < 1e-12);
        assert!((agg.retransmit_rate() - 0.01).abs() < 1e-12);
        assert_eq!(agg.partial_share(), 0.5);
        assert_eq!(agg.mean_retries(), 1.0);
        assert_eq!(agg.mean_timeouts(), 0.5);
        assert_eq!(agg.mean_conn_errors(), 0.5);
        assert_eq!(agg.mean_failed_resources(), 1.0);
        assert!(!agg.is_clean());
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let obs = FaultObservation {
            data_packets: 500,
            drops: 5,
            retransmits: 5,
            retries: 1,
            timeouts: 1,
            conn_errors: 0,
            failed_resources: 0,
            partial: false,
        };
        let mut a = LossRecovery::new();
        a.record(obs);
        let mut b = LossRecovery::new();
        b.record(obs);
        let mut merged = a;
        merged.merge(&b);
        let mut direct = LossRecovery::new();
        direct.record(obs);
        direct.record(obs);
        assert_eq!(merged, direct);
    }

    #[test]
    fn clean_runs_stay_clean() {
        let mut agg = LossRecovery::new();
        for _ in 0..31 {
            agg.record(FaultObservation { data_packets: 10_000, ..Default::default() });
        }
        assert!(agg.is_clean());
        assert_eq!(agg.runs(), 31);
    }
}
