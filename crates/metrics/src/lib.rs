//! # h2push-metrics — statistics for the paper's evaluation
//!
//! PLT and SpeedIndex come from the browser model; this crate supplies the
//! statistics the paper reports them with: medians over 31 runs, standard
//! errors (Fig. 2a), CDFs over site sets (Figs. 2b/3), means with Student-t
//! confidence intervals at 95 % (Fig. 4) and 99.5 % (Fig. 6), and relative
//! deltas against a baseline (Δ < 0 is better throughout the paper).

pub mod fault;
pub mod stats;
pub mod streaming;

pub use fault::{FaultObservation, LossRecovery};
pub use stats::{cdf_points, percentile, RunStats};
pub use streaming::StreamingHist;

/// Relative change in percent of `value` against `baseline`
/// (−50 ⇒ halved; the paper plots these as "avg. relative changes").
pub fn relative_change_pct(value: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        return 0.0;
    }
    (value - baseline) / baseline * 100.0
}

/// Absolute delta `value − baseline` (the paper's Δ plots, Δ < 0 better).
pub fn delta(value: f64, baseline: f64) -> f64 {
    value - baseline
}

/// Share of observations strictly below `threshold` (for statements like
/// "52 % of sites have < 20 % pushable objects").
pub fn share_below(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v < threshold).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_change() {
        assert_eq!(relative_change_pct(50.0, 100.0), -50.0);
        assert_eq!(relative_change_pct(150.0, 100.0), 50.0);
        assert_eq!(relative_change_pct(1.0, 0.0), 0.0);
    }

    #[test]
    fn delta_sign_convention() {
        assert!(delta(90.0, 100.0) < 0.0, "faster is negative");
    }

    #[test]
    fn share_below_counts_strictly() {
        let v = [0.1, 0.2, 0.3];
        assert!((share_below(&v, 0.2) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(share_below(&[], 1.0), 0.0);
    }
}

#[cfg(test)]
mod helper_tests {
    use crate::stats::{cdf_points, percentile};

    #[test]
    fn cdf_and_percentile_agree_on_median() {
        let v = [5.0, 1.0, 9.0, 3.0, 7.0];
        let p50 = percentile(&v, 50.0);
        assert_eq!(p50, 5.0);
        let cdf = cdf_points(&v);
        let below: usize = cdf.iter().filter(|&&(x, _)| x <= p50).count();
        assert_eq!(below, 3);
    }
}
