//! Descriptive statistics over repeated measurements.

/// Summary statistics of one metric over repeated runs (the paper uses 31
/// repetitions per configuration, §4.1).
///
/// ```
/// use h2push_metrics::RunStats;
///
/// let s = RunStats::of(&[120.0, 118.0, 122.0, 119.0, 121.0]);
/// assert_eq!(s.median, 120.0);
/// assert!(s.std_err < 1.0);
/// assert!(s.ci_half_width(0.995) > s.ci_half_width(0.95));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (the paper's default reporting statistic).
    pub median: f64,
    /// Sample standard deviation (n−1).
    pub std_dev: f64,
    /// Standard error of the mean σ/√n — the Fig. 2a statistic σx̄.
    pub std_err: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl RunStats {
    /// Compute the summary of `values`. Panics on an empty slice.
    pub fn of(values: &[f64]) -> RunStats {
        Self::try_of(values).expect("no observations")
    }

    /// Non-panicking [`RunStats::of`]: `None` on an empty slice. Sweep
    /// aggregation boundaries use this so a cell whose every rep failed
    /// (all-panic, all-watchdog) reports "no data" instead of tearing
    /// down the reporter.
    pub fn try_of(values: &[f64]) -> Option<RunStats> {
        if values.is_empty() {
            return None;
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let std_dev = var.sqrt();
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Some(RunStats {
            n,
            mean,
            median: percentile_sorted(&sorted, 50.0),
            std_dev,
            std_err: std_dev / (n as f64).sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
        })
    }

    /// Student-t confidence interval of the mean at `level` ∈ {0.95,
    /// 0.995} (the paper's Fig. 4 and Fig. 6 bars): returns the half-width.
    pub fn ci_half_width(&self, level: f64) -> f64 {
        t_critical(level, self.n.saturating_sub(1)) * self.std_err
    }
}

/// Two-sided Student-t critical value for confidence `level` and `df`
/// degrees of freedom. Exact values are tabulated for the paper's run
/// counts; other dfs interpolate or fall back to the normal quantile.
fn t_critical(level: f64, df: usize) -> f64 {
    // (df, t_95, t_99.5) — two-sided.
    const TABLE: &[(usize, f64, f64)] = &[
        (1, 12.706, 127.32),
        (2, 4.303, 14.089),
        (3, 3.182, 7.453),
        (4, 2.776, 5.598),
        (5, 2.571, 4.773),
        (10, 2.228, 3.581),
        (15, 2.131, 3.286),
        (20, 2.086, 3.153),
        (30, 2.042, 3.030),
        (60, 2.000, 2.915),
        (120, 1.980, 2.860),
    ];
    let pick = |t95: f64, t995: f64| -> f64 {
        if (level - 0.95).abs() < 1e-9 {
            t95
        } else if (level - 0.995).abs() < 1e-9 {
            t995
        } else {
            // Normal fallback for other levels.
            normal_quantile(0.5 + level / 2.0)
        }
    };
    if df == 0 {
        return f64::INFINITY;
    }
    let mut prev = TABLE[0];
    for &row in TABLE {
        if df == row.0 {
            return pick(row.1, row.2);
        }
        if df < row.0 {
            // Linear interpolation between brackets.
            let f = (df - prev.0) as f64 / (row.0 - prev.0) as f64;
            return pick(prev.1 + f * (row.1 - prev.1), prev.2 + f * (row.2 - prev.2));
        }
        prev = row;
    }
    pick(1.96, 2.807)
}

/// Acklam-style rational approximation of the standard normal quantile.
fn normal_quantile(p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p));
    // Beasley-Springer-Moro.
    let a = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    let b = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    let c = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.93816398269878e+00,
    ];
    let d = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let plow = 0.02425;
    if p < plow {
        let q = (-2.0 * p.ln()).sqrt();
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5])
            / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if p > 1.0 - plow {
        return -normal_quantile(1.0 - p);
    }
    let q = p - 0.5;
    let r = q * q;
    (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q
        / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
}

/// `p`-th percentile (0..=100) by linear interpolation.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    percentile_sorted(&sorted, p)
}

fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Empirical CDF as `(value, fraction ≤ value)` points, ready for the
/// paper's "CDF (sites)" plots.
pub fn cdf_points(values: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len();
    sorted.into_iter().enumerate().map(|(i, v)| (v, (i + 1) as f64 / n as f64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = RunStats::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
        assert!((s.std_err - (2.5f64).sqrt() / 5.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn try_of_handles_empty_and_agrees_with_of() {
        assert_eq!(RunStats::try_of(&[]), None);
        let values = [3.0, 1.0, 2.0];
        assert_eq!(RunStats::try_of(&values), Some(RunStats::of(&values)));
    }

    #[test]
    fn single_observation() {
        let s = RunStats::of(&[7.0]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn median_of_even_count_interpolates() {
        let s = RunStats::of(&[1.0, 2.0, 3.0, 10.0]);
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn ci_uses_t_for_31_runs() {
        // 31 runs ⇒ df 30 ⇒ t95 = 2.042.
        let values: Vec<f64> = (0..31).map(|i| i as f64).collect();
        let s = RunStats::of(&values);
        let hw = s.ci_half_width(0.95);
        assert!((hw / s.std_err - 2.042).abs() < 1e-9);
        let hw995 = s.ci_half_width(0.995);
        assert!((hw995 / s.std_err - 3.030).abs() < 1e-9);
        assert!(hw995 > hw);
    }

    #[test]
    fn t_interpolates_between_rows() {
        // df 25 lies between 20 (2.086) and 30 (2.042).
        let t = t_critical(0.95, 25);
        assert!((2.042..2.086).contains(&t));
    }

    #[test]
    fn percentile_interpolation() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 100.0), 40.0);
        assert_eq!(percentile(&v, 50.0), 25.0);
    }

    #[test]
    fn cdf_shape() {
        let pts = cdf_points(&[3.0, 1.0, 2.0]);
        assert_eq!(pts, vec![(1.0, 1.0 / 3.0), (2.0, 2.0 / 3.0), (3.0, 1.0)]);
    }

    #[test]
    fn normal_quantile_sanity() {
        assert!((normal_quantile(0.975) - 1.95996).abs() < 1e-3);
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.025) + 1.95996).abs() < 1e-3);
    }
}
