//! Bounded-memory, mergeable aggregation for population-scale sweeps.
//!
//! A 10^5–10^6-cell grid cannot retain every per-rep output just to report
//! percentiles at the end. [`StreamingHist`] is the mergeable alternative:
//! a fixed-bin counting histogram whose state is independent of how many
//! observations flow through it and — because bin counts are integers and
//! merging is elementwise addition — independent of the order or grouping
//! in which observations arrive. A sweep folded cell-by-cell, chunk-by-
//! chunk, or resumed from a checkpoint journal produces bit-identical
//! bins, so streaming-mode percentiles match the retained-mode computation
//! exactly (the equality the checkpoint suite asserts).
//!
//! Quantization: values are attributed to bins of `bin_width`, so a
//! percentile is exact to within one bin (1 ms at the default PLT
//! configuration). `min`/`max`/`count` are tracked exactly.

/// A deterministic fixed-bin histogram over `[0, max_value)` plus one
/// overflow bin. All state is integer counts (plus exact min/max), so two
/// hists fed the same multiset of observations are identical regardless
/// of insertion order, and [`StreamingHist::merge`] is associative and
/// commutative.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingHist {
    bin_width: f64,
    /// `bins[i]` counts values in `[i*bin_width, (i+1)*bin_width)`; the
    /// final slot counts overflow (`>= max_value`) including non-finite
    /// values.
    bins: Vec<u64>,
    count: u64,
    /// Exact extrema (f64::INFINITY / NEG_INFINITY when empty).
    min: f64,
    max: f64,
}

impl StreamingHist {
    /// A histogram with bins of `bin_width` covering `[0, max_value)`.
    /// Values at or beyond `max_value` (and negative or non-finite values)
    /// land in the overflow bin and are reported via exact min/max.
    pub fn new(bin_width: f64, max_value: f64) -> StreamingHist {
        assert!(bin_width > 0.0 && bin_width.is_finite(), "bin width must be positive");
        assert!(max_value > 0.0 && max_value.is_finite(), "range must be positive");
        let n = (max_value / bin_width).ceil() as usize;
        StreamingHist {
            bin_width,
            bins: vec![0; n + 1],
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The default configuration for PLT/SpeedIndex in milliseconds:
    /// 1 ms bins up to the replay deadline (180 s).
    pub fn millis_default() -> StreamingHist {
        StreamingHist::new(1.0, 180_000.0)
    }

    /// Fold one observation in.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        let last = self.bins.len() - 1;
        let idx = if v.is_finite() && v >= 0.0 {
            ((v / self.bin_width) as usize).min(last)
        } else {
            last
        };
        self.bins[idx] += 1;
    }

    /// Merge another histogram of the same configuration (elementwise bin
    /// addition — associative, commutative, and exact).
    ///
    /// Panics if the configurations differ; merging hists with different
    /// bins would silently misattribute counts.
    pub fn merge(&mut self, other: &StreamingHist) {
        assert_eq!(self.bin_width, other.bin_width, "bin width mismatch");
        assert_eq!(self.bins.len(), other.bins.len(), "bin count mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Observations folded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The `p`-th percentile (0..=100), `None` when empty. The rank
    /// convention matches [`crate::percentile`] (linear in rank); the
    /// value is interpolated within the bin holding that rank, so the
    /// result is exact to within one bin width. Ranks landing in the
    /// overflow bin report the exact maximum.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (p / 100.0).clamp(0.0, 1.0) * (self.count - 1) as f64;
        let mut before = 0u64;
        for (i, &n) in self.bins.iter().enumerate() {
            if n == 0 {
                continue;
            }
            // Observations in this bin occupy ranks [before, before+n).
            if rank < (before + n) as f64 || before + n == self.count {
                if i == self.bins.len() - 1 {
                    return Some(self.max);
                }
                // Spread the bin's observations evenly across its span.
                let frac = ((rank - before as f64) / n as f64).clamp(0.0, 1.0);
                let lo = i as f64 * self.bin_width;
                return Some((lo + frac * self.bin_width).min(self.max).max(self.min));
            }
            before += n;
        }
        Some(self.max)
    }

    /// Median shorthand.
    pub fn p50(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// 90th percentile shorthand.
    pub fn p90(&self) -> Option<f64> {
        self.percentile(90.0)
    }

    /// 99th percentile shorthand.
    pub fn p99(&self) -> Option<f64> {
        self.percentile(99.0)
    }

    /// Empirical CDF as `(bin upper edge, cumulative fraction)` for every
    /// non-empty bin — the paper's "CDF (sites)" plots at population
    /// scale. The overflow bin reports the exact maximum as its edge.
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        if self.count == 0 {
            return out;
        }
        let mut cum = 0u64;
        let last = self.bins.len() - 1;
        for (i, &n) in self.bins.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cum += n;
            let edge = if i == last { self.max } else { (i + 1) as f64 * self.bin_width };
            out.push((edge, cum as f64 / self.count as f64));
        }
        out
    }

    /// The raw bin counts (final slot is the overflow bin) — for tests
    /// and serialization.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_hist_reports_nothing() {
        let h = StreamingHist::new(1.0, 100.0);
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert!(h.cdf().is_empty());
    }

    #[test]
    fn merge_equals_sequential_fold() {
        let values: Vec<f64> = (0..1000).map(|i| (i * 37 % 500) as f64 + 0.25).collect();
        let mut whole = StreamingHist::new(1.0, 600.0);
        for &v in &values {
            whole.record(v);
        }
        // Split into uneven chunks, fold each, merge in reverse order.
        let mut parts: Vec<StreamingHist> = Vec::new();
        for chunk in values.chunks(137) {
            let mut h = StreamingHist::new(1.0, 600.0);
            for &v in chunk {
                h.record(v);
            }
            parts.push(h);
        }
        let mut merged = StreamingHist::new(1.0, 600.0);
        for part in parts.iter().rev() {
            merged.merge(part);
        }
        assert_eq!(whole, merged, "merge must be order-independent and exact");
        assert_eq!(whole.count(), 1000);
    }

    #[test]
    fn percentiles_are_within_one_bin_of_exact() {
        let values: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let mut h = StreamingHist::new(1.0, 200.0);
        for &v in &values {
            h.record(v);
        }
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            let exact = crate::percentile(&values, p);
            let approx = h.percentile(p).unwrap();
            assert!(
                (exact - approx).abs() <= 1.0,
                "p{p}: hist {approx} vs exact {exact} differ by more than one bin"
            );
        }
        assert_eq!(h.min(), Some(0.0));
        assert_eq!(h.max(), Some(100.0));
    }

    #[test]
    fn overflow_and_pathological_values_land_in_the_overflow_bin() {
        let mut h = StreamingHist::new(1.0, 10.0);
        h.record(5.0);
        h.record(1e9);
        h.record(-3.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 4);
        let last = *h.bins().last().unwrap();
        assert_eq!(last, 3, "overflow, negative and NaN all counted out-of-range");
        assert_eq!(h.max(), Some(1e9));
        // p100 in the overflow bin reports the exact maximum.
        assert_eq!(h.percentile(100.0), Some(1e9));
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut h = StreamingHist::new(10.0, 100.0);
        for v in [5.0, 15.0, 15.0, 95.0, 400.0] {
            h.record(v);
        }
        let cdf = h.cdf();
        assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1 && w[0].0 <= w[1].0));
        assert_eq!(cdf.last().unwrap().1, 1.0);
        assert_eq!(cdf.last().unwrap().0, 400.0, "overflow edge is the exact max");
    }

    #[test]
    fn single_value_percentiles_collapse() {
        let mut h = StreamingHist::millis_default();
        h.record(1234.5);
        for p in [0.0, 50.0, 100.0] {
            let v = h.percentile(p).unwrap();
            assert!((v - 1234.5).abs() <= 1.0, "p{p} = {v}");
        }
    }
}
