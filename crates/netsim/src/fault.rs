//! Deterministic fault injection.
//!
//! The paper evaluates push only under a loss-free emulated DSL link, yet
//! loss and jitter are exactly where HTTP/2 multiplexing — and therefore
//! push — wins or loses (cf. *Domain-Sharding for Faster HTTP/2 in Lossy
//! Cellular Networks*). A [`FaultSpec`] describes everything a hostile
//! access link can do to the replay:
//!
//! * **Random loss** — Bernoulli (independent per packet) or
//!   Gilbert–Elliott (a two-state Markov chain producing the bursty loss
//!   real radio links exhibit);
//! * **Bounded extra jitter** — uniform per-packet timing noise on top of
//!   the spec's base jitter;
//! * **Reordering** — a packet is held back `reorder_hold` long; packets
//!   behind it are released in order at its arrival, modelling TCP's
//!   reassembly queue (head-of-line blocking);
//! * **Link flaps** — wall-clock windows during which the access link
//!   drops every data packet (mid-load outages).
//!
//! Everything is driven by a dedicated xorshift stream seeded from the
//! run's [`NetworkSpec`](crate::NetworkSpec) seed, *separate* from the
//! base jitter/loss stream — so the zero-fault [`FaultSpec::default`]
//! consumes no randomness and reproduces fault-free runs bit-identically,
//! while any seeded fault profile replays bit-identically across reruns.

use crate::time::{SimDuration, SimTime};

/// The packet-loss process applied to data packets on the access links.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LossModel {
    /// No injected loss.
    #[default]
    None,
    /// Independent per-packet loss with probability `rate`.
    Bernoulli {
        /// Drop probability per data packet.
        rate: f64,
    },
    /// Two-state Markov (Gilbert–Elliott) burst loss: the link is either
    /// in a *good* or a *bad* state; per packet it transitions
    /// good→bad with `p_enter_bad` and bad→good with `p_exit_bad`, and
    /// drops with `loss_good` / `loss_bad` respectively.
    GilbertElliott {
        /// P(good → bad) per packet.
        p_enter_bad: f64,
        /// P(bad → good) per packet.
        p_exit_bad: f64,
        /// Drop probability while in the good state.
        loss_good: f64,
        /// Drop probability while in the bad state.
        loss_bad: f64,
    },
}

impl LossModel {
    /// Average stationary loss rate of the model.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { rate } => rate,
            LossModel::GilbertElliott { p_enter_bad, p_exit_bad, loss_good, loss_bad } => {
                let denom = p_enter_bad + p_exit_bad;
                if denom <= 0.0 {
                    return loss_good;
                }
                let pi_bad = p_enter_bad / denom;
                (1.0 - pi_bad) * loss_good + pi_bad * loss_bad
            }
        }
    }
}

/// One outage window on the access links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFlap {
    /// Start of the outage (simulation time).
    pub start: SimTime,
    /// Length of the outage.
    pub duration: SimDuration,
}

impl LinkFlap {
    /// Whether `now` falls inside the outage.
    pub fn covers(&self, now: SimTime) -> bool {
        now >= self.start && now < self.start + self.duration
    }

    /// End of the outage.
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }
}

/// Everything injected into one run. `FaultSpec::default()` injects
/// nothing and is guaranteed not to perturb fault-free runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// Loss process on the access links (data packets only — the base
    /// simulator's documented simplification that control segments always
    /// get through is kept).
    pub loss: LossModel,
    /// Maximum uniform *extra* per-packet jitter, on top of
    /// `NetworkSpec::jitter`.
    pub extra_jitter: SimDuration,
    /// Probability that a data packet is held back (reordered).
    pub reorder: f64,
    /// How long a reordered packet is held. Packets behind it queue in
    /// the receiver's reassembly buffer and are released at its arrival.
    pub reorder_hold: SimDuration,
    /// Outage windows during which the access links drop all data.
    pub flaps: Vec<LinkFlap>,
}

impl FaultSpec {
    /// True when the spec injects nothing at all (the hot path checks
    /// this once per packet instead of matching every knob).
    pub fn is_noop(&self) -> bool {
        matches!(self.loss, LossModel::None)
            && self.extra_jitter.as_micros() == 0
            && self.reorder <= 0.0
            && self.flaps.is_empty()
    }

    /// Independent loss at `rate`.
    pub fn bernoulli(rate: f64) -> Self {
        FaultSpec { loss: LossModel::Bernoulli { rate }, ..Default::default() }
    }

    /// Bursty Gilbert–Elliott loss averaging `rate`, with mean burst
    /// length of 8 packets and a 50 % in-burst drop probability — the
    /// classic parametrisation for lossy radio links.
    pub fn gilbert_elliott(rate: f64) -> Self {
        let loss_bad = 0.5;
        let p_exit_bad = 1.0 / 8.0;
        // pi_bad * loss_bad = rate  ⇒  pi_bad = rate / loss_bad.
        let pi_bad = (rate / loss_bad).min(0.9);
        let p_enter_bad = p_exit_bad * pi_bad / (1.0 - pi_bad);
        FaultSpec {
            loss: LossModel::GilbertElliott { p_enter_bad, p_exit_bad, loss_good: 0.0, loss_bad },
            ..Default::default()
        }
    }

    /// Uniform extra jitter up to `max`, plus occasional reordering.
    pub fn jittery(max: SimDuration) -> Self {
        FaultSpec {
            extra_jitter: max,
            reorder: 0.01,
            reorder_hold: SimDuration::from_micros(2 * max.as_micros()),
            ..Default::default()
        }
    }

    /// A single mid-load outage.
    pub fn flap(start: SimTime, duration: SimDuration) -> Self {
        FaultSpec { flaps: vec![LinkFlap { start, duration }], ..Default::default() }
    }

    /// The flap (if any) covering `now`.
    pub fn active_flap(&self, now: SimTime) -> Option<&LinkFlap> {
        self.flaps.iter().find(|f| f.covers(now))
    }
}

/// xorshift64* — same tiny generator the base simulator uses; a separate
/// instance keeps the fault stream independent of the base jitter/loss
/// stream so enabling faults never perturbs the base draws.
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.wrapping_mul(0x9E3779B97F4A7C15).max(1))
    }

    fn next_f64(&mut self) -> f64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Per-direction fault process state (the Gilbert–Elliott chain of the up
/// and down links fade independently, like real radio channels).
#[derive(Debug, Clone)]
pub struct FaultState {
    rng: XorShift,
    in_bad: bool,
}

impl FaultState {
    /// Seed one direction's fault process.
    pub fn new(seed: u64) -> Self {
        FaultState { rng: XorShift::new(seed), in_bad: false }
    }

    /// Advance the loss process one packet; returns whether to drop it.
    /// Consumes randomness only when a loss model is configured.
    pub fn drop_packet(&mut self, spec: &FaultSpec) -> bool {
        match spec.loss {
            LossModel::None => false,
            LossModel::Bernoulli { rate } => rate > 0.0 && self.rng.next_f64() < rate,
            LossModel::GilbertElliott { p_enter_bad, p_exit_bad, loss_good, loss_bad } => {
                // Transition, then draw in the new state.
                let p = if self.in_bad { p_exit_bad } else { p_enter_bad };
                if self.rng.next_f64() < p {
                    self.in_bad = !self.in_bad;
                }
                let loss = if self.in_bad { loss_bad } else { loss_good };
                loss > 0.0 && self.rng.next_f64() < loss
            }
        }
    }

    /// Extra jitter for one packet (zero without randomness when
    /// disabled).
    pub fn jitter(&mut self, spec: &FaultSpec) -> SimDuration {
        if spec.extra_jitter.as_micros() == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_micros(
            (self.rng.next_f64() * spec.extra_jitter.as_micros() as f64) as u64,
        )
    }

    /// Whether this packet is held back, and for how long.
    pub fn reorder_hold(&mut self, spec: &FaultSpec) -> Option<SimDuration> {
        if spec.reorder <= 0.0 {
            return None;
        }
        if self.rng.next_f64() < spec.reorder {
            Some(spec.reorder_hold)
        } else {
            None
        }
    }
}

/// Counters of everything the network did under (and against) faults.
/// Loss-recovery behaviour — RTO retransmits, reordering stalls — is what
/// the chaos experiments report alongside PLT/SpeedIndex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Data packets handed to the access links.
    pub data_packets: u64,
    /// Data packets lost to drop-tail queue overflow.
    pub drops_queue: u64,
    /// Data packets lost to the legacy `NetworkSpec::loss` Bernoulli draw.
    pub drops_random: u64,
    /// Data packets lost to the injected [`LossModel`].
    pub drops_fault: u64,
    /// Data packets lost to a [`LinkFlap`] outage.
    pub drops_flap: u64,
    /// Data packets held back by the reordering process.
    pub reordered: u64,
    /// Loss-recovery events: each lost data packet re-entering the send
    /// buffer after its RTO / fast-retransmit delay.
    pub retransmits: u64,
}

impl NetStats {
    /// All drops, regardless of cause.
    pub fn drops_total(&self) -> u64 {
        self.drops_queue + self.drops_random + self.drops_fault + self.drops_flap
    }

    /// Observed loss rate over data packets.
    pub fn loss_rate(&self) -> f64 {
        if self.data_packets == 0 {
            return 0.0;
        }
        self.drops_total() as f64 / self.data_packets as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_noop() {
        assert!(FaultSpec::default().is_noop());
        assert_eq!(FaultSpec::default().loss.mean_rate(), 0.0);
    }

    #[test]
    fn noop_spec_consumes_no_randomness() {
        let spec = FaultSpec::default();
        let mut a = FaultState::new(1);
        let b = FaultState::new(1);
        for _ in 0..100 {
            assert!(!a.drop_packet(&spec));
            assert_eq!(a.jitter(&spec), SimDuration::ZERO);
            assert_eq!(a.reorder_hold(&spec), None);
        }
        // The RNG never advanced.
        assert_eq!(a.rng.0, b.rng.0);
    }

    #[test]
    fn bernoulli_hits_its_rate() {
        let spec = FaultSpec::bernoulli(0.1);
        let mut st = FaultState::new(42);
        let drops = (0..100_000).filter(|_| st.drop_packet(&spec)).count();
        let rate = drops as f64 / 100_000.0;
        assert!((0.09..0.11).contains(&rate), "rate {rate}");
    }

    #[test]
    fn gilbert_elliott_is_bursty_at_the_target_rate() {
        let spec = FaultSpec::gilbert_elliott(0.02);
        assert!((spec.loss.mean_rate() - 0.02).abs() < 1e-9);
        let mut st = FaultState::new(7);
        let outcomes: Vec<bool> = (0..200_000).map(|_| st.drop_packet(&spec)).collect();
        let rate = outcomes.iter().filter(|&&d| d).count() as f64 / outcomes.len() as f64;
        assert!((0.012..0.028).contains(&rate), "rate {rate}");
        // Burstiness: P(drop | previous dropped) far exceeds the marginal.
        let (mut after_drop, mut drop_after_drop) = (0u64, 0u64);
        for w in outcomes.windows(2) {
            if w[0] {
                after_drop += 1;
                if w[1] {
                    drop_after_drop += 1;
                }
            }
        }
        let cond = drop_after_drop as f64 / after_drop as f64;
        assert!(cond > 3.0 * rate, "not bursty: P(drop|drop)={cond} vs {rate}");
    }

    #[test]
    fn same_seed_same_fault_stream() {
        let spec = FaultSpec::gilbert_elliott(0.05);
        let mut a = FaultState::new(9);
        let mut b = FaultState::new(9);
        for _ in 0..10_000 {
            assert_eq!(a.drop_packet(&spec), b.drop_packet(&spec));
        }
    }

    #[test]
    fn flap_windows_cover_exactly_their_interval() {
        let spec = FaultSpec::flap(SimTime::from_millis(100), SimDuration::from_millis(50));
        assert!(spec.active_flap(SimTime::from_millis(99)).is_none());
        assert!(spec.active_flap(SimTime::from_millis(100)).is_some());
        assert!(spec.active_flap(SimTime::from_millis(149)).is_some());
        assert!(spec.active_flap(SimTime::from_millis(150)).is_none());
    }

    #[test]
    fn net_stats_aggregate() {
        let s = NetStats {
            data_packets: 100,
            drops_queue: 1,
            drops_random: 2,
            drops_fault: 3,
            drops_flap: 4,
            reordered: 5,
            retransmits: 10,
        };
        assert_eq!(s.drops_total(), 10);
        assert!((s.loss_rate() - 0.1).abs() < 1e-12);
    }
}
