//! # h2push-netsim — deterministic packet-level network simulation
//!
//! This crate is the substrate that replaces the paper's `tc`-emulated
//! testbed network (*Is the Web ready for HTTP/2 Server Push?*, CoNEXT
//! 2018, §4.1): a virtual-clock discrete-event simulator with
//!
//! * asymmetric client access links (default: the paper's DSL profile of
//!   50 ms RTT, 16 Mbit/s downstream, 1 Mbit/s upstream),
//! * any number of server nodes, each with its own link pair,
//! * a simplified but faithful TCP model per connection (IW10 slow start,
//!   congestion avoidance, receive windows, per-packet ACKs on the narrow
//!   uplink, RTO loss recovery),
//! * application timers, and
//! * a *pull-based* send API so HTTP/2 stream schedulers decide what to
//!   send as late as possible — the mechanism the paper's Interleaving
//!   Push scheduler depends on.
//!
//! Everything is deterministic given a [`NetworkSpec`]; there are no
//! threads, wall-clock reads or hash-order dependencies, in the style of
//! event-driven stacks like smoltcp.

pub mod fault;
pub mod link;
pub mod network;
pub mod queue;
pub mod time;

pub use fault::{FaultSpec, FaultState, LinkFlap, LossModel, NetStats};
pub use link::{Link, LinkSpec, Transmit};
pub use network::{
    ConnId, Dir, NetEvent, Network, NetworkSpec, ServerId, ServerSpec, HEADER_OVERHEAD, MSS,
};
pub use queue::EventQueue;
pub use time::{SimDuration, SimTime};
