//! Bottleneck link model.
//!
//! A [`Link`] is a unidirectional FIFO pipe with a fixed bit rate, a fixed
//! propagation delay and a drop-tail queue, mirroring the paper's `tc`
//! emulated DSL profile (§4.1: 50 ms RTT, 16 Mbit/s downlink, 1 Mbit/s
//! uplink).
//!
//! Rather than modelling an explicit dequeue process, the link tracks the
//! virtual time at which its transmitter becomes free (`busy_until`). A
//! packet handed to the link at time `t` finishes serializing at
//! `max(t, busy_until) + size/rate` and arrives `delay` later. Because every
//! packet passes through the same `busy_until` accounting, concurrent
//! connections sharing the link contend for its capacity exactly as they
//! would in a FIFO queue.

use crate::time::{SimDuration, SimTime};

/// Static description of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Transmission rate in bits per second. `None` means infinitely fast
    /// (used for well-provisioned server uplinks in the testbed).
    pub rate_bps: Option<u64>,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Drop-tail queue capacity in bytes. Packets that would push the queue
    /// beyond this limit are dropped.
    pub queue_bytes: usize,
}

impl LinkSpec {
    /// An effectively infinite link (no serialization delay, no loss) with
    /// the given propagation delay.
    pub fn infinite(delay: SimDuration) -> Self {
        LinkSpec { rate_bps: None, delay, queue_bytes: usize::MAX }
    }

    /// A rate-limited link with a generous default queue (256 KB — large
    /// enough that the paper's loss-free DSL setting never drops).
    pub fn rated(rate_bps: u64, delay: SimDuration) -> Self {
        LinkSpec { rate_bps: Some(rate_bps), delay, queue_bytes: 256 * 1024 }
    }

    /// The paper's DSL downlink: 16 Mbit/s, half the 50 ms RTT as one-way
    /// propagation delay.
    pub fn dsl_downlink() -> Self {
        Self::rated(16_000_000, SimDuration::from_micros(25_000))
    }

    /// The paper's DSL uplink: 1 Mbit/s.
    pub fn dsl_uplink() -> Self {
        Self::rated(1_000_000, SimDuration::from_micros(25_000))
    }
}

/// Outcome of handing a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transmit {
    /// The packet will arrive at the far end at this instant.
    Delivered(SimTime),
    /// The drop-tail queue was full; the packet is lost.
    Dropped,
}

/// Runtime state of a link.
#[derive(Debug, Clone)]
pub struct Link {
    spec: LinkSpec,
    /// Instant at which the transmitter finishes the last accepted packet.
    busy_until: SimTime,
    /// Total bytes ever accepted (for diagnostics / tests).
    bytes_accepted: u64,
    /// Total packets dropped by the queue.
    drops: u64,
}

impl Link {
    /// Create a link from its spec.
    pub fn new(spec: LinkSpec) -> Self {
        Link { spec, busy_until: SimTime::ZERO, bytes_accepted: 0, drops: 0 }
    }

    /// The link's static spec.
    pub fn spec(&self) -> &LinkSpec {
        &self.spec
    }

    /// Serialization time for `bytes` on this link.
    pub fn serialization(&self, bytes: usize) -> SimDuration {
        match self.spec.rate_bps {
            None => SimDuration::ZERO,
            Some(rate) => SimDuration::from_secs_f64(bytes as f64 * 8.0 / rate as f64),
        }
    }

    /// Bytes currently sitting in the queue at `now` (i.e. accepted but not
    /// yet serialized), in units of transmission time converted back to
    /// bytes.
    pub fn queued_bytes(&self, now: SimTime) -> usize {
        match self.spec.rate_bps {
            None => 0,
            Some(rate) => {
                let backlog = self.busy_until.since(now);
                (backlog.as_micros() as f64 * rate as f64 / 8e6) as usize
            }
        }
    }

    /// Hand a packet of `bytes` to the link at time `now`.
    pub fn transmit(&mut self, now: SimTime, bytes: usize) -> Transmit {
        if self.queued_bytes(now).saturating_add(bytes) > self.spec.queue_bytes {
            self.drops += 1;
            return Transmit::Dropped;
        }
        let start = self.busy_until.max(now);
        let done = start + self.serialization(bytes);
        self.busy_until = done;
        self.bytes_accepted += bytes as u64;
        Transmit::Delivered(done + self.spec.delay)
    }

    /// Total packets dropped so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Total bytes accepted so far.
    pub fn bytes_accepted(&self) -> u64 {
        self.bytes_accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbit(m: u64) -> u64 {
        m * 1_000_000
    }

    /// Transmit a packet that the test expects to fit: `Transmit::Dropped`
    /// is a countable outcome, so a surprise drop fails through the link's
    /// own drop counter (with its value in the message) instead of a bare
    /// `panic!` in the pump.
    fn must_deliver(l: &mut Link, now: SimTime, bytes: usize) -> SimTime {
        let out = l.transmit(now, bytes);
        assert_eq!(l.drops(), 0, "drop-tail queue dropped the packet ({out:?})");
        match out {
            Transmit::Delivered(t) => t,
            Transmit::Dropped => unreachable!("zero drops implies delivery"),
        }
    }

    #[test]
    fn serialization_plus_propagation() {
        let mut l = Link::new(LinkSpec::rated(mbit(16), SimDuration::from_millis(25)));
        // 1500 B at 16 Mbit/s = 750 µs, plus 25 ms propagation.
        let t = must_deliver(&mut l, SimTime::ZERO, 1500);
        assert_eq!(t.as_micros(), 750 + 25_000);
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut l = Link::new(LinkSpec::rated(mbit(16), SimDuration::ZERO));
        let t1 = must_deliver(&mut l, SimTime::ZERO, 1500);
        let t2 = must_deliver(&mut l, SimTime::ZERO, 1500);
        assert_eq!(t2.as_micros(), 2 * t1.as_micros());
    }

    #[test]
    fn fifo_sharing_between_flows() {
        // Two flows handing packets alternately share capacity 50/50.
        let mut l = Link::new(LinkSpec::rated(mbit(8), SimDuration::ZERO));
        let mut last = SimTime::ZERO;
        for _ in 0..10 {
            for _flow in 0..2 {
                let t = must_deliver(&mut l, SimTime::ZERO, 1000);
                assert!(t > last);
                last = t;
            }
        }
        // 20 packets × 1000 B × 8 bits at 8 Mbit/s = 20 ms.
        assert_eq!(last.as_micros(), 20_000);
    }

    #[test]
    fn droptail_queue_drops() {
        let mut l = Link::new(LinkSpec {
            rate_bps: Some(mbit(1)),
            delay: SimDuration::ZERO,
            queue_bytes: 3000,
        });
        let mut delivered = 0;
        let mut dropped = 0;
        for _ in 0..10 {
            match l.transmit(SimTime::ZERO, 1500) {
                Transmit::Delivered(_) => delivered += 1,
                Transmit::Dropped => dropped += 1,
            }
        }
        assert!(delivered >= 2, "first packets fit in the queue");
        assert!(dropped > 0, "later packets overflow");
        assert_eq!(l.drops(), dropped as u64);
    }

    #[test]
    fn infinite_link_only_propagates() {
        let mut l = Link::new(LinkSpec::infinite(SimDuration::from_millis(5)));
        let t = must_deliver(&mut l, SimTime::from_millis(1), 1_000_000);
        assert_eq!(t, SimTime::from_millis(6));
        assert_eq!(l.queued_bytes(SimTime::ZERO), 0);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut l = Link::new(LinkSpec {
            rate_bps: Some(mbit(1)),
            delay: SimDuration::ZERO,
            queue_bytes: 4500,
        });
        for _ in 0..3 {
            assert!(matches!(l.transmit(SimTime::ZERO, 1500), Transmit::Delivered(_)));
        }
        assert!(matches!(l.transmit(SimTime::ZERO, 1500), Transmit::Dropped));
        // 1500 B at 1 Mbit/s = 12 ms per packet; after 24 ms two have left.
        let later = SimTime::from_millis(24);
        assert!(l.queued_bytes(later) <= 1500);
        assert!(matches!(l.transmit(later, 1500), Transmit::Delivered(_)));
    }
}
