//! The network: nodes, connections and a simplified TCP model.
//!
//! This module glues [`Link`]s and an
//! [`EventQueue`] into a deterministic simulation
//! of the paper's testbed topology (§4.1): one client behind an asymmetric
//! DSL access link talking to any number of replay servers, each reachable
//! through its own (by default well-provisioned) pair of links.
//!
//! # TCP model
//!
//! Each connection carries two independent byte streams (client→server
//! "up", server→client "down"). Per direction the model implements:
//!
//! * slow start from an initial window of 10 segments, with byte-counting
//!   growth, switching to congestion avoidance above `ssthresh`;
//! * a receive window (default 1 MB — large relative to the DSL
//!   bandwidth-delay product, like the Linux autotuned windows the paper's
//!   testbed would see);
//! * an ACK per data packet (40 bytes on the reverse path, so ACK traffic
//!   competes for the narrow 1 Mbit/s uplink just as it does on real DSL);
//! * timeout-based loss recovery: a dropped data packet is retransmitted one
//!   RTO later and halves the congestion window.
//!
//! Packet content is *not* carried here: the simulator moves byte **counts**
//! in order, and the HTTP/2 endpoints keep the actual bytes in their own
//! FIFO buffers. This keeps the layers decoupled while preserving exact
//! in-order delivery semantics.
//!
//! # Pull-based sending
//!
//! Stream scheduling is the paper's core topic, so the decision *which bytes
//! to send next* must be made as late as possible. The network therefore
//! pulls: an endpoint declares itself "hungry" and the simulator emits
//! [`NetEvent::SendReady`] whenever the congestion window has room, at which
//! point the endpoint's scheduler picks the next frame.

use crate::fault::{FaultSpec, FaultState, NetStats};
use crate::link::{Link, LinkSpec, Transmit};
use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};
use h2push_trace::{DropCause, TraceEvent, TraceHandle};

/// Maximum TCP segment payload (Ethernet MTU minus 40 bytes of headers).
pub const MSS: usize = 1460;
/// Bytes of TCP/IP header overhead added to every data segment on the wire.
pub const HEADER_OVERHEAD: usize = 40;
/// Size of a pure ACK on the wire.
const ACK_SIZE: usize = 40;
/// Size of a handshake segment on the wire.
const SYN_SIZE: usize = 60;

/// Identifies a server node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub usize);

/// Identifies a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub usize);

/// Direction of a byte stream on a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Client → server (requests).
    Up,
    /// Server → client (responses).
    Down,
}

impl Dir {
    fn idx(self) -> usize {
        match self {
            Dir::Up => 0,
            Dir::Down => 1,
        }
    }

    /// The opposite direction.
    pub fn reverse(self) -> Dir {
        match self {
            Dir::Up => Dir::Down,
            Dir::Down => Dir::Up,
        }
    }
}

/// Events surfaced to the orchestrator by [`Network::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetEvent {
    /// The TCP+TLS handshake of `conn` completed; the client may send.
    Connected { conn: ConnId },
    /// `bytes` application bytes arrived, in order, at the receiving side of
    /// `dir` on `conn`.
    Delivered { conn: ConnId, dir: Dir, bytes: usize },
    /// The sender of `dir` on `conn` declared itself hungry and the window
    /// now has room for `window` more bytes: the scheduler should produce
    /// data (via [`Network::send`]) or withdraw (via [`Network::set_hungry`]).
    SendReady { conn: ConnId, dir: Dir, window: usize },
    /// An application timer scheduled with [`Network::schedule`] fired.
    App { token: u64 },
}

/// Behaviour of the client access link pair plus global knobs.
#[derive(Debug, Clone)]
pub struct NetworkSpec {
    /// Client upstream link (requests, ACKs for responses).
    pub client_up: LinkSpec,
    /// Client downstream link (responses) — the paper's 16 Mbit/s bottleneck.
    pub client_down: LinkSpec,
    /// Random per-packet loss probability applied on the rated access links.
    pub loss: f64,
    /// Number of extra round trips for TLS (2 for the TLS 1.2 stacks of the
    /// paper's era; 1 for TLS 1.3; 0 to model pre-established connections).
    pub tls_rtts: u32,
    /// Time to resolve a name before connecting (zero in the testbed, where
    /// Mahimahi answers DNS locally).
    pub dns_delay: SimDuration,
    /// Per-direction receive window.
    pub recv_window: usize,
    /// Maximum uniform per-packet timing jitter. Models the OS scheduling
    /// noise any real testbed has; without it, deterministic lock-step lets
    /// one flow phase-capture a shared drop-tail queue. Seeded, so runs are
    /// still exactly reproducible.
    pub jitter: SimDuration,
    /// Seed for the loss and jitter processes.
    pub seed: u64,
    /// Injected faults on the access links (loss models, extra jitter,
    /// reordering, link flaps). The default injects nothing and leaves
    /// every run byte-identical to a spec without the field; any non-empty
    /// spec is driven by its own RNG stream derived from `seed`, so faulty
    /// runs replay bit-identically too.
    pub fault: FaultSpec,
}

impl NetworkSpec {
    /// The paper's deterministic testbed profile: DSL 50 ms RTT,
    /// 16 Mbit/s down / 1 Mbit/s up, no loss, local DNS.
    pub fn dsl_testbed() -> Self {
        NetworkSpec {
            client_up: LinkSpec::dsl_uplink(),
            client_down: LinkSpec::dsl_downlink(),
            loss: 0.0,
            tls_rtts: 2,
            dns_delay: SimDuration::ZERO,
            recv_window: 1024 * 1024,
            jitter: SimDuration::from_micros(120),
            seed: 0,
            fault: FaultSpec::default(),
        }
    }

    /// Cable access (the paper's §6 deployment matrix): 100 Mbit/s down,
    /// 10 Mbit/s up, 20 ms RTT.
    pub fn cable() -> Self {
        NetworkSpec {
            client_up: LinkSpec::rated(10_000_000, SimDuration::from_micros(10_000)),
            client_down: LinkSpec::rated(100_000_000, SimDuration::from_micros(10_000)),
            ..Self::dsl_testbed()
        }
    }

    /// Cellular access (§6): 8 Mbit/s down, 2 Mbit/s up, 100 ms RTT and a
    /// little loss.
    pub fn cellular() -> Self {
        NetworkSpec {
            client_up: LinkSpec::rated(2_000_000, SimDuration::from_micros(50_000)),
            client_down: LinkSpec::rated(8_000_000, SimDuration::from_micros(50_000)),
            loss: 0.002,
            ..Self::dsl_testbed()
        }
    }

    /// Fibre access: 250 Mbit/s symmetric-ish, 10 ms RTT.
    pub fn fibre() -> Self {
        NetworkSpec {
            client_up: LinkSpec::rated(50_000_000, SimDuration::from_micros(5_000)),
            client_down: LinkSpec::rated(250_000_000, SimDuration::from_micros(5_000)),
            ..Self::dsl_testbed()
        }
    }
}

/// A server node: its own link pair (infinite by default) lets
/// "internet mode" give individual origins extra latency.
#[derive(Debug, Clone)]
pub struct ServerSpec {
    /// Link from the core towards the server.
    pub ingress: LinkSpec,
    /// Link from the server towards the core.
    pub egress: LinkSpec,
    /// Server think time before the first response byte of each pull —
    /// zero in the testbed ("we do not assume any additional delay on the
    /// servers", §4.1).
    pub think: SimDuration,
}

impl Default for ServerSpec {
    fn default() -> Self {
        ServerSpec {
            ingress: LinkSpec::infinite(SimDuration::ZERO),
            egress: LinkSpec::infinite(SimDuration::ZERO),
            think: SimDuration::ZERO,
        }
    }
}

impl ServerSpec {
    /// A server an extra `extra_oneway` away from the client (per direction).
    pub fn with_extra_delay(extra_oneway: SimDuration) -> Self {
        ServerSpec {
            ingress: LinkSpec::infinite(extra_oneway),
            egress: LinkSpec::infinite(extra_oneway),
            think: SimDuration::ZERO,
        }
    }
}

/// What a packet crossing the network means when it reaches its destination.
#[derive(Debug, Clone, Copy)]
enum Kind {
    Data { sent_at: SimTime },
    Ack { acked: usize, sent_at: SimTime },
    Handshake { left: u32 },
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A packet finished crossing hop `hop` of its path.
    Hop { conn: usize, dir: Dir, bytes: usize, hop: u8, kind: Kind },
    /// Server think time elapsed: surface request bytes to the app.
    ThinkDone { conn: usize, bytes: usize },
    /// Retransmission timer.
    Rto { conn: usize, dir: Dir, bytes: usize },
    /// Application timer.
    App { token: u64 },
    /// DNS resolution finished; start the TCP handshake.
    StartConnect { conn: usize },
}

/// Per-direction TCP sender/receiver state.
#[derive(Debug, Clone)]
struct TcpDir {
    cwnd: f64,
    ssthresh: f64,
    rwnd: usize,
    in_flight: usize,
    send_buf: usize,
    hungry: bool,
    pull_pending: bool,
    srtt: Option<SimDuration>,
    /// Loss events currently awaiting their RTO (so cwnd is halved once per
    /// burst, not once per lost packet).
    rtos_outstanding: u32,
    /// Latest scheduled arrival on the access link for this direction —
    /// the in-order delivery gate used only when reordering is injected
    /// (TCP's reassembly queue holds later segments behind the straggler).
    last_arrival: SimTime,
}

impl TcpDir {
    fn new(rwnd: usize) -> Self {
        TcpDir {
            cwnd: (10 * MSS) as f64,
            ssthresh: f64::INFINITY,
            rwnd,
            in_flight: 0,
            send_buf: 0,
            hungry: false,
            pull_pending: false,
            srtt: None,
            rtos_outstanding: 0,
            last_arrival: SimTime::ZERO,
        }
    }

    fn window(&self) -> usize {
        let w = self.cwnd.min(self.rwnd as f64) as usize;
        w.saturating_sub(self.in_flight + self.send_buf)
    }

    fn on_ack(&mut self, acked: usize) {
        self.in_flight = self.in_flight.saturating_sub(acked);
        if self.cwnd < self.ssthresh {
            // Slow start with byte counting.
            self.cwnd += acked as f64;
        } else {
            // Congestion avoidance: one MSS per cwnd of ACKed data.
            self.cwnd += (MSS * MSS) as f64 * (acked as f64 / MSS as f64) / self.cwnd;
        }
    }

    fn on_loss(&mut self) {
        if self.rtos_outstanding == 0 {
            self.ssthresh = (self.cwnd / 2.0).max((2 * MSS) as f64);
            self.cwnd = self.ssthresh;
        }
        self.rtos_outstanding += 1;
    }
}

#[derive(Debug, Clone)]
struct Conn {
    server: usize,
    established: bool,
    dirs: [TcpDir; 2],
}

/// xorshift64* — a tiny deterministic generator so the crate stays
/// dependency-free; only used for the optional loss process.
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.wrapping_mul(0x9E3779B97F4A7C15).max(1))
    }

    fn next_f64(&mut self) -> f64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

thread_local! {
    /// Recycled event-queue storage. A replay creates and drops one
    /// [`Network`] per rep, and the event heap is the loop's largest
    /// recurring allocation; dropped networks park their cleared queue
    /// here and [`Network::new`] takes it back. A cleared queue is
    /// indistinguishable from a fresh one (see [`EventQueue::clear`]), so
    /// recycling cannot perturb determinism.
    static QUEUE_POOL: std::cell::RefCell<Vec<EventQueue<Ev>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// The deterministic network simulator.
pub struct Network {
    spec: NetworkSpec,
    now: SimTime,
    events: EventQueue<Ev>,
    client_up: Link,
    client_down: Link,
    servers: Vec<(ServerSpec, Link, Link)>,
    conns: Vec<Conn>,
    rng: XorShift,
    delivered_total: u64,
    /// Fault process per access-link direction (up/down fade
    /// independently); seeded from `spec.seed`, separate from `rng`.
    fault_states: [FaultState; 2],
    stats: NetStats,
    trace: TraceHandle,
    /// Internal events processed over the network's lifetime — the
    /// watchdog currency: any livelock (e.g. an adversarial peer forcing
    /// a ping-pong that never quiesces) burns events without bound, so a
    /// budget on this counter bounds every run.
    events_processed: u64,
}

impl Drop for Network {
    fn drop(&mut self) {
        let mut q = std::mem::take(&mut self.events);
        if q.capacity() == 0 {
            return;
        }
        q.clear();
        // `try_with`: a Network can be dropped from another thread-local's
        // destructor (the testbed parks a whole replay context per thread),
        // at which point QUEUE_POOL may already be torn down — then the
        // queue storage is simply freed instead of parked.
        let _ = QUEUE_POOL.try_with(|p| {
            let mut pool = p.borrow_mut();
            // A small cap bounds memory held by idle worker threads.
            if pool.len() < 8 {
                pool.push(q);
            }
        });
    }
}

impl Network {
    /// Create a network with the given client access profile.
    pub fn new(spec: NetworkSpec) -> Self {
        let client_up = Link::new(spec.client_up);
        let client_down = Link::new(spec.client_down);
        let rng = XorShift::new(spec.seed ^ 0xC0FFEE);
        let fault_states =
            [FaultState::new(spec.seed ^ 0xFA017A01), FaultState::new(spec.seed ^ 0xFA017A02)];
        Network {
            spec,
            now: SimTime::ZERO,
            events: QUEUE_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default(),
            client_up,
            client_down,
            servers: Vec::new(),
            conns: Vec::new(),
            rng,
            delivered_total: 0,
            fault_states,
            stats: NetStats::default(),
            trace: TraceHandle::off(),
            events_processed: 0,
        }
    }

    /// Recycle this network into a fresh one for `spec`: equivalent to
    /// [`Network::new`] but retaining the event heap, the server table and
    /// the connection table capacity. Every piece of observable state —
    /// clock, RNG streams, fault processes, links, counters — is re-derived
    /// exactly as `new` derives it, so a recycled network replays
    /// byte-identically to a freshly constructed one.
    pub fn reset(&mut self, spec: NetworkSpec) {
        self.client_up = Link::new(spec.client_up);
        self.client_down = Link::new(spec.client_down);
        self.rng = XorShift::new(spec.seed ^ 0xC0FFEE);
        self.fault_states =
            [FaultState::new(spec.seed ^ 0xFA017A01), FaultState::new(spec.seed ^ 0xFA017A02)];
        self.spec = spec;
        self.now = SimTime::ZERO;
        self.events.clear();
        self.servers.clear();
        self.conns.clear();
        self.delivered_total = 0;
        self.stats = NetStats::default();
        self.trace = TraceHandle::off();
        self.events_processed = 0;
    }

    /// Attach a trace handle. Observational only: emitting events draws no
    /// randomness and schedules nothing, so traced and untraced runs of
    /// the same spec are byte-identical.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total application bytes delivered in both directions so far.
    pub fn delivered_total(&self) -> u64 {
        self.delivered_total
    }

    /// Internal simulation events processed so far (monotonic). The replay
    /// watchdog budgets this counter: unlike sim-time, it grows on every
    /// scheduled action, so even a zero-delay livelock exhausts it.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Fault and loss-recovery counters accumulated so far (data packets
    /// seen, drops by cause, reorder holds, RTO retransmits).
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Register a server node and return its id.
    pub fn add_server(&mut self, spec: ServerSpec) -> ServerId {
        let ingress = Link::new(spec.ingress);
        let egress = Link::new(spec.egress);
        self.servers.push((spec, ingress, egress));
        ServerId(self.servers.len() - 1)
    }

    /// Open a connection from the client to `server`. The handshake (DNS +
    /// TCP + TLS) runs asynchronously; a [`NetEvent::Connected`] is emitted
    /// when the client may transmit.
    pub fn connect(&mut self, server: ServerId) -> ConnId {
        assert!(server.0 < self.servers.len(), "unknown server");
        let id = self.conns.len();
        self.conns.push(Conn {
            server: server.0,
            established: false,
            dirs: [TcpDir::new(self.spec.recv_window), TcpDir::new(self.spec.recv_window)],
        });
        let at = self.now + self.spec.dns_delay;
        self.events.push(at, Ev::StartConnect { conn: id });
        ConnId(id)
    }

    /// Append `bytes` application bytes to the send buffer of `dir` on
    /// `conn`. Data sent before the handshake completes is buffered.
    pub fn send(&mut self, conn: ConnId, dir: Dir, bytes: usize) {
        let c = &mut self.conns[conn.0];
        let d = &mut c.dirs[dir.idx()];
        d.send_buf += bytes;
        d.pull_pending = false;
        if self.conns[conn.0].established {
            self.try_transmit(conn.0, dir);
        }
    }

    /// Declare whether the sender of `dir` on `conn` has more data it could
    /// produce. Returns the window immediately available (if any), letting
    /// the caller push data right away instead of waiting for a
    /// [`NetEvent::SendReady`].
    pub fn set_hungry(&mut self, conn: ConnId, dir: Dir, hungry: bool) -> Option<usize> {
        let established = self.conns[conn.0].established;
        let d = &mut self.conns[conn.0].dirs[dir.idx()];
        d.hungry = hungry;
        if !hungry {
            d.pull_pending = false;
            return None;
        }
        if !established {
            return None;
        }
        let w = d.window();
        if Self::window_usable(d, w) {
            d.pull_pending = true;
            Some(w)
        } else {
            None
        }
    }

    /// Schedule an application timer; [`NetEvent::App`] fires at `at`.
    pub fn schedule(&mut self, at: SimTime, token: u64) {
        self.events.push(at.max(self.now), Ev::App { token });
    }

    /// Advance the simulation to the next event of interest.
    ///
    /// Returns `None` when the simulation has fully quiesced.
    pub fn step(&mut self) -> Option<(SimTime, NetEvent)> {
        while let Some((t, ev)) = self.events.pop() {
            debug_assert!(t >= self.now, "time must be monotonic");
            self.now = t;
            self.events_processed += 1;
            if let Some(public) = self.process(ev) {
                return Some((t, public));
            }
        }
        None
    }

    /// A window is worth announcing when it fits a full segment, or the pipe
    /// is completely idle (so trickles still flow at the tail of a
    /// transfer).
    fn window_usable(d: &TcpDir, w: usize) -> bool {
        w >= MSS || (w > 0 && d.in_flight == 0 && d.send_buf == 0)
    }

    fn process(&mut self, ev: Ev) -> Option<NetEvent> {
        match ev {
            Ev::App { token } => Some(NetEvent::App { token }),
            Ev::StartConnect { conn } => {
                // SYN leaves the client; total half-trips for TCP (1 RTT)
                // plus TLS (`tls_rtts` RTTs).
                let left = 2 * (1 + self.spec.tls_rtts) - 1;
                self.transmit_path(conn, Dir::Up, SYN_SIZE, Kind::Handshake { left });
                None
            }
            Ev::Rto { conn, dir, bytes } => {
                self.stats.retransmits += 1;
                self.trace.emit_at(self.now.as_micros(), TraceEvent::Retransmit { conn });
                let d = &mut self.conns[conn].dirs[dir.idx()];
                d.rtos_outstanding = d.rtos_outstanding.saturating_sub(1);
                d.in_flight = d.in_flight.saturating_sub(bytes);
                d.send_buf += bytes;
                self.try_transmit(conn, dir);
                self.maybe_send_ready(conn, dir)
            }
            Ev::Hop { conn, dir, bytes, hop, kind } => self.hop_done(conn, dir, bytes, hop, kind),
            Ev::ThinkDone { conn, bytes } => {
                Some(NetEvent::Delivered { conn: ConnId(conn), dir: Dir::Up, bytes })
            }
        }
    }

    fn hop_done(
        &mut self,
        conn: usize,
        dir: Dir,
        bytes: usize,
        hop: u8,
        kind: Kind,
    ) -> Option<NetEvent> {
        if hop == 0 {
            // First hop done; cross the second.
            self.transmit_hop(conn, dir, bytes, 1, kind);
            return None;
        }
        // Arrived at the destination.
        match kind {
            Kind::Handshake { left } => {
                if left == 0 {
                    self.conns[conn].established = true;
                    self.trace.emit_at(self.now.as_micros(), TraceEvent::Connected { conn });
                    self.try_transmit(conn, Dir::Up);
                    self.try_transmit(conn, Dir::Down);
                    Some(NetEvent::Connected { conn: ConnId(conn) })
                } else {
                    self.transmit_path(
                        conn,
                        dir.reverse(),
                        SYN_SIZE,
                        Kind::Handshake { left: left - 1 },
                    );
                    None
                }
            }
            Kind::Ack { acked, sent_at } => {
                let rtt = self.now.since(sent_at);
                let d = &mut self.conns[conn].dirs[dir.reverse().idx()];
                d.srtt = Some(match d.srtt {
                    None => rtt,
                    Some(s) => SimDuration::from_micros((s.as_micros() * 7 + rtt.as_micros()) / 8),
                });
                d.on_ack(acked);
                let data_dir = dir.reverse();
                self.try_transmit(conn, data_dir);
                self.maybe_send_ready(conn, data_dir)
            }
            Kind::Data { sent_at } => {
                // Receiver immediately ACKs on the reverse path; the ACK
                // echoes the original send timestamp for RTT estimation.
                self.delivered_total += bytes as u64;
                self.transmit_path(
                    conn,
                    dir.reverse(),
                    ACK_SIZE,
                    Kind::Ack { acked: bytes, sent_at },
                );
                // Server think time: the transport ACKs on arrival (above),
                // but the application sees the request only after the
                // server's processing delay.
                if dir == Dir::Up {
                    let think = self.servers[self.conns[conn].server].0.think;
                    if think.as_micros() > 0 {
                        self.events.push(self.now + think, Ev::ThinkDone { conn, bytes });
                        return None;
                    }
                }
                Some(NetEvent::Delivered { conn: ConnId(conn), dir, bytes })
            }
        }
    }

    /// Loss detection delay. With enough packets in flight the sender
    /// discovers the hole through duplicate ACKs roughly one RTT after the
    /// drop (fast retransmit); with a nearly-empty window only a full RTO
    /// can recover.
    fn loss_recovery_delay(&self, conn: usize, dir: Dir) -> SimDuration {
        let d = &self.conns[conn].dirs[dir.idx()];
        let base =
            d.srtt.unwrap_or(self.spec.client_down.delay + self.spec.client_up.delay).as_micros();
        if d.in_flight >= 4 * MSS {
            // Fast retransmit: ~1 smoothed RTT.
            SimDuration::from_micros(base.clamp(30_000, 3_000_000))
        } else {
            // Timeout: conservative RTO.
            SimDuration::from_micros((base * 2).clamp(200_000, 3_000_000))
        }
    }

    /// Move bytes from the send buffer onto the wire while the window
    /// allows.
    fn try_transmit(&mut self, conn: usize, dir: Dir) {
        if !self.conns[conn].established {
            return;
        }
        loop {
            let d = &mut self.conns[conn].dirs[dir.idx()];
            if d.send_buf == 0 {
                break;
            }
            let limit = d.cwnd.min(d.rwnd as f64) as usize;
            if d.in_flight >= limit {
                break;
            }
            let pkt = d.send_buf.min(MSS).min(limit - d.in_flight);
            d.send_buf -= pkt;
            d.in_flight += pkt;
            let sent_at = self.now;
            self.transmit_path(conn, dir, pkt, Kind::Data { sent_at });
        }
    }

    fn maybe_send_ready(&mut self, conn: usize, dir: Dir) -> Option<NetEvent> {
        let d = &mut self.conns[conn].dirs[dir.idx()];
        if !d.hungry || d.pull_pending {
            return None;
        }
        let w = d.window();
        if Self::window_usable(d, w) {
            d.pull_pending = true;
            Some(NetEvent::SendReady { conn: ConnId(conn), dir, window: w })
        } else {
            None
        }
    }

    /// Put a packet on the first hop of its path.
    fn transmit_path(&mut self, conn: usize, dir: Dir, bytes: usize, kind: Kind) {
        self.transmit_hop(conn, dir, bytes, 0, kind);
    }

    /// A lost data packet: charge the congestion controller and schedule
    /// the retransmission one recovery delay later.
    fn drop_data(&mut self, conn: usize, dir: Dir, bytes: usize) {
        let delay = self.loss_recovery_delay(conn, dir);
        self.conns[conn].dirs[dir.idx()].on_loss();
        self.events.push(self.now + delay, Ev::Rto { conn, dir, bytes });
    }

    fn transmit_hop(&mut self, conn: usize, dir: Dir, bytes: usize, hop: u8, kind: Kind) {
        let server = self.conns[conn].server;
        // Faults apply on the client access links only — the "lossy" hops.
        let lossy = matches!((dir, hop), (Dir::Up, 0) | (Dir::Down, 1));
        let is_data = matches!(kind, Kind::Data { .. });
        let wire = bytes + if is_data { HEADER_OVERHEAD } else { 0 };
        if lossy && is_data {
            self.stats.data_packets += 1;
        }
        // Link flap: during an outage window the access link drops all data
        // (recovered through the normal RTO path once the window passes) and
        // holds control segments until the link returns.
        if lossy && !self.spec.fault.flaps.is_empty() {
            if let Some(flap) = self.spec.fault.active_flap(self.now).copied() {
                if is_data {
                    self.stats.drops_flap += 1;
                    self.trace.emit_at(
                        self.now.as_micros(),
                        TraceEvent::FaultDrop { conn, cause: DropCause::Flap },
                    );
                    self.drop_data(conn, dir, bytes);
                } else {
                    let at = (flap.end() + SimDuration::from_micros(1000)).max(self.now);
                    self.events.push(at, Ev::Hop { conn, dir, bytes, hop, kind });
                }
                return;
            }
        }
        // Injected loss process; draws from the dedicated fault RNG (and
        // only when a loss model is configured, so fault-free specs keep
        // every RNG stream — and therefore every run — byte-identical).
        let fault_loss =
            lossy && is_data && self.fault_states[dir.idx()].drop_packet(&self.spec.fault);
        // Path Up: client_up → server ingress. Path Down: server egress →
        // client_down. Hop 0 is the first link in the direction of travel.
        let link: &mut Link = match (dir, hop) {
            (Dir::Up, 0) => &mut self.client_up,
            (Dir::Up, 1) => &mut self.servers[server].1,
            (Dir::Down, 0) => &mut self.servers[server].2,
            (Dir::Down, 1) => &mut self.client_down,
            _ => unreachable!("paths have exactly two hops"),
        };
        let random_loss =
            lossy && is_data && self.spec.loss > 0.0 && { self.rng.next_f64() < self.spec.loss };
        let outcome = if random_loss || fault_loss {
            Transmit::Dropped
        } else {
            link.transmit(self.now, wire)
        };
        match outcome {
            Transmit::Delivered(at) => {
                let mut at = if self.spec.jitter.as_micros() > 0 {
                    at + SimDuration::from_micros(
                        (self.rng.next_f64() * self.spec.jitter.as_micros() as f64) as u64,
                    )
                } else {
                    at
                };
                if lossy && !self.spec.fault.is_noop() {
                    at += self.fault_states[dir.idx()].jitter(&self.spec.fault);
                    if is_data {
                        if let Some(hold) =
                            self.fault_states[dir.idx()].reorder_hold(&self.spec.fault)
                        {
                            self.stats.reordered += 1;
                            at += hold;
                        }
                        // In-order delivery gate: the simulator moves byte
                        // counts FIFO, so a held packet stalls everything
                        // behind it — exactly TCP's reassembly-queue
                        // head-of-line blocking. Applied only when
                        // reordering is injected.
                        if self.spec.fault.reorder > 0.0 {
                            let d = &mut self.conns[conn].dirs[dir.idx()];
                            at = at.max(d.last_arrival);
                            d.last_arrival = at;
                        }
                    }
                }
                self.events.push(at, Ev::Hop { conn, dir, bytes, hop, kind });
            }
            Transmit::Dropped => {
                // Only data is subject to loss in this model; handshake and
                // ACK segments always get through (documented simplification
                // — the DSL profile of the paper is loss-free anyway).
                if is_data {
                    let cause = if random_loss {
                        self.stats.drops_random += 1;
                        DropCause::Random
                    } else if fault_loss {
                        self.stats.drops_fault += 1;
                        DropCause::Fault
                    } else {
                        self.stats.drops_queue += 1;
                        DropCause::Queue
                    };
                    self.trace.emit_at(self.now.as_micros(), TraceEvent::FaultDrop { conn, cause });
                    self.drop_data(conn, dir, bytes);
                } else {
                    // Fall back to delivering after the queue drains: treat
                    // as if accepted (control segments are tiny).
                    let at = self.now + SimDuration::from_micros(1000);
                    self.events.push(at, Ev::Hop { conn, dir, bytes, hop, kind });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiesce(net: &mut Network) -> Vec<(SimTime, NetEvent)> {
        let mut out = Vec::new();
        while let Some(ev) = net.step() {
            out.push(ev);
            assert!(out.len() < 1_000_000, "runaway simulation");
        }
        out
    }

    #[test]
    fn handshake_takes_dns_plus_three_rtts() {
        // TCP (1 RTT) + TLS1.2 (2 RTT) at 50 ms RTT ⇒ connected at ~150 ms.
        let mut net = Network::new(NetworkSpec::dsl_testbed());
        let s = net.add_server(ServerSpec::default());
        let c = net.connect(s);
        let evs = quiesce(&mut net);
        let (t, ev) = evs[0];
        assert_eq!(ev, NetEvent::Connected { conn: c });
        let ms = t.as_millis_f64();
        assert!((149.0..154.0).contains(&ms), "connected at {ms} ms");
    }

    #[test]
    fn small_send_delivered_in_half_rtt() {
        let mut net = Network::new(NetworkSpec::dsl_testbed());
        let s = net.add_server(ServerSpec::default());
        let c = net.connect(s);
        let (t0, _) = net.step().unwrap();
        net.send(c, Dir::Up, 500);
        let (t1, ev) = net.step().unwrap();
        assert_eq!(ev, NetEvent::Delivered { conn: c, dir: Dir::Up, bytes: 500 });
        let delta = (t1 - t0).as_millis_f64();
        assert!((25.0..30.0).contains(&delta), "one-way delay was {delta} ms");
    }

    #[test]
    fn bulk_transfer_is_bandwidth_bound() {
        // 2 MB down a 16 Mbit/s link ⇒ ≥ 1 s of serialization.
        let mut net = Network::new(NetworkSpec::dsl_testbed());
        let s = net.add_server(ServerSpec::default());
        let c = net.connect(s);
        let _ = net.step();
        net.send(c, Dir::Down, 2_000_000);
        let mut got = 0usize;
        let mut last = SimTime::ZERO;
        while got < 2_000_000 {
            match net.step() {
                Some((t, NetEvent::Delivered { dir: Dir::Down, bytes, .. })) => {
                    got += bytes;
                    last = t;
                }
                Some(_) => {}
                None => panic!("stalled at {got} bytes"),
            }
        }
        let secs = last.as_millis_f64() / 1000.0;
        // Ideal: 2 MB ⇒ 16.33 Mbit with headers ⇒ ~1.02 s + slow start ramp.
        assert!(secs > 1.0, "finished impossibly fast: {secs}s");
        assert!(secs < 2.0, "took too long: {secs}s (slow start broken?)");
    }

    #[test]
    fn slow_start_ramps_exponentially() {
        // First flight after the handshake is 10 segments; the next flights
        // roughly double. Measure bytes delivered per RTT window.
        let mut net = Network::new(NetworkSpec::dsl_testbed());
        let s = net.add_server(ServerSpec::default());
        let c = net.connect(s);
        let (t0, _) = net.step().unwrap();
        net.send(c, Dir::Down, 500_000);
        let mut per_rtt = vec![0usize; 8];
        while let Some((t, ev)) = net.step() {
            if let NetEvent::Delivered { dir: Dir::Down, bytes, .. } = ev {
                let rtt_idx = ((t - t0).as_micros() / 50_000) as usize;
                if rtt_idx < per_rtt.len() {
                    per_rtt[rtt_idx] += bytes;
                }
            }
        }
        // First RTT window: exactly the initial 10-segment flight.
        assert_eq!(per_rtt[0], 10 * MSS);
        assert!(per_rtt[1] > per_rtt[0], "no growth: {per_rtt:?}");
    }

    #[test]
    fn pull_model_emits_send_ready() {
        let mut net = Network::new(NetworkSpec::dsl_testbed());
        let s = net.add_server(ServerSpec::default());
        let c = net.connect(s);
        let _ = net.step();
        // Endpoint declares hunger; immediate window is available.
        let w = net.set_hungry(c, Dir::Down, true).expect("window open");
        assert!(w >= 10 * MSS);
        net.send(c, Dir::Down, w);
        // As ACKs return, SendReady events fire for the growing window.
        let mut ready = 0;
        for _ in 0..200 {
            match net.step() {
                Some((_, NetEvent::SendReady { dir: Dir::Down, window, .. })) => {
                    ready += 1;
                    assert!(window > 0);
                    net.set_hungry(c, Dir::Down, false);
                    break;
                }
                Some(_) => {}
                None => break,
            }
        }
        assert_eq!(ready, 1, "SendReady must fire once the window opens");
    }

    #[test]
    fn loss_triggers_recovery_and_still_completes() {
        let mut spec = NetworkSpec::dsl_testbed();
        spec.loss = 0.02;
        spec.seed = 7;
        let mut net = Network::new(spec);
        let s = net.add_server(ServerSpec::default());
        let c = net.connect(s);
        let _ = net.step();
        net.send(c, Dir::Down, 300_000);
        let mut got = 0usize;
        while let Some((_, ev)) = net.step() {
            if let NetEvent::Delivered { dir: Dir::Down, bytes, .. } = ev {
                got += bytes;
            }
        }
        assert_eq!(got, 300_000, "all bytes must eventually be delivered");
    }

    #[test]
    fn two_connections_share_the_bottleneck() {
        let mut net = Network::new(NetworkSpec::dsl_testbed());
        let s1 = net.add_server(ServerSpec::default());
        let s2 = net.add_server(ServerSpec::default());
        let c1 = net.connect(s1);
        let c2 = net.connect(s2);
        // Wait for both to connect.
        let mut connected = 0;
        while connected < 2 {
            if let Some((_, NetEvent::Connected { .. })) = net.step() {
                connected += 1;
            }
        }
        net.send(c1, Dir::Down, 1_000_000);
        net.send(c2, Dir::Down, 1_000_000);
        let mut done = [0usize; 2];
        let mut finish = [SimTime::ZERO; 2];
        while let Some((t, ev)) = net.step() {
            if let NetEvent::Delivered { conn, dir: Dir::Down, bytes } = ev {
                let i = if conn == c1 { 0 } else { 1 };
                done[i] += bytes;
                if done[i] == 1_000_000 {
                    finish[i] = t;
                }
            }
        }
        assert_eq!(done, [1_000_000, 1_000_000]);
        // Approximate FIFO fairness: short competing TCP flows through a
        // drop-tail queue routinely diverge by tens of percent; what must
        // NOT happen is full serialization (one flow waiting for the other
        // to finish, a 2× gap).
        let (a, b) = (finish[0].as_micros() as f64, finish[1].as_micros() as f64);
        assert!((a - b).abs() / a.max(b) < 0.40, "capture: {a} vs {b}");
        // And the link must stay busy: the later flow finishes within ~2.2 s
        // (2 MB at 16 Mbit/s is ~1.05 s of pure serialization).
        assert!(a.max(b) < 2_200_000.0, "link under-utilised: {a} vs {b}");
    }

    #[test]
    fn app_timers_fire_in_order() {
        let mut net = Network::new(NetworkSpec::dsl_testbed());
        net.schedule(SimTime::from_millis(10), 1);
        net.schedule(SimTime::from_millis(5), 2);
        assert_eq!(net.step().unwrap().1, NetEvent::App { token: 2 });
        assert_eq!(net.step().unwrap().1, NetEvent::App { token: 1 });
    }

    #[test]
    fn server_extra_delay_increases_rtt() {
        let mut net = Network::new(NetworkSpec::dsl_testbed());
        let far = net.add_server(ServerSpec::with_extra_delay(SimDuration::from_millis(40)));
        let c = net.connect(far);
        let (t, ev) = net.step().unwrap();
        assert_eq!(ev, NetEvent::Connected { conn: c });
        // RTT now 50+80 = 130 ms; 3 RTTs ≈ 390 ms.
        let ms = t.as_millis_f64();
        assert!((389.0..394.0).contains(&ms), "connected at {ms} ms");
    }

    #[test]
    fn data_sent_before_connect_is_flushed_on_establish() {
        let mut net = Network::new(NetworkSpec::dsl_testbed());
        let s = net.add_server(ServerSpec::default());
        let c = net.connect(s);
        net.send(c, Dir::Up, 100); // before Connected
        let (_, ev) = net.step().unwrap();
        assert!(matches!(ev, NetEvent::Connected { .. }));
        let (_, ev) = net.step().unwrap();
        assert_eq!(ev, NetEvent::Delivered { conn: c, dir: Dir::Up, bytes: 100 });
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::fault::{FaultSpec, LinkFlap};

    /// Run a 300 KB download to completion; returns (delivery trace, stats).
    fn download(spec: NetworkSpec) -> (Vec<(u64, usize)>, NetStats) {
        let net = Network::new(spec);
        download_in(net)
    }

    fn download_in(mut net: Network) -> (Vec<(u64, usize)>, NetStats) {
        let s = net.add_server(ServerSpec::default());
        let c = net.connect(s);
        let _ = net.step();
        net.send(c, Dir::Down, 300_000);
        let mut trace = Vec::new();
        let mut steps = 0u32;
        while let Some((t, ev)) = net.step() {
            steps += 1;
            assert!(steps < 1_000_000, "runaway simulation");
            if let NetEvent::Delivered { dir: Dir::Down, bytes, .. } = ev {
                trace.push((t.as_micros(), bytes));
            }
        }
        (trace, net.stats())
    }

    #[test]
    fn default_fault_spec_is_byte_identical_to_fault_free() {
        // The noop FaultSpec must not perturb a single event timestamp.
        let (a, sa) = download(NetworkSpec::dsl_testbed());
        let (b, sb) =
            download(NetworkSpec { fault: FaultSpec::default(), ..NetworkSpec::dsl_testbed() });
        assert_eq!(a, b);
        assert_eq!(sa.drops_fault, 0);
        assert_eq!(sb.drops_fault, 0);
    }

    #[test]
    fn gilbert_elliott_loss_recovers_and_counts() {
        let mut spec = NetworkSpec::dsl_testbed();
        spec.seed = 11;
        spec.fault = FaultSpec::gilbert_elliott(0.02);
        let (trace, stats) = download(spec);
        let total: usize = trace.iter().map(|&(_, b)| b).sum();
        assert_eq!(total, 300_000, "all bytes recovered despite burst loss");
        assert!(stats.drops_fault > 0, "2% GE over ~200 packets should drop some: {stats:?}");
        assert!(stats.retransmits >= stats.drops_fault, "every drop retransmits: {stats:?}");
    }

    #[test]
    fn fault_runs_are_bit_identical_across_reruns() {
        let mut spec = NetworkSpec::dsl_testbed();
        spec.seed = 23;
        spec.fault = FaultSpec::gilbert_elliott(0.05);
        spec.fault.extra_jitter = SimDuration::from_micros(800);
        spec.fault.reorder = 0.02;
        spec.fault.reorder_hold = SimDuration::from_millis(3);
        let (a, sa) = download(spec.clone());
        let (b, sb) = download(spec);
        assert_eq!(a, b, "same seed must replay identically");
        assert_eq!(sa, sb);
    }

    #[test]
    fn recycled_network_is_byte_identical_to_fresh() {
        // A network that already lived a whole (different) run, then reset
        // into a faulty spec, must replay exactly like a cold construction.
        let mut spec = NetworkSpec::dsl_testbed();
        spec.seed = 9;
        spec.fault = FaultSpec::gilbert_elliott(0.02);
        spec.fault.extra_jitter = SimDuration::from_micros(500);
        let (fresh, fresh_stats) = download(spec.clone());
        let mut net = Network::new(NetworkSpec::cable());
        let s = net.add_server(ServerSpec::default());
        let c = net.connect(s);
        let _ = net.step();
        net.send(c, Dir::Down, 50_000);
        while net.step().is_some() {}
        net.reset(spec);
        let (recycled, recycled_stats) = download_in(net);
        assert_eq!(fresh, recycled, "recycled network diverged from fresh");
        assert_eq!(fresh_stats, recycled_stats);
    }

    #[test]
    fn different_seeds_differ_under_faults() {
        let mut spec = NetworkSpec::dsl_testbed();
        spec.fault = FaultSpec::gilbert_elliott(0.05);
        spec.seed = 1;
        let (a, _) = download(spec.clone());
        spec.seed = 2;
        let (b, _) = download(spec);
        assert_ne!(a, b, "loss pattern should depend on the seed");
    }

    #[test]
    fn link_flap_stalls_then_completes() {
        let mut spec = NetworkSpec::dsl_testbed();
        spec.fault = FaultSpec {
            flaps: vec![LinkFlap {
                start: SimTime::from_millis(200),
                duration: SimDuration::from_millis(400),
            }],
            ..Default::default()
        };
        let (trace, stats) = download(spec);
        let total: usize = trace.iter().map(|&(_, b)| b).sum();
        assert_eq!(total, 300_000, "transfer survives the outage");
        assert!(stats.drops_flap > 0, "packets in the window must have died: {stats:?}");
        // Nothing lands inside the dead window (delivery = flap + one-way
        // propagation; allow the 25 ms pipe to drain into it).
        let in_window = trace.iter().filter(|&&(t, _)| (230_000..600_000).contains(&t)).count();
        assert_eq!(in_window, 0, "deliveries during the outage: {in_window}");
        let (clean, _) = download(NetworkSpec::dsl_testbed());
        assert!(
            trace.last().unwrap().0 > clean.last().unwrap().0 + 390_000,
            "a 400 ms outage must cost roughly its length"
        );
    }

    #[test]
    fn reordering_preserves_in_order_byte_delivery() {
        let mut spec = NetworkSpec::dsl_testbed();
        spec.seed = 5;
        spec.fault.reorder = 0.05;
        spec.fault.reorder_hold = SimDuration::from_millis(5);
        let (trace, stats) = download(spec);
        let total: usize = trace.iter().map(|&(_, b)| b).sum();
        assert_eq!(total, 300_000);
        assert!(stats.reordered > 0, "5% over ~200 packets should hold a few: {stats:?}");
        // The gate keeps arrival times monotonic.
        for w in trace.windows(2) {
            assert!(w[1].0 >= w[0].0, "delivery went backwards: {w:?}");
        }
    }

    #[test]
    fn extra_jitter_changes_timing_but_not_totals() {
        let mut spec = NetworkSpec::dsl_testbed();
        spec.seed = 3;
        spec.fault.extra_jitter = SimDuration::from_millis(2);
        let (jittered, stats) = download(spec);
        let (clean, _) = download(NetworkSpec::dsl_testbed());
        let totals = |t: &[(u64, usize)]| t.iter().map(|&(_, b)| b).sum::<usize>();
        assert_eq!(totals(&jittered), totals(&clean));
        assert_eq!(stats.drops_total(), 0, "jitter alone loses nothing");
        assert_ne!(jittered, clean, "2 ms of jitter must move timestamps");
    }
}

#[cfg(test)]
mod think_tests {
    use super::*;

    #[test]
    fn server_think_delays_request_delivery_only() {
        let mut net = Network::new(NetworkSpec::dsl_testbed());
        let s = net
            .add_server(ServerSpec { think: SimDuration::from_millis(40), ..Default::default() });
        let c = net.connect(s);
        let (t0, _) = net.step().unwrap(); // Connected
        net.send(c, Dir::Up, 300);
        let (t1, ev) = net.step().unwrap();
        assert_eq!(ev, NetEvent::Delivered { conn: c, dir: Dir::Up, bytes: 300 });
        // One-way ≈ 25 ms propagation + 40 ms think.
        let delta = (t1 - t0).as_millis_f64();
        assert!((64.0..72.0).contains(&delta), "request surfaced after {delta} ms");
        // Responses are NOT subject to think time.
        net.send(c, Dir::Down, 400);
        let (t2, ev) = net.step().unwrap();
        assert_eq!(ev, NetEvent::Delivered { conn: c, dir: Dir::Down, bytes: 400 });
        let delta = (t2 - t1).as_millis_f64();
        assert!((25.0..30.0).contains(&delta), "response took {delta} ms");
    }
}

#[cfg(test)]
mod profile_tests {
    use super::*;

    #[test]
    fn access_profiles_order_sensibly() {
        // Transfer 500 KB under each profile: fibre < cable < dsl < cellular.
        let mut finish = Vec::new();
        for spec in [
            NetworkSpec::fibre(),
            NetworkSpec::cable(),
            NetworkSpec::dsl_testbed(),
            NetworkSpec::cellular(),
        ] {
            let mut net = Network::new(spec);
            let s = net.add_server(ServerSpec::default());
            let c = net.connect(s);
            let _ = net.step();
            net.send(c, Dir::Down, 500_000);
            let mut last = SimTime::ZERO;
            let mut got = 0;
            while let Some((t, ev)) = net.step() {
                if let NetEvent::Delivered { dir: Dir::Down, bytes, .. } = ev {
                    got += bytes;
                    last = t;
                }
            }
            assert_eq!(got, 500_000);
            finish.push(last.as_millis_f64());
        }
        for w in finish.windows(2) {
            assert!(w[0] < w[1], "profiles out of order: {finish:?}");
        }
    }
}
