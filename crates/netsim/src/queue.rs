//! Deterministic event queue: a hierarchical timing wheel with a
//! binary-heap reference backend.
//!
//! Ordering is total over `(SimTime, sequence)` — the sequence number
//! breaks ties between events scheduled for the same instant in
//! *insertion order*, which makes the simulation fully deterministic
//! regardless of the backing structure.
//!
//! The default backend is a three-level timing wheel sized for the
//! simulator's event mix (µs-scale packet hops, ms-scale think timers,
//! second-scale RTOs and deadlines):
//!
//! * level 0 — 1024 slots × 1 µs (≈ 1 ms window). One slot is one exact
//!   microsecond, so FIFO order within a slot *is* `(time, seq)` order.
//! * level 1 — 256 slots × 1.024 ms (≈ 262 ms window).
//! * level 2 — 256 slots × ≈ 262 ms (≈ 67 s window).
//! * an unsorted overflow list beyond that, plus a small "past" heap for
//!   events pushed behind the pop frontier (never hit by the simulator,
//!   which schedules monotonically, but required for arbitrary
//!   push/pop interleavings — the equivalence proptests exercise it).
//!
//! Pushes route by distance from the current window; pops find the next
//! occupied slot through per-level occupancy bitmaps and cascade one
//! higher-level slot down only when a window empties, so each event is
//! touched at most three times. Every structure is recycled by
//! [`EventQueue::clear`] with its allocations intact, which is what makes
//! the thread-local queue pool in `network.rs` allocation-free at steady
//! state.
//!
//! [`EventQueue::with_heap`] keeps the original binary-heap
//! implementation alive as a reference: the proptest suite in
//! `tests/queue_equiv.rs` pops both backends in lockstep over arbitrary
//! interleavings and asserts identical sequences.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

struct Entry<E> {
    at: u64,
    seq: u64,
    event: E,
}

/// Min-heap adapter over [`Entry`] (used by the heap backend and the
/// wheel's past-frontier spill).
struct Rev<E>(Entry<E>);

impl<E> PartialEq for Rev<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<E> Eq for Rev<E> {}
impl<E> PartialOrd for Rev<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Rev<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest first.
        (other.0.at, other.0.seq).cmp(&(self.0.at, self.0.seq))
    }
}

const L0_BITS: u32 = 10;
const L1_BITS: u32 = 8;
const L2_BITS: u32 = 8;
/// 1024 slots × 1 µs.
const L0_SLOTS: usize = 1 << L0_BITS;
/// 256 slots × 1.024 ms.
const L1_SLOTS: usize = 1 << L1_BITS;
/// 256 slots × ≈ 262 ms.
const L2_SLOTS: usize = 1 << L2_BITS;
const L1_SHIFT: u32 = L0_BITS;
const L2_SHIFT: u32 = L0_BITS + L1_BITS;
const L0_SPAN: u64 = 1 << L0_BITS;

/// First set bit at or after `from`. `summary` holds one bit per word of
/// `words` (bit w set iff `words[w] != 0`), so a scan over a sparse or
/// empty bitmap is one masked summary lookup instead of a word-by-word
/// walk — the common case on the pop path, where level-0 is empty most
/// of the time between cascades.
fn next_bit(summary: u64, words: &[u64], from: usize) -> Option<usize> {
    let w0 = from >> 6;
    if w0 >= words.len() {
        return None;
    }
    let cur = words[w0] & (!0u64 << (from & 63));
    if cur != 0 {
        return Some((w0 << 6) + cur.trailing_zeros() as usize);
    }
    // Jump straight to the next nonempty word (words.len() ≤ 16 < 64, so
    // the shift below cannot overflow).
    let rest = summary & (!0u64 << (w0 + 1));
    if rest == 0 {
        return None;
    }
    let w = rest.trailing_zeros() as usize;
    Some((w << 6) + words[w].trailing_zeros() as usize)
}

#[inline]
fn set_bit(words: &mut [u64], summary: &mut u64, s: usize) {
    words[s >> 6] |= 1 << (s & 63);
    *summary |= 1 << (s >> 6);
}

#[inline]
fn clear_bit(words: &mut [u64], summary: &mut u64, s: usize) {
    let w = s >> 6;
    words[w] &= !(1 << (s & 63));
    if words[w] == 0 {
        *summary &= !(1 << w);
    }
}

struct Wheel<E> {
    /// Slot storage, allocated lazily on the first push so that the
    /// `mem::take` placeholder in `Network::drop` stays allocation-free.
    l0: Vec<VecDeque<Entry<E>>>,
    l1: Vec<VecDeque<Entry<E>>>,
    l2: Vec<VecDeque<Entry<E>>>,
    bm0: [u64; L0_SLOTS / 64],
    bm1: [u64; L1_SLOTS / 64],
    bm2: [u64; L2_SLOTS / 64],
    /// One-bit-per-word summaries of the bitmaps above.
    sm0: u64,
    sm1: u64,
    sm2: u64,
    /// Cursors: slots below the cursor in the current window are drained.
    c0: usize,
    c1: usize,
    c2: usize,
    /// Absolute time of slot 0 of each level's current window.
    l0_start: u64,
    l1_start: u64,
    l2_start: u64,
    /// Events pushed behind the pop frontier (earlier than anything the
    /// wheel can still index). Empty under monotone scheduling.
    past: BinaryHeap<Rev<E>>,
    /// Events beyond the level-2 horizon, unsorted.
    overflow: Vec<Entry<E>>,
}

impl<E> Wheel<E> {
    fn new() -> Self {
        Wheel {
            l0: Vec::new(),
            l1: Vec::new(),
            l2: Vec::new(),
            bm0: [0; L0_SLOTS / 64],
            bm1: [0; L1_SLOTS / 64],
            bm2: [0; L2_SLOTS / 64],
            sm0: 0,
            sm1: 0,
            sm2: 0,
            c0: 0,
            c1: 0,
            c2: 0,
            l0_start: 0,
            l1_start: 0,
            l2_start: 0,
            past: BinaryHeap::new(),
            overflow: Vec::new(),
        }
    }

    fn push(&mut self, e: Entry<E>) {
        if self.l0.is_empty() {
            self.l0.resize_with(L0_SLOTS, VecDeque::new);
            self.l1.resize_with(L1_SLOTS, VecDeque::new);
            self.l2.resize_with(L2_SLOTS, VecDeque::new);
        }
        let t = e.at;
        // A `None` frontier means the cursor ran past u64::MAX: every
        // representable time is behind it.
        let behind = match self.l0_start.checked_add(self.c0 as u64) {
            Some(frontier) => t < frontier,
            None => true,
        };
        if behind {
            self.past.push(Rev(e));
            return;
        }
        // All subtractions below are safe: t ≥ frontier ≥ l0_start ≥
        // l1_start ≥ l2_start (each window opens inside its parent slot).
        if t - self.l0_start < L0_SPAN {
            let s = (t - self.l0_start) as usize;
            set_bit(&mut self.bm0, &mut self.sm0, s);
            self.l0[s].push_back(e);
        } else if (t - self.l1_start) >> L1_SHIFT < L1_SLOTS as u64 {
            let s = ((t - self.l1_start) >> L1_SHIFT) as usize;
            set_bit(&mut self.bm1, &mut self.sm1, s);
            self.l1[s].push_back(e);
        } else if (t - self.l2_start) >> L2_SHIFT < L2_SLOTS as u64 {
            let s = ((t - self.l2_start) >> L2_SHIFT) as usize;
            set_bit(&mut self.bm2, &mut self.sm2, s);
            self.l2[s].push_back(e);
        } else {
            self.overflow.push(e);
        }
    }

    /// Advance the cursors to the earliest occupied level-0 slot,
    /// cascading one higher-level slot down per iteration. Returns false
    /// when everything outside `past` is empty.
    ///
    /// Cascades preserve `(time, seq)` order: a parent slot's entries are
    /// re-distributed in insertion order, and direct pushes can only land
    /// in a child window *after* it has been opened (and its parent slot
    /// fully drained), so same-instant entries always append in seq order.
    fn locate(&mut self) -> bool {
        loop {
            if let Some(s) = next_bit(self.sm0, &self.bm0, self.c0) {
                self.c0 = s;
                return true;
            }
            if let Some(s) = next_bit(self.sm1, &self.bm1, self.c1) {
                // Open level-1 slot `s` as the new level-0 window.
                self.l0_start = self.l1_start + ((s as u64) << L1_SHIFT);
                self.c0 = 0;
                self.c1 = s + 1;
                clear_bit(&mut self.bm1, &mut self.sm1, s);
                let mut buf = std::mem::take(&mut self.l1[s]);
                for e in buf.drain(..) {
                    let i = (e.at - self.l0_start) as usize;
                    set_bit(&mut self.bm0, &mut self.sm0, i);
                    self.l0[i].push_back(e);
                }
                self.l1[s] = buf; // hand the buffer back for reuse
                continue;
            }
            if let Some(s) = next_bit(self.sm2, &self.bm2, self.c2) {
                // Open level-2 slot `s` as the new level-1 window.
                self.l1_start = self.l2_start + ((s as u64) << L2_SHIFT);
                self.c1 = 0;
                self.l0_start = self.l1_start;
                self.c0 = 0;
                self.c2 = s + 1;
                clear_bit(&mut self.bm2, &mut self.sm2, s);
                let mut buf = std::mem::take(&mut self.l2[s]);
                for e in buf.drain(..) {
                    let i = ((e.at - self.l1_start) >> L1_SHIFT) as usize;
                    set_bit(&mut self.bm1, &mut self.sm1, i);
                    self.l1[i].push_back(e);
                }
                self.l2[s] = buf;
                continue;
            }
            if !self.overflow.is_empty() {
                // Re-anchor the whole wheel at the earliest far event and
                // pull everything inside the new level-2 horizon in,
                // preserving insertion order.
                let min = self.overflow.iter().map(|e| e.at).min().expect("nonempty");
                self.l2_start = min;
                self.l1_start = min;
                self.l0_start = min;
                self.c0 = 0;
                self.c1 = 0;
                self.c2 = 0;
                let mut keep = Vec::new();
                for e in self.overflow.drain(..) {
                    let d = (e.at - self.l2_start) >> L2_SHIFT;
                    if d < L2_SLOTS as u64 {
                        let i = d as usize;
                        set_bit(&mut self.bm2, &mut self.sm2, i);
                        self.l2[i].push_back(e);
                    } else {
                        keep.push(e);
                    }
                }
                self.overflow = keep;
                continue;
            }
            return false;
        }
    }

    fn pop_slot(&mut self) -> Entry<E> {
        let s = self.c0;
        let e = self.l0[s].pop_front().expect("located slot is nonempty");
        if self.l0[s].is_empty() {
            clear_bit(&mut self.bm0, &mut self.sm0, s);
            self.c0 = s + 1;
        }
        e
    }

    fn pop(&mut self) -> Option<Entry<E>> {
        // Fast path for the simulator's steady state: nothing behind the
        // frontier and the cursor already resting on an occupied slot
        // (same-instant bursts, cascaded slots being drained).
        if self.past.is_empty()
            && self.c0 < L0_SLOTS
            && self.bm0[self.c0 >> 6] & (1 << (self.c0 & 63)) != 0
        {
            return Some(self.pop_slot());
        }
        let in_wheel = self.locate();
        match (in_wheel, self.past.peek()) {
            (false, None) => None,
            (true, None) => Some(self.pop_slot()),
            (false, Some(_)) => self.past.pop().map(|r| r.0),
            (true, Some(p)) => {
                let front = self.l0[self.c0].front().expect("located slot is nonempty");
                if (p.0.at, p.0.seq) < (front.at, front.seq) {
                    self.past.pop().map(|r| r.0)
                } else {
                    Some(self.pop_slot())
                }
            }
        }
    }

    /// Earliest `(at, seq)` without mutating the wheel (`peek_time` takes
    /// `&self`). Falls back to scanning the first occupied higher-level
    /// slot — all earlier slots are provably empty, so its minimum is the
    /// wheel's minimum.
    fn peek(&self) -> Option<(u64, u64)> {
        let wheel = if let Some(s) = next_bit(self.sm0, &self.bm0, self.c0) {
            self.l0[s].front().map(|e| (e.at, e.seq))
        } else if let Some(s) = next_bit(self.sm1, &self.bm1, self.c1) {
            self.l1[s].iter().map(|e| (e.at, e.seq)).min()
        } else if let Some(s) = next_bit(self.sm2, &self.bm2, self.c2) {
            self.l2[s].iter().map(|e| (e.at, e.seq)).min()
        } else {
            self.overflow.iter().map(|e| (e.at, e.seq)).min()
        };
        let past = self.past.peek().map(|r| (r.0.at, r.0.seq));
        match (wheel, past) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn clear(&mut self) {
        while let Some(s) = next_bit(self.sm0, &self.bm0, 0) {
            self.l0[s].clear();
            clear_bit(&mut self.bm0, &mut self.sm0, s);
        }
        while let Some(s) = next_bit(self.sm1, &self.bm1, 0) {
            self.l1[s].clear();
            clear_bit(&mut self.bm1, &mut self.sm1, s);
        }
        while let Some(s) = next_bit(self.sm2, &self.bm2, 0) {
            self.l2[s].clear();
            clear_bit(&mut self.bm2, &mut self.sm2, s);
        }
        self.past.clear();
        self.overflow.clear();
        self.c0 = 0;
        self.c1 = 0;
        self.c2 = 0;
        self.l0_start = 0;
        self.l1_start = 0;
        self.l2_start = 0;
    }
}

enum Backend<E> {
    /// Boxed: the wheel's slot arrays are tens of kilobytes, and queues
    /// move by value through the thread-local recycling pool.
    Wheel(Box<Wheel<E>>),
    Heap(BinaryHeap<Rev<E>>),
}

/// A time-ordered queue of simulation events.
///
/// Events scheduled for the same instant pop in the order they were
/// pushed. The default backend is the timing wheel; [`EventQueue::with_heap`]
/// selects the binary-heap reference implementation (identical pop
/// sequences, asserted by the equivalence proptests).
pub struct EventQueue<E> {
    backend: Backend<E>,
    next_seq: u64,
    len: usize,
    /// High-water entry count — a cheap allocation proxy so the recycling
    /// pool can tell a used queue from a fresh placeholder.
    high_water: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue (timing-wheel backend).
    pub fn new() -> Self {
        EventQueue {
            backend: Backend::Wheel(Box::new(Wheel::new())),
            next_seq: 0,
            len: 0,
            high_water: 0,
        }
    }

    /// Create an empty queue backed by the original binary heap. The
    /// reference implementation for lockstep equivalence tests; pop
    /// sequences are identical to [`EventQueue::new`].
    pub fn with_heap() -> Self {
        EventQueue { backend: Backend::Heap(BinaryHeap::new()), next_seq: 0, len: 0, high_water: 0 }
    }

    /// Schedule `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        self.high_water = self.high_water.max(self.len);
        let entry = Entry { at: at.as_micros(), seq, event };
        match &mut self.backend {
            Backend::Wheel(w) => w.push(entry),
            Backend::Heap(h) => h.push(Rev(entry)),
        }
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = match &mut self.backend {
            Backend::Wheel(w) => w.pop(),
            Backend::Heap(h) => h.pop().map(|r| r.0),
        }?;
        self.len -= 1;
        Some((SimTime(e.at), e.event))
    }

    /// Drop all pending events and reset the tie-break sequence, keeping
    /// every allocation. A cleared queue behaves exactly like a fresh
    /// one — ordering is total over `(time, seq)`, so retained capacity
    /// cannot affect pop order — which makes recycling queues across
    /// simulation runs safe for determinism.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Wheel(w) => w.clear(),
            Backend::Heap(h) => h.clear(),
        }
        self.next_seq = 0;
        self.len = 0;
    }

    /// Allocation proxy: nonzero once the queue has ever held an event.
    /// (For the heap backend this is the heap's real capacity; the wheel
    /// reports its high-water entry count, which survives [`clear`]
    /// exactly like retained capacity does.)
    ///
    /// [`clear`]: EventQueue::clear
    pub fn capacity(&self) -> usize {
        match &self.backend {
            Backend::Wheel(_) => self.high_water,
            Backend::Heap(h) => h.capacity(),
        }
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Wheel(w) => w.peek().map(|(at, _)| SimTime(at)),
            Backend::Heap(h) => h.peek().map(|r| SimTime(r.0.at)),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [EventQueue<u64>; 2] {
        [EventQueue::new(), EventQueue::with_heap()]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in [EventQueue::new(), EventQueue::with_heap()] {
            q.push(SimTime::from_millis(30), "c");
            q.push(SimTime::from_millis(10), "a");
            q.push(SimTime::from_millis(20), "b");
            assert_eq!(q.pop(), Some((SimTime::from_millis(10), "a")));
            assert_eq!(q.pop(), Some((SimTime::from_millis(20), "b")));
            assert_eq!(q.pop(), Some((SimTime::from_millis(30), "c")));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn ties_break_in_insertion_order() {
        for mut q in both() {
            let t = SimTime::from_millis(5);
            for i in 0..100 {
                q.push(t, i);
            }
            for i in 0..100 {
                assert_eq!(q.pop().unwrap().1, i);
            }
        }
    }

    #[test]
    fn peek_time_matches_pop() {
        for mut q in [EventQueue::new(), EventQueue::with_heap()] {
            assert_eq!(q.peek_time(), None);
            q.push(SimTime::from_millis(7), ());
            assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
            q.pop();
            assert!(q.is_empty());
        }
    }

    #[test]
    fn far_future_and_interleaved_pops() {
        // Times spanning every level: same-µs burst, level-1, level-2,
        // overflow, and a push behind the frontier after a pop.
        for mut q in both() {
            q.push(SimTime(3), 3);
            q.push(SimTime(70_000_000), 70); // ≈ 70 s: beyond level 2
            q.push(SimTime(500_000), 500); // level 2
            q.push(SimTime(2_000), 2); // level 1
            q.push(SimTime(3), 4); // same instant, later seq
            assert_eq!(q.pop(), Some((SimTime(3), 3)));
            assert_eq!(q.pop(), Some((SimTime(3), 4)));
            q.push(SimTime(1), 1); // behind the frontier
            assert_eq!(q.pop(), Some((SimTime(1), 1)));
            assert_eq!(q.pop(), Some((SimTime(2_000), 2)));
            assert_eq!(q.peek_time(), Some(SimTime(500_000)));
            assert_eq!(q.pop(), Some((SimTime(500_000), 500)));
            assert_eq!(q.pop(), Some((SimTime(70_000_000), 70)));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn cleared_queue_behaves_like_fresh() {
        for mut q in both() {
            for i in 0..50 {
                q.push(SimTime(i * 997 % 4000), i);
            }
            q.pop();
            q.clear();
            assert!(q.is_empty());
            assert_eq!(q.pop(), None);
            // Seq restarts: same-instant ordering matches a fresh queue.
            q.push(SimTime(9), 1);
            q.push(SimTime(9), 2);
            assert_eq!(q.pop(), Some((SimTime(9), 1)));
            assert_eq!(q.pop(), Some((SimTime(9), 2)));
        }
    }

    #[test]
    fn capacity_is_nonzero_after_use() {
        for mut q in both() {
            assert_eq!(q.capacity(), 0);
            q.push(SimTime(1), 0);
            q.pop();
            q.clear();
            assert!(q.capacity() > 0, "recycling pool needs a used-queue signal");
        }
    }

    #[test]
    fn wheel_matches_heap_on_a_dense_schedule() {
        let mut wheel = EventQueue::new();
        let mut heap = EventQueue::with_heap();
        // Deterministic pseudo-random mix of pushes and pops.
        let mut x: u64 = 0x2545F491;
        for i in 0..5_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x % 3 == 0 {
                assert_eq!(wheel.pop(), heap.pop());
            } else {
                let t = match x % 7 {
                    0..=2 => x % 1_000,                // level 0
                    3 | 4 => x % 200_000,              // level 1
                    5 => x % 50_000_000,               // level 2
                    _ => 60_000_000 + x % 100_000_000, // overflow
                };
                wheel.push(SimTime(t), i);
                heap.push(SimTime(t), i);
            }
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
