//! Deterministic event queue.
//!
//! A binary heap keyed by `(SimTime, sequence)` — the sequence number breaks
//! ties between events scheduled for the same instant in *insertion order*,
//! which makes the simulation fully deterministic regardless of heap
//! internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest event first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A time-ordered queue of simulation events.
///
/// Events scheduled for the same instant pop in the order they were pushed.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedule `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Drop all pending events and reset the tie-break sequence, keeping
    /// the heap's capacity. A cleared queue behaves exactly like a fresh
    /// one — ordering is total over `(time, seq)`, so retained capacity
    /// cannot affect pop order — which makes recycling queues across
    /// simulation runs safe for determinism.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
    }

    /// Allocated capacity of the underlying heap.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), "c");
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }
}
