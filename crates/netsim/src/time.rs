//! Virtual time for the discrete-event simulation.
//!
//! The whole reproduction runs on a deterministic virtual clock (cf. the
//! paper's §4.1 goal of removing network variability). Time is measured in
//! integer microseconds; one microsecond resolution is fine-grained enough to
//! order back-to-back 1500-byte packets on a 16 Mbit/s link (≈ 750 µs each)
//! while keeping arithmetic exact.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// This instant expressed as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant expressed as whole microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from fractional seconds (used when deriving serialization
    /// delay from a bit rate). Rounds up so a nonzero transfer never takes
    /// zero time.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs * 1e6).ceil().max(0.0) as u64)
    }

    /// This span expressed as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This span expressed as whole microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Multiply the duration by an integer factor.
    pub fn times(self, factor: u64) -> SimDuration {
        SimDuration(self.0 * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn millis_round_trip() {
        let t = SimTime::from_millis(50);
        assert_eq!(t.as_micros(), 50_000);
        assert_eq!(t.as_millis_f64(), 50.0);
    }

    #[test]
    fn add_duration() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_millis(5);
        let late = SimTime::from_millis(9);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early), SimDuration::from_millis(4));
    }

    #[test]
    fn serialization_delay_rounds_up() {
        // 1500 bytes at 16 Mbit/s = 750 µs exactly.
        let d = SimDuration::from_secs_f64(1500.0 * 8.0 / 16_000_000.0);
        assert_eq!(d.as_micros(), 750);
        // A tiny but nonzero transfer must not take zero time.
        let d = SimDuration::from_secs_f64(1e-9);
        assert!(d.as_micros() >= 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(1)), "1.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(1500)), "1.500ms");
    }
}
