//! Lockstep equivalence: the timing-wheel `EventQueue` and the
//! binary-heap reference backend must produce identical pop sequences
//! for arbitrary push/pop/clear interleavings — including same-instant
//! bursts, far-future overflow times and pushes behind the pop frontier
//! (which a monotone simulator never issues, but the wheel must still
//! order correctly).

use h2push_netsim::{EventQueue, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Push one event at the given absolute microsecond.
    Push(u64),
    /// Push `n` events at the same instant (tie-break stress).
    Burst(u64, u8),
    /// Pop once and compare.
    Pop,
    /// Drain up to `n` events.
    PopMany(u8),
    /// Reset both queues (seq restarts; recycled state must be inert).
    Clear,
}

/// Times spanning every wheel level: level-0 (µs), level-1 (ms),
/// level-2 (sub-minute), the overflow list, and u64 extremes.
fn time_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        0u64..1_024,
        0u64..262_144,
        0u64..67_000_000,
        0u64..10_000_000_000,
        (u64::MAX - 1_000)..=u64::MAX,
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        time_strategy().prop_map(Op::Push),
        (time_strategy(), 1u8..12).prop_map(|(t, n)| Op::Burst(t, n)),
        Just(Op::Pop),
        (1u8..20).prop_map(Op::PopMany),
        Just(Op::Clear),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wheel_and_heap_pop_identically(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut heap: EventQueue<u64> = EventQueue::with_heap();
        let mut tag = 0u64;
        for op in &ops {
            match *op {
                Op::Push(t) => {
                    wheel.push(SimTime(t), tag);
                    heap.push(SimTime(t), tag);
                    tag += 1;
                }
                Op::Burst(t, n) => {
                    for _ in 0..n {
                        wheel.push(SimTime(t), tag);
                        heap.push(SimTime(t), tag);
                        tag += 1;
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(wheel.pop(), heap.pop());
                }
                Op::PopMany(n) => {
                    for _ in 0..n {
                        prop_assert_eq!(wheel.pop(), heap.pop());
                    }
                }
                Op::Clear => {
                    wheel.clear();
                    heap.clear();
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.is_empty(), heap.is_empty());
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
        }
        // Drain whatever is left in lockstep.
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn cleared_and_recycled_queues_match_fresh_ones(
        first in proptest::collection::vec((time_strategy(), Just(())), 1..60),
        second in proptest::collection::vec(time_strategy(), 1..60),
    ) {
        // Fill + partially drain + clear a wheel, then check the recycled
        // instance pops the second schedule exactly like a fresh queue.
        let mut recycled: EventQueue<u64> = EventQueue::new();
        for (i, (t, ())) in first.iter().enumerate() {
            recycled.push(SimTime(*t), i as u64);
        }
        for _ in 0..first.len() / 2 {
            recycled.pop();
        }
        recycled.clear();

        let mut fresh: EventQueue<u64> = EventQueue::new();
        for (i, t) in second.iter().enumerate() {
            recycled.push(SimTime(*t), i as u64);
            fresh.push(SimTime(*t), i as u64);
        }
        loop {
            let (a, b) = (recycled.pop(), fresh.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
