//! # h2push-strategies — Server Push strategies
//!
//! Everything the paper varies in §4 and §5: *what* to push, *in which
//! order*, and *when* (plain child-of-parent pushes vs the Interleaving
//! Push hard switch). Also the §4.2 computed push order: linearizing the
//! browser's dependency tree observed over repeated no-push runs with a
//! majority vote.

pub mod order;
pub mod paper;

pub use order::{majority_order, RunTrace};
pub use paper::{paper_strategy, PaperStrategy};

use h2push_webmodel::{Page, ResourceId, ResourceType};

/// A concrete push strategy as executed by the replay server for one page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Strategy {
    /// The client disables push (`SETTINGS_ENABLE_PUSH = 0`), §2.1.
    NoPush,
    /// Push these resources (in order) upon the request for the document;
    /// h2o default scheduling applies (children of the HTML stream).
    PushList {
        /// Resources to push, in announcement order.
        order: Vec<ResourceId>,
    },
    /// The paper's §5 Interleaving Push: send `offset` bytes of the
    /// document, hard-switch to pushing `critical` (in order), resume the
    /// document, and push `after` once the document has finished.
    Interleaved {
        /// Document bytes to send before the switch.
        offset: usize,
        /// Resources pushed during the switch.
        critical: Vec<ResourceId>,
        /// Resources pushed after the document completes.
        after: Vec<ResourceId>,
    },
}

impl Strategy {
    /// Does this strategy push anything at all?
    pub fn pushes(&self) -> bool {
        match self {
            Strategy::NoPush => false,
            Strategy::PushList { order } => !order.is_empty(),
            Strategy::Interleaved { critical, after, .. } => {
                !critical.is_empty() || !after.is_empty()
            }
        }
    }

    /// All resources this strategy pushes, in announcement order.
    pub fn pushed_resources(&self) -> Vec<ResourceId> {
        match self {
            Strategy::NoPush => Vec::new(),
            Strategy::PushList { order } => order.clone(),
            Strategy::Interleaved { critical, after, .. } => {
                critical.iter().chain(after.iter()).copied().collect()
            }
        }
    }

    /// Total bytes this strategy would push on `page`.
    pub fn pushed_bytes(&self, page: &Page) -> usize {
        self.pushed_resources().iter().map(|&id| page.resource(id).size).sum()
    }
}

/// "Push all" (§4.2.1): every pushable resource in the given order
/// (resources not in `order` are appended in id order).
pub fn push_all(page: &Page, order: &[ResourceId]) -> Strategy {
    let pushable = page.pushable();
    let mut list: Vec<ResourceId> =
        order.iter().copied().filter(|id| pushable.contains(id)).collect();
    for id in pushable {
        if !list.contains(&id) {
            list.push(id);
        }
    }
    Strategy::PushList { order: list }
}

/// "Push n" (§4.2.1, Fig. 3b): the first `n` of the push-all order.
pub fn push_first_n(page: &Page, order: &[ResourceId], n: usize) -> Strategy {
    match push_all(page, order) {
        Strategy::PushList { mut order } => {
            order.truncate(n);
            Strategy::PushList { order }
        }
        s => s,
    }
}

/// "Push by type" (§4.2.1): only pushable resources of the given types,
/// keeping the given order.
pub fn push_by_type(page: &Page, order: &[ResourceId], types: &[ResourceType]) -> Strategy {
    match push_all(page, order) {
        Strategy::PushList { order } => Strategy::PushList {
            order: order
                .into_iter()
                .filter(|&id| types.contains(&page.resource(id).rtype))
                .collect(),
        },
        s => s,
    }
}

/// "Push as recorded" (§4.1, Fig. 2b): replay the live deployment's list.
pub fn push_as_recorded(page: &Page) -> Strategy {
    let pushable = page.pushable();
    Strategy::PushList {
        order: page.recorded_push.iter().copied().filter(|id| pushable.contains(id)).collect(),
    }
}

/// The critical above-the-fold set used by the §5 "push critical"
/// strategies: render-blocking CSS, parser-blocking scripts referenced in
/// the head, fonts, and heavyweight above-the-fold images — restricted to
/// pushable resources.
pub fn critical_set(page: &Page) -> Vec<ResourceId> {
    let pushable = page.pushable();
    let mut set: Vec<ResourceId> = page
        .subresources()
        .iter()
        .filter(|r| pushable.contains(&r.id))
        .filter(|r| {
            let head_ref = matches!(
                r.discovery,
                h2push_webmodel::Discovery::Html { offset } if offset < page.head_end
            );
            (r.rtype == ResourceType::Css && r.render_blocking)
                || (r.is_parser_blocking_script() && head_ref)
                || r.rtype == ResourceType::Font
                || (r.rtype == ResourceType::Image && r.above_fold && r.visual_weight >= 1.5)
        })
        .map(|r| r.id)
        .collect();
    // Render-blocking CSS first, then blocking JS, fonts, images — the
    // order the renderer needs them.
    set.sort_by_key(|&id| {
        let r = page.resource(id);
        let class = match r.rtype {
            ResourceType::Css => 0,
            ResourceType::Js => 1,
            ResourceType::Font => 2,
            _ => 3,
        };
        (class, id)
    });
    set
}

/// The interleave switch point: just past `</head>` plus the first bytes
/// of `<body>` (the paper switches after 4 KB of wikipedia's HTML whose
/// head ends around there, and after 12 KB on twitter).
pub fn interleave_offset(page: &Page) -> usize {
    (page.head_end + 1024).max(4096).min(page.html_size())
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2push_webmodel::{PageBuilder, ResourceSpec};

    fn page() -> Page {
        let mut b = PageBuilder::new("s", "s.test", 50_000, 5_000);
        let third = b.origin("ads.x.net", 1, false);
        b.resource(ResourceSpec::css(0, 20_000, 300, 0.3)); // 1
        b.resource(ResourceSpec::js(0, 30_000, 1_000, 10_000)); // 2 head JS
        b.resource(ResourceSpec::image(0, 40_000, 10_000, true, 2.0)); // 3
        b.resource(ResourceSpec::image(0, 15_000, 20_000, false, 0.0)); // 4
        b.resource(ResourceSpec::js_async(third, 8_000, 30_000, 1_000)); // 5 third-party
        b.recorded_push(&[ResourceId(1), ResourceId(4)]);
        b.build()
    }

    #[test]
    fn push_all_respects_authority() {
        let p = page();
        let s = push_all(&p, &[]);
        let pushed = s.pushed_resources();
        assert_eq!(pushed.len(), 4, "third-party resource must not be pushed");
        assert!(!pushed.contains(&ResourceId(5)));
    }

    #[test]
    fn push_all_preserves_given_order() {
        let p = page();
        let s = push_all(&p, &[ResourceId(3), ResourceId(1)]);
        let pushed = s.pushed_resources();
        assert_eq!(&pushed[..2], &[ResourceId(3), ResourceId(1)]);
        assert_eq!(pushed.len(), 4);
    }

    #[test]
    fn first_n_truncates() {
        let p = page();
        let s = push_first_n(&p, &[ResourceId(1), ResourceId(2), ResourceId(3)], 2);
        assert_eq!(s.pushed_resources(), vec![ResourceId(1), ResourceId(2)]);
    }

    #[test]
    fn by_type_filters() {
        let p = page();
        let s = push_by_type(&p, &[], &[ResourceType::Css]);
        assert_eq!(s.pushed_resources(), vec![ResourceId(1)]);
        let s = push_by_type(&p, &[], &[ResourceType::Css, ResourceType::Image]);
        assert_eq!(s.pushed_resources().len(), 3);
    }

    #[test]
    fn as_recorded_uses_page_list() {
        let p = page();
        let s = push_as_recorded(&p);
        assert_eq!(s.pushed_resources(), vec![ResourceId(1), ResourceId(4)]);
    }

    #[test]
    fn critical_set_orders_css_first() {
        let p = page();
        let set = critical_set(&p);
        assert_eq!(set, vec![ResourceId(1), ResourceId(2), ResourceId(3)]);
    }

    #[test]
    fn pushed_bytes_sums() {
        let p = page();
        let s = push_as_recorded(&p);
        assert_eq!(s.pushed_bytes(&p), 35_000);
        assert!(Strategy::NoPush.pushed_bytes(&p) == 0);
        assert!(!Strategy::NoPush.pushes());
    }

    #[test]
    fn interleave_offset_covers_head() {
        let p = page();
        assert_eq!(interleave_offset(&p), 6_024);
        // Tiny page: clamped to document size.
        let mut b = PageBuilder::new("tiny", "t.test", 2_000, 500);
        b.resource(ResourceSpec::css(0, 1_000, 100, 0.5));
        let tiny = b.build();
        assert_eq!(interleave_offset(&tiny), 2_000);
    }
}
