//! Computed push order (§4.2 "Computing the Push Order").
//!
//! The paper replays each site 31 times *without* push, traces the requests
//! and their priorities, builds the dependency tree, and linearizes it into
//! a push order. Because client-side processing makes the order unstable
//! across runs, a **majority vote** fixes the final order. Here the testbed
//! hands us one request-order trace per run (already the linearization of
//! the browser's priority tree as the server observed it); the vote ranks
//! resources by their median observed position.

use h2push_hpack::FxHashMap;
use h2push_webmodel::ResourceId;

/// The (server-observed) request order of one replay run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunTrace {
    /// Resources in the order their requests arrived.
    pub order: Vec<ResourceId>,
}

/// Majority-vote linearization over several runs: resources are ranked by
/// the median position at which they were requested; resources missing
/// from a run are placed at the end for that run. Ties break by the order
/// in the first trace (then by id), keeping the result deterministic.
pub fn majority_order(traces: &[RunTrace]) -> Vec<ResourceId> {
    if traces.is_empty() {
        return Vec::new();
    }
    let mut positions: FxHashMap<ResourceId, Vec<usize>> = FxHashMap::default();
    let mut universe: Vec<ResourceId> = Vec::new();
    for t in traces {
        for (pos, &id) in t.order.iter().enumerate() {
            if !positions.contains_key(&id) {
                universe.push(id);
            }
            positions.entry(id).or_default().push(pos);
        }
    }
    // Missing observations count as "last".
    let sentinel = universe.len();
    for v in positions.values_mut() {
        while v.len() < traces.len() {
            v.push(sentinel);
        }
        v.sort_unstable();
    }
    let first_trace_pos: FxHashMap<ResourceId, usize> =
        traces[0].order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let median = |v: &Vec<usize>| -> f64 {
        let n = v.len();
        if n % 2 == 1 {
            v[n / 2] as f64
        } else {
            (v[n / 2 - 1] + v[n / 2]) as f64 / 2.0
        }
    };
    universe.sort_by(|a, b| {
        let ma = median(&positions[a]);
        let mb = median(&positions[b]);
        ma.partial_cmp(&mb)
            .unwrap()
            .then_with(|| {
                let fa = first_trace_pos.get(a).copied().unwrap_or(usize::MAX);
                let fb = first_trace_pos.get(b).copied().unwrap_or(usize::MAX);
                fa.cmp(&fb)
            })
            .then(a.cmp(b))
    });
    universe
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ids: &[usize]) -> RunTrace {
        RunTrace { order: ids.iter().map(|&i| ResourceId(i)).collect() }
    }

    fn ids(v: &[usize]) -> Vec<ResourceId> {
        v.iter().map(|&i| ResourceId(i)).collect()
    }

    #[test]
    fn identical_traces_pass_through() {
        let out = majority_order(&[t(&[1, 2, 3]), t(&[1, 2, 3]), t(&[1, 2, 3])]);
        assert_eq!(out, ids(&[1, 2, 3]));
    }

    #[test]
    fn majority_wins_over_outlier() {
        // Two runs say 1 before 2; one run (client jitter) says 2 before 1.
        let out = majority_order(&[t(&[1, 2, 3]), t(&[2, 1, 3]), t(&[1, 2, 3])]);
        assert_eq!(out, ids(&[1, 2, 3]));
    }

    #[test]
    fn missing_resources_sort_last() {
        // Resource 9 (script-injected, only sometimes loaded) appears in
        // one of three runs.
        let out = majority_order(&[t(&[1, 2]), t(&[1, 2, 9]), t(&[1, 2])]);
        assert_eq!(out, ids(&[1, 2, 9]));
    }

    #[test]
    fn empty_input() {
        assert!(majority_order(&[]).is_empty());
        assert!(majority_order(&[t(&[])]).is_empty());
    }

    #[test]
    fn deterministic_tiebreak() {
        // 1 and 2 perfectly alternate: tie on median; first trace decides.
        let a = majority_order(&[t(&[1, 2]), t(&[2, 1])]);
        let b = majority_order(&[t(&[1, 2]), t(&[2, 1])]);
        assert_eq!(a, b);
        assert_eq!(a, ids(&[1, 2]));
    }
}
