//! The six §5 strategies of the paper, as (page variant, strategy) recipes.
//!
//! | # | name | page | pushes |
//! |---|------|------|--------|
//! | i | no push | original | — |
//! | ii | no push optimized | critical-CSS rewrite | — |
//! | iii | push all | original | everything pushable (child-of-parent) |
//! | iv | push all optimized | rewrite | critical set interleaved, rest after the HTML |
//! | v | push critical | original | critical set (child-of-parent) |
//! | vi | push critical optimized | rewrite | critical set interleaved |
//!
//! "Optimized" always means: the penthouse-style critical-CSS rewrite is
//! applied *and* the modified (interleaving) scheduler is used; the others
//! run on the stock h2o scheduler (§5 "Strategies").

use crate::{critical_set, interleave_offset, push_all, Strategy};
use h2push_webmodel::{rewrite_critical_css, Page, ResourceId};

/// The paper's named §5 strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperStrategy {
    /// (i) Baseline: push disabled.
    NoPush,
    /// (ii) Critical-CSS rewrite, no push.
    NoPushOptimized,
    /// (iii) Push every pushable resource (default scheduler).
    PushAll,
    /// (iv) Rewrite + interleave the critical set, push the rest after the
    /// document.
    PushAllOptimized,
    /// (v) Push only the critical set (default scheduler).
    PushCritical,
    /// (vi) Rewrite + interleave the critical set only.
    PushCriticalOptimized,
}

impl PaperStrategy {
    /// All six, in the paper's order.
    pub const ALL: [PaperStrategy; 6] = [
        PaperStrategy::NoPush,
        PaperStrategy::NoPushOptimized,
        PaperStrategy::PushAll,
        PaperStrategy::PushAllOptimized,
        PaperStrategy::PushCritical,
        PaperStrategy::PushCriticalOptimized,
    ];

    /// Label used in reports (matches Fig. 6 legends).
    pub fn label(self) -> &'static str {
        match self {
            PaperStrategy::NoPush => "no push",
            PaperStrategy::NoPushOptimized => "no push optimized",
            PaperStrategy::PushAll => "push all",
            PaperStrategy::PushAllOptimized => "push all optimized",
            PaperStrategy::PushCritical => "push critical",
            PaperStrategy::PushCriticalOptimized => "push critical optimized",
        }
    }
}

/// Materialize a paper strategy for `page`: returns the page variant to
/// deploy (possibly critical-CSS-rewritten) and the push strategy to run
/// on it.
pub fn paper_strategy(page: &Page, which: PaperStrategy) -> (Page, Strategy) {
    match which {
        PaperStrategy::NoPush => (page.clone(), Strategy::NoPush),
        PaperStrategy::NoPushOptimized => {
            let rw = rewrite_critical_css(page);
            (rw.page, Strategy::NoPush)
        }
        PaperStrategy::PushAll => (page.clone(), push_all(page, &[])),
        PaperStrategy::PushAllOptimized => {
            let rw = rewrite_critical_css(page);
            let critical = critical_set(&rw.page);
            let rest: Vec<ResourceId> =
                rw.page.pushable().into_iter().filter(|id| !critical.contains(id)).collect();
            let offset = interleave_offset(&rw.page);
            (rw.page, Strategy::Interleaved { offset, critical, after: rest })
        }
        PaperStrategy::PushCritical => {
            (page.clone(), Strategy::PushList { order: critical_set(page) })
        }
        PaperStrategy::PushCriticalOptimized => {
            let rw = rewrite_critical_css(page);
            let critical = critical_set(&rw.page);
            let offset = interleave_offset(&rw.page);
            (rw.page, Strategy::Interleaved { offset, critical, after: Vec::new() })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2push_webmodel::{PageBuilder, ResourceSpec, ResourceType};

    fn page() -> Page {
        let mut b = PageBuilder::new("p", "p.test", 100_000, 4_000);
        b.resource(ResourceSpec::css(0, 40_000, 300, 0.2));
        b.resource(ResourceSpec::js(0, 25_000, 1_000, 20_000));
        b.resource(ResourceSpec::image(0, 60_000, 30_000, true, 1.0));
        b.resource(ResourceSpec::image(0, 30_000, 60_000, false, 0.0));
        b.resource(ResourceSpec::image(0, 45_000, 70_000, false, 0.0));
        b.text_paint(20_000, 1.0);
        b.build()
    }

    #[test]
    fn six_distinct_strategies() {
        let p = page();
        for which in PaperStrategy::ALL {
            let (variant, strategy) = paper_strategy(&p, which);
            variant.validate().unwrap();
            match which {
                PaperStrategy::NoPush | PaperStrategy::NoPushOptimized => {
                    assert!(!strategy.pushes())
                }
                _ => assert!(strategy.pushes(), "{} must push", which.label()),
            }
        }
    }

    #[test]
    fn optimized_variants_rewrite_the_css() {
        let p = page();
        let (v, _) = paper_strategy(&p, PaperStrategy::NoPushOptimized);
        // The 40 KB sheet was split: critical part (8 KB) + deferred rest.
        let css: Vec<_> = v.resources.iter().filter(|r| r.rtype == ResourceType::Css).collect();
        assert_eq!(css.len(), 2);
        assert!(css.iter().any(|r| r.render_blocking && r.size == 8_000));
        assert!(css.iter().any(|r| !r.render_blocking && r.size == 32_000));
    }

    #[test]
    fn push_critical_optimized_pushes_less_than_push_all_optimized() {
        // The paper's headline saving: w1 pushes 78 KB instead of 1123 KB.
        let p = page();
        let (v_all, s_all) = paper_strategy(&p, PaperStrategy::PushAllOptimized);
        let (v_crit, s_crit) = paper_strategy(&p, PaperStrategy::PushCriticalOptimized);
        assert!(s_crit.pushed_bytes(&v_crit) < s_all.pushed_bytes(&v_all) / 2);
    }

    #[test]
    fn interleaved_strategies_switch_after_the_head() {
        let p = page();
        let (v, s) = paper_strategy(&p, PaperStrategy::PushCriticalOptimized);
        match s {
            Strategy::Interleaved { offset, critical, after } => {
                assert!(offset >= v.head_end);
                assert!(offset < v.html_size());
                assert!(!critical.is_empty());
                assert!(after.is_empty());
            }
            other => panic!("expected Interleaved, got {other:?}"),
        }
    }

    #[test]
    fn push_all_optimized_pushes_everything() {
        let p = page();
        let (v, s) = paper_strategy(&p, PaperStrategy::PushAllOptimized);
        let pushed = s.pushed_resources();
        assert_eq!(pushed.len(), v.pushable().len(), "all pushable resources covered");
        // No duplicates.
        let mut dedup = pushed.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), pushed.len());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PaperStrategy::PushCriticalOptimized.label(), "push critical optimized");
        assert_eq!(PaperStrategy::ALL.len(), 6);
    }
}
