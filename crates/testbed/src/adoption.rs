//! The Fig. 1 adoption measurement (H2 and Server Push on the Alexa 1M).
//!
//! The paper's Fig. 1 plots monthly 2017 scans of the Alexa 1M: H2 support
//! grows from ~120 K to ~240 K domains while push deployments only grow
//! from ~400 to ~800 — the motivating two-orders-of-magnitude gap. We
//! reproduce the *pipeline* (scan a domain population each month, classify
//! H2/push support, count) against a synthetic population whose adoption
//! follows logistic growth calibrated to those magnitudes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of one monthly scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanResult {
    /// Month index (0 = January 2017).
    pub month: usize,
    /// Domains answering over HTTP/2.
    pub h2_domains: usize,
    /// Domains observed using Server Push.
    pub push_domains: usize,
}

/// A synthetic domain population with adoption dynamics.
pub struct AdoptionModel {
    /// Per-domain H2 adoption month (None = never in the observed window).
    h2_at: Vec<Option<u8>>,
    /// Per-domain push adoption month (requires H2 first).
    push_at: Vec<Option<u8>>,
}

impl AdoptionModel {
    /// Build a population of `n` domains from a seed. Calibration targets
    /// the paper's magnitudes for n = 1 M: ~120 K H2 in Jan growing to
    /// ~240 K in Dec; ~400 push in Jan growing to ~800.
    pub fn new(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xAD0B);
        let mut h2_at = Vec::with_capacity(n);
        let mut push_at = Vec::with_capacity(n);
        for _ in 0..n {
            // 12 % already speak H2 before the window; another ~13.6 %
            // adopt during the year, roughly uniformly (the paper's curve
            // is near-linear).
            let h2 = if rng.gen_bool(0.12) {
                Some(0u8)
            } else if rng.gen_bool(0.136) {
                Some(rng.gen_range(1..12u8))
            } else {
                None
            };
            // Push adoption is orders of magnitude rarer: a few in ten
            // thousand of the H2 population, roughly doubling over the
            // year.
            let push = match h2 {
                Some(m) => {
                    // ~0.33 % of the H2 population pushes from the start;
                    // a trickle more adopt during the year. Doubling H2
                    // then roughly doubles push — the paper's 400 → 800.
                    if rng.gen_bool(0.0033) {
                        Some(m)
                    } else if rng.gen_bool(0.0005) {
                        Some(rng.gen_range(m.max(1)..12u8.max(m.max(1) + 1)))
                    } else {
                        None
                    }
                }
                None => None,
            };
            h2_at.push(h2);
            push_at.push(push);
        }
        AdoptionModel { h2_at, push_at }
    }

    /// Scan the population in `month` (0-based): classify every domain.
    pub fn scan(&self, month: usize) -> ScanResult {
        let m = month as u8;
        let h2 = self.h2_at.iter().filter(|a| matches!(a, Some(x) if *x <= m)).count();
        let push = self.push_at.iter().filter(|a| matches!(a, Some(x) if *x <= m)).count();
        ScanResult { month, h2_domains: h2, push_domains: push }
    }

    /// The full year of monthly scans (the Fig. 1 series).
    pub fn year(&self) -> Vec<ScanResult> {
        (0..12).map(|m| self.scan(m)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adoption_grows_monotonically() {
        let model = AdoptionModel::new(100_000, 1);
        let year = model.year();
        for w in year.windows(2) {
            assert!(w[1].h2_domains >= w[0].h2_domains);
            assert!(w[1].push_domains >= w[0].push_domains);
        }
    }

    #[test]
    fn magnitudes_match_fig1_at_1m_scale() {
        // Use 200k and scale 5× to keep the test fast.
        let model = AdoptionModel::new(200_000, 7);
        let jan = model.scan(0);
        let dec = model.scan(11);
        let scale = 5;
        let (h2_jan, h2_dec) = (jan.h2_domains * scale, dec.h2_domains * scale);
        let (p_jan, p_dec) = (jan.push_domains * scale, dec.push_domains * scale);
        assert!((90_000..160_000).contains(&h2_jan), "h2 jan {h2_jan}");
        assert!((200_000..280_000).contains(&h2_dec), "h2 dec {h2_dec}");
        assert!((150..800).contains(&p_jan), "push jan {p_jan}");
        assert!((500..1500).contains(&p_dec), "push dec {p_dec}");
        // The motivating gap: push is orders of magnitude behind H2.
        assert!(h2_dec / p_dec.max(1) > 100);
    }

    #[test]
    fn push_requires_h2() {
        let model = AdoptionModel::new(50_000, 3);
        for (h2, push) in model.h2_at.iter().zip(&model.push_at) {
            if let Some(p) = push {
                let h = h2.expect("push without h2");
                assert!(h <= *p);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = AdoptionModel::new(10_000, 9).year();
        let b = AdoptionModel::new(10_000, 9).year();
        assert_eq!(a, b);
    }
}
