//! Deterministic adversarial-peer harness ("badpeer").
//!
//! A scripted malicious endpoint: each [`AttackScript`] compiles — from a
//! seed — into a concrete sequence of wire-byte chunks which are spliced
//! into one side of a replayed exchange. A server-side attack first runs a
//! *benign* request through a real client [`Connection`] against a real
//! [`ReplayServer`] (so the victim is the full replay datapath, HPACK
//! state and all), then injects the attack bytes into the same byte
//! stream. A client-side attack victimises the browser's protocol
//! endpoint after it has issued its first request.
//!
//! Everything is deterministic: the same `(kind, seed, intensity)` script
//! produces the same chunks, the victim walks the same states, and the
//! [`AttackOutcome::fingerprint`] — an FNV-1a hash over every byte in both
//! directions — is bit-identical across reruns. That makes "the stack
//! survives attack X" a replayable regression test rather than a fuzzing
//! anecdote.
//!
//! No attack may panic or livelock the victim: every run is bounded by an
//! explicit pump budget, and the worst admissible outcome is a typed
//! [`ConnError`] (GOAWAY) or stream reset.

use bytes::Bytes;
use h2push_h2proto::{
    ConnError, ConnLimits, Connection, DefaultScheduler, ErrorCode, Event, Frame, PrioritySpec,
    Settings,
};
use h2push_hpack::{Encoder, Header};
use h2push_netsim::SimTime;
use h2push_server::ReplayServer;
use h2push_strategies::Strategy;
use h2push_webmodel::{Page, PageBuilder, RecordDb, ResourceId, ResourceSpec};
use std::sync::Arc;

/// The catalogue of scripted attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// CVE-2023-44487 shape: open a stream, immediately RST it, repeat.
    RapidReset,
    /// Open ever more concurrent streams (ending near the id space
    /// ceiling) without waiting for any response.
    StreamIdExhaustion,
    /// A compact header block that decodes into a huge header list
    /// (dynamic-table insert once, then cheap indexed references).
    HpackBomb,
    /// WINDOW_UPDATEs that push stream and connection send windows past
    /// 2^31-1.
    WindowOverflow,
    /// Frames split mid-header and mid-payload across chunk boundaries,
    /// ending with a payload that never finishes arriving.
    TruncatedFrame,
    /// A frame header declaring a payload beyond SETTINGS_MAX_FRAME_SIZE.
    OversizedFrame,
    /// Frames of unknown types (§4.1 says ignore) with seeded payloads,
    /// then a PING to prove the connection is still live.
    UnknownFrames,
    /// Non-ack SETTINGS churn, each frame demanding an ack.
    SettingsChurn,
    /// Non-ack PING flood, each frame demanding an ack.
    PingFlood,
    /// A HEADERS block strung across endless CONTINUATION frames that
    /// never set END_HEADERS.
    ContinuationFlood,
    /// (Client victim.) The server announces GOAWAY, then keeps sending
    /// PUSH_PROMISE / HEADERS / DATA as if nothing happened.
    PushAfterGoaway,
}

impl AttackKind {
    /// All scripted kinds, in catalogue order.
    pub const ALL: [AttackKind; 11] = [
        AttackKind::RapidReset,
        AttackKind::StreamIdExhaustion,
        AttackKind::HpackBomb,
        AttackKind::WindowOverflow,
        AttackKind::TruncatedFrame,
        AttackKind::OversizedFrame,
        AttackKind::UnknownFrames,
        AttackKind::SettingsChurn,
        AttackKind::PingFlood,
        AttackKind::ContinuationFlood,
        AttackKind::PushAfterGoaway,
    ];

    /// Which endpoint the canonical script of this kind victimises.
    pub fn victim(self) -> Victim {
        match self {
            AttackKind::PushAfterGoaway => Victim::Client,
            _ => Victim::Server,
        }
    }

    /// Catalogue label (stable; used in reports and CI output).
    pub fn label(self) -> &'static str {
        match self {
            AttackKind::RapidReset => "rapid-reset",
            AttackKind::StreamIdExhaustion => "stream-id-exhaustion",
            AttackKind::HpackBomb => "hpack-bomb",
            AttackKind::WindowOverflow => "window-overflow",
            AttackKind::TruncatedFrame => "truncated-frame",
            AttackKind::OversizedFrame => "oversized-frame",
            AttackKind::UnknownFrames => "unknown-frames",
            AttackKind::SettingsChurn => "settings-churn",
            AttackKind::PingFlood => "ping-flood",
            AttackKind::ContinuationFlood => "continuation-flood",
            AttackKind::PushAfterGoaway => "push-after-goaway",
        }
    }
}

/// Which side of the exchange the attacker impersonates the peer of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Victim {
    /// The attacker plays a malicious client against a [`ReplayServer`].
    Server,
    /// The attacker plays a malicious server against a client
    /// [`Connection`].
    Client,
}

/// One scripted attack: a kind, a seed, and an intensity (roughly "how
/// many hostile frames"). Compilation to wire bytes is a pure function of
/// these three fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackScript {
    /// The attack class.
    pub kind: AttackKind,
    /// Seed for payload/chunking variation.
    pub seed: u64,
    /// Scale knob; each kind interprets it as its natural unit count.
    pub intensity: u32,
}

impl AttackScript {
    /// A script at the kind's default intensity (enough to trip
    /// [`ConnLimits::strict`] bounds with margin).
    pub fn new(kind: AttackKind, seed: u64) -> Self {
        let intensity = match kind {
            AttackKind::RapidReset => 48,
            AttackKind::StreamIdExhaustion => 48,
            AttackKind::HpackBomb => 64,
            AttackKind::WindowOverflow => 4,
            AttackKind::TruncatedFrame => 8,
            AttackKind::OversizedFrame => 2,
            AttackKind::UnknownFrames => 24,
            AttackKind::SettingsChurn => 32,
            AttackKind::PingFlood => 32,
            AttackKind::ContinuationFlood => 64,
            AttackKind::PushAfterGoaway => 6,
        };
        AttackScript { kind, seed, intensity }
    }

    /// Compile the script into the attacker's wire-byte chunks. Chunk
    /// boundaries are part of the script (they exercise reassembly), and
    /// the whole expansion is deterministic in `(kind, seed, intensity)`.
    pub fn compile(&self) -> Vec<Bytes> {
        let mut rng = Splitter::new(self.seed ^ (self.kind.label().len() as u64) << 32);
        let mut enc = Encoder::new();
        let n = self.intensity;
        let mut chunks: Vec<Vec<u8>> = Vec::new();
        let mut cur: Vec<u8> = Vec::new();
        match self.kind {
            AttackKind::RapidReset => {
                for i in 0..n {
                    let id = 3 + 2 * i;
                    let block = enc.encode(&attack_request(id));
                    Frame::Headers {
                        stream: id,
                        block: Bytes::from(block),
                        end_stream: true,
                        end_headers: true,
                        priority: None,
                    }
                    .encode(&mut cur);
                    Frame::RstStream { stream: id, code: ErrorCode::Cancel }.encode(&mut cur);
                    if rng.chance(0.25) {
                        chunks.push(std::mem::take(&mut cur));
                    }
                }
            }
            AttackKind::StreamIdExhaustion => {
                for i in 0..n {
                    // March toward the top of the id space; the final
                    // stream uses the last odd id (2^31 - 1).
                    let id =
                        if i + 1 == n { 0x7fff_ffff } else { 3 + 2 * i + (i / 8) * 0x00ff_fff0 };
                    let block = enc.encode(&attack_request(id));
                    Frame::Headers {
                        stream: id,
                        block: Bytes::from(block),
                        end_stream: false,
                        end_headers: true,
                        priority: None,
                    }
                    .encode(&mut cur);
                }
            }
            AttackKind::HpackBomb => {
                // One fat header inserted into the dynamic table, then
                // referenced over and over: tiny wire block, huge decoded
                // list.
                let fat = Header::new("x-bomb", &"B".repeat(2048));
                let list: Vec<Header> = (0..n).map(|_| fat.clone()).collect();
                let block = enc.encode(&list);
                Frame::Headers {
                    stream: 3,
                    block: Bytes::from(block),
                    end_stream: true,
                    end_headers: true,
                    priority: None,
                }
                .encode(&mut cur);
            }
            AttackKind::WindowOverflow => {
                // A live stream first, so the stream-level overflow path
                // (RST, connection survives) fires before the fatal
                // connection-level one.
                let block = enc.encode(&attack_request(3));
                Frame::Headers {
                    stream: 3,
                    block: Bytes::from(block),
                    end_stream: false,
                    end_headers: true,
                    priority: None,
                }
                .encode(&mut cur);
                Frame::WindowUpdate { stream: 3, increment: 0x7fff_ffff }.encode(&mut cur);
                chunks.push(std::mem::take(&mut cur));
                for _ in 0..n {
                    Frame::WindowUpdate { stream: 0, increment: 0x7fff_ffff }.encode(&mut cur);
                }
            }
            AttackKind::TruncatedFrame => {
                // Well-formed PINGs whose bytes are split at seeded
                // positions, then a HEADERS header announcing a payload
                // that never fully arrives.
                for i in 0..n {
                    let mut one = Vec::new();
                    Frame::Ping { ack: false, payload: [i as u8; 8] }.encode(&mut one);
                    let cut = 1 + (rng.next_u64() as usize) % (one.len() - 1);
                    cur.extend_from_slice(&one[..cut]);
                    chunks.push(std::mem::take(&mut cur));
                    cur.extend_from_slice(&one[cut..]);
                }
                chunks.push(std::mem::take(&mut cur));
                // 9-byte header: 64-byte HEADERS payload, 10 bytes follow.
                cur.extend_from_slice(&raw_frame_header(64, 0x1, 0x4, 3)[..]);
                cur.extend_from_slice(&[0u8; 10]);
            }
            AttackKind::OversizedFrame => {
                for i in 0..n {
                    // Declares a DATA payload far beyond the 16 KiB
                    // default SETTINGS_MAX_FRAME_SIZE. The decoder rejects
                    // it from the header alone; no payload bytes follow.
                    cur.extend_from_slice(&raw_frame_header(1 << 20, 0x0, 0, 3 + 2 * i)[..]);
                }
            }
            AttackKind::UnknownFrames => {
                for _ in 0..n {
                    let ftype = 0x0b + (rng.next_u64() % 64) as u8;
                    let len = (rng.next_u64() % 48) as usize;
                    let stream = (rng.next_u64() % 9) as u32;
                    cur.extend_from_slice(&raw_frame_header(len as u32, ftype, 0, stream)[..]);
                    cur.extend(std::iter::repeat_n(0xAAu8, len));
                    if rng.chance(0.3) {
                        chunks.push(std::mem::take(&mut cur));
                    }
                }
                Frame::Ping { ack: false, payload: *b"stillup?" }.encode(&mut cur);
            }
            AttackKind::SettingsChurn => {
                for i in 0..n {
                    let s = Settings {
                        initial_window_size: Some(65_535 + (i % 7)),
                        ..Settings::default()
                    };
                    Frame::Settings { ack: false, settings: s }.encode(&mut cur);
                }
            }
            AttackKind::PingFlood => {
                for i in 0..n {
                    let mut p = [0u8; 8];
                    p[..4].copy_from_slice(&i.to_be_bytes());
                    Frame::Ping { ack: false, payload: p }.encode(&mut cur);
                }
            }
            AttackKind::ContinuationFlood => {
                let block = enc.encode(&attack_request(3));
                Frame::Headers {
                    stream: 3,
                    block: Bytes::from(block),
                    end_stream: false,
                    end_headers: false,
                    priority: None,
                }
                .encode(&mut cur);
                // Raw filler fragments: never END_HEADERS, never a valid
                // block terminator — pure accumulation pressure.
                let filler = Bytes::from(vec![0u8; 1024]);
                for _ in 0..n {
                    Frame::Continuation { stream: 3, block: filler.clone(), end_headers: false }
                        .encode(&mut cur);
                }
            }
            AttackKind::PushAfterGoaway => {
                // Server-role bytes: a SETTINGS "preface", a GOAWAY, then
                // promises and frames that pretend it never happened.
                Frame::Settings { ack: false, settings: Settings::default() }.encode(&mut cur);
                Frame::GoAway { last_stream: 1, code: ErrorCode::NoError }.encode(&mut cur);
                chunks.push(std::mem::take(&mut cur));
                for i in 0..n {
                    let promised = 2 + 2 * i;
                    let block = enc.encode(&attack_request(promised));
                    Frame::PushPromise {
                        stream: 1,
                        promised,
                        block: Bytes::from(block),
                        end_headers: true,
                    }
                    .encode(&mut cur);
                }
                let resp = enc.encode(&[Header::new(":status", "200")]);
                Frame::Headers {
                    stream: 2,
                    block: Bytes::from(resp),
                    end_stream: false,
                    end_headers: true,
                    priority: None,
                }
                .encode(&mut cur);
                Frame::Data { stream: 2, len: 512, end_stream: true }.encode(&mut cur);
            }
        }
        if !cur.is_empty() {
            chunks.push(cur);
        }
        chunks.into_iter().map(Bytes::from).collect()
    }
}

/// Minimal deterministic request headers for attacker-opened streams.
fn attack_request(id: u32) -> Vec<Header> {
    vec![
        Header::new(":method", "GET"),
        Header::new(":scheme", "https"),
        Header::new(":authority", "bad.test"),
        Header::new(":path", &format!("/x/{id}")),
    ]
}

/// Encode a raw 9-octet frame header (for malformed / unknown frames the
/// typed [`Frame`] encoder refuses to produce).
fn raw_frame_header(len: u32, ftype: u8, flags: u8, stream: u32) -> [u8; 9] {
    let mut h = [0u8; 9];
    h[0] = (len >> 16) as u8;
    h[1] = (len >> 8) as u8;
    h[2] = len as u8;
    h[3] = ftype;
    h[4] = flags;
    h[5..9].copy_from_slice(&(stream & 0x7fff_ffff).to_be_bytes());
    h
}

/// What happened when a script ran against a victim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackOutcome {
    /// The script that ran.
    pub kind: AttackKind,
    /// Script seed (for reproduction).
    pub seed: u64,
    /// Which endpoint was under attack.
    pub victim: Victim,
    /// The typed connection error the victim died with, if any. `None`
    /// means the victim absorbed the attack and stayed up.
    pub fatal: Option<ConnError>,
    /// GOAWAY code the victim sent (derived from `fatal`).
    pub goaway: Option<ErrorCode>,
    /// Stream-level errors (RSTs / refusals) the victim raised.
    pub stream_errors: u32,
    /// Pump rounds consumed (always under the harness budget).
    pub rounds: u32,
    /// FNV-1a over every wire byte in both directions, in pump order.
    /// Equal fingerprints ⇒ bit-identical reruns.
    pub fingerprint: u64,
    /// True when the pump finished inside its round budget (a `false`
    /// here is a livelock — it must never happen).
    pub completed: bool,
}

impl AttackOutcome {
    /// The victim neither panicked (we returned at all) nor livelocked.
    pub fn survived_bounded(&self) -> bool {
        self.completed
    }
}

/// Pump-round ceiling: every scripted attack finishes orders of magnitude
/// below this; hitting it means the victim livelocked.
const ROUND_BUDGET: u32 = 10_000;

/// A recyclable set of attack victims: the attack page, its record DB, a
/// full [`ReplayServer`], the benign splice-in client and a client-victim
/// [`Connection`]. The badpeer twin of the replay engine's
/// [`crate::ReplayCtx`] — every machine resets in place between runs
/// (clear-don't-drop), so a recycled attack run allocates almost nothing
/// and is bit-identical to a cold one (asserted in this module's tests).
pub struct AttackCtx {
    page: Arc<Page>,
    db: Arc<RecordDb>,
    strategy: Arc<Strategy>,
    srv: Box<ReplayServer>,
    splice: Connection,
    splice_sched: DefaultScheduler,
    cli: Connection,
    cli_sched: DefaultScheduler,
}

impl Default for AttackCtx {
    fn default() -> Self {
        Self::new()
    }
}

impl AttackCtx {
    /// Fresh victims; the first run through them behaves exactly like the
    /// standalone entry points.
    pub fn new() -> Self {
        let page = Arc::new(attack_page());
        let db = Arc::new(RecordDb::record(&page));
        let strategy = Arc::new(Strategy::PushList { order: vec![ResourceId(1)] });
        let srv = Box::new(ReplayServer::new(Arc::clone(&page), Arc::clone(&db), 0, &strategy));
        AttackCtx {
            page,
            db,
            strategy,
            srv,
            splice: Connection::client(Settings::default()),
            splice_sched: DefaultScheduler::new(),
            cli: Connection::client(Settings::default()),
            cli_sched: DefaultScheduler::new(),
        }
    }
}

/// Run a script against a full [`ReplayServer`] victim (the replay
/// datapath: HPACK, scheduler, record DB, response generation). A benign
/// request is exchanged first; the attack is spliced into the same byte
/// stream.
pub fn attack_server(script: &AttackScript, limits: ConnLimits) -> AttackOutcome {
    attack_server_in(script, limits, &mut AttackCtx::new())
}

/// [`attack_server`] against `ctx`'s recycled victim server.
pub fn attack_server_in(
    script: &AttackScript,
    limits: ConnLimits,
    ctx: &mut AttackCtx,
) -> AttackOutcome {
    ctx.srv.reset(Arc::clone(&ctx.page), Arc::clone(&ctx.db), 0, &ctx.strategy);
    let srv = &mut ctx.srv;
    srv.set_limits(limits);

    let mut fp = Fnv::new();
    let mut rounds = 0u32;
    let mut now = SimTime::ZERO;

    // Benign splice-in: a real client issues a real request, so the
    // victim's HPACK and stream state are mid-flight when the attack hits.
    ctx.splice.reset_client(Settings::default());
    ctx.splice_sched.reset();
    let cli = &mut ctx.splice;
    cli.request(&benign_request(), Some(PrioritySpec::default()));
    loop {
        let out = cli.produce(usize::MAX, &mut ctx.splice_sched);
        if out.is_empty() {
            break;
        }
        fp.update(b"c>", &out);
        srv.on_bytes(&out, now);
    }
    drain_server(srv, &mut fp, &mut rounds, &mut now);

    // The splice: attacker bytes on the same connection.
    for chunk in script.compile() {
        fp.update(b"a>", &chunk);
        now += h2push_netsim::SimDuration::from_micros(100);
        srv.on_bytes(&chunk, now);
        drain_server(srv, &mut fp, &mut rounds, &mut now);
        if rounds >= ROUND_BUDGET {
            break;
        }
    }
    drain_server(srv, &mut fp, &mut rounds, &mut now);

    let fatal = srv.fatal_error();
    AttackOutcome {
        kind: script.kind,
        seed: script.seed,
        victim: Victim::Server,
        fatal,
        goaway: fatal.map(|e| e.code()),
        stream_errors: srv.protocol_errors(),
        rounds,
        fingerprint: fp.finish(),
        completed: rounds < ROUND_BUDGET,
    }
}

/// Run a script against a client [`Connection`] victim, after it has
/// issued its first (benign) request.
pub fn attack_client(script: &AttackScript, limits: ConnLimits) -> AttackOutcome {
    attack_client_in(script, limits, &mut AttackCtx::new())
}

/// [`attack_client`] against `ctx`'s recycled victim connection.
pub fn attack_client_in(
    script: &AttackScript,
    limits: ConnLimits,
    ctx: &mut AttackCtx,
) -> AttackOutcome {
    ctx.cli.reset_client(Settings::default());
    ctx.cli_sched.reset();
    let cli = &mut ctx.cli;
    cli.set_limits(limits);
    let sched = &mut ctx.cli_sched;
    let mut fp = Fnv::new();
    let mut rounds = 0u32;
    let mut stream_errors = 0u32;
    let mut fatal = None;

    cli.request(&benign_request(), Some(PrioritySpec::default()));
    let drain = |cli: &mut Connection,
                 sched: &mut DefaultScheduler,
                 fp: &mut Fnv,
                 rounds: &mut u32,
                 stream_errors: &mut u32,
                 fatal: &mut Option<ConnError>| {
        loop {
            *rounds += 1;
            while let Some(ev) = cli.poll_event() {
                match ev {
                    Event::StreamError { .. } | Event::Reset { .. } => *stream_errors += 1,
                    Event::ConnectionError { error } if fatal.is_none() => {
                        *fatal = Some(error);
                    }
                    _ => {}
                }
            }
            let out = cli.produce(usize::MAX, sched);
            if out.is_empty() || *rounds >= ROUND_BUDGET {
                break;
            }
            fp.update(b"v>", &out);
        }
    };
    drain(cli, sched, &mut fp, &mut rounds, &mut stream_errors, &mut fatal);

    for chunk in script.compile() {
        fp.update(b"a>", &chunk);
        cli.receive(&chunk);
        drain(cli, sched, &mut fp, &mut rounds, &mut stream_errors, &mut fatal);
        if rounds >= ROUND_BUDGET {
            break;
        }
    }

    AttackOutcome {
        kind: script.kind,
        seed: script.seed,
        victim: Victim::Client,
        fatal,
        goaway: fatal.map(|e| e.code()),
        stream_errors,
        rounds,
        fingerprint: fp.finish(),
        completed: rounds < ROUND_BUDGET,
    }
}

/// Run one script against its canonical victim.
pub fn run_attack(script: &AttackScript, limits: ConnLimits) -> AttackOutcome {
    match script.kind.victim() {
        Victim::Server => attack_server(script, limits),
        Victim::Client => attack_client(script, limits),
    }
}

/// [`run_attack`] against `ctx`'s recycled victims.
pub fn run_attack_in(
    script: &AttackScript,
    limits: ConnLimits,
    ctx: &mut AttackCtx,
) -> AttackOutcome {
    match script.kind.victim() {
        Victim::Server => attack_server_in(script, limits, ctx),
        Victim::Client => attack_client_in(script, limits, ctx),
    }
}

/// The standard CI suite: every catalogue kind at its default intensity,
/// seeds derived from `seed`.
pub fn suite(seed: u64) -> Vec<AttackScript> {
    AttackKind::ALL
        .iter()
        .enumerate()
        .map(|(i, &k)| AttackScript::new(k, seed.wrapping_add(i as u64)))
        .collect()
}

/// Run the whole suite under `limits`; one outcome per kind.
pub fn run_suite(seed: u64, limits: ConnLimits) -> Vec<AttackOutcome> {
    suite(seed).iter().map(|s| run_attack(s, limits)).collect()
}

/// [`run_suite`] through one recycled [`AttackCtx`]: every attack reuses
/// the same victim machines, reset between scripts. Outcomes are
/// bit-identical to the cold suite.
pub fn run_suite_in(seed: u64, limits: ConnLimits, ctx: &mut AttackCtx) -> Vec<AttackOutcome> {
    suite(seed).iter().map(|s| run_attack_in(s, limits, ctx)).collect()
}

fn drain_server(srv: &mut ReplayServer, fp: &mut Fnv, rounds: &mut u32, now: &mut SimTime) {
    loop {
        *rounds += 1;
        let out = srv.produce(usize::MAX);
        if out.is_empty() || *rounds >= ROUND_BUDGET {
            break;
        }
        fp.update(b"v>", &out);
        *now += h2push_netsim::SimDuration::from_micros(10);
    }
}

/// The benign request the splice rides on (matches [`attack_page`]).
/// Public so the live badpeer suite replays the identical splice over
/// real TCP.
pub fn benign_request() -> Vec<Header> {
    vec![
        Header::new(":method", "GET"),
        Header::new(":scheme", "https"),
        Header::new(":authority", "bad.test"),
        Header::new(":path", "/"),
        Header::new("user-agent", "badpeer-harness"),
    ]
}

/// A small single-origin page so the victim server has real content (and
/// a real push strategy) behind it. Public so the live badpeer suite
/// serves the identical page over real TCP.
pub fn attack_page() -> Page {
    let mut b = PageBuilder::new("badpeer", "bad.test", 20_000, 2_000);
    b.resource(ResourceSpec::css(0, 6_000, 200, 0.5));
    b.resource(ResourceSpec::js(0, 8_000, 900, 4_000));
    b.text_paint(4_000, 1.0);
    b.build()
}

/// FNV-1a, 64-bit: tiny, dependency-free, deterministic.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, tag: &[u8], bytes: &[u8]) {
        for &b in tag.iter().chain(bytes) {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// xorshift64* for seeded chunk-boundary / payload decisions (same
/// generator family as the netsim loss process; kept local so the
/// harness has no cross-crate RNG coupling).
struct Splitter(u64);

impl Splitter {
    fn new(seed: u64) -> Self {
        Splitter(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn chance(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_compile_deterministically() {
        for kind in AttackKind::ALL {
            let a = AttackScript::new(kind, 7).compile();
            let b = AttackScript::new(kind, 7).compile();
            assert_eq!(a, b, "{} not deterministic", kind.label());
            assert!(!a.is_empty(), "{} compiled to nothing", kind.label());
            let c = AttackScript::new(kind, 8).compile();
            // Seed must matter somewhere in the catalogue; kinds with no
            // random component legitimately compile identically.
            let _ = c;
        }
    }

    #[test]
    fn whole_suite_is_bounded_and_bit_identical_across_reruns() {
        let first = run_suite(42, ConnLimits::strict());
        let second = run_suite(42, ConnLimits::strict());
        assert_eq!(first.len(), AttackKind::ALL.len());
        for (a, b) in first.iter().zip(&second) {
            assert!(a.completed, "{} livelocked", a.kind.label());
            assert_eq!(a, b, "{} not reproducible", a.kind.label());
        }
    }

    #[test]
    fn recycled_victims_reproduce_every_fingerprint_and_typed_error() {
        // All 11 catalogue attacks, twice, through ONE recycled context:
        // the second pass must reach the same typed errors and FNV
        // fingerprints as the first, and both must equal the cold suite
        // (fresh victims per attack).
        let limits = ConnLimits::strict();
        let cold = run_suite(42, limits);
        let mut ctx = AttackCtx::new();
        let first = run_suite_in(42, limits, &mut ctx);
        let second = run_suite_in(42, limits, &mut ctx);
        assert_eq!(first.len(), AttackKind::ALL.len());
        for ((a, b), c) in first.iter().zip(&second).zip(&cold) {
            assert_eq!(a, b, "{} differs on the recycled second pass", a.kind.label());
            assert_eq!(a, c, "{} recycled differs from cold", a.kind.label());
            assert_eq!(a.fatal, c.fatal, "{} typed error drifted", a.kind.label());
            assert_eq!(a.fingerprint, c.fingerprint);
        }
    }

    #[test]
    fn flood_attacks_trip_typed_errors_under_strict_limits() {
        let limits = ConnLimits::strict();
        let rr = attack_server(&AttackScript::new(AttackKind::RapidReset, 1), limits);
        assert_eq!(rr.fatal, Some(ConnError::ResetFlood));
        assert_eq!(rr.goaway, Some(ErrorCode::EnhanceYourCalm));

        let sc = attack_server(&AttackScript::new(AttackKind::SettingsChurn, 1), limits);
        assert_eq!(sc.fatal, Some(ConnError::SettingsFlood));

        let pf = attack_server(&AttackScript::new(AttackKind::PingFlood, 1), limits);
        assert_eq!(pf.fatal, Some(ConnError::PingFlood));

        let hb = attack_server(&AttackScript::new(AttackKind::HpackBomb, 1), limits);
        assert_eq!(hb.fatal, Some(ConnError::HeaderListTooLarge));

        let cf = attack_server(&AttackScript::new(AttackKind::ContinuationFlood, 1), limits);
        assert_eq!(cf.fatal, Some(ConnError::HeaderListTooLarge));
    }

    #[test]
    fn window_overflow_kills_the_connection_with_flow_control_error() {
        let out =
            attack_server(&AttackScript::new(AttackKind::WindowOverflow, 1), ConnLimits::strict());
        assert_eq!(out.fatal, Some(ConnError::FlowControlOverflow));
        assert_eq!(out.goaway, Some(ErrorCode::FlowControlError));
        // The stream-level overflow fired first, as a non-fatal reset.
        assert!(out.stream_errors >= 1);
    }

    #[test]
    fn stream_exhaustion_escalates_past_refusals() {
        let out = attack_server(
            &AttackScript::new(AttackKind::StreamIdExhaustion, 1),
            ConnLimits::strict(),
        );
        assert_eq!(out.fatal, Some(ConnError::ConcurrentStreamsExceeded));
        assert!(out.stream_errors >= 1, "expected REFUSED_STREAM resets before escalation");
    }

    #[test]
    fn malformed_and_unknown_frames_never_panic() {
        let limits = ConnLimits::strict();
        let tr = attack_server(&AttackScript::new(AttackKind::TruncatedFrame, 3), limits);
        assert!(tr.completed);
        assert!(tr.fatal.is_none(), "truncation alone must not kill: {:?}", tr.fatal);

        let ov = attack_server(&AttackScript::new(AttackKind::OversizedFrame, 3), limits);
        assert_eq!(ov.fatal, Some(ConnError::FrameTooLarge));

        let un = attack_server(&AttackScript::new(AttackKind::UnknownFrames, 3), limits);
        assert!(un.completed);
        assert!(un.fatal.is_none(), "unknown frame types are ignored: {:?}", un.fatal);
    }

    #[test]
    fn push_after_goaway_is_absorbed_by_the_client() {
        let out =
            attack_client(&AttackScript::new(AttackKind::PushAfterGoaway, 5), ConnLimits::strict());
        assert!(out.completed);
        assert!(
            out.fatal.is_none() || out.fatal.map(|e| e.code()).is_some(),
            "any death must be typed"
        );
    }

    #[test]
    fn generous_default_limits_still_bound_every_attack() {
        for out in run_suite(9, ConnLimits::new()) {
            assert!(out.completed, "{} livelocked under default limits", out.kind.label());
        }
    }

    #[test]
    fn client_side_floods_are_also_bounded() {
        let limits = ConnLimits::strict();
        for kind in [AttackKind::SettingsChurn, AttackKind::PingFlood, AttackKind::WindowOverflow] {
            let out = attack_client(&AttackScript::new(kind, 11), limits);
            assert!(out.completed, "{} livelocked against client", kind.label());
        }
    }
}
