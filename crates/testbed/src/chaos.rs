//! Chaos harness: the strategy matrix under injected faults.
//!
//! The paper's testbed deliberately runs over a clean emulated DSL link;
//! this module re-runs the same strategy matrix while the netsim injects
//! loss, jitter, reordering and outages ([`FaultSpec`]) and the hardened
//! browser recovers (timeouts, retries, partial loads). Everything stays
//! deterministic: a [`FaultProfile`] layered onto [`run_config`] yields a
//! replay that is a pure function of `(inputs, strategy, mode, run_seed,
//! profile)` — rerunning the same seed reproduces every byte, and the
//! [`FaultProfile::none`] profile reproduces the fault-free harness
//! exactly.

#[cfg(test)]
use crate::harness::run_config;
use crate::harness::Mode;
use crate::plan::RunPlan;
use crate::replay::{ReplayConfig, ReplayInputs, ReplayOutcome};
use h2push_metrics::{percentile, FaultObservation, LossRecovery};
use h2push_netsim::{FaultSpec, SimDuration, SimTime};
use h2push_strategies::Strategy;
#[cfg(test)]
use h2push_webmodel::Page;

/// A named fault scenario plus the browser hardening that goes with it.
///
/// The browser knobs ride along because they are part of the scenario: a
/// lossy link without a resource timeout can stall forever on a dropped
/// tail, while the zero-fault profile must leave the browser untouched so
/// its runs stay byte-identical to the plain harness.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Short label for reports ("none", "ge-2%", …).
    pub name: String,
    /// What the network injects.
    pub fault: FaultSpec,
    /// Per-resource fetch timeout handed to the browser.
    pub resource_timeout: Option<SimDuration>,
    /// Retry budget per resource.
    pub max_retries: u32,
    /// Page-load deadline after which the browser reports a partial load.
    pub load_deadline: Option<SimDuration>,
}

impl FaultProfile {
    /// The control profile: injects nothing and leaves every browser
    /// default in place, so its runs are byte-identical to [`run_config`].
    pub fn none() -> Self {
        FaultProfile {
            name: "none".into(),
            fault: FaultSpec::default(),
            resource_timeout: None,
            max_retries: 2,
            load_deadline: None,
        }
    }

    /// A faulty profile with the standard hardening: 15 s per-resource
    /// timeout, 2 retries, 120 s page deadline.
    fn hardened(name: impl Into<String>, fault: FaultSpec) -> Self {
        FaultProfile {
            name: name.into(),
            fault,
            resource_timeout: Some(SimDuration::from_millis(15_000)),
            max_retries: 2,
            load_deadline: Some(SimDuration::from_millis(120_000)),
        }
    }

    /// Independent (Bernoulli) loss at `rate`.
    pub fn bernoulli(rate: f64) -> Self {
        Self::hardened(format!("bernoulli-{:.1}%", rate * 100.0), FaultSpec::bernoulli(rate))
    }

    /// Bursty Gilbert–Elliott loss averaging `rate`.
    pub fn gilbert_elliott(rate: f64) -> Self {
        Self::hardened(format!("ge-{:.1}%", rate * 100.0), FaultSpec::gilbert_elliott(rate))
    }

    /// Bounded extra jitter (with a little reordering).
    pub fn jittery(max: SimDuration) -> Self {
        Self::hardened(format!("jitter-{max}"), FaultSpec::jittery(max))
    }

    /// A mid-load outage window.
    pub fn flapping(start: SimTime, duration: SimDuration) -> Self {
        Self::hardened("flap".to_string(), FaultSpec::flap(start, duration))
    }
}

/// The default chaos matrix: control, both loss processes, jitter and a
/// mid-load outage.
pub fn default_matrix() -> Vec<FaultProfile> {
    vec![
        FaultProfile::none(),
        FaultProfile::bernoulli(0.01),
        FaultProfile::gilbert_elliott(0.02),
        FaultProfile::jittery(SimDuration::from_millis(10)),
        FaultProfile::flapping(SimTime::from_millis(2_000), SimDuration::from_millis(750)),
    ]
}

/// Layer `profile` onto an already-derived replay config: the profile's
/// fault spec plus its browser hardening, leaving every other knob (and
/// every RNG draw that produced it) untouched.
pub fn apply_profile(cfg: &mut ReplayConfig, profile: &FaultProfile) {
    cfg.network.fault = profile.fault.clone();
    cfg.browser.resource_timeout = profile.resource_timeout;
    cfg.browser.max_retries = profile.max_retries;
    cfg.browser.load_deadline = profile.load_deadline;
}

/// Bridge one replay outcome into the metrics crate's per-run
/// fault/recovery record.
pub fn observe(out: &ReplayOutcome) -> FaultObservation {
    FaultObservation {
        data_packets: out.net.data_packets,
        drops: out.net.drops_total(),
        retransmits: out.net.retransmits,
        retries: u64::from(out.load.retries),
        timeouts: u64::from(out.load.timeouts),
        conn_errors: u64::from(out.load.conn_errors),
        failed_resources: u64::from(out.load.failed_resources),
        partial: out.load.partial,
    }
}

/// One (profile × strategy) cell of the chaos matrix.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// The fault profile's name.
    pub profile: String,
    /// Short label of the strategy under test.
    pub strategy: &'static str,
    /// Runs attempted.
    pub runs: usize,
    /// Runs that produced an outcome (the rest stalled or hit the replay
    /// deadline — counted, never panicking).
    pub completed: usize,
    /// Median PLT over the completed runs (ms; 0 when none completed).
    pub median_plt: f64,
    /// Share of completed runs that ended as partial loads.
    pub partial_loads: usize,
    /// Aggregated loss-recovery counters over the completed runs.
    pub recovery: LossRecovery,
}

/// Short display label for a strategy.
pub fn strategy_label(s: &Strategy) -> &'static str {
    match s {
        Strategy::NoPush => "no-push",
        Strategy::PushList { .. } => "push-list",
        Strategy::Interleaved { .. } => "interleaved",
    }
}

/// Run the full `strategies × profiles` matrix, `runs` repetitions each.
///
/// Run `r` of every cell uses seed `seed + r` regardless of profile or
/// strategy, so the control column is directly comparable to the plain
/// harness and cells differ only in what the profile injects. Repetitions
/// run on the worker pool; cell order (and every number inside a cell) is
/// deterministic.
pub fn run_fault_matrix(
    inputs: &ReplayInputs,
    strategies: &[Strategy],
    profiles: &[FaultProfile],
    runs: usize,
    seed: u64,
) -> Vec<ChaosCell> {
    let mut cells = Vec::with_capacity(strategies.len() * profiles.len());
    for profile in profiles {
        for strategy in strategies {
            let outcomes: Vec<ReplayOutcome> = RunPlan::new(inputs)
                .strategy(strategy.clone())
                .mode(Mode::Testbed)
                .reps(runs)
                .seed(seed)
                .faults(profile.clone())
                .run()
                .into_outcomes();
            let mut recovery = LossRecovery::new();
            for out in &outcomes {
                recovery.record(observe(out));
            }
            let plts: Vec<f64> = outcomes.iter().map(|o| o.load.plt()).collect();
            cells.push(ChaosCell {
                profile: profile.name.clone(),
                strategy: strategy_label(strategy),
                runs,
                completed: outcomes.len(),
                median_plt: if plts.is_empty() { 0.0 } else { percentile(&plts, 50.0) },
                partial_loads: outcomes.iter().filter(|o| o.load.partial).count(),
                recovery,
            });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay_shared;
    use h2push_webmodel::{PageBuilder, ResourceId, ResourceSpec};

    fn with_profile(
        strategy: &std::sync::Arc<Strategy>,
        mode: Mode,
        seed: u64,
        page: &Page,
        profile: &FaultProfile,
    ) -> ReplayConfig {
        let mut cfg = run_config(strategy, mode, seed, page);
        apply_profile(&mut cfg, profile);
        cfg
    }

    fn page() -> Page {
        let mut b = PageBuilder::new("chaos", "chaos.test", 50_000, 4_000);
        let third = b.origin("cdn.other.net", 1, false);
        b.resource(ResourceSpec::css(0, 15_000, 300, 0.4));
        b.resource(ResourceSpec::js(0, 20_000, 1_000, 12_000));
        b.resource(ResourceSpec::image(0, 25_000, 9_000, true, 1.5));
        b.resource(ResourceSpec::js_async(third, 8_000, 25_000, 4_000));
        b.text_paint(8_000, 1.0);
        b.build()
    }

    fn strategies() -> Vec<std::sync::Arc<Strategy>> {
        vec![
            std::sync::Arc::new(Strategy::NoPush),
            std::sync::Arc::new(Strategy::PushList { order: vec![ResourceId(1), ResourceId(2)] }),
            std::sync::Arc::new(Strategy::Interleaved {
                offset: 6_000,
                critical: vec![ResourceId(1)],
                after: vec![ResourceId(3)],
            }),
        ]
    }

    #[test]
    fn zero_fault_profile_is_byte_identical_to_the_plain_harness() {
        let inputs = ReplayInputs::from(page());
        let profile = FaultProfile::none();
        for strategy in &strategies() {
            for seed in [0u64, 7, 42] {
                let plain = run_config(strategy, Mode::Testbed, seed, &inputs.page);
                let faulted = with_profile(strategy, Mode::Testbed, seed, &inputs.page, &profile);
                let a = replay_shared(&inputs, &plain).unwrap();
                let b = replay_shared(&inputs, &faulted).unwrap();
                assert_eq!(a.load, b.load, "strategy {strategy:?} seed {seed}");
                assert_eq!(a.trace.order, b.trace.order);
                assert_eq!(a.server_pushed_bytes, b.server_pushed_bytes);
                assert_eq!(a.net, b.net);
                assert!(!b.load.partial);
                assert_eq!(b.net.drops_fault, 0);
            }
        }
    }

    #[test]
    fn gilbert_elliott_matrix_completes_and_reruns_bit_identically() {
        // The ISSUE acceptance check: a seeded 2 % Gilbert–Elliott profile
        // across the full strategy matrix completes without panics and two
        // reruns of the same seed agree on every output.
        let inputs = ReplayInputs::from(page());
        let profile = FaultProfile::gilbert_elliott(0.02);
        let strategies = strategies();
        // Burst loss is rare by construction (mean burst every ~190
        // packets); the seed set deliberately includes runs that do enter
        // a burst on this page.
        let seeds = [100u64, 106, 107];
        let run = || -> Vec<ReplayOutcome> {
            strategies
                .iter()
                .flat_map(|s| {
                    seeds.iter().map(|&seed| {
                        let cfg = with_profile(s, Mode::Testbed, seed, &inputs.page, &profile);
                        replay_shared(&inputs, &cfg).expect("faulty replay completes")
                    })
                })
                .collect()
        };
        let a = run();
        let b = run();
        assert_eq!(a.len(), b.len());
        let mut any_faults = false;
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.load, y.load);
            assert_eq!(x.trace.order, y.trace.order);
            assert_eq!(x.net, y.net);
            any_faults |= x.net.drops_fault > 0;
        }
        assert!(any_faults, "2% GE loss must actually drop packets somewhere");
    }

    #[test]
    fn fault_matrix_aggregates_per_cell() {
        let inputs = ReplayInputs::from(page());
        let profiles = vec![FaultProfile::none(), FaultProfile::gilbert_elliott(0.02)];
        let strategies = vec![Strategy::NoPush];
        let cells = run_fault_matrix(&inputs, &strategies, &profiles, 3, 1);
        assert_eq!(cells.len(), 2);
        let control = &cells[0];
        assert_eq!(control.profile, "none");
        assert_eq!(control.strategy, "no-push");
        assert_eq!(control.completed, 3);
        assert!(control.recovery.is_clean(), "control cell must record nothing");
        assert!(control.median_plt > 0.0);
        let lossy = &cells[1];
        assert_eq!(lossy.completed, 3);
        assert!(lossy.recovery.drops() > 0, "GE cell must observe drops");
        assert!(lossy.recovery.retransmits() > 0, "drops must be recovered");
        assert!(lossy.median_plt >= control.median_plt, "loss cannot speed the load");
    }

    #[test]
    fn observe_bridges_net_and_load_counters() {
        let inputs = ReplayInputs::from(page());
        let cfg = with_profile(
            &std::sync::Arc::new(Strategy::NoPush),
            Mode::Testbed,
            3,
            &inputs.page,
            &FaultProfile::bernoulli(0.05),
        );
        let out = replay_shared(&inputs, &cfg).unwrap();
        let obs = observe(&out);
        assert_eq!(obs.data_packets, out.net.data_packets);
        assert_eq!(obs.drops, out.net.drops_total());
        assert!(obs.drops > 0);
        assert_eq!(obs.retransmits, out.net.retransmits);
    }

    #[test]
    fn default_matrix_names_are_unique_and_start_with_control() {
        let m = default_matrix();
        assert_eq!(m[0], FaultProfile::none());
        let mut names: Vec<&str> = m.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), m.len());
    }
}
