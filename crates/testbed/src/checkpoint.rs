//! Crash-safe sweep journal: the persistence layer under
//! [`crate::SweepPlan::checkpoint`] / [`crate::SweepPlan::resume`].
//!
//! A population-scale grid runs for hours; a kill, OOM or host preemption
//! must not cost the completed cells. The journal is an append-only file:
//! a fingerprinted header naming the exact grid it belongs to, followed by
//! one self-checksummed record per completed cell. Resume replays the
//! records, refuses a journal whose grid identity does not match the plan
//! (a typed [`ResumeError::IdentityMismatch`], never a silent mix of two
//! grids), and reschedules only the missing cells.
//!
//! Durability model (what each failure mode costs):
//!
//! * **SIGKILL mid-append** — the tail record is torn. The scan stops at
//!   the first structurally incomplete record, truncates the file back to
//!   the last good boundary, and that one cell re-runs.
//! * **Bit flip inside a record** — the FNV-1a checksum rejects it; the
//!   record is skipped (its cell re-runs) and scanning continues at the
//!   next frame boundary. A flip inside a length field can swallow the
//!   frames behind it; the swallowed region then fails its checksum and
//!   those cells re-run too. Corruption never surfaces as wrong data,
//!   only as re-executed work.
//! * **Duplicate records** (a cell journaled, the run killed before the
//!   in-memory bookkeeping caught up, the cell re-run on resume) — last
//!   record wins; replay is idempotent.
//!
//! Every record decodes to the byte-exact [`SweepCell`] the executor
//! produced, so *interrupted-then-resumed ≡ uninterrupted*: the resumed
//! [`crate::SweepReport`] is bit-identical to one from an undisturbed run
//! (`tests/checkpoint.rs` proves this at every kill boundary, and the CI
//! `resume-smoke` job does it with a real SIGKILL).

use crate::plan::{RunOutput, RunReport};
use crate::replay::ReplayOutcome;
use crate::sweep::{CellFailure, CellStats, FailureKind, RecoveredRep, RetryClass, SweepCell};
use h2push_browser::{LoadResult, PaintSample, ResourceTiming};
use h2push_netsim::{NetStats, SimTime};
use h2push_strategies::RunTrace;
use h2push_webmodel::ResourceId;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File magic: identifies a sweep journal (and its framing generation).
const MAGIC: &[u8; 8] = b"H2PSWEEP";
/// Bump on any incompatible change to the header or record encoding.
const VERSION: u32 = 1;
/// Records longer than this are treated as framing corruption, not data.
const MAX_RECORD: u32 = 1 << 30;

/// 64-bit FNV-1a — the same cheap, dependency-free fingerprint the
/// badpeer harness uses for wire bytes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What a journal belongs to: a fingerprint over every input that shapes
/// the grid (strategy set, site set, reps, seed, mode, fault profile,
/// streaming switch) plus a human-readable summary for error messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridIdentity {
    /// FNV-1a over the canonical description of the grid.
    pub hash: u64,
    /// One-line human-readable description (shown on mismatch).
    pub summary: String,
}

/// Why a resume was refused (or a journal could not be written).
#[derive(Debug)]
pub enum ResumeError {
    /// Filesystem-level failure reading or writing the journal.
    Io(std::io::Error),
    /// The file exists but is not a sweep journal (bad magic or a header
    /// too corrupt to read).
    NotAJournal {
        /// The offending path.
        path: PathBuf,
    },
    /// The journal was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The journal belongs to a different grid: resuming it under this
    /// plan would silently mix two experiments, so it is refused.
    IdentityMismatch {
        /// What the resuming plan describes.
        expected: String,
        /// What the journal header recorded.
        found: String,
    },
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::Io(e) => write!(f, "journal I/O error: {e}"),
            ResumeError::NotAJournal { path } => {
                write!(f, "{} is not a sweep journal", path.display())
            }
            ResumeError::UnsupportedVersion { found } => {
                write!(f, "journal format v{found} is not supported (this build writes v{VERSION})")
            }
            ResumeError::IdentityMismatch { expected, found } => write!(
                f,
                "journal belongs to a different grid: journal has [{found}], plan is [{expected}]"
            ),
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<std::io::Error> for ResumeError {
    fn from(e: std::io::Error) -> Self {
        ResumeError::Io(e)
    }
}

/// What [`SweepJournal::load`] found while scanning.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalScan {
    /// Records accepted (framing intact, checksum verified).
    pub accepted: usize,
    /// Records rejected by checksum (bit rot) — their cells re-run.
    pub rejected: usize,
    /// A structurally incomplete tail record was dropped (torn write).
    pub torn_tail: bool,
}

/// The append-only, fingerprinted cell journal.
///
/// Created by [`SweepJournal::create`] (fresh grid) or recovered by
/// [`SweepJournal::load`] (resume). Appends are flushed and fsynced per
/// cell, so a completed cell survives any subsequent kill.
pub struct SweepJournal {
    file: File,
}

impl SweepJournal {
    /// Start a fresh journal at `path` (truncating anything there) and
    /// write the identity header.
    pub fn create(path: &Path, id: &GridIdentity) -> Result<SweepJournal, ResumeError> {
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        let mut header = Vec::new();
        header.extend_from_slice(MAGIC);
        put_u32(&mut header, VERSION);
        put_u64(&mut header, id.hash);
        let summary = id.summary.as_bytes();
        put_u32(&mut header, summary.len() as u32);
        header.extend_from_slice(summary);
        put_u64(&mut header, fnv1a(summary));
        file.write_all(&header)?;
        file.flush()?;
        file.sync_data()?;
        Ok(SweepJournal { file })
    }

    /// Append one completed cell's encoded record and make it durable.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), ResumeError> {
        let mut frame = Vec::with_capacity(payload.len() + 12);
        put_u32(&mut frame, payload.len() as u32);
        put_u64(&mut frame, fnv1a(payload));
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.file.flush()?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Open an existing journal, verify it belongs to `id`, and return the
    /// surviving record payloads in journal order together with scan
    /// diagnostics. The file is truncated back to the last structurally
    /// complete record so subsequent appends extend a clean tail.
    pub fn load(
        path: &Path,
        id: &GridIdentity,
    ) -> Result<(SweepJournal, Vec<Vec<u8>>, JournalScan), ResumeError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let not_a_journal = || ResumeError::NotAJournal { path: path.to_path_buf() };

        // Header: magic, version, identity hash, summary, summary checksum.
        let mut pos = 0usize;
        let magic = take(&bytes, &mut pos, 8).ok_or_else(not_a_journal)?;
        if magic != MAGIC {
            return Err(not_a_journal());
        }
        let version = take_u32(&bytes, &mut pos).ok_or_else(not_a_journal)?;
        if version != VERSION {
            return Err(ResumeError::UnsupportedVersion { found: version });
        }
        let hash = take_u64(&bytes, &mut pos).ok_or_else(not_a_journal)?;
        let summary_len = take_u32(&bytes, &mut pos).ok_or_else(not_a_journal)? as usize;
        if summary_len > MAX_RECORD as usize {
            return Err(not_a_journal());
        }
        let summary = take(&bytes, &mut pos, summary_len).ok_or_else(not_a_journal)?.to_vec();
        let summary_sum = take_u64(&bytes, &mut pos).ok_or_else(not_a_journal)?;
        if fnv1a(&summary) != summary_sum {
            return Err(not_a_journal());
        }
        let found = String::from_utf8_lossy(&summary).into_owned();
        if hash != id.hash {
            return Err(ResumeError::IdentityMismatch { expected: id.summary.clone(), found });
        }

        // Records: stop at the first torn frame, skip checksum failures.
        let mut records = Vec::new();
        let mut scan = JournalScan::default();
        let mut good_end = pos;
        while pos < bytes.len() {
            let Some(len) = take_u32(&bytes, &mut pos) else {
                scan.torn_tail = true;
                break;
            };
            if len > MAX_RECORD {
                // Framing corruption: nothing behind it can be trusted.
                scan.torn_tail = true;
                break;
            }
            let Some(sum) = take_u64(&bytes, &mut pos) else {
                scan.torn_tail = true;
                break;
            };
            let Some(payload) = take(&bytes, &mut pos, len as usize) else {
                scan.torn_tail = true;
                break;
            };
            if fnv1a(payload) == sum {
                records.push(payload.to_vec());
                scan.accepted += 1;
            } else {
                scan.rejected += 1;
            }
            good_end = pos;
        }
        // Drop the torn tail so appends start at a clean boundary.
        if good_end < bytes.len() {
            file.set_len(good_end as u64)?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((SweepJournal { file }, records, scan))
    }
}

// ---------------------------------------------------------------------------
// Cell record codec: a versioned, lossless binary encoding of SweepCell.
// Every field of every rep outcome round-trips exactly (f64 via to_bits),
// which is what makes "resumed ≡ uninterrupted" byte-for-byte true.
// ---------------------------------------------------------------------------

/// Encode one completed cell (its grid index plus full contents).
pub fn encode_cell(index: u32, cell: &SweepCell) -> Vec<u8> {
    let mut b = Vec::with_capacity(256);
    put_u32(&mut b, index);
    put_str(&mut b, &cell.strategy);
    put_str(&mut b, &cell.site);
    put_u32(&mut b, cell.report.runs.len() as u32);
    for run in &cell.report.runs {
        // Sweeps are untraced: timelines are never journaled (and never
        // present — SweepPlan has no trace switch).
        encode_outcome(&mut b, &run.outcome);
    }
    encode_stats(&mut b, &cell.stats);
    put_u32(&mut b, cell.failures.len() as u32);
    for f in &cell.failures {
        put_u64(&mut b, f.rep as u64);
        put_u32(&mut b, f.retries);
        put_u8(
            &mut b,
            match f.class {
                RetryClass::NotRetried => 0,
                RetryClass::Deterministic => 1,
            },
        );
        match &f.kind {
            FailureKind::Panic(msg) => {
                put_u8(&mut b, 0);
                put_str(&mut b, msg);
            }
            FailureKind::Watchdog { events } => {
                put_u8(&mut b, 1);
                put_u64(&mut b, *events);
            }
            FailureKind::Stalled => put_u8(&mut b, 2),
            FailureKind::Deadline => put_u8(&mut b, 3),
        }
    }
    put_u32(&mut b, cell.recovered.len() as u32);
    for r in &cell.recovered {
        put_u64(&mut b, r.rep as u64);
        put_u32(&mut b, r.retries);
    }
    b
}

/// Decode a cell record. `None` means the payload is structurally invalid
/// (despite a matching checksum — defense in depth); the caller treats the
/// cell as missing and re-runs it.
pub fn decode_cell(payload: &[u8]) -> Option<(u32, SweepCell)> {
    let mut pos = 0usize;
    let b = payload;
    let index = take_u32(b, &mut pos)?;
    let strategy = take_str(b, &mut pos)?;
    let site = take_str(b, &mut pos)?;
    let n_runs = take_u32(b, &mut pos)? as usize;
    if n_runs > MAX_RECORD as usize {
        return None;
    }
    let mut runs = Vec::with_capacity(n_runs.min(1024));
    for _ in 0..n_runs {
        runs.push(RunOutput { outcome: decode_outcome(b, &mut pos)?, timeline: None });
    }
    let stats = decode_stats(b, &mut pos)?;
    let n_failures = take_u32(b, &mut pos)? as usize;
    let mut failures = Vec::with_capacity(n_failures.min(1024));
    for _ in 0..n_failures {
        let rep = take_u64(b, &mut pos)? as usize;
        let retries = take_u32(b, &mut pos)?;
        let class = match take_u8(b, &mut pos)? {
            0 => RetryClass::NotRetried,
            1 => RetryClass::Deterministic,
            _ => return None,
        };
        let kind = match take_u8(b, &mut pos)? {
            0 => FailureKind::Panic(take_str(b, &mut pos)?),
            1 => FailureKind::Watchdog { events: take_u64(b, &mut pos)? },
            2 => FailureKind::Stalled,
            3 => FailureKind::Deadline,
            _ => return None,
        };
        failures.push(CellFailure { rep, kind, retries, class });
    }
    let n_recovered = take_u32(b, &mut pos)? as usize;
    let mut recovered = Vec::with_capacity(n_recovered.min(1024));
    for _ in 0..n_recovered {
        let rep = take_u64(b, &mut pos)? as usize;
        let retries = take_u32(b, &mut pos)?;
        recovered.push(RecoveredRep { rep, retries });
    }
    if pos != b.len() {
        return None; // trailing garbage
    }
    Some((
        index,
        SweepCell { strategy, site, report: RunReport { runs }, stats, failures, recovered },
    ))
}

fn encode_outcome(b: &mut Vec<u8>, o: &ReplayOutcome) {
    // LoadResult
    let l = &o.load;
    put_str(b, &l.site);
    put_u64(b, l.connect_end.0);
    put_opt_time(b, l.first_paint);
    put_opt_time(b, l.dom_content_loaded);
    put_opt_time(b, l.onload);
    put_u32(b, l.paints.len() as u32);
    for p in &l.paints {
        put_u64(b, p.time.0);
        put_f64(b, p.completeness);
    }
    put_u64(b, l.pushed_bytes);
    put_u32(b, l.pushed_count);
    put_u32(b, l.cancelled_pushes);
    put_u32(b, l.requests);
    put_u8(b, l.partial as u8);
    put_u32(b, l.failed_resources);
    put_u32(b, l.retries);
    put_u32(b, l.timeouts);
    put_u32(b, l.conn_errors);
    put_u32(b, l.waterfall.len() as u32);
    for w in &l.waterfall {
        put_opt_time(b, w.discovered);
        put_opt_time(b, w.loaded);
        put_opt_time(b, w.evaluated);
        put_u8(b, w.pushed as u8);
    }
    // RunTrace
    put_u32(b, o.trace.order.len() as u32);
    for r in &o.trace.order {
        put_u64(b, r.0 as u64);
    }
    put_u64(b, o.server_pushed_bytes);
    // NetStats
    put_u64(b, o.net.data_packets);
    put_u64(b, o.net.drops_queue);
    put_u64(b, o.net.drops_random);
    put_u64(b, o.net.drops_fault);
    put_u64(b, o.net.drops_flap);
    put_u64(b, o.net.reordered);
    put_u64(b, o.net.retransmits);
}

fn decode_outcome(b: &[u8], pos: &mut usize) -> Option<ReplayOutcome> {
    let site = take_str(b, pos)?;
    let connect_end = SimTime(take_u64(b, pos)?);
    let first_paint = take_opt_time(b, pos)?;
    let dom_content_loaded = take_opt_time(b, pos)?;
    let onload = take_opt_time(b, pos)?;
    let n_paints = take_u32(b, pos)? as usize;
    let mut paints = Vec::with_capacity(n_paints.min(4096));
    for _ in 0..n_paints {
        let time = SimTime(take_u64(b, pos)?);
        let completeness = take_f64(b, pos)?;
        paints.push(PaintSample { time, completeness });
    }
    let pushed_bytes = take_u64(b, pos)?;
    let pushed_count = take_u32(b, pos)?;
    let cancelled_pushes = take_u32(b, pos)?;
    let requests = take_u32(b, pos)?;
    let partial = take_u8(b, pos)? != 0;
    let failed_resources = take_u32(b, pos)?;
    let retries = take_u32(b, pos)?;
    let timeouts = take_u32(b, pos)?;
    let conn_errors = take_u32(b, pos)?;
    let n_wf = take_u32(b, pos)? as usize;
    let mut waterfall = Vec::with_capacity(n_wf.min(4096));
    for _ in 0..n_wf {
        let discovered = take_opt_time(b, pos)?;
        let loaded = take_opt_time(b, pos)?;
        let evaluated = take_opt_time(b, pos)?;
        let pushed = take_u8(b, pos)? != 0;
        waterfall.push(ResourceTiming { discovered, loaded, evaluated, pushed });
    }
    let n_order = take_u32(b, pos)? as usize;
    let mut order = Vec::with_capacity(n_order.min(4096));
    for _ in 0..n_order {
        order.push(ResourceId(take_u64(b, pos)? as usize));
    }
    let server_pushed_bytes = take_u64(b, pos)?;
    let net = NetStats {
        data_packets: take_u64(b, pos)?,
        drops_queue: take_u64(b, pos)?,
        drops_random: take_u64(b, pos)?,
        drops_fault: take_u64(b, pos)?,
        drops_flap: take_u64(b, pos)?,
        reordered: take_u64(b, pos)?,
        retransmits: take_u64(b, pos)?,
    };
    Some(ReplayOutcome {
        load: LoadResult {
            site,
            connect_end,
            first_paint,
            dom_content_loaded,
            onload,
            paints,
            pushed_bytes,
            pushed_count,
            cancelled_pushes,
            requests,
            partial,
            failed_resources,
            retries,
            timeouts,
            conn_errors,
            waterfall,
        },
        trace: RunTrace { order },
        server_pushed_bytes,
        net,
    })
}

fn encode_stats(b: &mut Vec<u8>, s: &CellStats) {
    put_u32(b, s.n);
    put_u32(b, s.partial);
    put_u32(b, s.plt.len() as u32);
    for &v in &s.plt {
        put_f64(b, v);
    }
    put_u32(b, s.speed_index.len() as u32);
    for &v in &s.speed_index {
        put_f64(b, v);
    }
    put_u64(b, s.pushed_bytes);
}

fn decode_stats(b: &[u8], pos: &mut usize) -> Option<CellStats> {
    let n = take_u32(b, pos)?;
    let partial = take_u32(b, pos)?;
    let n_plt = take_u32(b, pos)? as usize;
    let mut plt = Vec::with_capacity(n_plt.min(4096));
    for _ in 0..n_plt {
        plt.push(take_f64(b, pos)?);
    }
    let n_si = take_u32(b, pos)? as usize;
    let mut speed_index = Vec::with_capacity(n_si.min(4096));
    for _ in 0..n_si {
        speed_index.push(take_f64(b, pos)?);
    }
    let pushed_bytes = take_u64(b, pos)?;
    Some(CellStats { n, partial, plt, speed_index, pushed_bytes })
}

// --- little-endian primitives ---------------------------------------------

fn put_u8(b: &mut Vec<u8>, v: u8) {
    b.push(v);
}

fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(b: &mut Vec<u8>, v: f64) {
    put_u64(b, v.to_bits());
}

fn put_str(b: &mut Vec<u8>, s: &str) {
    put_u32(b, s.len() as u32);
    b.extend_from_slice(s.as_bytes());
}

fn put_opt_time(b: &mut Vec<u8>, t: Option<SimTime>) {
    match t {
        Some(t) => {
            put_u8(b, 1);
            put_u64(b, t.0);
        }
        None => put_u8(b, 0),
    }
}

fn take<'a>(b: &'a [u8], pos: &mut usize, n: usize) -> Option<&'a [u8]> {
    let end = pos.checked_add(n)?;
    if end > b.len() {
        return None;
    }
    let out = &b[*pos..end];
    *pos = end;
    Some(out)
}

fn take_u8(b: &[u8], pos: &mut usize) -> Option<u8> {
    take(b, pos, 1).map(|s| s[0])
}

fn take_u32(b: &[u8], pos: &mut usize) -> Option<u32> {
    take(b, pos, 4).map(|s| u32::from_le_bytes(s.try_into().unwrap()))
}

fn take_u64(b: &[u8], pos: &mut usize) -> Option<u64> {
    take(b, pos, 8).map(|s| u64::from_le_bytes(s.try_into().unwrap()))
}

fn take_f64(b: &[u8], pos: &mut usize) -> Option<f64> {
    take_u64(b, pos).map(f64::from_bits)
}

fn take_str(b: &[u8], pos: &mut usize) -> Option<String> {
    let len = take_u32(b, pos)? as usize;
    if len > MAX_RECORD as usize {
        return None;
    }
    let s = take(b, pos, len)?;
    String::from_utf8(s.to_vec()).ok()
}

fn take_opt_time(b: &[u8], pos: &mut usize) -> Option<Option<SimTime>> {
    match take_u8(b, pos)? {
        0 => Some(None),
        1 => Some(Some(SimTime(take_u64(b, pos)?))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn primitives_round_trip() {
        let mut b = Vec::new();
        put_u8(&mut b, 7);
        put_u32(&mut b, 0xdead_beef);
        put_u64(&mut b, u64::MAX - 3);
        put_f64(&mut b, -0.0);
        put_str(&mut b, "héllo");
        put_opt_time(&mut b, None);
        put_opt_time(&mut b, Some(SimTime(42)));
        let mut pos = 0;
        assert_eq!(take_u8(&b, &mut pos), Some(7));
        assert_eq!(take_u32(&b, &mut pos), Some(0xdead_beef));
        assert_eq!(take_u64(&b, &mut pos), Some(u64::MAX - 3));
        assert_eq!(take_f64(&b, &mut pos).map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(take_str(&b, &mut pos).as_deref(), Some("héllo"));
        assert_eq!(take_opt_time(&b, &mut pos), Some(None));
        assert_eq!(take_opt_time(&b, &mut pos), Some(Some(SimTime(42))));
        assert_eq!(pos, b.len());
        // Truncated reads fail cleanly.
        let mut short = 0;
        assert_eq!(take_u64(&b[..3], &mut short), None);
    }
}
