//! The netsim adapter: hosts the sans-IO endpoints on the simulated
//! network.
//!
//! Everything protocol-shaped lives in the state machines (browser,
//! replay servers, `h2push-h2proto` connections); everything
//! transport-shaped lives in `h2push-netsim`. This module is the thin
//! layer between them — it owns the event loop and does exactly four
//! things:
//!
//! * shuttle delivered bytes into the machines
//!   ([`Endpoint::feed_bytes`] / `Browser::on_bytes`) stamped with
//!   sim-time,
//! * shuttle produced bytes ([`Endpoint::poll_output`] /
//!   `BrowserAction::SendBytes`) into the simulated TCP pipes,
//! * realize browser actions (open connections, arm timers) against the
//!   simulator, and
//! * police the run: deadline, stall detection and the event watchdog.
//!
//! The live TCP runtime (`crate::live`) is the same adapter shape over
//! real sockets; the equality suite in `tests/sansio_golden.rs` pins this
//! loop's outputs bit-for-bit.

use crate::replay::{Protocol, ReplayConfig, ReplayError, ReplayInputs, ReplayOutcome};
use bytes::{Bytes, BytesMut};
use h2push_browser::{Browser, BrowserAction};
use h2push_h2proto::sansio::Endpoint;
use h2push_netsim::{ConnId, Dir, NetEvent, Network, ServerId, ServerSpec, SimTime};
use h2push_server::{H1ReplayServer, ReplayServer};
use h2push_strategies::{RunTrace, Strategy};
use h2push_trace::{conn_label, TraceHandle};
use h2push_webmodel::ResourceId;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// One direction of an in-flight TCP stream: a FIFO of `Bytes` chunks.
/// Producers queue their output buffers as-is (no copy); deliveries pop
/// by byte count, slicing the front chunk in place via O(1) `split_to`.
#[derive(Default)]
struct ByteFifo {
    chunks: VecDeque<Bytes>,
    len: usize,
}

impl ByteFifo {
    fn push(&mut self, b: Bytes) {
        self.len += b.len();
        self.chunks.push_back(b);
    }

    /// Pop up to `max` bytes as one contiguous buffer. A delivery that
    /// spans queued chunks concatenates them so the receiver still sees
    /// exactly one `feed_bytes` call per network delivery.
    fn pop(&mut self, max: usize) -> Bytes {
        let take = max.min(self.len);
        if take == 0 {
            return Bytes::new();
        }
        self.len -= take;
        let front = self.chunks.front_mut().expect("non-empty fifo");
        if take <= front.len() {
            let out = front.split_to(take);
            if front.is_empty() {
                self.chunks.pop_front();
            }
            return out;
        }
        let mut buf = BytesMut::with_capacity(take);
        let mut rem = take;
        while rem > 0 {
            let front = self.chunks.front_mut().expect("non-empty fifo");
            let n = rem.min(front.len());
            buf.extend_from_slice(&front.split_to(n));
            if front.is_empty() {
                self.chunks.pop_front();
            }
            rem -= n;
        }
        buf.freeze()
    }
}

/// Per-connection adapter state: which browser (group, slot) the netsim
/// connection belongs to, plus the bytes handed to the simulator but not
/// yet delivered, per direction.
struct ConnCtx {
    group: usize,
    slot: usize,
    /// Bytes handed to netsim (up = client→server) not yet delivered.
    up: ByteFifo,
    down: ByteFifo,
}

/// A per-connection replay server of either protocol. (Boxed: the H2
/// server carries the page, record DB and scheduler state and is much
/// larger than the H1 half.)
enum AnyServer {
    H2(Box<ReplayServer>),
    H1(H1ReplayServer),
}

impl AnyServer {
    fn h2(&self) -> Option<&ReplayServer> {
        match self {
            AnyServer::H2(s) => Some(s),
            AnyServer::H1(_) => None,
        }
    }
}

/// Both protocols present the same sans-IO face to the driver.
impl Endpoint for AnyServer {
    fn feed_bytes(&mut self, bytes: &[u8], now: u64) {
        match self {
            AnyServer::H2(s) => s.feed_bytes(bytes, now),
            AnyServer::H1(s) => s.feed_bytes(bytes, now),
        }
    }

    fn wants_output(&self) -> bool {
        match self {
            AnyServer::H2(s) => s.wants_output(),
            AnyServer::H1(s) => s.wants_output(),
        }
    }

    fn poll_output(&mut self, max: usize, now: u64) -> Bytes {
        match self {
            AnyServer::H2(s) => s.poll_output(max, now),
            AnyServer::H1(s) => s.poll_output(max, now),
        }
    }
}

/// The adapter proper: simulated network on one side, sans-IO machines on
/// the other.
struct SimDriver<'a> {
    inputs: &'a ReplayInputs,
    cfg: &'a ReplayConfig,
    trace: &'a TraceHandle,
    net: Network,
    browser: Browser,
    servers: HashMap<(usize, usize), AnyServer>,
    conn_of_slot: HashMap<(usize, usize), ConnId>,
    ctx: HashMap<ConnId, ConnCtx>,
    /// Browser actions not yet realized against the simulator.
    queue: VecDeque<BrowserAction>,
}

impl SimDriver<'_> {
    /// Realize queued browser actions against the simulator; handling one
    /// may enqueue more.
    fn drain_actions(&mut self) {
        while let Some(a) = self.queue.pop_front() {
            match a {
                BrowserAction::OpenConnection { group, slot } => self.open_connection(group, slot),
                BrowserAction::SendBytes { group, slot, bytes } => {
                    let conn = self.conn_of_slot[&(group, slot)];
                    let c = self.ctx.get_mut(&conn).expect("unknown conn");
                    self.net.send(conn, Dir::Up, bytes.len());
                    c.up.push(bytes);
                }
                BrowserAction::SetTimer { at, token } => {
                    self.net.schedule(at, token);
                }
            }
        }
    }

    /// A new (group, slot): connect through the simulated access link and
    /// stand up the matching replay server behind it.
    fn open_connection(&mut self, group: usize, slot: usize) {
        let cfg = self.cfg;
        let spec = match cfg.server_extra_delay.get(&group) {
            Some(&d) => ServerSpec::with_extra_delay(d),
            None => ServerSpec { think: cfg.server_think, ..Default::default() },
        };
        let sid: ServerId = self.net.add_server(spec);
        let conn = self.net.connect(sid);
        self.conn_of_slot.insert((group, slot), conn);
        self.ctx.insert(
            conn,
            ConnCtx { group, slot, up: ByteFifo::default(), down: ByteFifo::default() },
        );
        let server = match cfg.protocol {
            Protocol::H2 => {
                let mut s = ReplayServer::new(
                    Arc::clone(&self.inputs.page),
                    Arc::clone(&self.inputs.db),
                    group,
                    &cfg.strategy,
                );
                s.set_honor_cache_digest(cfg.server_honors_digest);
                s.set_limits(cfg.limits);
                if let Some(p) = &self.inputs.prepared {
                    s.set_prepared(Arc::clone(&p.server));
                    s.set_hpack_block_cache(p.hpack.clone());
                }
                if self.trace.is_on() {
                    s.set_trace(self.trace.clone(), conn_label(group, slot));
                }
                AnyServer::H2(Box::new(s))
            }
            Protocol::H1 => AnyServer::H1(H1ReplayServer::new(Arc::clone(&self.inputs.db))),
        };
        self.servers.insert((group, slot), server);
    }

    /// Pull response bytes from a server while the TCP window has room.
    fn pump_server(&mut self, conn: ConnId, key: (usize, usize)) {
        loop {
            if !self.servers.get(&key).expect("server exists").wants_output() {
                self.net.set_hungry(conn, Dir::Down, false);
                break;
            }
            match self.net.set_hungry(conn, Dir::Down, true) {
                Some(window) => {
                    let now = self.net.now().as_micros();
                    let bytes =
                        self.servers.get_mut(&key).expect("server exists").poll_output(window, now);
                    if bytes.is_empty() {
                        // Flow-control (H2-level) blocked: wait for
                        // client window updates.
                        self.net.set_hungry(conn, Dir::Down, false);
                        break;
                    }
                    let c = self.ctx.get_mut(&conn).expect("ctx");
                    self.net.send(conn, Dir::Down, bytes.len());
                    c.down.push(bytes);
                }
                None => break, // TCP window full; SendReady will fire
            }
        }
    }

    /// The event loop: step the simulator, dispatch each transport event
    /// into the machines, realize the actions that come back.
    fn run(mut self) -> Result<ReplayOutcome, ReplayError> {
        let cfg = self.cfg;
        let deadline = SimTime::ZERO + cfg.deadline;
        let actions = self.browser.start(self.net.now());
        self.queue.extend(actions);
        self.drain_actions();

        loop {
            if self.browser.done() {
                break;
            }
            let Some((t, ev)) = self.net.step() else {
                return Err(ReplayError::Stalled { at: self.net.now() });
            };
            // Publish the shared trace clock so emission sites without a
            // time parameter (endpoint state machines) stamp with event
            // time.
            self.trace.set_now(t.as_micros());
            if t > deadline {
                return Err(ReplayError::DeadlineExceeded);
            }
            if self.net.events_processed() > cfg.watchdog_events {
                let events = self.net.events_processed();
                self.trace.emit(h2push_trace::TraceEvent::WatchdogFired { events });
                return Err(ReplayError::Watchdog { events });
            }
            match ev {
                NetEvent::Connected { conn } => {
                    let (group, slot) = (self.ctx[&conn].group, self.ctx[&conn].slot);
                    let actions = self.browser.on_connected(group, slot, t);
                    self.queue.extend(actions);
                    self.drain_actions();
                    self.pump_server(conn, (group, slot));
                }
                NetEvent::Delivered { conn, dir: Dir::Up, bytes } => {
                    let (group, slot) = (self.ctx[&conn].group, self.ctx[&conn].slot);
                    let chunk = self.ctx.get_mut(&conn).expect("ctx").up.pop(bytes);
                    self.servers
                        .get_mut(&(group, slot))
                        .expect("server")
                        .feed_bytes(&chunk, t.as_micros());
                    self.pump_server(conn, (group, slot));
                }
                NetEvent::Delivered { conn, dir: Dir::Down, bytes } => {
                    let (group, slot) = (self.ctx[&conn].group, self.ctx[&conn].slot);
                    let chunk = self.ctx.get_mut(&conn).expect("ctx").down.pop(bytes);
                    let actions = self.browser.on_bytes(group, slot, &chunk, t);
                    self.queue.extend(actions);
                    self.drain_actions();
                    // The browser may have ACKed at the H2 level (window
                    // updates) — give the server a chance to continue.
                    self.pump_server(conn, (group, slot));
                }
                NetEvent::SendReady { conn, dir: Dir::Down, .. } => {
                    let (group, slot) = (self.ctx[&conn].group, self.ctx[&conn].slot);
                    self.pump_server(conn, (group, slot));
                }
                NetEvent::SendReady { .. } => {
                    // The browser sends eagerly; it never registers hunger.
                }
                NetEvent::App { token } => {
                    let actions = self.browser.on_timer(token, t);
                    self.queue.extend(actions);
                    self.drain_actions();
                    // Timers can trigger new requests on any connection;
                    // make sure all servers with pending output are
                    // pulling. Pump in (group, slot) order — HashMap
                    // iteration order varies per instance and must not
                    // leak into the simulation.
                    let mut pending: Vec<((usize, usize), ConnId)> =
                        self.conn_of_slot.iter().map(|(&k, &c)| (k, c)).collect();
                    pending.sort_unstable_by_key(|&(k, _)| k);
                    for (key, conn) in pending {
                        if self.servers.get(&key).map(|s| s.wants_output()).unwrap_or(false) {
                            self.pump_server(conn, key);
                        }
                    }
                }
            }
        }

        let main_group = self.inputs.page.server_group_of(ResourceId(0));
        let main_server = self.servers.get(&(main_group, 0)).and_then(|s| s.h2());
        let trace = RunTrace {
            order: main_server
                .map(|s| s.observations().iter().map(|o| o.resource).collect())
                .unwrap_or_default(),
        };
        Ok(ReplayOutcome {
            load: self.browser.result(),
            server_pushed_bytes: main_server.map(|s| s.pushed_bytes()).unwrap_or(0),
            trace,
            net: self.net.stats(),
        })
    }
}

/// Run one replay of `inputs` under `cfg` on the simulated network,
/// emitting into `trace` (a no-op handle costs one branch per site).
pub(crate) fn drive(
    inputs: &ReplayInputs,
    cfg: &ReplayConfig,
    trace: &TraceHandle,
) -> Result<ReplayOutcome, ReplayError> {
    let mut net = Network::new(cfg.network.clone());
    net.set_trace(trace.clone());
    let mut browser_cfg = cfg.browser.clone();
    browser_cfg.enable_push =
        cfg.protocol == Protocol::H2 && !matches!(cfg.strategy, Strategy::NoPush);
    browser_cfg.warm_cache = cfg.warm_cache.clone();
    browser_cfg.transport = match cfg.protocol {
        Protocol::H2 => h2push_browser::TransportMode::H2,
        Protocol::H1 => h2push_browser::TransportMode::H1,
    };
    browser_cfg.limits = cfg.limits;
    let mut browser = match &inputs.prepared {
        Some(p) => {
            let mut b =
                Browser::with_scan(Arc::clone(&inputs.page), browser_cfg, Arc::clone(&p.scan));
            b.set_hpack_block_cache(p.hpack.clone());
            b
        }
        None => Browser::new(Arc::clone(&inputs.page), browser_cfg),
    };
    browser.set_trace(trace.clone());
    SimDriver {
        inputs,
        cfg,
        trace,
        net,
        browser,
        servers: HashMap::new(),
        conn_of_slot: HashMap::new(),
        ctx: HashMap::new(),
        queue: VecDeque::new(),
    }
    .run()
}
