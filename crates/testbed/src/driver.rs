//! The netsim adapter: hosts the sans-IO endpoints on the simulated
//! network.
//!
//! Everything protocol-shaped lives in the state machines (browser,
//! replay servers, `h2push-h2proto` connections); everything
//! transport-shaped lives in `h2push-netsim`. This module is the thin
//! layer between them — it owns the event loop and does exactly four
//! things:
//!
//! * shuttle delivered bytes into the machines
//!   ([`Endpoint::feed_bytes`] / `Browser::on_bytes`) stamped with
//!   sim-time,
//! * shuttle produced bytes ([`Endpoint::poll_output`] /
//!   `BrowserAction::SendBytes`) into the simulated TCP pipes,
//! * realize browser actions (open connections, arm timers) against the
//!   simulator, and
//! * police the run: deadline, stall detection and the event watchdog.
//!
//! The machinery a run needs — browser engine, network, per-connection
//! servers and byte FIFOs — lives in a [`ReplayCtx`] and is *recycled*
//! between runs instead of reconstructed: every component resets in place
//! (clear-don't-drop, keeping its buffers) through the same code path a
//! cold construction takes, so a recycled run is byte-identical to a
//! fresh one (asserted across strategies, faults, modes and tracing in
//! `tests/recycle.rs`). [`drive`] recycles a thread-local context
//! automatically; [`drive_in`] lets callers own the context's lifetime.
//!
//! The live TCP runtime (`crate::live`) is the same adapter shape over
//! real sockets; the equality suite in `tests/sansio_golden.rs` pins this
//! loop's outputs bit-for-bit.

use crate::replay::{Protocol, ReplayConfig, ReplayError, ReplayInputs, ReplayOutcome};
use bytes::{Bytes, BytesMut};
use h2push_browser::{Browser, BrowserAction, PreparedScan};
use h2push_h2proto::sansio::Endpoint;
use h2push_netsim::{ConnId, Dir, NetEvent, Network, ServerId, ServerSpec, SimTime};
use h2push_server::{H1ReplayServer, ReplayServer};
use h2push_strategies::{RunTrace, Strategy};
use h2push_trace::{conn_label, TraceHandle};
use h2push_webmodel::ResourceId;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// One direction of an in-flight TCP stream: a FIFO of `Bytes` chunks.
/// Producers queue their output buffers as-is (no copy); deliveries pop
/// by byte count, slicing the front chunk in place via O(1) `split_to`.
#[derive(Default)]
struct ByteFifo {
    chunks: VecDeque<Bytes>,
    len: usize,
}

impl ByteFifo {
    fn push(&mut self, b: Bytes) {
        self.len += b.len();
        self.chunks.push_back(b);
    }

    fn clear(&mut self) {
        self.chunks.clear();
        self.len = 0;
    }

    /// Pop up to `max` bytes as one contiguous buffer. A delivery that
    /// spans queued chunks concatenates them so the receiver still sees
    /// exactly one `feed_bytes` call per network delivery.
    fn pop(&mut self, max: usize) -> Bytes {
        let take = max.min(self.len);
        if take == 0 {
            return Bytes::new();
        }
        self.len -= take;
        let front = self.chunks.front_mut().expect("non-empty fifo");
        if take <= front.len() {
            let out = front.split_to(take);
            if front.is_empty() {
                self.chunks.pop_front();
            }
            return out;
        }
        let mut buf = BytesMut::with_capacity(take);
        let mut rem = take;
        while rem > 0 {
            let front = self.chunks.front_mut().expect("non-empty fifo");
            let n = rem.min(front.len());
            buf.extend_from_slice(&front.split_to(n));
            if front.is_empty() {
                self.chunks.pop_front();
            }
            rem -= n;
        }
        buf.freeze()
    }
}

/// Per-connection adapter state: which browser (group, slot) the netsim
/// connection belongs to, plus the bytes handed to the simulator but not
/// yet delivered, per direction.
struct ConnCtx {
    group: usize,
    slot: usize,
    /// Bytes handed to netsim (up = client→server) not yet delivered.
    up: ByteFifo,
    down: ByteFifo,
}

/// A per-connection replay server of either protocol. (Boxed: the H2
/// server carries the page, record DB and scheduler state and is much
/// larger than the H1 half.)
enum AnyServer {
    H2(Box<ReplayServer>),
    H1(H1ReplayServer),
}

impl AnyServer {
    fn h2(&self) -> Option<&ReplayServer> {
        match self {
            AnyServer::H2(s) => Some(s),
            AnyServer::H1(_) => None,
        }
    }
}

/// Both protocols present the same sans-IO face to the driver.
impl Endpoint for AnyServer {
    fn feed_bytes(&mut self, bytes: &[u8], now: u64) {
        match self {
            AnyServer::H2(s) => s.feed_bytes(bytes, now),
            AnyServer::H1(s) => s.feed_bytes(bytes, now),
        }
    }

    fn wants_output(&self) -> bool {
        match self {
            AnyServer::H2(s) => s.wants_output(),
            AnyServer::H1(s) => s.wants_output(),
        }
    }

    fn poll_output(&mut self, max: usize, now: u64) -> Bytes {
        match self {
            AnyServer::H2(s) => s.poll_output(max, now),
            AnyServer::H1(s) => s.poll_output(max, now),
        }
    }
}

/// How many parked components a context keeps between runs. Replays open
/// one connection per (group, slot); real pages stay well under this.
const SPARE_CAP: usize = 16;

/// The run context: every piece of per-rep machinery a replay needs,
/// recycled between repetitions instead of reconstructed.
///
/// A context owns the browser engine, the simulated network (with its
/// pooled event queue), the per-connection replay servers and byte FIFOs
/// of its last run, plus the driver's scratch buffers. Starting a run
/// resets each component in place — clear-don't-drop, retaining every
/// container allocation — through the same setup path a cold construction
/// takes, which is what makes the steady state allocation-free *and*
/// byte-identical to fresh construction (the recycled-vs-cold equality
/// suite in `tests/recycle.rs` pins both).
///
/// The reset runs at the *beginning* of each run, not the end: a context
/// whose previous run panicked or errored out mid-flight is healed by the
/// next `begin_run`, never poisoned.
#[derive(Default)]
pub struct ReplayCtx {
    net: Option<Network>,
    browser: Option<Browser>,
    servers: HashMap<(usize, usize), AnyServer>,
    conn_of_slot: HashMap<(usize, usize), ConnId>,
    conns: HashMap<ConnId, ConnCtx>,
    queue: VecDeque<BrowserAction>,
    /// Parked H2 replay servers from the previous run, reissued (via
    /// `ReplayServer::reset`) by `open_connection`. The box is the
    /// point: it is `AnyServer::H2`'s own allocation, parked and
    /// reissued whole so recycling never re-boxes.
    #[allow(clippy::vec_box)]
    spare_h2: Vec<Box<ReplayServer>>,
    /// Parked H1 replay servers, reissued via `H1ReplayServer::reset`.
    spare_h1: Vec<H1ReplayServer>,
    /// Parked per-connection FIFO pairs (chunk deques retained).
    spare_conns: Vec<ConnCtx>,
    /// Scratch for the timer-event server pump ordering.
    pending: Vec<((usize, usize), ConnId)>,
}

impl ReplayCtx {
    /// A fresh, empty context. The first run through it constructs its
    /// machinery cold; every later run recycles.
    pub fn new() -> Self {
        Self::default()
    }

    /// Park last run's per-connection state and reset the long-lived
    /// machines for a new `(inputs, cfg, trace)` run.
    fn begin_run(&mut self, inputs: &ReplayInputs, cfg: &ReplayConfig, trace: &TraceHandle) {
        for (_, server) in self.servers.drain() {
            match server {
                AnyServer::H2(s) => {
                    if self.spare_h2.len() < SPARE_CAP {
                        self.spare_h2.push(s);
                    }
                }
                AnyServer::H1(s) => {
                    if self.spare_h1.len() < SPARE_CAP {
                        self.spare_h1.push(s);
                    }
                }
            }
        }
        for (_, mut c) in self.conns.drain() {
            if self.spare_conns.len() < SPARE_CAP {
                c.up.clear();
                c.down.clear();
                self.spare_conns.push(c);
            }
        }
        self.conn_of_slot.clear();
        self.queue.clear();
        self.pending.clear();

        match &mut self.net {
            Some(n) => n.reset(cfg.network.clone()),
            None => self.net = Some(Network::new(cfg.network.clone())),
        }
        let net = self.net.as_mut().expect("net initialised");
        net.set_trace(trace.clone());

        let mut browser_cfg = cfg.browser.clone();
        browser_cfg.enable_push =
            cfg.protocol == Protocol::H2 && !matches!(*cfg.strategy, Strategy::NoPush);
        browser_cfg.warm_cache = cfg.warm_cache.clone();
        browser_cfg.transport = match cfg.protocol {
            Protocol::H2 => h2push_browser::TransportMode::H2,
            Protocol::H1 => h2push_browser::TransportMode::H1,
        };
        browser_cfg.limits = cfg.limits;
        // `Browser::new` is exactly `with_scan` over a freshly built scan,
        // so cold and recycled paths share one construction route.
        let scan = match &inputs.prepared {
            Some(p) => Arc::clone(&p.scan),
            None => Arc::new(PreparedScan::build(&inputs.page)),
        };
        match &mut self.browser {
            Some(b) => b.reset(Arc::clone(&inputs.page), browser_cfg, scan),
            None => {
                self.browser = Some(Browser::with_scan(Arc::clone(&inputs.page), browser_cfg, scan))
            }
        }
        let browser = self.browser.as_mut().expect("browser initialised");
        if let Some(p) = &inputs.prepared {
            browser.set_hpack_block_cache(p.hpack.clone());
            browser.set_hpack_decode_cache(p.hpack_decode.clone());
        }
        browser.set_trace(trace.clone());
    }
}

thread_local! {
    /// The context [`drive`] recycles: one per thread, living as long as
    /// the thread. Worker-pool threads span one fan-out call, so a
    /// worker's whole chunk of reps shares one context; a caller thread
    /// running serial measurements keeps recycling across calls.
    static THREAD_CTX: RefCell<ReplayCtx> = RefCell::new(ReplayCtx::new());
}

/// The adapter proper: simulated network on one side, sans-IO machines on
/// the other. All state is borrowed from a [`ReplayCtx`]; the driver
/// itself is stackless glue.
struct SimDriver<'a> {
    inputs: &'a ReplayInputs,
    cfg: &'a ReplayConfig,
    trace: &'a TraceHandle,
    net: &'a mut Network,
    browser: &'a mut Browser,
    servers: &'a mut HashMap<(usize, usize), AnyServer>,
    conn_of_slot: &'a mut HashMap<(usize, usize), ConnId>,
    ctx: &'a mut HashMap<ConnId, ConnCtx>,
    /// Browser actions not yet realized against the simulator.
    queue: &'a mut VecDeque<BrowserAction>,
    #[allow(clippy::vec_box)] // parked `AnyServer::H2` boxes, reissued whole
    spare_h2: &'a mut Vec<Box<ReplayServer>>,
    spare_h1: &'a mut Vec<H1ReplayServer>,
    spare_conns: &'a mut Vec<ConnCtx>,
    pending: &'a mut Vec<((usize, usize), ConnId)>,
}

impl SimDriver<'_> {
    /// Realize queued browser actions against the simulator; handling one
    /// may enqueue more.
    fn drain_actions(&mut self) {
        while let Some(a) = self.queue.pop_front() {
            match a {
                BrowserAction::OpenConnection { group, slot } => self.open_connection(group, slot),
                BrowserAction::SendBytes { group, slot, bytes } => {
                    let conn = self.conn_of_slot[&(group, slot)];
                    let c = self.ctx.get_mut(&conn).expect("unknown conn");
                    self.net.send(conn, Dir::Up, bytes.len());
                    c.up.push(bytes);
                }
                BrowserAction::SetTimer { at, token } => {
                    self.net.schedule(at, token);
                }
            }
        }
    }

    /// A new (group, slot): connect through the simulated access link and
    /// stand up the matching replay server behind it. Server machines and
    /// FIFO pairs come from the context's spare pools when available; a
    /// recycled server goes through `reset` into exactly the state a
    /// freshly constructed one starts in.
    fn open_connection(&mut self, group: usize, slot: usize) {
        let cfg = self.cfg;
        let spec = match cfg.server_extra_delay.get(&group) {
            Some(&d) => ServerSpec::with_extra_delay(d),
            None => ServerSpec { think: cfg.server_think, ..Default::default() },
        };
        let sid: ServerId = self.net.add_server(spec);
        let conn = self.net.connect(sid);
        self.conn_of_slot.insert((group, slot), conn);
        let (up, down) = match self.spare_conns.pop() {
            Some(c) => (c.up, c.down),
            None => Default::default(),
        };
        self.ctx.insert(conn, ConnCtx { group, slot, up, down });
        let server = match cfg.protocol {
            Protocol::H2 => {
                let mut s = match self.spare_h2.pop() {
                    Some(mut s) => {
                        s.reset(
                            Arc::clone(&self.inputs.page),
                            Arc::clone(&self.inputs.db),
                            group,
                            &cfg.strategy,
                        );
                        s
                    }
                    None => Box::new(ReplayServer::new(
                        Arc::clone(&self.inputs.page),
                        Arc::clone(&self.inputs.db),
                        group,
                        &cfg.strategy,
                    )),
                };
                s.set_honor_cache_digest(cfg.server_honors_digest);
                s.set_limits(cfg.limits);
                if let Some(p) = &self.inputs.prepared {
                    s.set_prepared(Arc::clone(&p.server));
                    s.set_hpack_block_cache(p.hpack.clone());
                    s.set_hpack_decode_cache(p.hpack_decode.clone());
                }
                if self.trace.is_on() {
                    s.set_trace(self.trace.clone(), conn_label(group, slot));
                }
                AnyServer::H2(s)
            }
            Protocol::H1 => {
                let s = match self.spare_h1.pop() {
                    Some(mut s) => {
                        s.reset(Arc::clone(&self.inputs.db));
                        s
                    }
                    None => H1ReplayServer::new(Arc::clone(&self.inputs.db)),
                };
                AnyServer::H1(s)
            }
        };
        self.servers.insert((group, slot), server);
    }

    /// Pull response bytes from a server while the TCP window has room.
    fn pump_server(&mut self, conn: ConnId, key: (usize, usize)) {
        loop {
            if !self.servers.get(&key).expect("server exists").wants_output() {
                self.net.set_hungry(conn, Dir::Down, false);
                break;
            }
            match self.net.set_hungry(conn, Dir::Down, true) {
                Some(window) => {
                    let now = self.net.now().as_micros();
                    let bytes =
                        self.servers.get_mut(&key).expect("server exists").poll_output(window, now);
                    if bytes.is_empty() {
                        // Flow-control (H2-level) blocked: wait for
                        // client window updates.
                        self.net.set_hungry(conn, Dir::Down, false);
                        break;
                    }
                    let c = self.ctx.get_mut(&conn).expect("ctx");
                    self.net.send(conn, Dir::Down, bytes.len());
                    c.down.push(bytes);
                }
                None => break, // TCP window full; SendReady will fire
            }
        }
    }

    /// Queue a batch of browser actions, return the emptied buffer to the
    /// engine (capacity reuse — see [`Browser::recycle_actions`]), and
    /// realize the queue.
    fn intake(&mut self, mut actions: Vec<BrowserAction>) {
        self.queue.extend(actions.drain(..));
        self.browser.recycle_actions(actions);
        self.drain_actions();
    }

    /// The event loop: step the simulator, dispatch each transport event
    /// into the machines, realize the actions that come back.
    fn run(mut self) -> Result<ReplayOutcome, ReplayError> {
        let cfg = self.cfg;
        let deadline = SimTime::ZERO + cfg.deadline;
        let actions = self.browser.start(self.net.now());
        self.intake(actions);

        loop {
            if self.browser.done() {
                break;
            }
            let Some((t, ev)) = self.net.step() else {
                return Err(ReplayError::Stalled { at: self.net.now() });
            };
            // Publish the shared trace clock so emission sites without a
            // time parameter (endpoint state machines) stamp with event
            // time.
            self.trace.set_now(t.as_micros());
            if t > deadline {
                return Err(ReplayError::DeadlineExceeded);
            }
            if self.net.events_processed() > cfg.watchdog_events {
                let events = self.net.events_processed();
                self.trace.emit(h2push_trace::TraceEvent::WatchdogFired { events });
                return Err(ReplayError::Watchdog { events });
            }
            match ev {
                NetEvent::Connected { conn } => {
                    let (group, slot) = (self.ctx[&conn].group, self.ctx[&conn].slot);
                    let actions = self.browser.on_connected(group, slot, t);
                    self.intake(actions);
                    self.pump_server(conn, (group, slot));
                }
                NetEvent::Delivered { conn, dir: Dir::Up, bytes } => {
                    let (group, slot) = (self.ctx[&conn].group, self.ctx[&conn].slot);
                    let chunk = self.ctx.get_mut(&conn).expect("ctx").up.pop(bytes);
                    self.servers
                        .get_mut(&(group, slot))
                        .expect("server")
                        .feed_bytes(&chunk, t.as_micros());
                    self.pump_server(conn, (group, slot));
                }
                NetEvent::Delivered { conn, dir: Dir::Down, bytes } => {
                    let (group, slot) = (self.ctx[&conn].group, self.ctx[&conn].slot);
                    let chunk = self.ctx.get_mut(&conn).expect("ctx").down.pop(bytes);
                    let actions = self.browser.on_bytes(group, slot, &chunk, t);
                    self.intake(actions);
                    // The browser may have ACKed at the H2 level (window
                    // updates) — give the server a chance to continue.
                    self.pump_server(conn, (group, slot));
                }
                NetEvent::SendReady { conn, dir: Dir::Down, .. } => {
                    let (group, slot) = (self.ctx[&conn].group, self.ctx[&conn].slot);
                    self.pump_server(conn, (group, slot));
                }
                NetEvent::SendReady { .. } => {
                    // The browser sends eagerly; it never registers hunger.
                }
                NetEvent::App { token } => {
                    let actions = self.browser.on_timer(token, t);
                    self.intake(actions);
                    // Timers can trigger new requests on any connection;
                    // make sure all servers with pending output are
                    // pulling. Pump in (group, slot) order — HashMap
                    // iteration order varies per instance and must not
                    // leak into the simulation. The sort scratch lives in
                    // the context, so steady-state timer events allocate
                    // nothing.
                    let mut pending = std::mem::take(self.pending);
                    pending.clear();
                    pending.extend(self.conn_of_slot.iter().map(|(&k, &c)| (k, c)));
                    pending.sort_unstable_by_key(|&(k, _)| k);
                    for &(key, conn) in &pending {
                        if self.servers.get(&key).map(|s| s.wants_output()).unwrap_or(false) {
                            self.pump_server(conn, key);
                        }
                    }
                    *self.pending = pending;
                }
            }
        }

        let main_group = self.inputs.page.server_group_of(ResourceId(0));
        let main_server = self.servers.get(&(main_group, 0)).and_then(|s| s.h2());
        let trace = RunTrace {
            order: main_server
                .map(|s| s.observations().iter().map(|o| o.resource).collect())
                .unwrap_or_default(),
        };
        Ok(ReplayOutcome {
            load: self.browser.result(),
            server_pushed_bytes: main_server.map(|s| s.pushed_bytes()).unwrap_or(0),
            trace,
            net: self.net.stats(),
        })
    }
}

/// Run one replay of `inputs` under `cfg` inside `ctx`, emitting into
/// `trace` (a no-op handle costs one branch per site). The context is
/// reset-and-recycled at entry; see [`ReplayCtx`].
pub(crate) fn drive_in(
    inputs: &ReplayInputs,
    cfg: &ReplayConfig,
    trace: &TraceHandle,
    ctx: &mut ReplayCtx,
) -> Result<ReplayOutcome, ReplayError> {
    ctx.begin_run(inputs, cfg, trace);
    let ReplayCtx {
        net,
        browser,
        servers,
        conn_of_slot,
        conns,
        queue,
        spare_h2,
        spare_h1,
        spare_conns,
        pending,
    } = ctx;
    SimDriver {
        inputs,
        cfg,
        trace,
        net: net.as_mut().expect("net initialised"),
        browser: browser.as_mut().expect("browser initialised"),
        servers,
        conn_of_slot,
        ctx: conns,
        queue,
        spare_h2,
        spare_h1,
        spare_conns,
        pending,
    }
    .run()
}

/// Run one replay of `inputs` under `cfg`, recycling the calling thread's
/// [`ReplayCtx`]. Re-entrant calls (a replay started from inside a replay)
/// fall back to a fresh context rather than aliasing the borrowed one.
pub(crate) fn drive(
    inputs: &ReplayInputs,
    cfg: &ReplayConfig,
    trace: &TraceHandle,
) -> Result<ReplayOutcome, ReplayError> {
    THREAD_CTX.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ctx) => drive_in(inputs, cfg, trace, &mut ctx),
        Err(_) => drive_in(inputs, cfg, trace, &mut ReplayCtx::new()),
    })
}
