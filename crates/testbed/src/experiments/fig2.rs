//! Fig. 2 — testbed validation (§4.1).
//!
//! * Fig. 2a: per-site standard error σx̄ of PLT and SpeedIndex over 31
//!   runs, testbed vs Internet. The paper finds σx̄ < 100 ms for 95 % of
//!   sites in the testbed but only 14 % in the Internet.
//! * Fig. 2b: Δ (push-as-recorded − no-push) of the median PLT and
//!   SpeedIndex per site, in the testbed; 49 % (PLT) / 35 % (SI) of sites
//!   see no benefit.

use super::{measure, parallel_map, Scale};
use crate::harness::Mode;
use h2push_strategies::{push_as_recorded, Strategy};
use h2push_webmodel::{generate_set, CorpusKind};

/// One site's variability numbers.
#[derive(Debug, Clone)]
pub struct VariabilityRow {
    /// Site name.
    pub site: String,
    /// σx̄ of PLT in the testbed.
    pub tb_plt_stderr: f64,
    /// σx̄ of SpeedIndex in the testbed.
    pub tb_si_stderr: f64,
    /// σx̄ of PLT in the Internet.
    pub inet_plt_stderr: f64,
    /// σx̄ of SpeedIndex in the Internet.
    pub inet_si_stderr: f64,
}

/// Fig. 2a data: variability per site, with and without push conditions
/// folded together as in the paper (the push configuration is used).
pub fn fig2a_variability(scale: Scale) -> Vec<VariabilityRow> {
    let sites = generate_set(CorpusKind::PushUsers, scale.sites, scale.seed);
    parallel_map(sites, |page| {
        let strategy = push_as_recorded(page);
        let tb = measure(page, &strategy, Mode::Testbed, scale.runs, scale.seed);
        let inet = measure(page, &strategy, Mode::Internet, scale.runs, scale.seed ^ 0xA5A5);
        VariabilityRow {
            site: page.name.clone(),
            tb_plt_stderr: tb.plt.std_err,
            tb_si_stderr: tb.speed_index.std_err,
            inet_plt_stderr: inet.plt.std_err,
            inet_si_stderr: inet.speed_index.std_err,
        }
    })
}

/// One site's push-vs-no-push deltas (medians, ms; Δ < 0 is better).
#[derive(Debug, Clone)]
pub struct DeltaRow {
    /// Site name.
    pub site: String,
    /// Δ median PLT.
    pub d_plt: f64,
    /// Δ median SpeedIndex.
    pub d_si: f64,
}

/// Fig. 2b data: push-as-recorded vs no-push in the testbed.
pub fn fig2b_push_vs_nopush(scale: Scale) -> Vec<DeltaRow> {
    let sites = generate_set(CorpusKind::PushUsers, scale.sites, scale.seed);
    parallel_map(sites, |page| {
        let base = measure(page, &Strategy::NoPush, Mode::Testbed, scale.runs, scale.seed);
        let push =
            measure(page, &push_as_recorded(page), Mode::Testbed, scale.runs, scale.seed ^ 0x77);
        DeltaRow {
            site: page.name.clone(),
            d_plt: push.plt.median - base.plt.median,
            d_si: push.speed_index.median - base.speed_index.median,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2push_metrics::share_below;

    #[test]
    fn testbed_removes_variability() {
        let rows = fig2a_variability(Scale { sites: 8, runs: 7, seed: 11 });
        assert_eq!(rows.len(), 8);
        let tb: Vec<f64> = rows.iter().map(|r| r.tb_plt_stderr).collect();
        let inet: Vec<f64> = rows.iter().map(|r| r.inet_plt_stderr).collect();
        // The paper's claim in miniature: testbed σx̄ below Internet σx̄
        // for the vast majority of sites.
        let lower = rows.iter().filter(|r| r.tb_plt_stderr < r.inet_plt_stderr).count() as f64
            / rows.len() as f64;
        assert!(lower >= 0.7, "testbed not calmer: {tb:?} vs {inet:?}");
        // Most testbed sites sit below 100 ms stderr.
        assert!(share_below(&tb, 100.0) >= 0.6, "testbed σ too large: {tb:?}");
    }

    #[test]
    fn push_vs_nopush_has_both_signs() {
        let rows = fig2b_push_vs_nopush(Scale { sites: 10, runs: 5, seed: 3 });
        assert_eq!(rows.len(), 10);
        let improved = rows.iter().filter(|r| r.d_si < 0.0).count();
        let hurt = rows.iter().filter(|r| r.d_si > 0.0).count();
        // The paper's point: real-world push lists help some sites and
        // hurt others.
        assert!(improved > 0, "no site improved: {rows:?}");
        assert!(hurt > 0, "no site degraded: {rows:?}");
    }
}
