//! Fig. 3 and the §4.2 "Pushable Objects" statistic.
//!
//! * Pushable objects: 52 % of top-100 and 24 % of random-100 sites have
//!   < 20 % pushable objects.
//! * Fig. 3a: Δ SpeedIndex CDF of *push all* (computed order) vs no push;
//!   only 58 % (top) / 45 % (random) of sites benefit.
//! * Fig. 3b: Δ PLT and Δ SpeedIndex for push-N, N ∈ {1, 5, 10, 15, all},
//!   on the random set: pushing less is less harmful but rarely much
//!   better.

use super::{measure, parallel_map, Scale};
use crate::harness::{compute_push_order, Mode};
use h2push_strategies::{push_all, push_first_n, Strategy};
use h2push_webmodel::{generate_set, CorpusKind, Page};

/// The §4.2 pushable-objects statistic for one corpus.
#[derive(Debug, Clone)]
pub struct PushableStats {
    /// Fraction of pushable objects per site.
    pub fractions: Vec<f64>,
    /// Share of sites with < 20 % pushable.
    pub share_below_20pct: f64,
}

/// Compute pushable-object statistics over a corpus.
pub fn pushable_stats(kind: CorpusKind, scale: Scale) -> PushableStats {
    let sites = generate_set(kind, scale.sites, scale.seed);
    let fractions: Vec<f64> = sites.iter().map(|p| p.pushable_fraction()).collect();
    let share = h2push_metrics::share_below(&fractions, 0.2);
    PushableStats { fractions, share_below_20pct: share }
}

/// One site's Fig. 3a outcome.
#[derive(Debug, Clone)]
pub struct Fig3aRow {
    /// Site name.
    pub site: String,
    /// Δ median SpeedIndex (push all − no push), ms.
    pub d_si: f64,
    /// Δ median PLT, ms.
    pub d_plt: f64,
}

/// Fig. 3a: push-all in the computed order vs no push, for `kind`.
pub fn fig3a_push_all(kind: CorpusKind, scale: Scale) -> Vec<Fig3aRow> {
    let sites = generate_set(kind, scale.sites, scale.seed);
    parallel_map(sites, |page| {
        let order = compute_push_order(page, order_runs(scale), scale.seed);
        let base = measure(page, &Strategy::NoPush, Mode::Testbed, scale.runs, scale.seed);
        let push =
            measure(page, &push_all(page, &order), Mode::Testbed, scale.runs, scale.seed ^ 0x33);
        Fig3aRow {
            site: page.name.clone(),
            d_si: push.speed_index.median - base.speed_index.median,
            d_plt: push.plt.median - base.plt.median,
        }
    })
}

/// Fig. 3b: one row per site per push limit.
#[derive(Debug, Clone)]
pub struct Fig3bRow {
    /// Site name.
    pub site: String,
    /// Push limit (`None` = push all).
    pub limit: Option<usize>,
    /// Δ median PLT (ms).
    pub d_plt: f64,
    /// Δ median SpeedIndex (ms).
    pub d_si: f64,
}

/// The paper's Fig. 3b push limits.
pub const LIMITS: [Option<usize>; 5] = [Some(1), Some(5), Some(10), Some(15), None];

/// Fig. 3b: vary the number of pushed objects on the random set.
pub fn fig3b_push_limit(scale: Scale) -> Vec<Fig3bRow> {
    let sites = generate_set(CorpusKind::Random, scale.sites, scale.seed);
    parallel_map(sites, |page| per_site_limits(page, scale)).into_iter().flatten().collect()
}

fn per_site_limits(page: &Page, scale: Scale) -> Vec<Fig3bRow> {
    let order = compute_push_order(page, order_runs(scale), scale.seed);
    let base = measure(page, &Strategy::NoPush, Mode::Testbed, scale.runs, scale.seed);
    LIMITS
        .iter()
        .map(|&limit| {
            let strategy = match limit {
                Some(n) => push_first_n(page, &order, n),
                None => push_all(page, &order),
            };
            let m = measure(page, &strategy, Mode::Testbed, scale.runs, scale.seed ^ 0x44);
            Fig3bRow {
                site: page.name.clone(),
                limit,
                d_plt: m.plt.median - base.plt.median,
                d_si: m.speed_index.median - base.speed_index.median,
            }
        })
        .collect()
}

/// Number of no-push replays used for the §4.2 order computation; scaled
/// down together with the run count.
fn order_runs(scale: Scale) -> usize {
    scale.runs.min(7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pushable_shares_match_paper() {
        let top = pushable_stats(CorpusKind::Top, Scale { sites: 120, runs: 1, seed: 5 });
        let random = pushable_stats(CorpusKind::Random, Scale { sites: 120, runs: 1, seed: 5 });
        assert!(
            (0.38..0.66).contains(&top.share_below_20pct),
            "top-100 share {}",
            top.share_below_20pct
        );
        assert!(
            (0.12..0.38).contains(&random.share_below_20pct),
            "random-100 share {}",
            random.share_below_20pct
        );
        assert!(top.share_below_20pct > random.share_below_20pct);
    }

    #[test]
    fn fig3a_shows_mixed_outcomes() {
        let rows = fig3a_push_all(CorpusKind::Random, Scale { sites: 8, runs: 3, seed: 2 });
        assert_eq!(rows.len(), 8);
        // The headline: push-all is NOT a universal win.
        let hurt = rows.iter().filter(|r| r.d_si > 0.0).count();
        assert!(hurt > 0, "push-all should hurt someone: {rows:?}");
    }

    #[test]
    fn fig3b_produces_all_limits() {
        let rows = fig3b_push_limit(Scale { sites: 3, runs: 3, seed: 4 });
        assert_eq!(rows.len(), 3 * LIMITS.len());
        for &limit in &LIMITS {
            assert_eq!(rows.iter().filter(|r| r.limit == limit).count(), 3);
        }
    }
}
