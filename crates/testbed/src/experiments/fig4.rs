//! Fig. 4 — custom strategies on the synthetic single-server sites s1–s10
//! (§4.3): push-all and a hand-crafted critical strategy, both normalized
//! to no push, with 95 % confidence intervals. The paper sees push-all
//! reduce PLT (everything is on one server) but rarely improve SpeedIndex,
//! and the custom strategy matching push-all while pushing far fewer
//! bytes.

use super::{measure, parallel_map, Scale, SiteMetrics};
use crate::harness::Mode;
use h2push_metrics::relative_change_pct;
use h2push_strategies::{push_all, Strategy};
use h2push_webmodel::{custom_strategy, synthetic_set};

/// One synthetic site's Fig. 4 numbers.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Site name (s1..s10).
    pub site: String,
    /// No-push baseline.
    pub base: SiteMetrics,
    /// Push-all measurement.
    pub push_all: SiteMetrics,
    /// Custom-strategy measurement.
    pub custom: SiteMetrics,
    /// Mean relative change of SpeedIndex, push-all vs no-push (%).
    pub push_all_si_pct: f64,
    /// Mean relative change of SpeedIndex, custom vs no-push (%).
    pub custom_si_pct: f64,
    /// Mean relative change of PLT, push-all vs no-push (%).
    pub push_all_plt_pct: f64,
    /// Mean relative change of PLT, custom vs no-push (%).
    pub custom_plt_pct: f64,
    /// Bytes pushed by push-all / by the custom strategy.
    pub push_all_bytes: f64,
    /// Bytes pushed by the custom strategy.
    pub custom_bytes: f64,
}

/// Run the Fig. 4 experiment.
pub fn fig4_custom(scale: Scale) -> Vec<Fig4Row> {
    let sites = synthetic_set();
    parallel_map(sites, |page| {
        let base = measure(page, &Strategy::NoPush, Mode::Testbed, scale.runs, scale.seed);
        let pa = measure(page, &push_all(page, &[]), Mode::Testbed, scale.runs, scale.seed ^ 1);
        let custom = Strategy::PushList { order: custom_strategy(page) };
        let cu = measure(page, &custom, Mode::Testbed, scale.runs, scale.seed ^ 2);
        Fig4Row {
            site: page.name.clone(),
            push_all_si_pct: relative_change_pct(pa.speed_index.mean, base.speed_index.mean),
            custom_si_pct: relative_change_pct(cu.speed_index.mean, base.speed_index.mean),
            push_all_plt_pct: relative_change_pct(pa.plt.mean, base.plt.mean),
            custom_plt_pct: relative_change_pct(cu.plt.mean, base.plt.mean),
            push_all_bytes: pa.pushed_bytes,
            custom_bytes: cu.pushed_bytes,
            base,
            push_all: pa,
            custom: cu,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_ten_sites_and_custom_pushes_less() {
        let rows = fig4_custom(Scale { sites: 10, runs: 3, seed: 6 });
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!(r.custom_bytes <= r.push_all_bytes, "{}: custom must push less", r.site);
            assert!(r.base.plt.median > 0.0);
        }
        // s1: the paper pushes ~309 KB custom vs ~1057 KB push-all.
        let s1 = rows.iter().find(|r| r.site.starts_with("s1-")).unwrap();
        assert!(s1.custom_bytes < s1.push_all_bytes / 2.0);
    }

    #[test]
    fn push_all_is_benign_on_single_server_sites() {
        // §4.3's conclusions for s1–s10: push-all can reduce PLT, "we do
        // not observe significant detrimental effects", and the custom
        // strategy performs like push-all while pushing fewer bytes.
        let rows = fig4_custom(Scale { sites: 10, runs: 3, seed: 9 });
        let improved = rows.iter().filter(|r| r.push_all_plt_pct < -1.0).count();
        assert!(improved >= 2, "push-all PLT never helps: {improved}/10");
        for r in &rows {
            assert!(
                r.push_all_plt_pct < 8.0,
                "{}: significant PLT detriment {}%",
                r.site,
                r.push_all_plt_pct
            );
            // Custom tracks push-all within a modest band on SpeedIndex.
            assert!(
                (r.custom_si_pct - r.push_all_si_pct).abs() < 25.0,
                "{}: custom {}% vs push-all {}%",
                r.site,
                r.custom_si_pct,
                r.push_all_si_pct
            );
        }
    }
}
