//! Fig. 5b — the Interleaving Push motivating example (§5).
//!
//! A test page references one CSS in `<head>`; the body is padded from
//! 10 KB to 90 KB. Chromium prioritizes the HTML above the CSS, so under
//! both *no push* and *plain push* (child of the parent stream) the server
//! ships the entire document before the stylesheet: SpeedIndex grows with
//! the document size. *Interleaving* hard-switches to the CSS after a
//! fixed offset, yielding a near-constant SpeedIndex.

use super::{measure, Scale, SiteMetrics};
use crate::harness::Mode;
use h2push_strategies::Strategy;
use h2push_webmodel::{Page, PageBuilder, ResourceId, ResourceSpec};

/// The strategies compared in Fig. 5b.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fig5Strategy {
    /// The browser requests the CSS (baseline).
    NoPush,
    /// The CSS is pushed, default scheduler.
    Push,
    /// Interleaving: hard switch to the CSS after 4 KB of HTML.
    Interleaving,
}

impl Fig5Strategy {
    /// All three, in the figure's legend order.
    pub const ALL: [Fig5Strategy; 3] =
        [Fig5Strategy::NoPush, Fig5Strategy::Push, Fig5Strategy::Interleaving];

    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            Fig5Strategy::NoPush => "no push",
            Fig5Strategy::Push => "push",
            Fig5Strategy::Interleaving => "interleaving",
        }
    }
}

/// The Fig. 5b test page: `html_size` bytes of document with one CSS
/// referenced in the head.
pub fn fig5_page(html_size: usize) -> Page {
    let mut b =
        PageBuilder::new(&format!("fig5-{}k", html_size / 1024), "fig5.test", html_size, 2_048);
    b.resource(ResourceSpec::css(0, 24_576, 256, 1.0));
    // The viewport content sits at the top of the body; the varying
    // padding below it is below the fold (the paper "varies the size of
    // the <body> by adding text" — SpeedIndex only sees the top).
    b.text_paint(3_000, 2.0);
    b.text_paint(8_000, 1.0);
    b.build()
}

/// One measured point of Fig. 5b.
#[derive(Debug, Clone)]
pub struct Fig5Point {
    /// Document size in bytes.
    pub html_size: usize,
    /// Strategy.
    pub strategy: Fig5Strategy,
    /// SpeedIndex summary over the runs.
    pub metrics: SiteMetrics,
}

/// The paper's x-axis: 10 KB … 90 KB.
pub fn fig5_sizes() -> Vec<usize> {
    (1..=9).map(|k| k * 10 * 1024).collect()
}

/// Run the Fig. 5b sweep.
pub fn fig5b_interleaving(scale: Scale) -> Vec<Fig5Point> {
    let mut out = Vec::new();
    for size in fig5_sizes() {
        let page = fig5_page(size);
        let css = ResourceId(1);
        for s in Fig5Strategy::ALL {
            let strategy = match s {
                Fig5Strategy::NoPush => Strategy::NoPush,
                Fig5Strategy::Push => Strategy::PushList { order: vec![css] },
                Fig5Strategy::Interleaving => {
                    Strategy::Interleaved { offset: 4_096, critical: vec![css], after: Vec::new() }
                }
            };
            let metrics = measure(&page, &strategy, Mode::Testbed, scale.runs, scale.seed);
            out.push(Fig5Point { html_size: size, strategy: s, metrics });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn si(points: &[Fig5Point], s: Fig5Strategy, size: usize) -> f64 {
        points
            .iter()
            .find(|p| p.strategy == s && p.html_size == size)
            .unwrap()
            .metrics
            .speed_index
            .mean
    }

    #[test]
    fn interleaving_is_flat_while_others_grow() {
        let points = fig5b_interleaving(Scale { sites: 0, runs: 3, seed: 1 });
        assert_eq!(points.len(), 9 * 3);
        let small = 10 * 1024;
        let large = 90 * 1024;
        // no push and plain push grow substantially with document size.
        for s in [Fig5Strategy::NoPush, Fig5Strategy::Push] {
            let growth = si(&points, s, large) - si(&points, s, small);
            assert!(growth > 15.0, "{}: expected growth, got {growth}", s.label());
        }
        // Interleaving stays nearly constant.
        let il_growth = si(&points, Fig5Strategy::Interleaving, large)
            - si(&points, Fig5Strategy::Interleaving, small);
        let np_growth =
            si(&points, Fig5Strategy::NoPush, large) - si(&points, Fig5Strategy::NoPush, small);
        assert!(
            il_growth < np_growth / 2.0,
            "interleaving grew {il_growth} vs no-push {np_growth}"
        );
        // And interleaving beats no push on the largest document.
        assert!(
            si(&points, Fig5Strategy::Interleaving, large)
                < si(&points, Fig5Strategy::NoPush, large)
        );
    }

    #[test]
    fn push_matches_no_push_without_parent_blocking() {
        // Fig. 5b: "no push and push perform similar, as the parent does
        // not block".
        let points = fig5b_interleaving(Scale { sites: 0, runs: 3, seed: 2 });
        for size in [30 * 1024, 70 * 1024] {
            let np = si(&points, Fig5Strategy::NoPush, size);
            let pu = si(&points, Fig5Strategy::Push, size);
            let rel = (np - pu).abs() / np.max(1.0);
            assert!(rel < 0.15, "push vs no-push at {size}: {pu} vs {np}");
        }
    }
}
