//! Fig. 6 — the six §5 strategies on the Table-1 real-world sites w1–w20.
//!
//! The paper reports average relative SpeedIndex changes against the
//! no-push baseline with 99.5 % confidence intervals: five sites improve
//! by ≥ 20 % under *push critical optimized* (w1 wikipedia by ~69 %),
//! while sites dominated by blocking head scripts (w7/w8), inline JS
//! (w10) or third-party sprawl (w17) see little or negative change.

use super::{measure, parallel_map, Scale, SiteMetrics};
use crate::harness::Mode;
use h2push_metrics::relative_change_pct;
use h2push_strategies::{paper_strategy, PaperStrategy};
use h2push_webmodel::realworld_set;

/// Result of one (site, strategy) cell.
#[derive(Debug, Clone)]
pub struct Fig6Cell {
    /// Strategy.
    pub strategy: PaperStrategy,
    /// Measurements.
    pub metrics: SiteMetrics,
    /// Mean relative SpeedIndex change vs the no-push baseline (%).
    pub si_pct: f64,
    /// Mean relative PLT change vs the no-push baseline (%).
    pub plt_pct: f64,
    /// Bytes pushed (protocol level).
    pub pushed_bytes: f64,
}

/// One site's row across all six strategies.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Site name (`wN-label`).
    pub site: String,
    /// The six cells in [`PaperStrategy::ALL`] order.
    pub cells: Vec<Fig6Cell>,
}

impl Fig6Row {
    /// The cell of a given strategy.
    pub fn cell(&self, s: PaperStrategy) -> &Fig6Cell {
        self.cells.iter().find(|c| c.strategy == s).expect("all strategies present")
    }
}

/// Run the Fig. 6 experiment over all twenty sites.
pub fn fig6_realworld(scale: Scale) -> Vec<Fig6Row> {
    let sites = realworld_set();
    parallel_map(sites, |page| {
        let mut base: Option<SiteMetrics> = None;
        let mut cells = Vec::new();
        for which in PaperStrategy::ALL {
            let (variant, strategy) = paper_strategy(page, which);
            let m = measure(&variant, &strategy, Mode::Testbed, scale.runs, scale.seed);
            if which == PaperStrategy::NoPush {
                base = Some(m.clone());
            }
            let b = base.as_ref().expect("NoPush runs first");
            cells.push(Fig6Cell {
                strategy: which,
                si_pct: relative_change_pct(m.speed_index.mean, b.speed_index.mean),
                plt_pct: relative_change_pct(m.plt.mean, b.plt.mean),
                pushed_bytes: m.pushed_bytes,
                metrics: m,
            });
        }
        Fig6Row { site: page.name.clone(), cells }
    })
}

/// The paper's Fig. 6a winner criterion: ≥ 20 % SpeedIndex improvement
/// under push critical optimized.
pub fn winners(rows: &[Fig6Row]) -> Vec<&Fig6Row> {
    rows.iter().filter(|r| r.cell(PaperStrategy::PushCriticalOptimized).si_pct <= -20.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_runs_and_w1_wins_big() {
        let rows = fig6_realworld(Scale { sites: 20, runs: 3, seed: 10 });
        assert_eq!(rows.len(), 20);
        for r in &rows {
            assert_eq!(r.cells.len(), 6);
            assert_eq!(r.cell(PaperStrategy::NoPush).si_pct, 0.0);
        }
        // The flagship result: wikipedia improves massively under
        // push-critical-optimized, and the push budget shrinks vs push-all.
        let w1 = rows.iter().find(|r| r.site.starts_with("w1-")).unwrap();
        let crit = w1.cell(PaperStrategy::PushCriticalOptimized);
        assert!(crit.si_pct < -30.0, "w1 improvement was {}%", crit.si_pct);
        let all = w1.cell(PaperStrategy::PushAllOptimized);
        assert!(crit.pushed_bytes < all.pushed_bytes / 3.0);
        // And some sites do not benefit (the paper's Fig. 6b side): the
        // JS-dominated (w7/w8), inline-heavy (w10) and already-optimized
        // pages keep their gains small.
        let non_winners = rows
            .iter()
            .filter(|r| r.cell(PaperStrategy::PushCriticalOptimized).si_pct > -16.0)
            .count();
        assert!(non_winners >= 5, "only {non_winners} non-winners — too rosy");
        let w10 = rows.iter().find(|r| r.site.starts_with("w10-")).unwrap();
        assert!(
            w10.cell(PaperStrategy::PushCriticalOptimized).si_pct > -10.0,
            "walmart's inlined JS should defeat interleaving"
        );
        // The winner list is a minority, as in Fig. 6a.
        let n_win = winners(&rows).len();
        assert!((2..=12).contains(&n_win), "{n_win} winners of 20");
    }
}
