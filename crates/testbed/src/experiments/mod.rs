//! Experiment drivers: one function per table/figure of the paper.
//!
//! Each driver returns plain data that the `h2push-bench` binaries print;
//! integration tests run them at reduced scale. See `DESIGN.md` §3 for the
//! experiment index.

pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod types_study;

use crate::harness::Mode;
use crate::plan::RunPlan;
use crate::replay::ReplayOutcome;
use h2push_metrics::RunStats;
use h2push_strategies::Strategy;
use h2push_webmodel::Page;

/// How big to run an experiment (the paper: 100 sites × 31 runs).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Number of sites per corpus.
    pub sites: usize,
    /// Repetitions per configuration.
    pub runs: usize,
    /// Base seed.
    pub seed: u64,
}

impl Scale {
    /// The paper's full scale.
    pub fn paper() -> Self {
        Scale { sites: 100, runs: 31, seed: 42 }
    }

    /// A reduced scale for quick runs and integration tests.
    pub fn quick() -> Self {
        Scale { sites: 12, runs: 5, seed: 42 }
    }
}

/// Per-configuration summary of a site: median PLT and SpeedIndex over the
/// repetitions, plus dispersion (for Fig. 2a) and push accounting.
#[derive(Debug, Clone)]
pub struct SiteMetrics {
    /// Site name.
    pub site: String,
    /// Summary of PLT (ms) over runs.
    pub plt: RunStats,
    /// Summary of SpeedIndex (ms) over runs.
    pub speed_index: RunStats,
    /// Mean bytes pushed per run.
    pub pushed_bytes: f64,
    /// Runs that completed.
    pub completed: usize,
}

/// Run `page` × `strategy` × `mode` `runs` times and summarize.
pub fn measure(
    page: &Page,
    strategy: &Strategy,
    mode: Mode,
    runs: usize,
    seed: u64,
) -> SiteMetrics {
    let outcomes = RunPlan::new(page)
        .strategy(strategy.clone())
        .mode(mode)
        .reps(runs)
        .seed(seed)
        .run()
        .into_outcomes();
    summarize(&page.name, &outcomes)
}

/// Summarize a set of outcomes of the same configuration.
pub fn summarize(site: &str, outcomes: &[ReplayOutcome]) -> SiteMetrics {
    let plts: Vec<f64> = outcomes.iter().map(|o| o.load.plt()).collect();
    let sis: Vec<f64> = outcomes.iter().map(|o| o.load.speed_index()).collect();
    let pushed: f64 = outcomes.iter().map(|o| o.server_pushed_bytes as f64).sum::<f64>()
        / outcomes.len().max(1) as f64;
    assert!(!plts.is_empty(), "site {site}: all runs failed");
    SiteMetrics {
        site: site.to_string(),
        plt: RunStats::of(&plts),
        speed_index: RunStats::of(&sis),
        pushed_bytes: pushed,
        completed: outcomes.len(),
    }
}

/// Map `f` over `items` on all available cores (replays are independent).
///
/// Built on the global worker-token pool: results land in per-worker
/// buffers and are merged in index order, with no lock around the output,
/// and a `RunPlan::run` nested inside `f` shares the same core budget instead
/// of oversubscribing.
pub fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send + Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    crate::pool::parallel_indexed(items.len(), |i| f(&items[i]))
}
