//! §4.2.1 object-type study.
//!
//! Pushing only specific types on the random-100 set: CSS or JS cut both
//! ways; pushing images worsens SpeedIndex for ~74 % of sites (they feed
//! neither DOM nor CSSOM); even the per-site *best type* improves only
//! 24 % (SpeedIndex) / 20 % (PLT) of sites. Type combinations behave
//! similarly.

use super::{measure, parallel_map, Scale};
use crate::harness::{compute_push_order, Mode};
use h2push_strategies::{push_by_type, Strategy};
use h2push_webmodel::{generate_set, CorpusKind, ResourceType};

/// The type selections the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeSelection {
    /// Push only stylesheets.
    Css,
    /// Push only scripts.
    Js,
    /// Push only images.
    Images,
    /// CSS + JS.
    CssJs,
    /// CSS + images.
    CssImages,
}

impl TypeSelection {
    /// All selections in report order.
    pub const ALL: [TypeSelection; 5] = [
        TypeSelection::Css,
        TypeSelection::Js,
        TypeSelection::Images,
        TypeSelection::CssJs,
        TypeSelection::CssImages,
    ];

    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            TypeSelection::Css => "css",
            TypeSelection::Js => "js",
            TypeSelection::Images => "images",
            TypeSelection::CssJs => "css+js",
            TypeSelection::CssImages => "css+images",
        }
    }

    /// The resource types included.
    pub fn types(self) -> &'static [ResourceType] {
        match self {
            TypeSelection::Css => &[ResourceType::Css],
            TypeSelection::Js => &[ResourceType::Js],
            TypeSelection::Images => &[ResourceType::Image],
            TypeSelection::CssJs => &[ResourceType::Css, ResourceType::Js],
            TypeSelection::CssImages => &[ResourceType::Css, ResourceType::Image],
        }
    }
}

/// Per-site deltas for every type selection.
#[derive(Debug, Clone)]
pub struct TypeRow {
    /// Site name.
    pub site: String,
    /// (selection, Δ median SI, Δ median PLT).
    pub deltas: Vec<(TypeSelection, f64, f64)>,
}

/// Aggregate outcome of the study.
#[derive(Debug, Clone)]
pub struct TypeStudy {
    /// Per-site rows.
    pub rows: Vec<TypeRow>,
    /// Share of sites whose SpeedIndex worsens when pushing images.
    pub images_worse_share: f64,
    /// Share of sites improving (SI) under their per-site best type.
    pub best_type_improves_si: f64,
    /// Share of sites improving (PLT) under their per-site best type.
    pub best_type_improves_plt: f64,
}

/// Run the §4.2.1 type study on the random corpus.
pub fn type_study(scale: Scale) -> TypeStudy {
    let sites = generate_set(CorpusKind::Random, scale.sites, scale.seed);
    let rows: Vec<TypeRow> = parallel_map(sites, |page| {
        let order = compute_push_order(page, scale.runs.min(7), scale.seed);
        let base = measure(page, &Strategy::NoPush, Mode::Testbed, scale.runs, scale.seed);
        let deltas = TypeSelection::ALL
            .iter()
            .map(|&sel| {
                let s = push_by_type(page, &order, sel.types());
                let m = measure(page, &s, Mode::Testbed, scale.runs, scale.seed ^ 0x99);
                (
                    sel,
                    m.speed_index.median - base.speed_index.median,
                    m.plt.median - base.plt.median,
                )
            })
            .collect();
        TypeRow { site: page.name.clone(), deltas }
    });

    let img_worse = rows
        .iter()
        .filter(|r| {
            r.deltas
                .iter()
                .find(|(s, _, _)| *s == TypeSelection::Images)
                .map(|&(_, dsi, _)| dsi > 0.0)
                .unwrap_or(false)
        })
        .count() as f64
        / rows.len().max(1) as f64;

    // Per-site best single type (by SI), then ask whether it *meaningfully*
    // improves (the paper counts improvements, i.e. Δ < 0 beyond noise; we
    // use a 5 ms guard band).
    let singles = [TypeSelection::Css, TypeSelection::Js, TypeSelection::Images];
    let best_improves = |metric: fn(&(TypeSelection, f64, f64)) -> f64| {
        rows.iter()
            .filter(|r| {
                r.deltas
                    .iter()
                    .filter(|d| singles.contains(&d.0))
                    .map(metric)
                    .fold(f64::INFINITY, f64::min)
                    < -5.0
            })
            .count() as f64
            / rows.len().max(1) as f64
    };
    TypeStudy {
        images_worse_share: img_worse,
        best_type_improves_si: best_improves(|d| d.1),
        best_type_improves_plt: best_improves(|d| d.2),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_reports_all_selections() {
        let s = type_study(Scale { sites: 6, runs: 3, seed: 8 });
        assert_eq!(s.rows.len(), 6);
        for r in &s.rows {
            assert_eq!(r.deltas.len(), TypeSelection::ALL.len());
        }
        assert!((0.0..=1.0).contains(&s.images_worse_share));
        assert!((0.0..=1.0).contains(&s.best_type_improves_si));
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<_> = TypeSelection::ALL.iter().map(|s| s.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }
}
