//! The repetition harness: 31 runs per configuration, testbed vs internet
//! conditions (§4.1).
//!
//! * **Testbed mode** keeps the network deterministic; the only per-run
//!   variation is the seeded micro-jitter of packet timing and a small
//!   client-side CPU factor — exactly the residual variability the paper's
//!   controlled testbed still exhibits (Fig. 2a: σx̄ < 50 ms for 85 % of
//!   sites).
//! * **Internet mode** additionally varies RTT, bandwidth, per-origin
//!   distance and server think time per run, and adds a little loss —
//!   recreating the wild-measurement variance the testbed removes.

use crate::replay::{replay, ReplayConfig, ReplayError, ReplayOutcome};
use h2push_netsim::SimDuration;
use h2push_strategies::{majority_order, RunTrace, Strategy};
use h2push_webmodel::{Page, ResourceId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Where the measurement runs: the controlled testbed or "the Internet".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Deterministic replay (the paper's contribution).
    Testbed,
    /// Stochastic conditions approximating live measurements.
    Internet,
}

/// The paper repeats every configuration 31 times.
pub const PAPER_RUNS: usize = 31;

/// Build the per-run replay configuration for `(mode, run_seed)`.
pub fn run_config(strategy: Strategy, mode: Mode, run_seed: u64, page: &Page) -> ReplayConfig {
    let mut cfg = ReplayConfig::testbed(strategy);
    let mut rng = StdRng::seed_from_u64(run_seed);
    cfg.network.seed = run_seed;
    match mode {
        Mode::Testbed => {
            // Client-side processing is the only real variance left.
            cfg.browser.cpu_scale = rng.gen_range(0.97..1.03);
        }
        Mode::Internet => {
            // RTT varies run to run (routing, queueing); bandwidth too.
            let rtt_factor: f64 = rng.gen_range(0.8..2.2);
            let bw_factor: f64 = rng.gen_range(0.55..1.25);
            let scale_delay = |d: SimDuration| {
                SimDuration::from_micros((d.as_micros() as f64 * rtt_factor) as u64)
            };
            cfg.network.client_down.delay = scale_delay(cfg.network.client_down.delay);
            cfg.network.client_up.delay = scale_delay(cfg.network.client_up.delay);
            cfg.network.client_down.rate_bps = cfg
                .network
                .client_down
                .rate_bps
                .map(|r| (r as f64 * bw_factor) as u64);
            cfg.network.loss = rng.gen_range(0.0..0.004);
            // Third parties are scattered across the planet.
            for g in 0..page.server_group_count() {
                if g != page.server_group_of(ResourceId(0)) {
                    cfg.server_extra_delay
                        .insert(g, SimDuration::from_micros(rng.gen_range(0..90_000)));
                }
            }
            cfg.server_think = SimDuration::from_micros(rng.gen_range(0..15_000));
            cfg.browser.cpu_scale = rng.gen_range(0.9..1.25);
        }
    }
    cfg
}

/// Replay `page` `runs` times under `strategy`; failed runs are dropped
/// (and must be rare — callers may assert on the count).
pub fn run_many(
    page: &Page,
    strategy: Strategy,
    mode: Mode,
    runs: usize,
    seed: u64,
) -> Vec<ReplayOutcome> {
    (0..runs)
        .filter_map(|r| {
            let cfg = run_config(strategy.clone(), mode, seed.wrapping_add(r as u64), page);
            replay(page, &cfg).ok()
        })
        .collect()
}

/// Replay once in deterministic testbed conditions (seed 0).
pub fn run_once(page: &Page, strategy: Strategy) -> Result<ReplayOutcome, ReplayError> {
    replay(page, &ReplayConfig::testbed(strategy))
}

/// §4.2 "Computing the Push Order": replay without push `runs` times,
/// trace the requests the main server sees, majority-vote the order.
/// Returns only pushable resources (the order is computed on the initial
/// connection to the origin server, so everything in it is pushable).
pub fn compute_push_order(page: &Page, runs: usize, seed: u64) -> Vec<ResourceId> {
    let outcomes = run_many(page, Strategy::NoPush, Mode::Testbed, runs, seed);
    let traces: Vec<RunTrace> = outcomes.into_iter().map(|o| o.trace).collect();
    majority_order(&traces)
        .into_iter()
        .filter(|&id| id != ResourceId(0))
        .collect()
}
