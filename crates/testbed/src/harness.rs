//! The repetition harness: 31 runs per configuration, testbed vs internet
//! conditions (§4.1).
//!
//! * **Testbed mode** keeps the network deterministic; the only per-run
//!   variation is the seeded micro-jitter of packet timing and a small
//!   client-side CPU factor — exactly the residual variability the paper's
//!   controlled testbed still exhibits (Fig. 2a: σx̄ < 50 ms for 85 % of
//!   sites).
//! * **Internet mode** additionally varies RTT, bandwidth, per-origin
//!   distance and server think time per run, and adds a little loss —
//!   recreating the wild-measurement variance the testbed removes.

use crate::plan::RunPlan;
use crate::replay::ReplayConfig;
#[cfg(test)]
use crate::replay::{ReplayInputs, ReplayOutcome};
use h2push_netsim::SimDuration;
use h2push_strategies::{majority_order, RunTrace, Strategy};
use h2push_webmodel::{Page, ResourceId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Where the measurement runs: the controlled testbed or "the Internet".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Deterministic replay (the paper's contribution).
    Testbed,
    /// Stochastic conditions approximating live measurements.
    Internet,
}

/// The paper repeats every configuration 31 times.
pub const PAPER_RUNS: usize = 31;

/// Build the per-run replay configuration for `(mode, run_seed)`.
/// The strategy is shared by reference count — deriving a config never
/// deep-clones the order vectors, however many reps a plan fans out.
pub fn run_config(
    strategy: &Arc<Strategy>,
    mode: Mode,
    run_seed: u64,
    page: &Page,
) -> ReplayConfig {
    let mut cfg = ReplayConfig::testbed(Arc::clone(strategy));
    let mut rng = StdRng::seed_from_u64(run_seed);
    cfg.network.seed = run_seed;
    match mode {
        Mode::Testbed => {
            // Client-side processing is the only real variance left.
            cfg.browser.cpu_scale = rng.gen_range(0.97..1.03);
        }
        Mode::Internet => {
            // RTT varies run to run (routing, queueing); bandwidth too.
            let rtt_factor: f64 = rng.gen_range(0.8..2.2);
            let bw_factor: f64 = rng.gen_range(0.55..1.25);
            let scale_delay = |d: SimDuration| {
                SimDuration::from_micros((d.as_micros() as f64 * rtt_factor) as u64)
            };
            cfg.network.client_down.delay = scale_delay(cfg.network.client_down.delay);
            cfg.network.client_up.delay = scale_delay(cfg.network.client_up.delay);
            cfg.network.client_down.rate_bps =
                cfg.network.client_down.rate_bps.map(|r| (r as f64 * bw_factor) as u64);
            cfg.network.loss = rng.gen_range(0.0..0.004);
            // Third parties are scattered across the planet.
            for g in 0..page.server_group_count() {
                if g != page.server_group_of(ResourceId(0)) {
                    cfg.server_extra_delay
                        .insert(g, SimDuration::from_micros(rng.gen_range(0..90_000)));
                }
            }
            cfg.server_think = SimDuration::from_micros(rng.gen_range(0..15_000));
            cfg.browser.cpu_scale = rng.gen_range(0.9..1.25);
        }
    }
    cfg
}

/// §4.2 "Computing the Push Order": replay without push `runs` times,
/// trace the requests the main server sees, majority-vote the order.
/// Returns only pushable resources (the order is computed on the initial
/// connection to the origin server, so everything in it is pushable).
pub fn compute_push_order(page: &Page, runs: usize, seed: u64) -> Vec<ResourceId> {
    let outcomes = RunPlan::new(page).reps(runs).seed(seed).run().into_outcomes();
    let traces: Vec<RunTrace> = outcomes.into_iter().map(|o| o.trace).collect();
    majority_order(&traces).into_iter().filter(|&id| id != ResourceId(0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2push_webmodel::{PageBuilder, ResourceSpec};

    fn runs(
        inputs: &ReplayInputs,
        strategy: &Strategy,
        mode: Mode,
        reps: usize,
        seed: u64,
        serial: bool,
    ) -> Vec<ReplayOutcome> {
        let plan = RunPlan::new(inputs).strategy(strategy.clone()).mode(mode).reps(reps).seed(seed);
        let plan = if serial { plan.serial() } else { plan };
        plan.run().into_outcomes()
    }

    fn page() -> Page {
        let mut b = PageBuilder::new("harness-par", "hp.test", 45_000, 4_000);
        let third = b.origin("cdn.other.net", 1, false);
        b.resource(ResourceSpec::css(0, 15_000, 300, 0.4));
        b.resource(ResourceSpec::js(0, 20_000, 1_000, 12_000));
        b.resource(ResourceSpec::image(0, 25_000, 9_000, true, 1.5));
        b.resource(ResourceSpec::js_async(third, 8_000, 25_000, 4_000));
        b.text_paint(8_000, 1.0);
        b.build()
    }

    fn assert_identical(par: &[ReplayOutcome], ser: &[ReplayOutcome]) {
        assert_eq!(par.len(), ser.len());
        for (p, s) in par.iter().zip(ser) {
            assert_eq!(p.load.plt(), s.load.plt());
            assert_eq!(p.load.speed_index(), s.load.speed_index());
            assert_eq!(p.trace.order, s.trace.order);
            assert_eq!(p.server_pushed_bytes, s.server_pushed_bytes);
        }
    }

    #[test]
    fn parallel_matches_serial_in_testbed_mode() {
        let inputs = ReplayInputs::from(page());
        let strategy = Strategy::NoPush;
        let par = runs(&inputs, &strategy, Mode::Testbed, 9, 42, false);
        let ser = runs(&inputs, &strategy, Mode::Testbed, 9, 42, true);
        assert_identical(&par, &ser);
    }

    #[test]
    fn parallel_matches_serial_in_internet_mode() {
        let inputs = ReplayInputs::from(page());
        let strategy = Strategy::PushList { order: vec![ResourceId(1), ResourceId(2)] };
        let par = runs(&inputs, &strategy, Mode::Internet, 9, 7, false);
        let ser = runs(&inputs, &strategy, Mode::Internet, 9, 7, true);
        assert_identical(&par, &ser);
    }

    #[test]
    fn plan_from_page_equals_shared_inputs_path() {
        let p = page();
        let via_page =
            RunPlan::new(&p).strategy(Strategy::NoPush).reps(3).seed(0).run().into_outcomes();
        let inputs = ReplayInputs::from(p);
        let via_inputs = runs(&inputs, &Strategy::NoPush, Mode::Testbed, 3, 0, false);
        assert_identical(&via_page, &via_inputs);
    }
}
