//! # h2push-testbed — the record-and-replay testbed (§4.1)
//!
//! The paper's central methodological contribution, rebuilt on simulation:
//! replay any recorded website deterministically, with its original
//! multi-server deployment, under any Server-Push strategy, over an
//! emulated DSL access link — then repeat 31× and compare PLT/SpeedIndex
//! distributions between strategies and against stochastic "Internet"
//! conditions.

pub mod adoption;
pub mod badpeer;
pub mod chaos;
pub mod checkpoint;
pub(crate) mod driver;
pub mod experiments;
pub mod harness;
#[cfg(unix)]
pub mod live;
pub mod plan;
pub mod pool;
pub mod prepared;
pub mod replay;
pub mod sweep;
pub mod waterfall;

pub use badpeer::{
    attack_client, attack_client_in, attack_page, attack_server, attack_server_in, benign_request,
    run_attack, run_attack_in, run_suite, run_suite_in, AttackCtx, AttackKind, AttackOutcome,
    AttackScript, Victim,
};
pub use chaos::{
    apply_profile, default_matrix, observe, run_fault_matrix, strategy_label, ChaosCell,
    FaultProfile,
};
pub use checkpoint::{GridIdentity, JournalScan, ResumeError, SweepJournal};
pub use driver::ReplayCtx;
pub use harness::{compute_push_order, run_config, Mode, PAPER_RUNS};
#[cfg(unix)]
pub use live::{
    load_page, CloseCounts, CloseReason, ConnClose, LiveLimits, LiveLoadReport, LiveServer,
    LiveServerHandle, LiveServerStats, TimeoutKind,
};
pub use plan::{RunOutput, RunPlan, RunReport, TraceSpec};
pub use pool::{parallel_indexed, set_worker_threads, worker_threads};
pub use prepared::PreparedPage;
pub use replay::{
    replay, replay_in, replay_shared, Protocol, ReplayConfig, ReplayError, ReplayInputs,
    ReplayOutcome,
};
pub use sweep::{
    CellFailure, CellStats, FailureKind, PopulationStats, RecoveredRep, RetryClass, SweepCell,
    SweepPlan, SweepReport,
};
pub use waterfall::write_waterfall;
