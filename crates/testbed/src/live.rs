//! Live TCP serving mode: the sans-IO machines on real sockets.
//!
//! The paper's testbed serves real browsers over real TCP; this module is
//! our equivalent of that half of the methodology. It hosts exactly the
//! same state machines the simulator drives — [`ReplayServer`] behind
//! [`h2push_h2proto::sansio::Endpoint`], the `h2push-browser` action
//! machine as the load client — on a small readiness runtime built
//! directly on `poll(2)` and non-blocking `std::net` sockets (the
//! container has no mio; the FFI below is the whole "event library").
//!
//! Layering mirrors [`crate::driver`]: the runtime owns sockets, buffers
//! and the clock; the machines own every protocol decision. Time is
//! injected as microseconds since the runtime's start instant, so the
//! machines cannot tell the difference between the wall clock and
//! sim-time — which is the point: a strategy measured in the simulator
//! can be served to a real client byte-for-byte.
//!
//! * [`LiveServer`] — binds a listener and answers every accepted
//!   connection from a page's [`RecordDb`] with the configured push
//!   strategy (push fires on whichever connection requests the base
//!   document, exactly as in the sim).
//! * [`load_page`] — the loopback load client: drives a real [`Browser`]
//!   over TCP connections to one address and returns its [`LoadResult`].
//!
//! # Supervision
//!
//! Real networks contain peers the simulator never models: clients that
//! connect and say nothing, that stop reading mid-response, that flood or
//! reset or vanish. Every accepted connection therefore lives under a
//! supervisor ([`LiveLimits`]) with a typed lifecycle:
//!
//! ```text
//!            accept            preface           first request
//!   (gate) ────────► Preface ─────────► Handshake ─────────► Active
//!     │ over            │ preface_timeout   │ header_timeout   │ idle_timeout
//!     │ max_conns       ▼                   ▼                  ▼
//!     ▼               Timeout(Preface)  Timeout(Header)   Timeout(Idle)
//!    Shed
//!
//!   any state ──peer EOF──► Clean        any state ──ConnError──► ProtocolError
//!   any state ──socket error──► IoError
//!   out queued, no write progress for write_stall_timeout ──► WriteStall
//!   still open at drain deadline after stop() ──► DrainKilled
//! ```
//!
//! Each close is recorded once, with its [`CloseReason`] and the
//! machine's typed [`ConnError`] (if any), in
//! [`LiveServerStats::close_log`] — so the badpeer attack catalogue can
//! assert the *same* typed errors over real TCP as over in-memory
//! `feed_bytes`. Per-connection output is bounded by
//! `max_queued_bytes`: the runtime polls the machine only while there is
//! room, so a slow reader (the classic slow-read attack: grant a huge
//! flow-control window, never drain the socket) costs a bounded queue and
//! is closed for [`CloseReason::WriteStall`] when the socket makes no
//! progress for `write_stall_timeout`.
//!
//! [`LiveServerHandle::stop`] triggers a *graceful drain*: the listener
//! closes immediately (no new work), in-flight connections keep being
//! served until their peers finish and hang up, and whatever is still
//! open at `drain_deadline` is flushed once and killed. `run()` then
//! returns the complete [`LiveServerStats`].

use bytes::Bytes;
use h2push_browser::{Browser, BrowserAction, BrowserConfig, LoadResult, TransportMode};
use h2push_h2proto::sansio::Endpoint;
use h2push_h2proto::{ConnError, ConnLimits};
use h2push_netsim::SimTime;
use h2push_server::ReplayServer;
use h2push_strategies::Strategy;
use h2push_webmodel::{Page, RecordDb};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---- poll(2) FFI ---------------------------------------------------------
// std already links libc; declaring the one syscall wrapper we need avoids
// pulling in an event library. Layout per POSIX (and linux's poll.h).

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int)
        -> std::ffi::c_int;
}

/// Block until an fd is ready or `timeout` elapses. EINTR retries resume
/// with the *remaining* fraction of the timeout, and sub-millisecond
/// waits round up to 1 ms so a short timer never degenerates into a
/// `poll(0)` busy-spin.
fn poll_fds(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    let deadline = Instant::now() + timeout;
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        let mut ms = left.as_millis().min(i32::MAX as u128) as i32;
        if ms == 0 && !left.is_zero() {
            ms = 1;
        }
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, ms) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// Read-buffer granularity for both halves of the runtime.
const READ_CHUNK: usize = 64 * 1024;
/// Poll tick when nothing else bounds the wait (shutdown-flag latency and
/// supervision-deadline granularity).
const TICK: Duration = Duration::from_millis(25);

/// Flush as much of `out` into `stream` as the socket accepts right now.
/// Partial writes drop exactly the written prefix (zero-copy `split_to`)
/// and keep the remainder queued; `WouldBlock` leaves the queue intact;
/// EINTR retries. `out_len` mirrors the queue's byte total incrementally.
/// Returns `(alive, progressed)`: `alive == false` means the connection
/// is unusable (reset / broken pipe), `progressed` whether at least one
/// byte left the queue (the write-stall supervision signal).
fn flush_out(
    stream: &mut TcpStream,
    out: &mut VecDeque<Bytes>,
    out_len: &mut usize,
    sent: &mut u64,
) -> (bool, bool) {
    let mut progressed = false;
    while let Some(front) = out.front_mut() {
        match stream.write(front) {
            Ok(0) => return (false, progressed),
            Ok(n) => {
                *sent += n as u64;
                *out_len -= n;
                progressed = true;
                if n == front.len() {
                    out.pop_front();
                } else {
                    let _ = front.split_to(n);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return (false, progressed),
        }
    }
    (true, progressed)
}

// ---- supervision policy --------------------------------------------------

/// Which supervision deadline a connection missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutKind {
    /// Accepted but never completed the 24-octet client preface.
    Preface,
    /// Preface arrived but no request did.
    HeaderReceive,
    /// A served connection with nothing queued and no traffic.
    Idle,
}

/// Why the live runtime retired a connection (the typed end of the
/// per-connection lifecycle; see the module-level state diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// Peer closed cleanly (EOF) after a well-behaved exchange.
    Clean,
    /// The machine died of a fatal [`ConnError`]; its GOAWAY was flushed.
    ProtocolError,
    /// A supervision deadline expired.
    Timeout(TimeoutKind),
    /// Refused at the accept gate: `max_conns` connections were already
    /// being served (the newcomer is shed, deterministically).
    Shed,
    /// Output queued but the socket made no progress for
    /// `write_stall_timeout` — the slow-read / slowloris defense.
    WriteStall,
    /// Hard socket error (reset, broken pipe).
    IoError,
    /// Still open when the graceful-drain deadline expired.
    DrainKilled,
}

impl CloseReason {
    /// Stable label (stats JSON, CI output).
    pub fn label(self) -> &'static str {
        match self {
            CloseReason::Clean => "clean",
            CloseReason::ProtocolError => "protocol_error",
            CloseReason::Timeout(TimeoutKind::Preface) => "timeout_preface",
            CloseReason::Timeout(TimeoutKind::HeaderReceive) => "timeout_header",
            CloseReason::Timeout(TimeoutKind::Idle) => "timeout_idle",
            CloseReason::Shed => "shed",
            CloseReason::WriteStall => "write_stall",
            CloseReason::IoError => "io_error",
            CloseReason::DrainKilled => "drain_killed",
        }
    }
}

/// Supervision policy for a [`LiveServer`]: the protocol-level
/// [`ConnLimits`] armed on every accepted machine, plus the
/// transport-level bounds the sans-IO machines cannot enforce themselves
/// (they own no socket and no clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveLimits {
    /// RFC 7540 resource limits armed on each connection's machine.
    pub conn: ConnLimits,
    /// Accept gate: connections served concurrently before newcomers are
    /// shed (accepted then immediately closed, so the client sees EOF
    /// instead of hanging in the backlog).
    pub max_conns: usize,
    /// Accept-to-preface deadline.
    pub preface_timeout: Duration,
    /// Preface-to-first-request deadline.
    pub header_timeout: Duration,
    /// No-traffic deadline after the first request was served.
    pub idle_timeout: Duration,
    /// Queued output with no write progress for this long closes the
    /// connection ([`CloseReason::WriteStall`]).
    pub write_stall_timeout: Duration,
    /// Per-connection output-queue bound (bytes): the machine is polled
    /// for more output only while the queue is below this, so one slow
    /// reader costs at most this much buffered memory (plus at most one
    /// frame of overshoot — frames are atomic on the wire).
    pub max_queued_bytes: usize,
    /// Grace period after `stop()` for in-flight connections to finish
    /// before they are flushed once and killed.
    pub drain_deadline: Duration,
}

impl LiveLimits {
    /// Defaults: generous enough that a well-behaved loopback load never
    /// trips anything, tight enough that every abuse class is bounded.
    pub fn new() -> Self {
        LiveLimits {
            conn: ConnLimits::new(),
            max_conns: 1024,
            preface_timeout: Duration::from_secs(5),
            header_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(60),
            write_stall_timeout: Duration::from_secs(10),
            max_queued_bytes: 1 << 20,
            drain_deadline: Duration::from_secs(5),
        }
    }
}

impl Default for LiveLimits {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-close-reason counters (one bump per retired connection).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CloseCounts {
    /// Peer EOF after a well-behaved exchange.
    pub clean: u64,
    /// Fatal typed [`ConnError`]s (GOAWAY sent).
    pub protocol_error: u64,
    /// All three supervision deadlines combined (the close log keeps the
    /// [`TimeoutKind`]s distinct).
    pub timeout: u64,
    /// Refused at the accept gate.
    pub shed: u64,
    /// Slow readers closed for write stall.
    pub write_stall: u64,
    /// Hard socket errors.
    pub io_error: u64,
    /// Killed at the graceful-drain deadline.
    pub drain_killed: u64,
}

impl CloseCounts {
    fn bump(&mut self, reason: CloseReason) {
        match reason {
            CloseReason::Clean => self.clean += 1,
            CloseReason::ProtocolError => self.protocol_error += 1,
            CloseReason::Timeout(_) => self.timeout += 1,
            CloseReason::Shed => self.shed += 1,
            CloseReason::WriteStall => self.write_stall += 1,
            CloseReason::IoError => self.io_error += 1,
            CloseReason::DrainKilled => self.drain_killed += 1,
        }
    }

    /// Total retired connections.
    pub fn total(&self) -> u64 {
        self.clean
            + self.protocol_error
            + self.timeout
            + self.shed
            + self.write_stall
            + self.io_error
            + self.drain_killed
    }
}

/// One retired connection, in retirement order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnClose {
    /// Why the runtime retired it.
    pub reason: CloseReason,
    /// The machine's typed fatal error, if it died of one — the same
    /// [`ConnError`] the in-memory sans-IO harness reports for the same
    /// byte stream.
    pub error: Option<ConnError>,
}

/// Counters a [`LiveServer`] run accumulates (totals over every
/// connection, including ones already closed).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LiveServerStats {
    /// Connections admitted past the accept gate.
    pub accepted: u64,
    /// Connections refused at the accept gate (also counted in
    /// `closed.shed`).
    pub shed: u64,
    /// Wire bytes received from clients.
    pub bytes_in: u64,
    /// Wire bytes written to clients.
    pub bytes_out: u64,
    /// Requests answered (server-side observations).
    pub requests: u64,
    /// Response-body bytes queued on push streams.
    pub pushed_bytes: u64,
    /// Protocol violations observed (0 with a well-behaved client).
    pub protocol_errors: u64,
    /// Peak per-connection output-queue depth (bytes) seen across the
    /// run — never exceeds [`LiveLimits::max_queued_bytes`] by more than
    /// one wire frame.
    pub max_queued_bytes: usize,
    /// Per-close-reason counters.
    pub closed: CloseCounts,
    /// Every retired connection with its reason and typed error.
    pub close_log: Vec<ConnClose>,
}

/// Remote control for a running [`LiveServer`]: signal shutdown from
/// another thread (the run loop notices within one poll tick) and watch
/// accept progress.
#[derive(Debug, Clone)]
pub struct LiveServerHandle {
    stop: Arc<AtomicBool>,
    accepted: Arc<AtomicU64>,
}

impl LiveServerHandle {
    /// Ask the server loop to drain: the listener closes immediately,
    /// in-flight connections are served to completion (or killed at the
    /// drain deadline), then `LiveServer::run` returns its stats.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Connections admitted so far (live view of the run loop).
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }
}

/// One accepted connection: a socket, its sans-IO replay server, and the
/// supervision state the machine cannot own (it has no socket and no
/// clock).
struct ServerConn {
    stream: TcpStream,
    machine: ReplayServer,
    out: VecDeque<Bytes>,
    /// Byte total of `out`, maintained incrementally.
    out_len: usize,
    /// µs timestamps for the lifecycle deadlines.
    accepted_at: u64,
    preface_at: Option<u64>,
    first_request_at: Option<u64>,
    /// Last read or write progress (idle supervision).
    last_progress_at: u64,
    /// Since when queued output has made no progress (write-stall
    /// supervision); `None` while the queue is empty or moving.
    stalled_since: Option<u64>,
    close: Option<CloseReason>,
}

impl ServerConn {
    fn new(stream: TcpStream, machine: ReplayServer, now: u64) -> Self {
        ServerConn {
            stream,
            machine,
            out: VecDeque::new(),
            out_len: 0,
            accepted_at: now,
            preface_at: None,
            first_request_at: None,
            last_progress_at: now,
            stalled_since: None,
            close: None,
        }
    }

    /// First expired supervision deadline, if any.
    fn expired(&self, now: u64, lim: &LiveLimits) -> Option<CloseReason> {
        let over = |since: u64, d: Duration| now.saturating_sub(since) >= d.as_micros() as u64;
        if let Some(since) = self.stalled_since {
            if over(since, lim.write_stall_timeout) {
                return Some(CloseReason::WriteStall);
            }
        }
        match (self.preface_at, self.first_request_at) {
            (None, _) if over(self.accepted_at, lim.preface_timeout) => {
                Some(CloseReason::Timeout(TimeoutKind::Preface))
            }
            (Some(p), None) if over(p, lim.header_timeout) => {
                Some(CloseReason::Timeout(TimeoutKind::HeaderReceive))
            }
            (Some(_), Some(_))
                if self.out_len == 0
                    && !self.machine.wants_output()
                    && over(self.last_progress_at, lim.idle_timeout) =>
            {
                Some(CloseReason::Timeout(TimeoutKind::Idle))
            }
            _ => None,
        }
    }
}

/// A live push server for one page: every accepted TCP connection gets a
/// full [`ReplayServer`] answering any of the page's origins by
/// host+path, with the push strategy armed (it fires only on the
/// connection that requests the base document — same rule as the sim)
/// and the [`LiveLimits`] supervisor watching the transport.
pub struct LiveServer {
    listener: Option<TcpListener>,
    addr: SocketAddr,
    page: Arc<Page>,
    db: Arc<RecordDb>,
    strategy: Arc<Strategy>,
    stop: Arc<AtomicBool>,
    accepted: Arc<AtomicU64>,
    deadline: Option<Duration>,
    limits: LiveLimits,
}

impl LiveServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and prepare to serve `page`
    /// under `strategy`. The record database is built once here and
    /// shared by every connection.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        page: Arc<Page>,
        strategy: impl Into<Arc<Strategy>>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let db = Arc::new(RecordDb::record(&page));
        Ok(LiveServer {
            listener: Some(listener),
            addr,
            page,
            db,
            strategy: strategy.into(),
            stop: Arc::new(AtomicBool::new(false)),
            accepted: Arc::new(AtomicU64::new(0)),
            deadline: None,
            limits: LiveLimits::new(),
        })
    }

    /// The bound address (port resolved when binding `:0`).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        Ok(self.addr)
    }

    /// A handle for stopping the run loop from another thread.
    pub fn handle(&self) -> LiveServerHandle {
        LiveServerHandle { stop: Arc::clone(&self.stop), accepted: Arc::clone(&self.accepted) }
    }

    /// Begin draining after `d`, even without a [`LiveServerHandle::stop`].
    pub fn set_deadline(&mut self, d: Duration) {
        self.deadline = Some(d);
    }

    /// Replace the supervision policy (defaults are [`LiveLimits::new`]).
    pub fn set_limits(&mut self, limits: LiveLimits) {
        self.limits = limits;
    }

    /// The supervision policy in effect.
    pub fn limits(&self) -> &LiveLimits {
        &self.limits
    }

    /// Serve until stopped (handle or deadline), then drain gracefully.
    /// Consumes the server; returns the accumulated stats.
    pub fn run(mut self) -> io::Result<LiveServerStats> {
        let epoch = Instant::now();
        let lim = self.limits;
        let mut stats = LiveServerStats::default();
        let mut conns: Vec<ServerConn> = Vec::new();
        let mut buf = vec![0u8; READ_CHUNK];
        let mut drain_started: Option<Duration> = None;
        loop {
            let elapsed = epoch.elapsed();
            if drain_started.is_none()
                && (self.stop.load(Ordering::Relaxed)
                    || self.deadline.is_some_and(|d| elapsed >= d))
            {
                // Graceful drain: stop accepting first (close the
                // listener socket), then keep serving what's in flight.
                drain_started = Some(elapsed);
                self.listener = None;
            }
            if let Some(started) = drain_started {
                if conns.is_empty() {
                    break;
                }
                if elapsed - started >= lim.drain_deadline {
                    // Deadline: one last flush each, then kill the rest.
                    for c in conns.iter_mut() {
                        let _ = flush_out(
                            &mut c.stream,
                            &mut c.out,
                            &mut c.out_len,
                            &mut stats.bytes_out,
                        );
                        c.close.get_or_insert(CloseReason::DrainKilled);
                    }
                    harvest(&mut conns, &mut stats);
                    break;
                }
            }

            let base = usize::from(self.listener.is_some());
            let mut fds = Vec::with_capacity(conns.len() + base);
            if let Some(l) = &self.listener {
                fds.push(PollFd { fd: l.as_raw_fd(), events: POLLIN, revents: 0 });
            }
            for c in &conns {
                let mut events = POLLIN;
                if !c.out.is_empty() {
                    events |= POLLOUT;
                }
                fds.push(PollFd { fd: c.stream.as_raw_fd(), events, revents: 0 });
            }
            poll_fds(&mut fds, TICK)?;

            // New connections. `fds` covers only the pre-accept conns;
            // ones accepted now are first served on the next tick.
            let polled = fds.len() - base;
            if base == 1 && fds[0].revents & POLLIN != 0 {
                let listener = self.listener.as_ref().expect("listener polled");
                loop {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let now = epoch.elapsed().as_micros() as u64;
                            if conns.len() >= lim.max_conns {
                                // Deterministic shed policy: the newcomer
                                // is refused. Accepting then dropping (vs
                                // leaving it in the backlog) hands the
                                // client an immediate EOF and keeps the
                                // listener from staying readable forever.
                                stats.shed += 1;
                                stats.closed.bump(CloseReason::Shed);
                                stats
                                    .close_log
                                    .push(ConnClose { reason: CloseReason::Shed, error: None });
                                drop(stream);
                                continue;
                            }
                            if stream.set_nonblocking(true).is_err() {
                                stats.closed.bump(CloseReason::IoError);
                                stats
                                    .close_log
                                    .push(ConnClose { reason: CloseReason::IoError, error: None });
                                continue;
                            }
                            let _ = stream.set_nodelay(true);
                            stats.accepted += 1;
                            self.accepted.fetch_add(1, Ordering::Relaxed);
                            let mut machine = ReplayServer::live(
                                Arc::clone(&self.page),
                                Arc::clone(&self.db),
                                &self.strategy,
                            );
                            machine.set_limits(lim.conn);
                            conns.push(ServerConn::new(stream, machine, now));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(e),
                    }
                }
            }

            // Existing connections: feed readable bytes, pump machine
            // output under the queue bound, flush, supervise.
            for (i, c) in conns.iter_mut().take(polled).enumerate() {
                if c.close.is_some() {
                    continue;
                }
                let re = fds[i + base].revents;
                let now = epoch.elapsed().as_micros() as u64;
                if re & POLLIN != 0 {
                    loop {
                        match c.stream.read(&mut buf) {
                            Ok(0) => {
                                c.close = Some(CloseReason::Clean);
                                break;
                            }
                            Ok(n) => {
                                stats.bytes_in += n as u64;
                                c.last_progress_at = now;
                                c.machine.feed_bytes(&buf[..n], now);
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            Err(_) => {
                                c.close = Some(CloseReason::IoError);
                                break;
                            }
                        }
                    }
                } else if re & (POLLERR | POLLHUP) != 0 {
                    c.close = Some(CloseReason::IoError);
                }
                if c.preface_at.is_none() && c.machine.preface_received() {
                    c.preface_at = Some(now);
                }
                if c.first_request_at.is_none() && !c.machine.observations().is_empty() {
                    c.first_request_at = Some(now);
                }

                // Pull transmit bytes from the machine only while the
                // queue has room — the per-connection memory bound.
                while c.close.is_none() && c.machine.wants_output() {
                    // Saturating: frames are atomic, so a poll can land a
                    // few bytes past the cap — the next iteration must see
                    // zero room, not a wrapped-around "infinite" budget.
                    let room = lim.max_queued_bytes.saturating_sub(c.out_len);
                    if room == 0 {
                        break;
                    }
                    let bytes = c.machine.poll_output(room.min(READ_CHUNK), now);
                    if bytes.is_empty() {
                        break; // flow-control blocked on the H2 level
                    }
                    c.out_len += bytes.len();
                    stats.max_queued_bytes = stats.max_queued_bytes.max(c.out_len);
                    c.out.push_back(bytes);
                }
                if c.close.is_none() && !c.out.is_empty() {
                    let (alive, progressed) =
                        flush_out(&mut c.stream, &mut c.out, &mut c.out_len, &mut stats.bytes_out);
                    if progressed {
                        c.last_progress_at = now;
                    }
                    if !alive {
                        c.close = Some(CloseReason::IoError);
                    }
                }
                // Write-stall tracking: armed while bytes sit unqueued,
                // cleared by any progress (or an emptied queue).
                if c.out_len == 0 || c.last_progress_at == now {
                    c.stalled_since = None;
                } else if c.stalled_since.is_none() {
                    c.stalled_since = Some(now);
                }
                // A dead machine whose GOAWAY is fully flushed is done.
                if c.close.is_none()
                    && c.machine.is_dead()
                    && c.out.is_empty()
                    && !c.machine.wants_output()
                {
                    c.close = Some(CloseReason::ProtocolError);
                }
                if c.close.is_none() {
                    if let Some(reason) = c.expired(now, &lim) {
                        c.close = Some(reason);
                    }
                }
            }

            harvest(&mut conns, &mut stats);
        }
        Ok(stats)
    }
}

/// Retire every closed connection: fold its machine's counters into the
/// stats and record the typed close exactly once.
fn harvest(conns: &mut Vec<ServerConn>, stats: &mut LiveServerStats) {
    conns.retain_mut(|c| {
        let Some(mut reason) = c.close else { return true };
        let error = c.machine.fatal_error();
        // A machine that died of a protocol violation reports it as such
        // even when the transport saw the peer hang up first.
        if error.is_some() && reason == CloseReason::Clean {
            reason = CloseReason::ProtocolError;
        }
        stats.requests += c.machine.observations().len() as u64;
        stats.pushed_bytes += c.machine.pushed_bytes();
        stats.protocol_errors += u64::from(c.machine.protocol_errors());
        stats.closed.bump(reason);
        stats.close_log.push(ConnClose { reason, error });
        false
    });
}

// ---- load client ---------------------------------------------------------

/// What a live page load produced.
#[derive(Debug, Clone)]
pub struct LiveLoadReport {
    /// The browser's measurements — same type, same semantics as a
    /// simulated replay's `ReplayOutcome::load`.
    pub load: LoadResult,
    /// Wire bytes received across all connections.
    pub bytes_in: u64,
    /// Wire bytes sent across all connections.
    pub bytes_out: u64,
    /// TCP connections opened.
    pub conns: u32,
    /// Connections the server closed before a single response byte
    /// arrived — the accept-gate shed signature.
    pub shed_conns: u32,
    /// Connections the server closed (EOF, reset) after traffic but
    /// before the load finished — the timeout / abuse-defense signature.
    pub closed_conns: u32,
}

struct ClientConn {
    stream: TcpStream,
    out: VecDeque<Bytes>,
    out_len: usize,
    bytes_in: u64,
    dead: bool,
}

/// Load `page` from the live server at `addr` with a real [`Browser`]
/// over real TCP, returning once `onload` fires or `timeout` elapses
/// (the report's `load.partial` / `finished()` tell which).
///
/// Every server group of the page maps to the same address — the
/// loopback stand-in for the paper's per-origin server IPs; the browser
/// still opens its per-group connections and addresses each origin by
/// `:authority`, which is how the server routes.
pub fn load_page(
    addr: SocketAddr,
    page: Arc<Page>,
    mut cfg: BrowserConfig,
    timeout: Duration,
) -> io::Result<LiveLoadReport> {
    cfg.transport = TransportMode::H2;
    let epoch = Instant::now();
    let now_us = |e: &Instant| e.elapsed().as_micros() as u64;
    let mut browser = Browser::new(page, cfg);
    let mut conns: HashMap<(usize, usize), ClientConn> = HashMap::new();
    // (fire-at µs, token), min-ordered via Reverse.
    let mut timers: BinaryHeap<std::cmp::Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut queue: VecDeque<BrowserAction> = browser.start(SimTime(0)).into();
    let mut bytes_in = 0u64;
    let mut bytes_out = 0u64;
    let mut opened = 0u32;
    let mut shed_conns = 0u32;
    let mut closed_conns = 0u32;
    let mut buf = vec![0u8; READ_CHUNK];

    // Classify a peer-initiated close: before any response byte it is the
    // accept-gate shed signature, after traffic a mid-load close.
    let classify = |c: &mut ClientConn, shed: &mut u32, closed: &mut u32| {
        if !c.dead {
            c.dead = true;
            if c.bytes_in == 0 {
                *shed += 1;
            } else {
                *closed += 1;
            }
        }
    };

    while !browser.done() && epoch.elapsed() < timeout {
        // Realize actions; opening a connection completes synchronously
        // on loopback, so on_connected cascades more actions in place.
        while let Some(a) = queue.pop_front() {
            match a {
                BrowserAction::OpenConnection { group, slot } => {
                    let stream = TcpStream::connect(addr)?;
                    let _ = stream.set_nodelay(true);
                    stream.set_nonblocking(true)?;
                    conns.insert(
                        (group, slot),
                        ClientConn {
                            stream,
                            out: VecDeque::new(),
                            out_len: 0,
                            bytes_in: 0,
                            dead: false,
                        },
                    );
                    opened += 1;
                    let actions = browser.on_connected(group, slot, SimTime(now_us(&epoch)));
                    queue.extend(actions);
                }
                BrowserAction::SendBytes { group, slot, bytes } => {
                    if let Some(c) = conns.get_mut(&(group, slot)) {
                        if !c.dead {
                            c.out_len += bytes.len();
                            c.out.push_back(bytes);
                            let (alive, _) = flush_out(
                                &mut c.stream,
                                &mut c.out,
                                &mut c.out_len,
                                &mut bytes_out,
                            );
                            if !alive {
                                classify(c, &mut shed_conns, &mut closed_conns);
                            }
                        }
                    }
                }
                BrowserAction::SetTimer { at, token } => {
                    timers.push(std::cmp::Reverse((at.as_micros(), token)));
                }
            }
        }
        if browser.done() {
            break;
        }

        // Fire due timers.
        let now = now_us(&epoch);
        let mut fired = false;
        while let Some(&std::cmp::Reverse((at, token))) = timers.peek() {
            if at > now {
                break;
            }
            timers.pop();
            let actions = browser.on_timer(token, SimTime(now));
            queue.extend(actions);
            fired = true;
        }
        if fired {
            continue; // realize the new actions before blocking
        }

        // Wait for readiness, the next timer, or the tick.
        let wait = match timers.peek() {
            Some(&std::cmp::Reverse((at, _))) => {
                Duration::from_micros(at.saturating_sub(now)).min(TICK)
            }
            None => TICK,
        };
        let mut keys: Vec<(usize, usize)> = Vec::with_capacity(conns.len());
        let mut fds: Vec<PollFd> = Vec::with_capacity(conns.len());
        for (&key, c) in conns.iter() {
            if c.dead {
                continue;
            }
            let mut events = POLLIN;
            if !c.out.is_empty() {
                events |= POLLOUT;
            }
            keys.push(key);
            fds.push(PollFd { fd: c.stream.as_raw_fd(), events, revents: 0 });
        }
        if fds.is_empty() {
            std::thread::sleep(wait);
            continue;
        }
        poll_fds(&mut fds, wait)?;

        for (key, fd) in keys.iter().zip(&fds) {
            let c = conns.get_mut(key).expect("conn exists");
            if fd.revents & POLLIN != 0 {
                loop {
                    match c.stream.read(&mut buf) {
                        Ok(0) => {
                            classify(c, &mut shed_conns, &mut closed_conns);
                            break;
                        }
                        Ok(n) => {
                            bytes_in += n as u64;
                            c.bytes_in += n as u64;
                            let t = SimTime(now_us(&epoch));
                            let actions = browser.on_bytes(key.0, key.1, &buf[..n], t);
                            queue.extend(actions);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            classify(c, &mut shed_conns, &mut closed_conns);
                            break;
                        }
                    }
                }
            } else if fd.revents & (POLLERR | POLLHUP) != 0 {
                classify(c, &mut shed_conns, &mut closed_conns);
            }
            if !c.dead && fd.revents & POLLOUT != 0 {
                let (alive, _) =
                    flush_out(&mut c.stream, &mut c.out, &mut c.out_len, &mut bytes_out);
                if !alive {
                    classify(c, &mut shed_conns, &mut closed_conns);
                }
            }
        }
    }

    // A connection the server closed after the load finished is not a
    // failure; the counters above only accumulate while loading.
    Ok(LiveLoadReport {
        load: browser.result(),
        bytes_in,
        bytes_out,
        conns: opened,
        shed_conns,
        closed_conns,
    })
}
