//! Live TCP serving mode: the sans-IO machines on real sockets.
//!
//! The paper's testbed serves real browsers over real TCP; this module is
//! our equivalent of that half of the methodology. It hosts exactly the
//! same state machines the simulator drives — [`ReplayServer`] behind
//! [`h2push_h2proto::sansio::Endpoint`], the `h2push-browser` action
//! machine as the load client — on a small readiness runtime built
//! directly on `poll(2)` and non-blocking `std::net` sockets (the
//! container has no mio; the FFI below is the whole "event library").
//!
//! Layering mirrors [`crate::driver`]: the runtime owns sockets, buffers
//! and the clock; the machines own every protocol decision. Time is
//! injected as microseconds since the runtime's start instant, so the
//! machines cannot tell the difference between the wall clock and
//! sim-time — which is the point: a strategy measured in the simulator
//! can be served to a real client byte-for-byte.
//!
//! * [`LiveServer`] — binds a listener and answers every accepted
//!   connection from a page's [`RecordDb`] with the configured push
//!   strategy (push fires on whichever connection requests the base
//!   document, exactly as in the sim).
//! * [`load_page`] — the loopback load client: drives a real [`Browser`]
//!   over TCP connections to one address and returns its [`LoadResult`].

use bytes::Bytes;
use h2push_browser::{Browser, BrowserAction, BrowserConfig, LoadResult, TransportMode};
use h2push_h2proto::sansio::Endpoint;
use h2push_netsim::SimTime;
use h2push_server::ReplayServer;
use h2push_strategies::Strategy;
use h2push_webmodel::{Page, RecordDb};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---- poll(2) FFI ---------------------------------------------------------
// std already links libc; declaring the one syscall wrapper we need avoids
// pulling in an event library. Layout per POSIX (and linux's poll.h).

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int)
        -> std::ffi::c_int;
}

/// Block until an fd is ready or `timeout` elapses; EINTR retries.
fn poll_fds(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
    loop {
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, ms) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// Read-buffer granularity for both halves of the runtime.
const READ_CHUNK: usize = 64 * 1024;
/// How many produced-but-unsent bytes a server connection may buffer
/// before the runtime stops polling its machine for more output.
const HIGH_WATER: usize = 1 << 20;
/// Poll tick when nothing else bounds the wait (shutdown-flag latency).
const TICK: Duration = Duration::from_millis(25);

/// Flush as much of `out` into `stream` as the socket accepts right now.
/// Returns false when the connection is unusable (reset / broken pipe).
fn flush_out(stream: &mut TcpStream, out: &mut VecDeque<Bytes>, sent: &mut u64) -> bool {
    while let Some(front) = out.front_mut() {
        match stream.write(front) {
            Ok(0) => return false,
            Ok(n) => {
                *sent += n as u64;
                if n == front.len() {
                    out.pop_front();
                } else {
                    let _ = front.split_to(n);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    true
}

fn queued_len(out: &VecDeque<Bytes>) -> usize {
    out.iter().map(|b| b.len()).sum()
}

// ---- server --------------------------------------------------------------

/// Counters a [`LiveServer`] run accumulates (totals over every
/// connection, including ones already closed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveServerStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Wire bytes received from clients.
    pub bytes_in: u64,
    /// Wire bytes written to clients.
    pub bytes_out: u64,
    /// Requests answered (server-side observations).
    pub requests: u64,
    /// Response-body bytes queued on push streams.
    pub pushed_bytes: u64,
    /// Protocol violations observed (0 with a well-behaved client).
    pub protocol_errors: u64,
}

/// Remote control for a running [`LiveServer`]: signal shutdown from
/// another thread (the run loop notices within one poll tick).
#[derive(Debug, Clone)]
pub struct LiveServerHandle {
    stop: Arc<AtomicBool>,
}

impl LiveServerHandle {
    /// Ask the server loop to finish; `LiveServer::run` then returns its
    /// stats.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

/// One accepted connection: a socket plus its sans-IO replay server.
struct ServerConn {
    stream: TcpStream,
    machine: ReplayServer,
    out: VecDeque<Bytes>,
    dead: bool,
}

/// A live push server for one page: every accepted TCP connection gets a
/// full [`ReplayServer`] answering any of the page's origins by
/// host+path, with the push strategy armed (it fires only on the
/// connection that requests the base document — same rule as the sim).
pub struct LiveServer {
    listener: TcpListener,
    page: Arc<Page>,
    db: Arc<RecordDb>,
    strategy: Arc<Strategy>,
    stop: Arc<AtomicBool>,
    deadline: Option<Duration>,
}

impl LiveServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and prepare to serve `page`
    /// under `strategy`. The record database is built once here and
    /// shared by every connection.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        page: Arc<Page>,
        strategy: impl Into<Arc<Strategy>>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let db = Arc::new(RecordDb::record(&page));
        Ok(LiveServer {
            listener,
            page,
            db,
            strategy: strategy.into(),
            stop: Arc::new(AtomicBool::new(false)),
            deadline: None,
        })
    }

    /// The bound address (port resolved when binding `:0`).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for stopping the run loop from another thread.
    pub fn handle(&self) -> LiveServerHandle {
        LiveServerHandle { stop: Arc::clone(&self.stop) }
    }

    /// Stop serving after `d`, even without a [`LiveServerHandle::stop`].
    pub fn set_deadline(&mut self, d: Duration) {
        self.deadline = Some(d);
    }

    /// Serve until stopped (handle or deadline). Consumes the server;
    /// returns the accumulated stats.
    pub fn run(self) -> io::Result<LiveServerStats> {
        let epoch = Instant::now();
        let mut stats = LiveServerStats::default();
        let mut conns: Vec<ServerConn> = Vec::new();
        let mut buf = vec![0u8; READ_CHUNK];
        loop {
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            if let Some(d) = self.deadline {
                if epoch.elapsed() >= d {
                    break;
                }
            }
            let mut fds = Vec::with_capacity(conns.len() + 1);
            fds.push(PollFd { fd: self.listener.as_raw_fd(), events: POLLIN, revents: 0 });
            for c in &conns {
                let mut events = POLLIN;
                if !c.out.is_empty() {
                    events |= POLLOUT;
                }
                fds.push(PollFd { fd: c.stream.as_raw_fd(), events, revents: 0 });
            }
            poll_fds(&mut fds, TICK)?;

            // New connections. `fds` covers only the pre-accept conns;
            // ones accepted now are first served on the next tick.
            let polled = conns.len();
            if fds[0].revents & POLLIN != 0 {
                loop {
                    match self.listener.accept() {
                        Ok((stream, _peer)) => {
                            stream.set_nonblocking(true)?;
                            let _ = stream.set_nodelay(true);
                            stats.accepted += 1;
                            conns.push(ServerConn {
                                stream,
                                machine: ReplayServer::live(
                                    Arc::clone(&self.page),
                                    Arc::clone(&self.db),
                                    &self.strategy,
                                ),
                                out: VecDeque::new(),
                                dead: false,
                            });
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(e),
                    }
                }
            }

            // Existing connections: feed readable bytes, drain output.
            for (i, c) in conns.iter_mut().take(polled).enumerate() {
                let re = fds[i + 1].revents;
                if re & (POLLERR | POLLHUP) != 0 && re & POLLIN == 0 {
                    c.dead = true;
                    continue;
                }
                let now = epoch.elapsed().as_micros() as u64;
                if re & POLLIN != 0 {
                    loop {
                        match c.stream.read(&mut buf) {
                            Ok(0) => {
                                c.dead = true;
                                break;
                            }
                            Ok(n) => {
                                stats.bytes_in += n as u64;
                                c.machine.feed_bytes(&buf[..n], now);
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            Err(_) => {
                                c.dead = true;
                                break;
                            }
                        }
                    }
                }
                // Pull transmit bytes from the machine up to the high
                //-water mark, then flush what the socket accepts.
                while !c.dead && queued_len(&c.out) < HIGH_WATER && c.machine.wants_output() {
                    let bytes = c.machine.poll_output(READ_CHUNK, now);
                    if bytes.is_empty() {
                        break; // flow-control blocked on the H2 level
                    }
                    c.out.push_back(bytes);
                }
                if !c.dead && !flush_out(&mut c.stream, &mut c.out, &mut stats.bytes_out) {
                    c.dead = true;
                }
            }

            // Harvest and drop finished connections.
            for c in conns.iter().filter(|c| c.dead) {
                stats.requests += c.machine.observations().len() as u64;
                stats.pushed_bytes += c.machine.pushed_bytes();
                stats.protocol_errors += u64::from(c.machine.protocol_errors());
            }
            conns.retain(|c| !c.dead);
        }
        for c in &conns {
            stats.requests += c.machine.observations().len() as u64;
            stats.pushed_bytes += c.machine.pushed_bytes();
            stats.protocol_errors += u64::from(c.machine.protocol_errors());
        }
        Ok(stats)
    }
}

// ---- load client ---------------------------------------------------------

/// What a live page load produced.
#[derive(Debug, Clone)]
pub struct LiveLoadReport {
    /// The browser's measurements — same type, same semantics as a
    /// simulated replay's `ReplayOutcome::load`.
    pub load: LoadResult,
    /// Wire bytes received across all connections.
    pub bytes_in: u64,
    /// Wire bytes sent across all connections.
    pub bytes_out: u64,
    /// TCP connections opened.
    pub conns: u32,
}

struct ClientConn {
    stream: TcpStream,
    out: VecDeque<Bytes>,
    dead: bool,
}

/// Load `page` from the live server at `addr` with a real [`Browser`]
/// over real TCP, returning once `onload` fires or `timeout` elapses
/// (the report's `load.partial` / `finished()` tell which).
///
/// Every server group of the page maps to the same address — the
/// loopback stand-in for the paper's per-origin server IPs; the browser
/// still opens its per-group connections and addresses each origin by
/// `:authority`, which is how the server routes.
pub fn load_page(
    addr: SocketAddr,
    page: Arc<Page>,
    mut cfg: BrowserConfig,
    timeout: Duration,
) -> io::Result<LiveLoadReport> {
    cfg.transport = TransportMode::H2;
    let epoch = Instant::now();
    let now_us = |e: &Instant| e.elapsed().as_micros() as u64;
    let mut browser = Browser::new(page, cfg);
    let mut conns: HashMap<(usize, usize), ClientConn> = HashMap::new();
    // (fire-at µs, token), min-ordered via Reverse.
    let mut timers: BinaryHeap<std::cmp::Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut queue: VecDeque<BrowserAction> = browser.start(SimTime(0)).into();
    let mut bytes_in = 0u64;
    let mut bytes_out = 0u64;
    let mut opened = 0u32;
    let mut buf = vec![0u8; READ_CHUNK];

    while !browser.done() && epoch.elapsed() < timeout {
        // Realize actions; opening a connection completes synchronously
        // on loopback, so on_connected cascades more actions in place.
        while let Some(a) = queue.pop_front() {
            match a {
                BrowserAction::OpenConnection { group, slot } => {
                    let stream = TcpStream::connect(addr)?;
                    let _ = stream.set_nodelay(true);
                    stream.set_nonblocking(true)?;
                    conns.insert(
                        (group, slot),
                        ClientConn { stream, out: VecDeque::new(), dead: false },
                    );
                    opened += 1;
                    let actions = browser.on_connected(group, slot, SimTime(now_us(&epoch)));
                    queue.extend(actions);
                }
                BrowserAction::SendBytes { group, slot, bytes } => {
                    if let Some(c) = conns.get_mut(&(group, slot)) {
                        if !c.dead {
                            c.out.push_back(bytes);
                            if !flush_out(&mut c.stream, &mut c.out, &mut bytes_out) {
                                c.dead = true;
                            }
                        }
                    }
                }
                BrowserAction::SetTimer { at, token } => {
                    timers.push(std::cmp::Reverse((at.as_micros(), token)));
                }
            }
        }
        if browser.done() {
            break;
        }

        // Fire due timers.
        let now = now_us(&epoch);
        let mut fired = false;
        while let Some(&std::cmp::Reverse((at, token))) = timers.peek() {
            if at > now {
                break;
            }
            timers.pop();
            let actions = browser.on_timer(token, SimTime(now));
            queue.extend(actions);
            fired = true;
        }
        if fired {
            continue; // realize the new actions before blocking
        }

        // Wait for readiness, the next timer, or the tick.
        let wait = match timers.peek() {
            Some(&std::cmp::Reverse((at, _))) => {
                Duration::from_micros(at.saturating_sub(now)).min(TICK)
            }
            None => TICK,
        };
        let mut keys: Vec<(usize, usize)> = Vec::with_capacity(conns.len());
        let mut fds: Vec<PollFd> = Vec::with_capacity(conns.len());
        for (&key, c) in conns.iter() {
            if c.dead {
                continue;
            }
            let mut events = POLLIN;
            if !c.out.is_empty() {
                events |= POLLOUT;
            }
            keys.push(key);
            fds.push(PollFd { fd: c.stream.as_raw_fd(), events, revents: 0 });
        }
        if fds.is_empty() {
            std::thread::sleep(wait);
            continue;
        }
        poll_fds(&mut fds, wait)?;

        for (key, fd) in keys.iter().zip(&fds) {
            let c = conns.get_mut(key).expect("conn exists");
            if fd.revents & POLLIN != 0 {
                loop {
                    match c.stream.read(&mut buf) {
                        Ok(0) => {
                            c.dead = true;
                            break;
                        }
                        Ok(n) => {
                            bytes_in += n as u64;
                            let t = SimTime(now_us(&epoch));
                            let actions = browser.on_bytes(key.0, key.1, &buf[..n], t);
                            queue.extend(actions);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            c.dead = true;
                            break;
                        }
                    }
                }
            } else if fd.revents & (POLLERR | POLLHUP) != 0 {
                c.dead = true;
            }
            if !c.dead
                && fd.revents & POLLOUT != 0
                && !flush_out(&mut c.stream, &mut c.out, &mut bytes_out)
            {
                c.dead = true;
            }
        }
    }

    Ok(LiveLoadReport { load: browser.result(), bytes_in, bytes_out, conns: opened })
}
