//! The one blessed entry point: a [`RunPlan`] builder over the replay
//! engine.
//!
//! PR 1 (perf) and PR 2 (chaos) grew six near-duplicate free functions
//! (`replay`, `replay_shared`, a `run_many` family, plus
//! `run_config_with_faults`); adding tracing would have doubled them
//! again. Those shims are gone; a `RunPlan` names every knob once:
//!
//! ```
//! use h2push_testbed::{Mode, RunPlan};
//! use h2push_strategies::Strategy;
//! # use h2push_webmodel::{PageBuilder, ResourceSpec};
//! # let mut b = PageBuilder::new("doc", "d.test", 30_000, 3_000);
//! # b.resource(ResourceSpec::css(0, 10_000, 300, 0.4));
//! # b.text_paint(8_000, 1.0);
//! # let page = b.build();
//! let report = RunPlan::new(&page)
//!     .strategy(Strategy::NoPush)
//!     .mode(Mode::Testbed)
//!     .reps(3)
//!     .seed(42)
//!     .run();
//! assert_eq!(report.len(), 3);
//! ```
//!
//! Two execution modes:
//!
//! * **Derived configs** (the default): rep `r` replays under
//!   [`run_config`]`(strategy, mode, seed + r, page)`, optionally with a
//!   [`FaultProfile`] layered on — byte-identical to the retired
//!   `run_many_shared` / `run_config_with_faults` entry points this
//!   replaced.
//! * **Explicit config** ([`RunPlan::config`]): every rep replays under
//!   the given [`ReplayConfig`] verbatim (no per-rep jitter) — the old
//!   `replay`/`run_once` behaviour.
//!
//! Attaching a trace ([`RunPlan::traced`]) records a per-rep
//! [`Timeline`]; the trace handle is pure observation, so traced and
//! untraced runs of the same plan produce byte-identical
//! [`ReplayOutcome`]s (equality-tested in `tests/trace.rs`).

use crate::chaos::{apply_profile, FaultProfile};
use crate::driver::ReplayCtx;
use crate::harness::{run_config, Mode};
use crate::pool::parallel_indexed;
use crate::replay::{replay_with_trace, ReplayConfig, ReplayError, ReplayInputs, ReplayOutcome};
use h2push_strategies::Strategy;
use h2push_trace::{recording, Timeline, TraceHandle};
use std::sync::Arc;

/// What a [`RunPlan`] records while it runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceSpec {
    /// No sink: emission sites cost one branch, nothing is recorded.
    #[default]
    Off,
    /// Record every event into a per-rep [`Timeline`].
    Timeline,
}

/// One completed repetition: the outcome plus its timeline when traced.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutput {
    /// End-state aggregates, identical to what the shimmed entry points
    /// return.
    pub outcome: ReplayOutcome,
    /// The recorded event timeline; `None` when the plan is untraced.
    pub timeline: Option<Timeline>,
}

/// All completed repetitions of a [`RunPlan`], in rep order. Failed reps
/// (stall / deadline) are dropped.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// The completed runs in rep order.
    pub runs: Vec<RunOutput>,
}

impl RunReport {
    /// Number of completed runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True when every rep failed (or none were asked for).
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Borrow the outcomes in rep order.
    pub fn outcomes(&self) -> impl Iterator<Item = &ReplayOutcome> {
        self.runs.iter().map(|r| &r.outcome)
    }

    /// Consume the report into the bare outcome vector.
    pub fn into_outcomes(self) -> Vec<ReplayOutcome> {
        self.runs.into_iter().map(|r| r.outcome).collect()
    }

    /// Borrow the recorded timelines (empty iterator when untraced).
    pub fn timelines(&self) -> impl Iterator<Item = &Timeline> {
        self.runs.iter().filter_map(|r| r.timeline.as_ref())
    }
}

/// A fully described measurement: page, strategy, conditions, repetitions,
/// faults and observability — built once, executed with [`RunPlan::run`].
#[derive(Debug, Clone)]
pub struct RunPlan {
    inputs: ReplayInputs,
    strategy: Arc<Strategy>,
    mode: Mode,
    reps: usize,
    seed: u64,
    faults: Option<FaultProfile>,
    trace: TraceSpec,
    explicit: Option<ReplayConfig>,
    serial: bool,
    limits: Option<h2push_h2proto::ConnLimits>,
    watchdog: Option<u64>,
}

impl RunPlan {
    /// Start a plan for `page` (a `Page`, `&Page`, `Arc<Page>` or existing
    /// [`ReplayInputs`]). The page is recorded into shared replay inputs
    /// exactly once, however many reps run.
    ///
    /// Defaults: `NoPush`, testbed mode, 1 rep, seed 0, no faults, no
    /// trace, parallel execution.
    pub fn new(page: impl Into<ReplayInputs>) -> Self {
        RunPlan {
            inputs: page.into(),
            strategy: Arc::new(Strategy::NoPush),
            mode: Mode::Testbed,
            reps: 1,
            seed: 0,
            faults: None,
            trace: TraceSpec::Off,
            explicit: None,
            serial: false,
            limits: None,
            watchdog: None,
        }
    }

    /// Push strategy under test (an owned [`Strategy`] or a shared
    /// `Arc<Strategy>` — per-rep configs share it by reference count).
    pub fn strategy(mut self, strategy: impl Into<Arc<Strategy>>) -> Self {
        self.strategy = strategy.into();
        self
    }

    /// Testbed (deterministic) or Internet (stochastic) conditions.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Number of repetitions (the paper uses 31, [`crate::PAPER_RUNS`]).
    pub fn reps(mut self, reps: usize) -> Self {
        self.reps = reps;
        self
    }

    /// Base seed; rep `r` uses `seed.wrapping_add(r)`.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Layer a chaos [`FaultProfile`] onto every derived per-rep config.
    pub fn faults(mut self, profile: FaultProfile) -> Self {
        self.faults = Some(profile);
        self
    }

    /// Choose what to record while running.
    pub fn trace(mut self, spec: TraceSpec) -> Self {
        self.trace = spec;
        self
    }

    /// Shorthand for `.trace(TraceSpec::Timeline)`.
    pub fn traced(self) -> Self {
        self.trace(TraceSpec::Timeline)
    }

    /// Replay every rep under this exact config instead of deriving one
    /// per rep — the old `replay`/`run_once` behaviour (no per-rep
    /// jitter). Overrides `strategy`/`mode`/`seed`/`faults`.
    pub fn config(mut self, cfg: ReplayConfig) -> Self {
        self.explicit = Some(cfg);
        self
    }

    /// Override the adversarial-peer resource limits applied to both
    /// endpoints of every connection (defaults to
    /// [`h2push_h2proto::ConnLimits::new`]). Local policy only: benign
    /// replays are byte-identical under any choice.
    pub fn limits(mut self, limits: h2push_h2proto::ConnLimits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Override the netsim event-watchdog budget applied to every rep
    /// (defaults to the [`ReplayConfig`] default). Mainly for tests that
    /// need a deterministic non-panic failure; benign replays never come
    /// near the default budget.
    pub fn watchdog_events(mut self, events: u64) -> Self {
        self.watchdog = Some(events);
        self
    }

    /// Run the reps on the calling thread in order instead of the worker
    /// pool. Results are bit-identical either way; this exists for
    /// baseline benchmarking.
    pub fn serial(mut self) -> Self {
        self.serial = true;
        self
    }

    /// Precompute the page-level artifact ([`crate::PreparedPage`]) once
    /// and share it across every rep: pre-scanned parser/reference
    /// indices, pre-formatted header lists and a memoized HPACK block
    /// cache. Outputs stay byte-identical to the unprepared plan.
    pub fn prepared(mut self) -> Self {
        self.inputs = self.inputs.prepared();
        self
    }

    /// Borrow the shared inputs (page + response DB) this plan replays.
    pub fn inputs(&self) -> &ReplayInputs {
        &self.inputs
    }

    /// The replay configuration rep `r` will run under.
    pub fn config_for(&self, rep: usize) -> ReplayConfig {
        let mut cfg = match &self.explicit {
            Some(cfg) => cfg.clone(),
            None => {
                let mut cfg = run_config(
                    &self.strategy,
                    self.mode,
                    self.seed.wrapping_add(rep as u64),
                    &self.inputs.page,
                );
                if let Some(profile) = &self.faults {
                    apply_profile(&mut cfg, profile);
                }
                cfg
            }
        };
        if let Some(l) = self.limits {
            cfg.limits = l;
        }
        if let Some(events) = self.watchdog {
            cfg.watchdog_events = events;
        }
        cfg
    }

    pub(crate) fn run_rep(&self, rep: usize) -> Result<RunOutput, ReplayError> {
        // The engine recycles a thread-local context under the hood, so
        // every worker's chunk of reps already runs allocation-free after
        // its first rep.
        self.rep_with(rep, |cfg, trace| replay_with_trace(&self.inputs, cfg, trace))
    }

    /// Execute rep `rep` inside an explicit, caller-owned [`ReplayCtx`],
    /// recycling its machinery instead of reconstructing it. Outcomes are
    /// byte-identical to [`RunPlan::run`] / [`RunPlan::run_one`]; this
    /// entry point exists for callers that pin one context per thread for
    /// a whole measurement (the allocation-gate bench, the equality suite).
    pub fn run_rep_in(&self, rep: usize, ctx: &mut ReplayCtx) -> Result<RunOutput, ReplayError> {
        self.rep_with(rep, |cfg, trace| crate::driver::drive_in(&self.inputs, cfg, trace, ctx))
    }

    fn rep_with(
        &self,
        rep: usize,
        mut run: impl FnMut(&ReplayConfig, &TraceHandle) -> Result<ReplayOutcome, ReplayError>,
    ) -> Result<RunOutput, ReplayError> {
        let cfg = self.config_for(rep);
        match self.trace {
            TraceSpec::Off => {
                run(&cfg, &TraceHandle::off()).map(|outcome| RunOutput { outcome, timeline: None })
            }
            TraceSpec::Timeline => {
                let (handle, shared) = recording();
                let outcome = run(&cfg, &handle)?;
                drop(handle); // last sink reference; the timeline is now unique
                let timeline = std::rc::Rc::try_unwrap(shared)
                    .map(|cell| cell.into_inner())
                    .unwrap_or_else(|rc| rc.borrow().clone());
                Ok(RunOutput { outcome, timeline: Some(timeline) })
            }
        }
    }

    /// Execute rep 0 only. The common single-measurement path.
    pub fn run_one(&self) -> Result<RunOutput, ReplayError> {
        self.run_rep(0)
    }

    /// Execute all reps (on the worker pool unless [`RunPlan::serial`])
    /// and collect the completed runs in rep order. Timelines are per-rep,
    /// so traced plans parallelise exactly like untraced ones.
    pub fn run(&self) -> RunReport {
        let runs = if self.serial {
            (0..self.reps).filter_map(|r| self.run_rep(r).ok()).collect()
        } else {
            parallel_indexed(self.reps, |r| self.run_rep(r).ok()).into_iter().flatten().collect()
        };
        RunReport { runs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2push_webmodel::{PageBuilder, ResourceId, ResourceSpec};

    fn page() -> h2push_webmodel::Page {
        let mut b = PageBuilder::new("plan", "plan.test", 45_000, 4_000);
        let third = b.origin("cdn.other.net", 1, false);
        b.resource(ResourceSpec::css(0, 15_000, 300, 0.4));
        b.resource(ResourceSpec::js(0, 20_000, 1_000, 12_000));
        b.resource(ResourceSpec::image(0, 25_000, 9_000, true, 1.5));
        b.resource(ResourceSpec::js_async(third, 8_000, 25_000, 4_000));
        b.text_paint(8_000, 1.0);
        b.build()
    }

    #[test]
    fn defaults_run_a_single_untraced_testbed_rep() {
        let report = RunPlan::new(&page()).run();
        assert_eq!(report.len(), 1);
        assert!(report.runs[0].timeline.is_none());
        assert!(report.runs[0].outcome.load.finished());
        assert_eq!(report.timelines().count(), 0);
    }

    #[test]
    fn serial_and_parallel_execution_agree() {
        let plan = RunPlan::new(&page())
            .strategy(Strategy::PushList { order: vec![ResourceId(1)] })
            .reps(6)
            .seed(9);
        let par = plan.clone().run();
        let ser = plan.serial().run();
        assert_eq!(par.len(), ser.len());
        for (p, s) in par.outcomes().zip(ser.outcomes()) {
            assert_eq!(p.load, s.load);
            assert_eq!(p.trace.order, s.trace.order);
            assert_eq!(p.net, s.net);
        }
    }

    #[test]
    fn explicit_config_ignores_per_rep_jitter() {
        let cfg = ReplayConfig::testbed(Strategy::NoPush);
        let report = RunPlan::new(&page()).config(cfg).reps(3).seed(5).run();
        assert_eq!(report.len(), 3);
        let plts: Vec<f64> = report.outcomes().map(|o| o.load.plt()).collect();
        assert_eq!(plts[0], plts[1]);
        assert_eq!(plts[1], plts[2]);
    }

    #[test]
    fn traced_reps_carry_timelines_and_identical_outcomes() {
        let plan = RunPlan::new(&page()).reps(2).seed(3);
        let plain = plan.clone().run();
        let traced = plan.traced().run();
        assert_eq!(plain.len(), traced.len());
        for (p, t) in plain.runs.iter().zip(&traced.runs) {
            assert_eq!(p.outcome.load, t.outcome.load);
            assert_eq!(p.outcome.net, t.outcome.net);
            let tl = t.timeline.as_ref().expect("traced rep has a timeline");
            assert!(!tl.is_empty());
        }
        assert_eq!(traced.timelines().count(), 2);
    }
}
