//! A tiny scoped-thread worker pool with a *global* concurrency budget.
//!
//! Experiment drivers nest parallelism two deep: `parallel_map` fans out
//! over sites while [`RunPlan`](crate::RunPlan) fans out over the 31
//! repetitions of each site. A naive nested spawn would oversubscribe the
//! machine quadratically;
//! instead every `parallel_indexed` call claims worker tokens from one
//! process-wide budget (`available_parallelism`), and a call that gets no
//! tokens simply runs serially on its caller's thread. The effect is a
//! flattened (site × run) schedule that saturates the cores exactly once.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Extra worker threads currently alive across all `parallel_indexed`
/// calls (the calling threads themselves are not counted).
static ACTIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Explicit worker budget (total threads, calling thread included);
/// `0` means "derive from `available_parallelism`".
static WORKER_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Pin the process-wide worker budget to exactly `threads` total threads
/// (the calling thread counts as one, so `Some(1)` forces fully serial
/// execution and `Some(4)` allows three extra workers — even above the
/// physical core count, which the scaling bench uses to prove
/// byte-equality at any width). `None` restores the default
/// `available_parallelism` budget.
pub fn set_worker_threads(threads: Option<usize>) {
    WORKER_THREADS_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// The effective total worker budget (calling thread included).
pub fn worker_threads() -> usize {
    match WORKER_THREADS_OVERRIDE.load(Ordering::Relaxed) {
        0 => cores(),
        n => n,
    }
}

/// A claim on `0..=want` worker slots; dropping it returns them.
struct WorkerTokens(usize);

impl Drop for WorkerTokens {
    fn drop(&mut self) {
        if self.0 > 0 {
            ACTIVE_WORKERS.fetch_sub(self.0, Ordering::Relaxed);
        }
    }
}

fn claim(want: usize) -> WorkerTokens {
    // Each claimant's own thread works too, so the extra-thread budget is
    // one less than the total thread budget.
    let cap = worker_threads().saturating_sub(1);
    let mut cur = ACTIVE_WORKERS.load(Ordering::Relaxed);
    loop {
        let take = want.min(cap.saturating_sub(cur));
        if take == 0 {
            return WorkerTokens(0);
        }
        match ACTIVE_WORKERS.compare_exchange_weak(
            cur,
            cur + take,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return WorkerTokens(take),
            Err(c) => cur = c,
        }
    }
}

/// Run `f(0..n)` across the available cores and return the results in
/// index order.
///
/// Work items are handed out through an atomic counter; each worker
/// (including the calling thread) accumulates `(index, result)` pairs in a
/// private vector, and the pairs are merged into their final slots after
/// the scope joins — no locks, no shared mutable buffer. When the global
/// budget is already spent (nested call) the whole loop runs serially on
/// the caller, which is exactly the flattening that prevents
/// oversubscription.
pub fn parallel_indexed<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let tokens = if n > 1 { claim(n - 1) } else { WorkerTokens(0) };
    if tokens.0 == 0 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let run = |local: &mut Vec<(usize, U)>| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        local.push((i, f(i)));
    };
    let parts = std::thread::scope(|s| {
        let handles: Vec<_> = (0..tokens.0)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    run(&mut local);
                    local
                })
            })
            .collect();
        let mut local = Vec::new();
        run(&mut local);
        let mut parts = vec![local];
        for h in handles {
            parts.push(h.join().expect("pool worker panicked"));
        }
        parts
    });
    drop(tokens);
    let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
    for part in parts {
        for (i, u) in part {
            slots[i] = Some(u);
        }
    }
    slots.into_iter().map(|o| o.expect("every index ran exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = parallel_indexed(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn nested_calls_degrade_to_serial_not_deadlock() {
        let out = parallel_indexed(8, |i| {
            let inner = parallel_indexed(8, move |j| i * 8 + j);
            inner.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(parallel_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_indexed(1, |i| i + 7), vec![7]);
    }

    /// Serializes the tests that read or write the global thread budget.
    static BUDGET_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn claims_never_exceed_request_or_budget() {
        let _g = BUDGET_LOCK.lock().unwrap();
        let cap = worker_threads().saturating_sub(1);
        let t = claim(1_000);
        assert!(t.0 <= 1_000.min(cap));
        // A second claim on top of the first stays within the budget too.
        let t2 = claim(1_000);
        assert!(t.0 + t2.0 <= cap);
    }

    #[test]
    fn thread_override_pins_the_budget() {
        let _g = BUDGET_LOCK.lock().unwrap();
        set_worker_threads(Some(1));
        let t = claim(8);
        assert_eq!(t.0, 0, "one total thread means no extra workers");
        drop(t);
        set_worker_threads(Some(3));
        let t = claim(8);
        assert!(t.0 <= 2, "three total threads allow at most two extras");
        drop(t);
        set_worker_threads(None);
        assert_eq!(worker_threads(), cores());
        // The override may exceed the physical core count: the scaling
        // bench uses that to prove byte-equality at any width.
        set_worker_threads(Some(64));
        assert_eq!(worker_threads(), 64);
        set_worker_threads(None);
    }
}
