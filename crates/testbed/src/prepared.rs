//! Page-level precomputation: the [`PreparedPage`] artifact.
//!
//! A replay spends a measurable slice of every repetition re-deriving
//! facts that depend only on the page: the browser's parser stop points
//! and preload-scanner reference index, the per-resource request and
//! response header lists both endpoints format, and the HPACK blocks
//! those lists encode to. A [`PreparedPage`] computes all of it once and
//! shares it — across repetitions, configurations and worker threads —
//! via `Arc` clones.
//!
//! **Bit-identity is the contract.** Every prepared component either
//! stores exactly the bytes the live path would produce (header lists are
//! built by the same formatting code) or memoizes keyed on the full
//! producer state (HPACK blocks are keyed by the encoder-state
//! fingerprint and fall back to live encoding on any miss — see
//! `h2push_hpack::BlockCache`). A replay with a `PreparedPage` attached
//! is therefore byte-identical to one without, which
//! `tests/prepared.rs` asserts across strategies, tracing and fault
//! profiles.
//!
//! Amortization (see DESIGN.md §8): per-page work happens here, once;
//! per-config work is an `Arc` clone; the per-rep hot path reads shared
//! immutable data and allocates almost nothing.

use bytes::Bytes;
use h2push_browser::PreparedScan;
use h2push_hpack::{BlockCache, DecodeCache};
use h2push_server::Prepared as ServerPrepared;
use h2push_webmodel::Page;
use std::sync::Arc;

/// Everything about one page that replays can precompute and share.
#[derive(Debug, Clone)]
pub struct PreparedPage {
    /// Browser-side scan: parser stops, HTML reference index, request
    /// header lists.
    pub(crate) scan: Arc<PreparedScan>,
    /// Server-side response/push-request header lists and push URLs.
    pub(crate) server: Arc<ServerPrepared>,
    /// Memoized HPACK header blocks, shared by the client and every
    /// server connection (keys carry the full encoder-state fingerprint,
    /// so sharing across roles cannot alias).
    pub(crate) hpack: BlockCache,
    /// Memoized HPACK *decode* results, the receive-side twin of `hpack`:
    /// shared by the client and every server connection (keys carry the
    /// decoder-state fingerprint plus the block hash, so sharing across
    /// roles cannot alias). Decoded headers are identical with or without
    /// it — the cache only skips redundant decoding work and the header
    /// allocations that come with it.
    pub(crate) hpack_decode: DecodeCache,
    /// Per-resource response bodies pre-chunked into DATA-frame payload
    /// slices (≤ `DEFAULT_MAX_FRAME_SIZE` each). Replay bodies are
    /// synthetic zero-fill, so every chunk is a zero-copy view of one
    /// static region (`h2push_h2proto::zero_payload`); the vector exists
    /// so strategies that later carry recorded payloads slot in without
    /// touching the replay loop.
    pub(crate) bodies: Vec<Vec<Bytes>>,
}

impl PreparedPage {
    /// Precompute everything for `page`. Deterministic: a pure function
    /// of the page (the HPACK cache starts empty and fills as reps run).
    pub fn build(page: &Arc<Page>) -> Self {
        PreparedPage {
            scan: Arc::new(PreparedScan::build(page)),
            server: Arc::new(ServerPrepared::build(page)),
            hpack: BlockCache::new(),
            hpack_decode: DecodeCache::new(),
            bodies: page
                .resources
                .iter()
                .map(|r| {
                    let mut chunks = Vec::new();
                    let mut left = r.size;
                    while left > 0 {
                        let take = left.min(h2push_h2proto::DEFAULT_MAX_FRAME_SIZE);
                        chunks.push(h2push_h2proto::zero_payload(take));
                        left -= take;
                    }
                    chunks
                })
                .collect(),
        }
    }

    /// Borrow the shared browser scan.
    pub fn scan(&self) -> &Arc<PreparedScan> {
        &self.scan
    }

    /// Borrow the shared server-side header lists.
    pub fn server(&self) -> &Arc<ServerPrepared> {
        &self.server
    }

    /// The shared HPACK block cache (clone to attach elsewhere).
    pub fn hpack_cache(&self) -> &BlockCache {
        &self.hpack
    }

    /// The shared HPACK decode cache (clone to attach elsewhere).
    pub fn hpack_decode_cache(&self) -> &DecodeCache {
        &self.hpack_decode
    }

    /// Pre-chunked body payload of resource `i` (zero-copy slices).
    pub fn body(&self, i: usize) -> &[Bytes] {
        &self.bodies[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2push_webmodel::{PageBuilder, ResourceSpec};

    fn page() -> Arc<Page> {
        let mut b = PageBuilder::new("prep", "prep.test", 30_000, 3_000);
        b.resource(ResourceSpec::css(0, 10_000, 300, 0.4));
        b.resource(ResourceSpec::image(0, 20_000, 8_000, true, 1.0));
        b.text_paint(8_000, 1.0);
        Arc::new(b.build())
    }

    #[test]
    fn build_is_pure_and_bodies_match_sizes() {
        let p = page();
        let a = PreparedPage::build(&p);
        let b = PreparedPage::build(&p);
        assert_eq!(a.bodies.len(), p.resources.len());
        for (chunks, r) in a.bodies.iter().zip(&p.resources) {
            assert_eq!(chunks.iter().map(|c| c.len()).sum::<usize>(), r.size);
            assert!(chunks.iter().all(|c| c.iter().all(|&x| x == 0)));
        }
        for (x, y) in a.bodies.iter().zip(&b.bodies) {
            assert_eq!(x, y);
        }
        assert!(a.hpack.is_empty(), "cache starts cold");
    }
}
