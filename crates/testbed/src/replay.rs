//! One replay: browser + per-group servers + the simulated network.
//!
//! This is the Mahimahi-equivalent core of the paper's testbed (§4.1): the
//! page's server groups become independent replay servers behind the
//! emulated DSL access link, the browser loads the page, and we collect the
//! timing metrics plus the server-side request trace.
//!
//! This module holds the replay's *vocabulary* — configuration, inputs,
//! outcome and error types; the event loop itself is the sans-IO netsim
//! adapter in [`crate::driver`].

use crate::prepared::PreparedPage;
use h2push_browser::{BrowserConfig, LoadResult};
use h2push_netsim::{NetStats, NetworkSpec, SimDuration, SimTime};
use h2push_strategies::{RunTrace, Strategy};
use h2push_trace::TraceHandle;
use h2push_webmodel::{Page, RecordDb, ResourceId};
use std::collections::HashMap;
use std::sync::Arc;

/// Which protocol the replay runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Protocol {
    /// HTTP/2 (with whatever push strategy is configured).
    #[default]
    H2,
    /// HTTP/1.1 baseline: six connections per origin, no push (any push
    /// strategy is ignored).
    H1,
}

/// Configuration of one replay.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Access-link profile (defaults to the paper's DSL).
    pub network: NetworkSpec,
    /// Browser knobs (push enablement is derived from the strategy).
    pub browser: BrowserConfig,
    /// The push strategy under test. Shared (`Arc`) because one strategy
    /// typically serves every rep, connection and worker thread of a
    /// measurement: deriving a per-rep config or standing up a per-group
    /// server is a pointer bump, never a deep clone of the order vectors.
    pub strategy: Arc<Strategy>,
    /// Protocol to replay over.
    pub protocol: Protocol,
    /// Extra one-way delay per server group (internet mode gives far-away
    /// third parties their real distance; the testbed leaves this empty).
    pub server_extra_delay: HashMap<usize, SimDuration>,
    /// Per-request think time on the servers (zero in the testbed, §4.1).
    pub server_think: SimDuration,
    /// Resources already in the browser cache (warm revisit).
    pub warm_cache: Vec<ResourceId>,
    /// Whether servers honor `cache-digest` headers (suppressing pushes of
    /// cached resources). Irrelevant on cold loads.
    pub server_honors_digest: bool,
    /// Abort the replay after this much simulated time.
    pub deadline: SimDuration,
    /// Watchdog: abort the replay once the netsim loop has processed this
    /// many internal events. Sim-time deadlines cannot catch a zero-delay
    /// livelock (two endpoints ping-ponging frames without advancing the
    /// clock past the deadline check granularity is still bounded, but an
    /// adversarial peer can force unbounded *work* per unit sim-time); the
    /// event budget bounds work directly. The default is far above any
    /// benign replay.
    pub watchdog_events: u64,
    /// Adversarial-peer resource limits applied to *both* endpoints of
    /// every HTTP/2 connection in the replay. Purely local enforcement —
    /// never advertised in SETTINGS — so swapping limits never changes
    /// wire bytes on benign workloads (asserted by the equality suite).
    pub limits: h2push_h2proto::ConnLimits,
}

impl ReplayConfig {
    /// The paper's deterministic testbed profile for `strategy` (accepts
    /// an owned [`Strategy`] or an already-shared `Arc<Strategy>`).
    pub fn testbed(strategy: impl Into<Arc<Strategy>>) -> Self {
        ReplayConfig {
            network: NetworkSpec::dsl_testbed(),
            browser: BrowserConfig::default(),
            strategy: strategy.into(),
            protocol: Protocol::H2,
            server_extra_delay: HashMap::new(),
            server_think: SimDuration::ZERO,
            warm_cache: Vec::new(),
            server_honors_digest: true,
            deadline: SimDuration::from_millis(180_000),
            watchdog_events: 50_000_000,
            limits: h2push_h2proto::ConnLimits::new(),
        }
    }
}

/// What a replay produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// Browser-side measurements.
    pub load: LoadResult,
    /// Request order observed by the main server (for §4.2 push-order
    /// computation).
    pub trace: RunTrace,
    /// Body bytes the main server pushed.
    pub server_pushed_bytes: u64,
    /// Network-level fault and loss-recovery counters (all zero on a
    /// fault-free link).
    pub net: NetStats,
}

/// Replay failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The simulation quiesced before onload (a wiring bug or an
    /// unservable page).
    Stalled { at: SimTime },
    /// The deadline passed.
    DeadlineExceeded,
    /// The event-count watchdog fired: the netsim loop processed more
    /// internal events than [`ReplayConfig::watchdog_events`] allows —
    /// the run was livelocking (adversarial input or a wiring bug).
    Watchdog { events: u64 },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Stalled { at } => write!(f, "replay stalled at {at}"),
            ReplayError::DeadlineExceeded => write!(f, "replay deadline exceeded"),
            ReplayError::Watchdog { events } => {
                write!(f, "watchdog fired after {events} simulation events")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// The immutable inputs of a replay: the page model and the record-and-
/// replay response database derived from it. Built once per page (the DB
/// walk is the expensive part) and shared by reference across every
/// repetition, connection and thread — `Arc` clones are pointer bumps.
#[derive(Debug, Clone)]
pub struct ReplayInputs {
    /// The page under replay.
    pub page: Arc<Page>,
    /// Recorded responses for every resource of `page`.
    pub db: Arc<RecordDb>,
    /// Page-level precomputation ([`PreparedPage`]); `None` runs the live
    /// path. Attached with [`ReplayInputs::prepared`]; outputs are
    /// byte-identical either way.
    pub(crate) prepared: Option<Arc<PreparedPage>>,
}

impl ReplayInputs {
    /// Attach a freshly built [`PreparedPage`] (build once, share across
    /// every rep and config touching this page). No observable output
    /// changes — only per-rep work is skipped.
    pub fn prepared(mut self) -> Self {
        if self.prepared.is_none() {
            self.prepared = Some(Arc::new(PreparedPage::build(&self.page)));
        }
        self
    }

    /// Attach an existing (shared) [`PreparedPage`].
    pub fn with_prepared(mut self, prepared: Arc<PreparedPage>) -> Self {
        self.prepared = Some(prepared);
        self
    }

    /// The attached precomputation, if any.
    pub fn prepared_page(&self) -> Option<&Arc<PreparedPage>> {
        self.prepared.as_ref()
    }
}

impl From<Arc<Page>> for ReplayInputs {
    fn from(page: Arc<Page>) -> Self {
        let db = Arc::new(RecordDb::record(&page));
        ReplayInputs { page, db, prepared: None }
    }
}

impl From<Page> for ReplayInputs {
    fn from(page: Page) -> Self {
        Self::from(Arc::new(page))
    }
}

impl From<&Page> for ReplayInputs {
    fn from(page: &Page) -> Self {
        Self::from(Arc::new(page.clone()))
    }
}

impl From<&ReplayInputs> for ReplayInputs {
    fn from(inputs: &ReplayInputs) -> Self {
        inputs.clone()
    }
}

/// Replay `page` once under `cfg`.
///
/// Convenience wrapper that records the page on every call; repeated runs
/// of the same page should build [`ReplayInputs`] once and use
/// [`replay_shared`].
pub fn replay(page: &Page, cfg: &ReplayConfig) -> Result<ReplayOutcome, ReplayError> {
    replay_shared(&ReplayInputs::from(page), cfg)
}

/// Replay `inputs` once under `cfg`, sharing (not cloning) the page and
/// response database with the browser and every server connection.
pub fn replay_shared(
    inputs: &ReplayInputs,
    cfg: &ReplayConfig,
) -> Result<ReplayOutcome, ReplayError> {
    replay_with_trace(inputs, cfg, &TraceHandle::off())
}

/// Replay `inputs` once under `cfg` inside an explicit, caller-owned
/// [`ReplayCtx`](crate::ReplayCtx). The context's machinery (browser,
/// network, servers, byte FIFOs) is recycled from its previous run instead
/// of reconstructed; outcomes are byte-identical to [`replay_shared`]
/// (asserted across strategies, faults and modes in `tests/recycle.rs`).
/// [`replay_shared`] itself recycles through a thread-local context — this
/// entry point exists for callers that want to own the context's lifetime,
/// like the allocation-gate bench.
pub fn replay_in(
    inputs: &ReplayInputs,
    cfg: &ReplayConfig,
    ctx: &mut crate::driver::ReplayCtx,
) -> Result<ReplayOutcome, ReplayError> {
    crate::driver::drive_in(inputs, cfg, &TraceHandle::off(), ctx)
}

/// The replay engine proper — the sans-IO netsim adapter
/// ([`crate::driver`]). `trace` is injected into every subsystem; when it
/// is off (the [`replay_shared`] path) each emission site costs a single
/// branch, so traced and untraced runs take identical decisions.
pub(crate) fn replay_with_trace(
    inputs: &ReplayInputs,
    cfg: &ReplayConfig,
    trace: &TraceHandle,
) -> Result<ReplayOutcome, ReplayError> {
    crate::driver::drive(inputs, cfg, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2push_webmodel::{PageBuilder, ResourceSpec};

    fn page() -> Page {
        let mut b = PageBuilder::new("replay-test", "r.test", 60_000, 5_000);
        let third = b.origin("cdn.other.net", 1, false);
        b.resource(ResourceSpec::css(0, 20_000, 300, 0.3));
        b.resource(ResourceSpec::js(0, 25_000, 1_000, 30_000));
        b.resource(ResourceSpec::image(0, 40_000, 20_000, true, 2.0));
        b.resource(ResourceSpec::js_async(third, 10_000, 30_000, 5_000));
        b.text_paint(10_000, 1.0);
        b.text_paint(40_000, 1.0);
        b.build()
    }

    #[test]
    fn no_push_replay_completes() {
        let out = replay(&page(), &ReplayConfig::testbed(Strategy::NoPush)).unwrap();
        assert!(out.load.finished());
        // connectEnd ≈ 3 RTT (DNS local, TCP+TLS1.2) = ~150 ms.
        let ce = out.load.connect_end.as_millis_f64();
        assert!((145.0..165.0).contains(&ce), "connectEnd {ce}");
        // PLT plausible: several RTTs + transfer + exec, well under 5 s.
        let plt = out.load.plt();
        assert!((200.0..5_000.0).contains(&plt), "plt {plt}");
        assert_eq!(out.server_pushed_bytes, 0);
        // The main server saw the html + 3 same-group requests.
        assert_eq!(out.trace.order.len(), 4);
        assert_eq!(out.trace.order[0], ResourceId(0));
    }

    #[test]
    fn replay_is_deterministic() {
        let cfg = ReplayConfig::testbed(Strategy::NoPush);
        let a = replay(&page(), &cfg).unwrap();
        let b = replay(&page(), &cfg).unwrap();
        assert_eq!(a.load.plt(), b.load.plt());
        assert_eq!(a.load.speed_index(), b.load.speed_index());
        assert_eq!(a.trace.order, b.trace.order);
    }

    #[test]
    fn replay_shared_matches_cold_replay() {
        // Sharing the page/DB through Arc must not change a single output.
        let p = page();
        let cfg = ReplayConfig::testbed(Strategy::NoPush);
        let cold = replay(&p, &cfg).unwrap();
        let inputs = ReplayInputs::from(p);
        let a = replay_shared(&inputs, &cfg).unwrap();
        let b = replay_shared(&inputs, &cfg).unwrap();
        assert_eq!(cold.load.plt(), a.load.plt());
        assert_eq!(cold.load.speed_index(), a.load.speed_index());
        assert_eq!(cold.trace.order, a.trace.order);
        assert_eq!(a.load.plt(), b.load.plt());
        assert_eq!(a.trace.order, b.trace.order);
    }

    #[test]
    fn watchdog_aborts_runaway_replays() {
        let mut cfg = ReplayConfig::testbed(Strategy::NoPush);
        cfg.watchdog_events = 10; // no page loads in 10 simulation events
        match replay(&page(), &cfg) {
            Err(ReplayError::Watchdog { events }) => assert!(events > 10),
            other => panic!("expected watchdog, got {other:?}"),
        }
    }

    #[test]
    fn default_watchdog_budget_is_inert() {
        // The default budget is far above what a benign replay consumes:
        // outputs are identical to a watchdog-free notion of the run.
        let p = page();
        let cfg = ReplayConfig::testbed(Strategy::NoPush);
        let a = replay(&p, &cfg).unwrap();
        let mut huge = ReplayConfig::testbed(Strategy::NoPush);
        huge.watchdog_events = u64::MAX;
        let b = replay(&p, &huge).unwrap();
        assert_eq!(a.load, b.load);
        assert_eq!(a.trace.order, b.trace.order);
    }

    #[test]
    fn push_list_transfers_push_bytes() {
        let p = page();
        let strategy = Strategy::PushList { order: vec![ResourceId(1), ResourceId(2)] };
        let out = replay(&p, &ReplayConfig::testbed(strategy)).unwrap();
        assert!(out.load.finished());
        assert_eq!(out.server_pushed_bytes, 45_000);
        assert_eq!(out.load.pushed_count, 2);
        // Pushed resources are not requested: html + image only.
        assert_eq!(out.trace.order.len(), 2);
    }

    #[test]
    fn interleaved_strategy_completes_and_pushes() {
        let p = page();
        let strategy = Strategy::Interleaved {
            offset: 6_000,
            critical: vec![ResourceId(1)],
            after: vec![ResourceId(3)],
        };
        let out = replay(&p, &ReplayConfig::testbed(strategy)).unwrap();
        assert!(out.load.finished());
        assert_eq!(out.load.pushed_count, 2);
    }

    #[test]
    fn push_helps_late_referenced_css_on_large_html() {
        // A large document whose CSS is referenced late: push should beat
        // no-push on first paint substantially (the paper's premise).
        let mut b = PageBuilder::new("late-css", "l.test", 150_000, 3_000);
        b.resource(ResourceSpec::css(0, 30_000, 2_000, 0.3));
        b.text_paint(10_000, 1.0);
        let p = b.build();
        let no_push = replay(&p, &ReplayConfig::testbed(Strategy::NoPush)).unwrap();
        let push = replay(
            &p,
            &ReplayConfig::testbed(Strategy::Interleaved {
                offset: 4_096,
                critical: vec![ResourceId(1)],
                after: vec![],
            }),
        )
        .unwrap();
        let fp_no = no_push.load.first_paint.unwrap().since(no_push.load.connect_end);
        let fp_push = push.load.first_paint.unwrap().since(push.load.connect_end);
        assert!(
            fp_push.as_millis_f64() < fp_no.as_millis_f64() * 0.8,
            "interleaving must speed first paint: {fp_push} vs {fp_no}"
        );
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use h2push_strategies::push_all;
    use h2push_webmodel::{PageBuilder, ResourceSpec};

    fn page() -> Page {
        let mut b = PageBuilder::new("warm", "warm.test", 40_000, 4_000);
        b.resource(ResourceSpec::css(0, 20_000, 300, 0.4)); // 1
        b.resource(ResourceSpec::js(0, 30_000, 1_000, 10_000)); // 2
        b.resource(ResourceSpec::image(0, 25_000, 10_000, true, 1.5)); // 3
        b.text_paint(8_000, 1.0);
        b.build()
    }

    #[test]
    fn warm_cache_speeds_up_the_load() {
        let p = page();
        let cold = replay(&p, &ReplayConfig::testbed(Strategy::NoPush)).unwrap();
        let mut cfg = ReplayConfig::testbed(Strategy::NoPush);
        cfg.warm_cache = vec![ResourceId(1), ResourceId(2), ResourceId(3)];
        let warm = replay(&p, &cfg).unwrap();
        assert!(
            warm.load.plt() < cold.load.plt() * 0.8,
            "warm {} vs cold {}",
            warm.load.plt(),
            cold.load.plt()
        );
        // Cached resources never hit the network: only the HTML request.
        assert_eq!(warm.trace.order.len(), 1);
    }

    #[test]
    fn digest_aware_server_skips_cached_pushes() {
        let p = page();
        let mut cfg = ReplayConfig::testbed(push_all(&p, &[]));
        cfg.warm_cache = vec![ResourceId(1), ResourceId(2)];
        let out = replay(&p, &cfg).unwrap();
        // Only the (uncached) image is pushed.
        assert_eq!(out.server_pushed_bytes, 25_000);
        assert_eq!(out.load.cancelled_pushes, 0, "nothing to cancel — never promised");
    }

    #[test]
    fn digest_oblivious_server_wastes_push_bytes() {
        let p = page();
        let mut cfg = ReplayConfig::testbed(push_all(&p, &[]));
        cfg.warm_cache = vec![ResourceId(1), ResourceId(2)];
        cfg.server_honors_digest = false;
        let out = replay(&p, &cfg).unwrap();
        // The server queues everything; the client cancels the cached two
        // (bytes may already be in flight — the §2.1 waste).
        assert_eq!(out.server_pushed_bytes, 75_000);
        assert_eq!(out.load.cancelled_pushes, 2);
        assert!(out.load.finished());
    }

    #[test]
    fn warm_cache_with_digest_is_not_slower_than_cold_push() {
        let p = page();
        let cold = replay(&p, &ReplayConfig::testbed(push_all(&p, &[]))).unwrap();
        let mut cfg = ReplayConfig::testbed(push_all(&p, &[]));
        cfg.warm_cache = vec![ResourceId(1), ResourceId(2), ResourceId(3)];
        let warm = replay(&p, &cfg).unwrap();
        assert!(warm.load.speed_index() <= cold.load.speed_index() + 1.0);
    }
}

#[cfg(test)]
mod h1_tests {
    use super::*;
    use h2push_webmodel::{PageBuilder, ResourceSpec};

    fn page() -> Page {
        let mut b = PageBuilder::new("h1-replay", "h1r.test", 50_000, 4_000);
        let third = b.origin("cdn.other.net", 1, false);
        b.resource(ResourceSpec::css(0, 15_000, 300, 0.4));
        b.resource(ResourceSpec::js(0, 20_000, 1_000, 15_000));
        for i in 0..8 {
            b.resource(ResourceSpec::image(0, 18_000, 10_000 + i * 4_000, i < 3, 1.0));
        }
        b.resource(ResourceSpec::js_async(third, 8_000, 30_000, 3_000));
        b.text_paint(8_000, 1.0);
        b.text_paint(35_000, 1.0);
        b.build()
    }

    fn h1_config() -> ReplayConfig {
        let mut cfg = ReplayConfig::testbed(Strategy::NoPush);
        cfg.protocol = Protocol::H1;
        cfg
    }

    #[test]
    fn h1_replay_completes() {
        let out = replay(&page(), &h1_config()).unwrap();
        assert!(out.load.finished());
        assert_eq!(out.load.pushed_count, 0, "no push over HTTP/1.1");
        assert_eq!(out.server_pushed_bytes, 0);
        // 12 resources requested (html + 11 subresources).
        assert_eq!(out.load.requests, 12);
    }

    #[test]
    fn h1_is_deterministic() {
        let a = replay(&page(), &h1_config()).unwrap();
        let b = replay(&page(), &h1_config()).unwrap();
        assert_eq!(a.load.plt(), b.load.plt());
        assert_eq!(a.load.speed_index(), b.load.speed_index());
    }

    #[test]
    fn h2_beats_h1_on_a_many_object_page() {
        // The paper's motivating context (§1–§3, Varvello et al.): H2's
        // multiplexing beats H1's six-connection pool on pages with many
        // small objects at a non-trivial RTT.
        let p = page();
        let h1 = replay(&p, &h1_config()).unwrap();
        let h2 = replay(&p, &ReplayConfig::testbed(Strategy::NoPush)).unwrap();
        assert!(
            h2.load.plt() < h1.load.plt(),
            "H2 {} ms should beat H1 {} ms",
            h2.load.plt(),
            h1.load.plt()
        );
    }

    #[test]
    fn h1_ignores_push_strategies() {
        let p = page();
        let mut cfg = h1_config();
        cfg.strategy = h2push_strategies::push_all(&p, &[]).into();
        let out = replay(&p, &cfg).unwrap();
        assert!(out.load.finished());
        assert_eq!(out.load.pushed_count, 0);
    }
}

#[cfg(test)]
mod warm_h1_tests {
    use super::*;
    use h2push_webmodel::{PageBuilder, ResourceSpec};

    #[test]
    fn h1_with_warm_cache_skips_cached_fetches() {
        let mut b = PageBuilder::new("h1-warm", "hw.test", 30_000, 3_000);
        b.resource(ResourceSpec::css(0, 10_000, 200, 0.5));
        b.resource(ResourceSpec::image(0, 15_000, 8_000, true, 1.0));
        b.text_paint(6_000, 1.0);
        let p = b.build();
        let mut cfg = ReplayConfig::testbed(Strategy::NoPush);
        cfg.protocol = Protocol::H1;
        cfg.warm_cache = vec![ResourceId(1), ResourceId(2)];
        let warm = replay(&p, &cfg).unwrap();
        assert!(warm.load.finished());
        // Only the document goes over the wire.
        assert_eq!(warm.load.requests, 1);
        let mut cold_cfg = ReplayConfig::testbed(Strategy::NoPush);
        cold_cfg.protocol = Protocol::H1;
        let cold = replay(&p, &cold_cfg).unwrap();
        assert!(warm.load.plt() < cold.load.plt());
    }
}
